/**
 * @file
 * Ablations for the design choices DESIGN.md calls out:
 *
 *  A. The E state (what NeoMESI adds over TreeMSI): how many write
 *     upgrades does exclusivity save, and at what verification cost?
 *  B. Leaf-symmetry canonicalization in the checker: state-space
 *     reduction factor (this is what stands in for Cubicle's
 *     symmetry handling).
 *  C. View size in the parametric abstraction: size-1 views are too
 *     coarse to converge meaningfully? size-2 (default) converges at
 *     a small cutoff; the saturation bound barely matters beyond 2.
 */

#include <cstdio>

#include "core/sim_runner.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/parametric.hpp"
#include "workload/workload.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

void
ablationEState()
{
    std::printf("[A] The E state: TreeMSI vs NeoMESI under a "
                "read-then-write workload\n");
    WorkloadParams wl;
    wl.name = "read-modify";
    wl.privateBlocksPerCore = 256;
    wl.sharedBlocks = 64;
    wl.sharedFraction = 0.05;
    wl.privateWriteFraction = 0.5; // reads and writes interleave
    RunConfig cfg;
    cfg.opsPerCore = 4000;

    for (ProtocolVariant v :
         {ProtocolVariant::TreeMSI, ProtocolVariant::NeoMESI}) {
        HierarchySpec spec = twoCoresPerL2Org(v);
        const RunResult r = runOnce(spec, wl, cfg);
        std::printf("  %-8s runtime %9llu cy   upgrades %6llu   "
                    "messages %8llu\n",
                    protocolName(v),
                    static_cast<unsigned long long>(r.runtime),
                    static_cast<unsigned long long>(r.l1Upgrades),
                    static_cast<unsigned long long>(r.networkMessages));
    }
    ModelShape shape;
    const auto msi =
        explore(buildClosedModel(3, VerifFeatures::inclusiveMSI(),
                                 shape),
                ExploreLimits{5'000'000, 60.0}, false, false);
    const auto mesi =
        explore(buildClosedModel(3, VerifFeatures::neoMESI(), shape),
                ExploreLimits{5'000'000, 60.0}, false, false);
    std::printf("  verification cost of E (closed, N=3): %llu -> %llu "
                "states (%.2fx)\n\n",
                static_cast<unsigned long long>(msi.statesExplored),
                static_cast<unsigned long long>(mesi.statesExplored),
                static_cast<double>(mesi.statesExplored) /
                    static_cast<double>(msi.statesExplored));
}

void
ablationSymmetry()
{
    std::printf("[B] Leaf-symmetry canonicalization in the model "
                "checker\n");
    for (std::size_t n : {2u, 3u, 4u}) {
        ModelShape shape;
        TransitionSystem with =
            buildClosedModel(n, VerifFeatures::neoMESI(), shape);
        TransitionSystem without =
            buildClosedModel(n, VerifFeatures::neoMESI(), shape);
        without.setCanonicalizer({});
        const auto a = explore(with, ExploreLimits{20'000'000, 120.0},
                               false, false);
        const auto b = explore(without,
                               ExploreLimits{20'000'000, 120.0},
                               false, false);
        std::printf("  N=%zu: %9llu canonical vs %9llu raw states "
                    "(%.2fx reduction, ideal %.0f = N!)\n",
                    n,
                    static_cast<unsigned long long>(a.statesExplored),
                    static_cast<unsigned long long>(b.statesExplored),
                    static_cast<double>(b.statesExplored) /
                        static_cast<double>(a.statesExplored),
                    n == 2 ? 2.0 : (n == 3 ? 6.0 : 24.0));
    }
    std::printf("\n");
}

void
ablationViews()
{
    std::printf("[C] Saturation bound in the parametric view "
                "abstraction (closed NeoMESI)\n");
    for (unsigned sat : {1u, 2u, 3u}) {
        const auto r = verifyParametric(
            closedModelFactory(VerifFeatures::neoMESI()), 1, 7,
            ExploreLimits{8'000'000, 300.0}, sat);
        std::printf("  saturation=%u: converged=%s cutoff=%zu "
                    "final views=%zu\n",
                    sat, r.converged ? "yes" : "no", r.cutoff,
                    r.abstractSetSizes.empty()
                        ? 0
                        : r.abstractSetSizes.back());
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("==== Ablations ====\n\n");
    ablationEState();
    ablationSymmetry();
    ablationViews();
    return 0;
}
