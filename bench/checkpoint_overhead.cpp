/**
 * @file
 * Checkpointing overhead: what does crash safety cost?
 *
 * Runs the german-protocol reachability fixpoint with checkpointing
 * off, at a 10 s cadence, and at an aggressive 1 s cadence, and
 * reports states/sec for each (overhead relative to the
 * no-checkpoint baseline).  Then scales N and compares the
 * serialized snapshot size against the live visited-set footprint —
 * the snapshot stores canonical states plus predecessor links, so it
 * should track the visited set roughly linearly and stay well under
 * the in-memory footprint (no hash-table slack on disk).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "verif/checkpoint.hpp"
#include "verif/explorer.hpp"
#include "verif/models/german.hpp"

using namespace neo;
using neo::verif::buildGermanModel;

namespace
{

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/neo_ckpt_bench_XXXXXX";
    if (!mkdtemp(tmpl)) {
        std::perror("mkdtemp");
        std::exit(1);
    }
    return tmpl;
}

ExploreResult
runOnce(std::size_t n, const CheckpointConfig *ckpt)
{
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(n, shape);
    ExploreLimits lim;
    lim.maxSeconds = 600.0;
    lim.checkpoint = ckpt;
    return explore(ts, lim);
}

} // namespace

int
main()
{
    const std::string dir = makeTempDir();

    std::printf("==== checkpoint overhead: german reachability "
                "fixpoint ====\n\n");

    // --- Part 1: throughput vs cadence (fixed N) --------------------
    constexpr std::size_t kThroughputN = 6;
    struct Cadence
    {
        const char *label;
        double everySeconds; // < 0 = checkpointing off
    };
    const Cadence cadences[] = {
        {"off", -1.0}, {"10s", 10.0}, {"1s", 1.0}};

    std::printf("throughput, N=%zu (states/sec; overhead vs "
                "checkpointing off)\n",
                kThroughputN);
    std::printf("%-8s %12s %9s %12s %6s %10s\n", "cadence", "states",
                "seconds", "states/sec", "ckpts", "overhead");

    double baseline_rate = 0.0;
    for (const Cadence &c : cadences) {
        CheckpointConfig ckpt;
        ckpt.dir = dir;
        ckpt.everySeconds = c.everySeconds;
        const bool on = c.everySeconds >= 0.0;
        const ExploreResult r =
            runOnce(kThroughputN, on ? &ckpt : nullptr);
        if (r.status != VerifStatus::Verified) {
            std::printf("unexpected status: %s\n",
                        verifStatusName(r.status));
            return 1;
        }
        const double rate =
            r.seconds > 0.0
                ? static_cast<double>(r.statesExplored) / r.seconds
                : 0.0;
        if (!on)
            baseline_rate = rate;
        const double overhead =
            baseline_rate > 0.0 ? 100.0 * (baseline_rate - rate) /
                                      baseline_rate
                                : 0.0;
        std::printf("%-8s %12llu %9.3f %12.0f %6llu %9.1f%%\n",
                    c.label,
                    static_cast<unsigned long long>(r.statesExplored),
                    r.seconds, rate,
                    static_cast<unsigned long long>(
                        r.checkpointsWritten),
                    on ? overhead : 0.0);
        removeSnapshot(exploreSnapshotPath(ckpt));
    }

    // --- Part 2: snapshot size vs visited-set size ------------------
    std::printf("\nsnapshot size vs live visited-set footprint "
                "(aggressive cadence so a\nperiodic snapshot lands "
                "near the fixpoint)\n");
    std::printf("%-4s %12s %14s %15s %9s\n", "N", "states",
                "snapshot (B)", "visited (B)", "snap/mem");
    for (std::size_t n = 4; n <= 6; ++n) {
        CheckpointConfig ckpt;
        ckpt.dir = dir;
        ckpt.everySeconds = 0.02;
        const ExploreResult r = runOnce(n, &ckpt);
        if (r.status != VerifStatus::Verified) {
            std::printf("unexpected status: %s\n",
                        verifStatusName(r.status));
            return 1;
        }
        std::printf("%-4zu %12llu %14llu %15llu %8.2f%%\n", n,
                    static_cast<unsigned long long>(r.statesExplored),
                    static_cast<unsigned long long>(
                        r.lastSnapshotBytes),
                    static_cast<unsigned long long>(r.memoryBytes),
                    r.memoryBytes
                        ? 100.0 *
                              static_cast<double>(r.lastSnapshotBytes) /
                              static_cast<double>(r.memoryBytes)
                        : 0.0);
        removeSnapshot(exploreSnapshotPath(ckpt));
    }

    std::printf("\nShape check: a 10 s cadence costs ~0%% on runs of "
                "a few seconds (no\nperiodic snapshot fires; only the "
                "estimate bookkeeping remains).  The 1 s\ncadence "
                "pays one full snapshot+fsync per second, so on a "
                "short run its\ncost is visible (tens of percent "
                "here) — which is why 30 s is the CLI\ndefault.  The "
                "snapshot should serialize to roughly a third of the "
                "live\nvisited-set footprint and grow linearly with "
                "it.\n");

    std::remove((dir + "/explore.ckpt").c_str());
    std::remove(dir.c_str());
    return 0;
}
