/**
 * @file
 * Shared driver for the Figure 8/9/10 runtime experiments: for one
 * cache organization, run every PARSEC-like benchmark under NeoMESI,
 * NS-MESI and NS-MOESI, multiple perturbed trials each, and print the
 * runtimes normalized to NS-MOESI with +/- one standard deviation
 * (the paper's §5.2 methodology).
 */

#ifndef NEO_BENCH_EVAL_COMMON_HPP
#define NEO_BENCH_EVAL_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "core/sim_runner.hpp"
#include "sim/logging.hpp"
#include "workload/workload.hpp"

namespace neo::bench
{

/**
 * Minimal JSON emitter for benchmark artifacts (bench/state_store
 * uploads its numbers from CI so every PR leaves a perf trajectory).
 * Scalars only — strings, numbers, booleans — plus nested objects and
 * flat arrays of the same; that covers a metrics document without
 * dragging in a JSON dependency.
 */
class JsonWriter
{
  public:
    void
    beginObject(const std::string &key = "")
    {
        comma();
        tag(key);
        out_ += '{';
        first_ = true;
    }
    void
    endObject()
    {
        out_ += '}';
        first_ = false;
    }
    void
    beginArray(const std::string &key)
    {
        comma();
        tag(key);
        out_ += '[';
        first_ = true;
    }
    void
    endArray()
    {
        out_ += ']';
        first_ = false;
    }
    void
    field(const std::string &key, const std::string &v)
    {
        comma();
        tag(key);
        out_ += '"';
        escape(v);
        out_ += '"';
    }
    void
    field(const std::string &key, const char *v)
    {
        field(key, std::string(v));
    }
    void
    field(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        comma();
        tag(key);
        out_ += buf;
    }
    void
    field(const std::string &key, std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        comma();
        tag(key);
        out_ += buf;
    }
    void
    field(const std::string &key, bool v)
    {
        comma();
        tag(key);
        out_ += v ? "true" : "false";
    }
    void
    element(std::uint64_t v)
    {
        field("", v);
    }

    const std::string &str() const { return out_; }

  private:
    void
    comma()
    {
        if (!first_)
            out_ += ',';
        first_ = false;
    }
    void
    tag(const std::string &key)
    {
        if (key.empty())
            return;
        out_ += '"';
        escape(key);
        out_ += "\":";
    }
    void
    escape(const std::string &s)
    {
        for (char c : s) {
            if (c == '"' || c == '\\')
                out_ += '\\';
            out_ += c;
        }
    }

    std::string out_;
    bool first_ = true;
};

struct EvalOptions
{
    std::uint64_t opsPerCore = 4000;
    unsigned trials = 3;
    std::uint64_t baseSeed = 42;
};

inline int
runFigure(const std::string &figure, const std::string &org_name,
          const EvalOptions &opt = {})
{
    setQuiet(true);
    const ProtocolVariant protocols[] = {ProtocolVariant::NeoMESI,
                                         ProtocolVariant::NSMESI,
                                         ProtocolVariant::NSMOESI};

    std::printf("==== %s: runtime normalized to NS-MOESI, %s "
                "organization ====\n",
                figure.c_str(), org_name.c_str());
    std::printf("(32 cores, Table 1 configuration, %u trials/cell, "
                "%llu ops/core)\n\n",
                opt.trials,
                static_cast<unsigned long long>(opt.opsPerCore));
    std::printf("%-14s %-22s %-22s %-22s coherent\n", "benchmark",
                "NeoMESI", "NS-MESI", "NS-MOESI");

    bool all_ok = true;
    for (const auto &wl : parsecSuite()) {
        double ns_moesi_mean = 0.0;
        struct Cell
        {
            double mean = 0.0, stdev = 0.0;
            bool ok = true;
        };
        std::vector<Cell> cells;
        for (ProtocolVariant v : protocols) {
            HierarchySpec spec = organizationByName(org_name, v);
            RunConfig cfg;
            cfg.opsPerCore = opt.opsPerCore;
            cfg.seed = opt.baseSeed;
            const TrialSummary t = runTrials(spec, wl, cfg, opt.trials);
            Cell c;
            c.mean = t.runtime.mean();
            c.stdev = t.runtime.stdev();
            c.ok = t.allCoherent;
            if (v == ProtocolVariant::NSMOESI)
                ns_moesi_mean = c.mean;
            cells.push_back(c);
        }
        std::printf("%-14s", wl.name.c_str());
        bool row_ok = true;
        for (const Cell &c : cells) {
            std::printf(" %7.4f +/- %-6.4f   ", c.mean / ns_moesi_mean,
                        c.stdev / ns_moesi_mean);
            row_ok = row_ok && c.ok;
        }
        std::printf(" %s\n", row_ok ? "yes" : "NO");
        all_ok = all_ok && row_ok;
    }
    std::printf("\nShape check: all three protocols should be "
                "statistically on-par (within ~1 sigma of 1.0), as in "
                "the paper's Figures 8-10.\n");
    return all_ok ? 0 : 1;
}

} // namespace neo::bench

#endif // NEO_BENCH_EVAL_COMMON_HPP
