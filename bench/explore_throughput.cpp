/**
 * @file
 * Successor-generation throughput bench: states/s, bytes/state and
 * guard-evals/state on the german model at N in {4,5,6}, sequential
 * and at 4 worker threads, with the rule dependency index on and off
 * (`ExploreLimits::ruleIndex`). This is the perf-trajectory artifact
 * for the dependency-indexed firing path: CI uploads the JSON so
 * every PR leaves a comparable number behind.
 *
 * Every (model, threads) cell also asserts that the fixpoint —
 * status, states, transitions, per-rule fires, invariantChecks — is
 * bit-identical with the index on and off; a speedup that changes
 * the fixpoint is a bug, not a result. The process exits non-zero on
 * any mismatch so the CI job fails loudly.
 *
 * Timing discipline: the CI container is a single noisy CPU, so each
 * configuration runs `--reps` times (default 3) and the MINIMUM wall
 * time is reported — the minimum estimates the noise-free cost,
 * while counters (which are deterministic sequentially) come from
 * the first rep. A random-walk row (fixed seed/budget) is included
 * because the walker is pure guard-scan — no visited-set or intern
 * costs diluting the index's effect.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval_common.hpp"
#include "verif/explorer.hpp"
#include "verif/models/german.hpp"
#include "verif/random_walk.hpp"

using namespace neo;
using neo::verif::buildGermanModel;

namespace
{

struct Row
{
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t invariantChecks = 0;
    std::vector<std::uint64_t> ruleFires;
    VerifStatus status = VerifStatus::Verified;
    std::uint64_t guardEvals = 0;
    std::uint64_t guardEvalsSkipped = 0;
    std::uint64_t inPlaceFirings = 0;
    std::uint64_t canonIdentityHits = 0;
    std::uint64_t memoryBytes = 0;
    double bestSeconds = 0.0;
};

Row
runExplore(const TransitionSystem &ts, unsigned threads, bool index,
           int reps)
{
    Row row;
    for (int i = 0; i < reps; ++i) {
        ExploreLimits lim;
        lim.maxSeconds = 600.0;
        lim.threads = threads;
        lim.ruleIndex = index;
        const ExploreResult r =
            explore(ts, lim, false, /*keep_trace=*/false);
        if (i == 0) {
            row.states = r.statesExplored;
            row.transitions = r.transitionsFired;
            row.invariantChecks = r.invariantChecks;
            row.ruleFires = r.ruleFires;
            row.status = r.status;
            row.guardEvals = r.guardEvals;
            row.guardEvalsSkipped = r.guardEvalsSkipped;
            row.inPlaceFirings = r.inPlaceFirings;
            row.canonIdentityHits = r.canonIdentityHits;
            row.memoryBytes = r.memoryBytes;
            row.bestSeconds = r.seconds;
        } else {
            row.bestSeconds = std::min(row.bestSeconds, r.seconds);
        }
    }
    return row;
}

/** Fixpoint comparison: everything that must not depend on the
 *  index. guardEvals is deliberately excluded (physical-evaluation
 *  count — differing on/off is the index working) and so is
 *  memoryBytes (identical stores, but the parallel explorer's
 *  accounting has allocator-order jitter). */
bool
sameFixpoint(const Row &a, const Row &b)
{
    return a.status == b.status && a.states == b.states &&
           a.transitions == b.transitions &&
           a.invariantChecks == b.invariantChecks &&
           a.ruleFires == b.ruleFires;
}

void
emitCounters(bench::JsonWriter &json, const Row &row)
{
    const double st = row.states ? double(row.states) : 1.0;
    json.field("seconds", row.bestSeconds);
    json.field("statesPerSec",
               row.bestSeconds > 0.0 ? double(row.states) /
                                           row.bestSeconds
                                     : 0.0);
    json.field("bytesPerState", double(row.memoryBytes) / st);
    json.field("guardEvalsPerState", double(row.guardEvals) / st);
    json.field("states", row.states);
    json.field("transitions", row.transitions);
    json.field("guardEvals", row.guardEvals);
    json.field("guardEvalsSkipped", row.guardEvalsSkipped);
    json.field("inPlaceFirings", row.inPlaceFirings);
    json.field("canonIdentityHits", row.canonIdentityHits);
    json.field("memoryBytes", row.memoryBytes);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_explore.json";
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
        else if (arg == "--reps" && i + 1 < argc)
            reps = std::max(1, std::atoi(argv[++i]));
    }

    std::printf("==== explore throughput: dependency-indexed "
                "successor generation ====\n\n");

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "explore_throughput");
    json.field("reps", std::uint64_t(reps));
    json.beginArray("rows");

    bool allOk = true;
    const std::size_t sizes[] = {4, 5, 6};
    const unsigned threadAxis[] = {1, 4};
    for (std::size_t n : sizes) {
        ModelShape shape;
        const TransitionSystem ts = buildGermanModel(n, shape);
        for (unsigned threads : threadAxis) {
            const Row on = runExplore(ts, threads, true, reps);
            const Row off = runExplore(ts, threads, false, reps);
            const bool equal = sameFixpoint(on, off);
            allOk = allOk && equal;

            const double spdup =
                on.bestSeconds > 0.0
                    ? off.bestSeconds / on.bestSeconds
                    : 0.0;
            std::printf(
                "german n=%zu threads=%u: %llu states | "
                "index on %.3fs (%.0f st/s, %.2f gevals/st) | "
                "off %.3fs (%.0f st/s, %.2f gevals/st) | "
                "on/off speedup %.2fx | fixpoint equal: %s\n",
                n, threads,
                static_cast<unsigned long long>(on.states),
                on.bestSeconds,
                on.bestSeconds > 0.0
                    ? double(on.states) / on.bestSeconds
                    : 0.0,
                double(on.guardEvals) / double(on.states),
                off.bestSeconds,
                off.bestSeconds > 0.0
                    ? double(off.states) / off.bestSeconds
                    : 0.0,
                double(off.guardEvals) / double(off.states),
                spdup, equal ? "yes" : "NO");

            json.beginObject();
            json.field("model", "german-n" + std::to_string(n));
            json.field("threads", std::uint64_t(threads));
            json.field("fixpointEqual", equal);
            json.beginObject("indexOn");
            emitCounters(json, on);
            json.endObject();
            json.beginObject("indexOff");
            emitCounters(json, off);
            json.endObject();
            json.field("speedupOnOverOff", spdup);
            json.endObject();
        }
    }

    // Walker row: pure guard-scan workload, the index's best case.
    // Fixed (seed, walks, depth) so picks/verdicts are reproducible;
    // on/off must agree on steps, dead ends and status.
    {
        ModelShape shape;
        const TransitionSystem ts = buildGermanModel(6, shape);
        WalkOptions wopt;
        wopt.walks = 512;
        wopt.depth = 4096;
        wopt.seed = 7;
        double onBest = 0.0, offBest = 0.0;
        WalkResult on, off;
        for (int i = 0; i < reps; ++i) {
            wopt.ruleIndex = true;
            WalkResult r = walkExplore(ts, wopt);
            if (i == 0)
                on = r;
            onBest = i == 0 ? r.seconds
                            : std::min(onBest, r.seconds);
            wopt.ruleIndex = false;
            r = walkExplore(ts, wopt);
            if (i == 0)
                off = r;
            offBest = i == 0 ? r.seconds
                             : std::min(offBest, r.seconds);
        }
        const bool equal = on.status == off.status &&
                           on.stepsTaken == off.stepsTaken &&
                           on.deadEnds == off.deadEnds &&
                           on.walksRun == off.walksRun;
        allOk = allOk && equal;
        const double spdup = onBest > 0.0 ? offBest / onBest : 0.0;
        std::printf(
            "german n=6 walker (512x4096, seed 7): %llu steps | "
            "index on %.3fs | off %.3fs | speedup %.2fx | "
            "outcome equal: %s\n",
            static_cast<unsigned long long>(on.stepsTaken), onBest,
            offBest, spdup, equal ? "yes" : "NO");
        json.beginObject();
        json.field("model", "german-n6-walker");
        json.field("walks", std::uint64_t(wopt.walks));
        json.field("depth", std::uint64_t(wopt.depth));
        json.field("outcomeEqual", equal);
        json.beginObject("indexOn");
        json.field("seconds", onBest);
        json.field("steps", on.stepsTaken);
        json.field("stepsPerSec",
                   onBest > 0.0 ? double(on.stepsTaken) / onBest
                                : 0.0);
        json.field("guardEvals", on.guardEvals);
        json.field("guardEvalsSkipped", on.guardEvalsSkipped);
        json.field("canonIdentityHits", on.canonIdentityHits);
        json.endObject();
        json.beginObject("indexOff");
        json.field("seconds", offBest);
        json.field("steps", off.stepsTaken);
        json.field("stepsPerSec",
                   offBest > 0.0 ? double(off.stepsTaken) / offBest
                                 : 0.0);
        json.field("guardEvals", off.guardEvals);
        json.field("guardEvalsSkipped", off.guardEvalsSkipped);
        json.field("canonIdentityHits", off.canonIdentityHits);
        json.endObject();
        json.field("speedupOnOverOff", spdup);
        json.endObject();
    }

    json.endArray();
    json.field("ok", allOk);
    json.endObject();

    if (std::FILE *f = std::fopen(outPath.c_str(), "w")) {
        std::fputs(json.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\nJSON written to %s\n", outPath.c_str());
    } else {
        std::perror(outPath.c_str());
        return 1;
    }
    return allOk ? 0 : 1;
}
