/**
 * @file
 * Falsification study: random-walk throughput and shrink quality.
 *
 * Two questions the walk engine must answer before it earns a place
 * next to the exhaustive explorers:
 *
 *  A. Throughput — rule firings (visited states, counting revisits)
 *     per second on the bundled models, walks vs BFS expansion rate.
 *     Walks keep no visited set, so their rate bounds how fast the
 *     falsifier covers instances too large to exhaust.
 *
 *  B. Counterexample quality — for every corpus mutant: raw walk
 *     trace length, shrunk length, shrink cost (replays + bridge
 *     search states), and the exhaustive-BFS counterexample length
 *     as the minimality yardstick (BFS traces are shortest-path by
 *     construction).
 */

#include <cstdio>

#include "verif/explorer.hpp"
#include "verif/models/mutants.hpp"
#include "verif/random_walk.hpp"
#include "verif/shrink.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

void
walkThroughput()
{
    std::printf("[A] walk throughput vs BFS expansion "
                "(bundled models, walk budget 64 x 512 @ seed 1)\n");
    std::printf("  %-22s %12s %12s %10s\n", "model", "walk st/s",
                "bfs st/s", "bfs states");
    for (const BundledModel &b : bundledModels()) {
        ModelShape shape;
        TransitionSystem ts = b.build(shape);

        WalkOptions wopt;
        wopt.walks = 64;
        wopt.depth = 512;
        wopt.seed = 1;
        const WalkResult w = walkExplore(ts, wopt);

        const ExploreResult r =
            explore(ts, ExploreLimits{5'000'000, 60.0}, false, false);

        std::printf("  %-22s %12.0f %12.0f %10llu\n", b.name.c_str(),
                    w.seconds > 0.0 ? static_cast<double>(w.stepsTaken) /
                                          w.seconds
                                    : 0.0,
                    r.seconds > 0.0
                        ? static_cast<double>(r.statesExplored) /
                              r.seconds
                        : 0.0,
                    static_cast<unsigned long long>(r.statesExplored));
    }
}

void
shrinkQuality()
{
    std::printf("\n[B] counterexample quality per corpus mutant "
                "(documented budgets)\n");
    std::printf("  %-34s %5s %7s %5s %8s %8s\n", "mutant", "raw",
                "shrunk", "bfs", "replays", "search");
    double rawSum = 0.0, shrunkSum = 0.0, bfsSum = 0.0;
    std::size_t counted = 0;
    for (const Mutant &m : mutantRegistry()) {
        ModelShape shape;
        TransitionSystem ts = m.build(shape);

        WalkOptions wopt;
        wopt.walks = m.budgetWalks;
        wopt.depth = m.budgetDepth;
        wopt.seed = m.budgetSeed;
        const WalkResult w = walkExplore(ts, wopt);
        if (w.status != VerifStatus::InvariantViolated) {
            std::printf("  %-34s MISSED by walker\n", m.name.c_str());
            continue;
        }
        const ShrinkResult s =
            shrinkTrace(ts, w.trace, w.violatedInvariant);
        const ExploreResult r =
            explore(ts, ExploreLimits{5'000'000, 60.0});

        std::printf("  %-34s %5zu %7zu %5zu %8llu %8llu\n",
                    m.name.c_str(), s.rawLength, s.shrunkLength,
                    r.trace.size(),
                    static_cast<unsigned long long>(s.replays),
                    static_cast<unsigned long long>(s.searchStates));
        rawSum += static_cast<double>(s.rawLength);
        shrunkSum += static_cast<double>(s.shrunkLength);
        bfsSum += static_cast<double>(r.trace.size());
        ++counted;
    }
    if (counted) {
        const double n = static_cast<double>(counted);
        std::printf("  mean raw %.1f -> shrunk %.1f (reduction %.0f%%)"
                    "   BFS minimum %.1f\n",
                    rawSum / n, shrunkSum / n,
                    100.0 * (1.0 - shrunkSum / rawSum), bfsSum / n);
    }
}

} // namespace

int
main()
{
    walkThroughput();
    shrinkQuality();
    return 0;
}
