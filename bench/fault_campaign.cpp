/**
 * @file
 * Fault campaigns: recovery-latency and goodput-degradation curves
 * for the blocking-directory protocols under injected transport
 * faults. Two sweeps per protocol on the 2-cores-per-L2 organization:
 *
 *  - benign faults (duplicates + heavy-tail delay spikes), which the
 *    at-most-once delivery layer must absorb with no retries at all;
 *  - message drops, which exercise the timeout/backoff reissue path
 *    end to end.
 *
 * Goodput is the fault-free runtime divided by the faulted runtime
 * (1.00 = no slowdown); recovery latency is the mean extra time a
 * missed transaction spent before its reissue completed.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/sim_runner.hpp"
#include "sim/logging.hpp"
#include "workload/workload.hpp"

namespace
{

using namespace neo;

struct SweepPoint
{
    double rate = 0.0;
    unsigned runs = 0;
    unsigned recovered = 0; ///< finished, but needed >= 1 reissue
    unsigned deadlocked = 0;
    unsigned violated = 0;
    double meanRecoveryLatency = 0.0; ///< ticks, over recovered txns
    double goodput = 0.0;             ///< baseline runtime / runtime
};

SweepPoint
runPoint(const HierarchySpec &spec, const WorkloadParams &wl,
         double rate, bool drops, unsigned seeds, Tick baseline)
{
    SweepPoint pt;
    pt.rate = rate;
    double latency_sum = 0.0;
    std::uint64_t latency_txns = 0;
    double goodput_sum = 0.0;
    for (unsigned s = 0; s < seeds; ++s) {
        RunConfig cfg;
        cfg.opsPerCore = 400;
        if (drops) {
            cfg.faults.dropProb = rate;
        } else {
            cfg.faults.dupProb = rate;
            cfg.faults.delayProb = rate;
        }
        cfg.faults.seed = 100 + s;
        const RunResult r = runOnce(spec, wl, cfg);
        ++pt.runs;
        if (!r.violations.empty())
            ++pt.violated;
        else if (r.deadlocked)
            ++pt.deadlocked;
        else if (r.retries > 0)
            ++pt.recovered;
        latency_sum += r.recoveryLatencyMean *
                       static_cast<double>(r.recoveredTxns);
        latency_txns += r.recoveredTxns;
        if (r.runtime > 0)
            goodput_sum += static_cast<double>(baseline) /
                           static_cast<double>(r.runtime);
    }
    if (latency_txns != 0)
        pt.meanRecoveryLatency =
            latency_sum / static_cast<double>(latency_txns);
    pt.goodput = goodput_sum / static_cast<double>(seeds);
    return pt;
}

void
printSweep(const char *title, const std::vector<SweepPoint> &points)
{
    std::printf("%s\n", title);
    std::printf("  %-8s %-10s %-10s %-10s %-9s %s\n", "rate",
                "recovered", "deadlock", "violated", "goodput",
                "recovery (ticks)");
    for (const auto &pt : points) {
        std::printf("  %-8.3f %u/%-8u %-10u %-10u %-9.3f %.0f\n",
                    pt.rate, pt.recovered, pt.runs, pt.deadlocked,
                    pt.violated, pt.goodput, pt.meanRecoveryLatency);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    const double rates[] = {0.0, 0.002, 0.005, 0.01, 0.02};
    const unsigned seeds = 5;
    const WorkloadParams wl = parsecProfile("canneal");

    std::printf("==== Fault campaigns: 2perL2 organization, canneal, "
                "%u fault seeds/point ====\n\n",
                seeds);

    bool all_ok = true;
    for (ProtocolVariant v :
         {ProtocolVariant::NeoMESI, ProtocolVariant::TreeMSI}) {
        const HierarchySpec spec = organizationByName("2perL2", v);

        RunConfig base;
        base.opsPerCore = 400;
        const Tick baseline = runOnce(spec, wl, base).runtime;

        std::vector<SweepPoint> benign, lossy;
        for (double rate : rates) {
            benign.push_back(runPoint(spec, wl, rate, /*drops=*/false,
                                      seeds, baseline));
            lossy.push_back(runPoint(spec, wl, rate, /*drops=*/true,
                                     seeds, baseline));
        }
        std::printf("-- %s, %s (fault-free runtime %llu) --\n",
                    protocolName(v), spec.name.c_str(),
                    static_cast<unsigned long long>(baseline));
        printSweep("duplicates + delay spikes:", benign);
        printSweep("drops:", lossy);
        for (const auto &pts : {benign, lossy})
            for (const auto &pt : pts)
                if (pt.violated != 0 || pt.deadlocked != 0)
                    all_ok = false;
    }
    std::printf("campaigns %s\n",
                all_ok ? "clean: every faulted run recovered"
                       : "FAILED: deadlocks or violations above");
    return all_ok ? 0 : 1;
}
