/**
 * @file
 * Figure 10: runtimes with the Skewed organization (Fig. 7A: 16 cores
 * with private L2s plus 16 cores behind one shared L2), normalized to
 * NS-MOESI.
 */

#include "eval_common.hpp"

int
main()
{
    return neo::bench::runFigure("Figure 10", "skewed");
}
