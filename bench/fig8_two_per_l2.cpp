/**
 * @file
 * Figure 8: runtimes with the "2 Cores per L2" organization (Fig. 7B),
 * normalized to NS-MOESI.
 */

#include "eval_common.hpp"

int
main()
{
    return neo::bench::runFigure("Figure 8", "2perL2");
}
