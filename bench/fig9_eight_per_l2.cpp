/**
 * @file
 * Figure 9: runtimes with the "8 Cores per L2" organization (Fig. 7C),
 * normalized to NS-MOESI.
 */

#include "eval_common.hpp"

int
main()
{
    return neo::bench::runFigure("Figure 9", "8perL2");
}
