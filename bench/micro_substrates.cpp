/**
 * @file
 * google-benchmark microbenchmarks for the substrates: event-queue
 * throughput, cache-array lookups, RNG, network delivery, whole
 * protocol transactions, and model-checker state throughput.
 */

#include <benchmark/benchmark.h>

#include "core/sim_runner.hpp"
#include "mem/cache_array.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"

using namespace neo;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<Tick>(i % 97), [] {});
        q.run();
        benchmark::DoNotOptimize(q.processedCount());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheArrayFind(benchmark::State &state)
{
    CacheArray<int> cache(CacheGeometry{64 * 1024, 4, 64, 1});
    for (Addr a = 0; a < 512 * 64; a += 64)
        if (cache.hasFreeWay(a))
            cache.allocate(a);
    Random rng(1);
    for (auto _ : state) {
        const Addr a = rng.below(512) * 64;
        benchmark::DoNotOptimize(cache.find(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayFind);

void
BM_RandomDraw(benchmark::State &state)
{
    Random rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomDraw);

void
BM_ProtocolTransaction(benchmark::State &state)
{
    // One full write-ownership migration between two subtrees.
    setQuiet(true);
    EventQueue eventq;
    HierarchySpec spec;
    spec.name = "bm";
    spec.protocol = ProtocolVariant::NeoMESI;
    spec.root.geom = CacheGeometry{64 * 1024, 8, 64, 4};
    for (int i = 0; i < 2; ++i) {
        TreeNodeSpec l2{CacheGeometry{16 * 1024, 4, 64, 2}, {}};
        l2.children.push_back(
            TreeNodeSpec{CacheGeometry{4 * 1024, 2, 64, 1}, {}});
        spec.root.children.push_back(l2);
    }
    System system(spec, eventq);
    unsigned turn = 0;
    for (auto _ : state) {
        bool done = false;
        system.l1(turn % 2).coreRequest(0x1000, true,
                                        [&done] { done = true; });
        eventq.run();
        benchmark::DoNotOptimize(done);
        ++turn;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolTransaction);

void
BM_ModelCheckerThroughput(benchmark::State &state)
{
    using namespace neo::verif;
    for (auto _ : state) {
        ModelShape shape;
        TransitionSystem ts =
            buildClosedModel(3, VerifFeatures::neoMESI(), shape);
        const ExploreResult r =
            explore(ts, ExploreLimits{1'000'000, 30.0}, false, false);
        benchmark::DoNotOptimize(r.statesExplored);
        state.counters["states"] =
            static_cast<double>(r.statesExplored);
    }
}
BENCHMARK(BM_ModelCheckerThroughput)->Unit(benchmark::kMillisecond);

/**
 * States/sec vs worker-thread count on the largest bundled flat
 * closed config (NeoMESI, N=6: ~378k canonical states). The JSON
 * output carries "states" (must be identical across thread counts —
 * the differential guarantee) and the "states_per_sec" rate the bench
 * trajectory tracks for parallel speedup.
 *
 * The second argument selects the frontier: 0 = lock-free MPMC ring
 * (the default engine), 1 = the mutex+deque baseline kept for A/B
 * comparison. CI uploads the JSON so ring-vs-mutex rates are
 * inspectable per run.
 */
void
BM_CheckerParallelScaling(benchmark::State &state)
{
    using namespace neo::verif;
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(6, VerifFeatures::neoMESI(), shape);
    ExploreLimits lim{2'000'000, 120.0};
    lim.threads = static_cast<unsigned>(state.range(0));
    lim.frontier = state.range(1) == 0 ? FrontierKind::Ring
                                       : FrontierKind::Mutex;
    std::uint64_t states = 0;
    double seconds = 0.0;
    for (auto _ : state) {
        const ExploreResult r = explore(ts, lim, false, false);
        states = r.statesExplored;
        seconds += r.seconds;
        benchmark::DoNotOptimize(r.statesExplored);
    }
    state.counters["threads"] = static_cast<double>(lim.threads);
    state.counters["ring"] =
        lim.frontier == FrontierKind::Ring ? 1.0 : 0.0;
    state.counters["states"] = static_cast<double>(states);
    state.counters["states_per_sec"] =
        seconds > 0.0 ? static_cast<double>(states) *
                            static_cast<double>(state.iterations()) /
                            seconds
                      : 0.0;
}
BENCHMARK(BM_CheckerParallelScaling)
    ->ArgNames({"threads", "mutex"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_FullSimulationSmall(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        HierarchySpec spec =
            twoCoresPerL2Org(ProtocolVariant::NeoMESI);
        WorkloadParams wl = parsecProfile("swaptions");
        RunConfig cfg;
        cfg.opsPerCore = 200;
        cfg.checkCoherence = false;
        const RunResult r = runOnce(spec, wl, cfg);
        benchmark::DoNotOptimize(r.runtime);
    }
    state.SetItemsProcessed(state.iterations() * 200 * 32);
}
BENCHMARK(BM_FullSimulationSmall)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
