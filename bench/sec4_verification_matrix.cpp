/**
 * @file
 * The Section 4 verification study, reproduced at laptop scale.
 *
 * The paper iteratively added features to a baseline MSI tree
 * directory protocol and attempted push-button verification at each
 * step (Cubicle, 2-day / 50 GB bounds; the original methodology
 * exhausted >200 GB on the baseline). We reproduce the shape of those
 * findings with our explicit-state checker and scaled bounds:
 *
 *   - baseline MSI with the ORIGINAL methodology  -> EXCEEDS BOUNDS
 *   - baseline MSI with the MODIFIED methodology  -> VERIFIED
 *   - + inclusive hierarchy / explicit evictions  -> VERIFIED
 *   - + E state (NeoMESI)                         -> VERIFIED
 *   - + O state                                   -> EXCEEDS BOUNDS
 *   - non-blocking directories                    -> UNSUPPORTED
 *     (ordered buffers are beyond the checker's data structures,
 *      exactly as §4.2.2 reports for Cubicle)
 *   - non-sibling forwarding                      -> COMPOSITION FAILS
 *     (prohibited by the theory itself, §4.2.1)
 *
 * Finally the push-button parametric sweep: NeoMESI's closed and open
 * systems converge at a small cutoff, giving the paper's headline —
 * verified for every number of nodes and arity.
 */

#include <cstdio>
#include <string>
#include <thread>

#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/parametric.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

// Scaled from the paper's 2-day / 50 GB Cubicle budget.
constexpr std::uint64_t boundStates = 800'000;
constexpr double boundSeconds = 90.0;
constexpr std::size_t matrixN = 4; // leaves per flat system

void
printRow(const std::string &label, const ExploreResult &r)
{
    std::printf("  %-34s %-18s %9llu states  %6.2fs  %6.1f MB\n",
                label.c_str(), verifStatusName(r.status),
                static_cast<unsigned long long>(r.statesExplored),
                r.seconds,
                static_cast<double>(r.memoryBytes) / (1024.0 * 1024.0));
}

ExploreResult
runOpen(const VerifFeatures &f, CompositionMethod m)
{
    ModelShape shape;
    TransitionSystem ts = buildOpenModel(matrixN, f, m, shape);
    return explore(ts, ExploreLimits{boundStates, boundSeconds}, false,
                   false);
}

ExploreResult
runClosed(const VerifFeatures &f)
{
    ModelShape shape;
    TransitionSystem ts = buildClosedModel(matrixN, f, shape);
    return explore(ts, ExploreLimits{boundStates, boundSeconds}, false,
                   false);
}

} // namespace

int
main()
{
    std::printf("==== Section 4: iterative feature/methodology study "
                "====\n");
    std::printf("(flat systems with N=%zu leaves; bounds scaled to "
                "%llu states / %.0fs per check)\n\n",
                matrixN,
                static_cast<unsigned long long>(boundStates),
                boundSeconds);

    // --- §2: why NeoGerman "belies the actual verification
    // scalability" — the toy German protocol is orders of magnitude
    // smaller than a realistic protocol at the same instance size.
    std::printf("[§2] toy vs. realistic protocol state spaces "
                "(N=%zu):\n",
                matrixN);
    {
        ModelShape shape;
        printRow("German (NeoGerman's subprotocol)",
                 explore(buildGermanModel(matrixN, shape),
                         ExploreLimits{boundStates, boundSeconds},
                         false, false));
        printRow("NeoMESI open system",
                 runOpen(VerifFeatures::neoMESI(),
                         CompositionMethod::None));
        const auto gp = verifyParametric(
            germanModelFactory(), 1, 6,
            ExploreLimits{boundStates, boundSeconds});
        std::printf("  German parametric: %s — %s\n\n",
                    verifStatusName(gp.status), gp.detail.c_str());
    }

    // --- 4.1: the original methodology only scales to toy protocols
    // (NeoGerman); on a realistic protocol it exhausts the budget
    // (the paper's >200 GB observation), while the modified
    // (embedded-leaf) methodology handles it.
    std::printf("[4.1] Safe Composition Invariant methodology:\n");
    std::printf(" toy-scale baseline MSI\n");
    printRow("original (alternating product)",
             runOpen(VerifFeatures::baselineMSI(),
                     CompositionMethod::Original));
    printRow("modified (embedded leaf)",
             runOpen(VerifFeatures::baselineMSI(),
                     CompositionMethod::Modified));
    std::printf(" realistic NeoMESI feature set\n");
    printRow("original (alternating product)",
             runOpen(VerifFeatures::neoMESI(),
                     CompositionMethod::Original));
    printRow("modified (embedded leaf)",
             runOpen(VerifFeatures::neoMESI(),
                     CompositionMethod::Modified));

    // --- 4.2: iteratively add features under the modified
    // methodology; report closed safety + open composition.
    std::printf("\n[4.2] Feature ladder under the modified "
                "methodology:\n");
    struct Step
    {
        const char *name;
        VerifFeatures f;
    };
    const Step ladder[] = {
        {"MSI baseline", VerifFeatures::baselineMSI()},
        {"+ inclusive/evictions", VerifFeatures::inclusiveMSI()},
        {"+ E state  (= NeoMESI)", VerifFeatures::neoMESI()},
        {"+ O state", VerifFeatures::withOwned()},
    };
    for (const Step &step : ladder) {
        std::printf(" %s\n", step.name);
        printRow("closed system (Antecedent 1)", runClosed(step.f));
        printRow("open system   (Antecedent 2)",
                 runOpen(step.f, CompositionMethod::Modified));
    }

    std::printf(
        " non-blocking directories\n"
        "  %-34s %-18s (ordered message buffers exceed the checker's\n"
        "  %-34s %-18s  data structures, as with Cubicle, see §4.2.2)\n",
        "", "UNSUPPORTED", "", "");

    // --- 4.2.1: non-sibling forwarding violates the theory.
    std::printf(" non-sibling forwarding (NS-MESI)\n");
    {
        VerifFeatures f = VerifFeatures::neoMESI();
        f.nonSiblingFwd = true;
        ModelShape shape;
        TransitionSystem ts = buildOpenModel(
            matrixN, f, CompositionMethod::Modified, shape);
        const ExploreResult r = explore(
            ts, ExploreLimits{boundStates, boundSeconds}, false, true);
        printRow("open system   (Antecedent 2)", r);
        if (r.status == VerifStatus::InvariantViolated) {
            std::printf("  violated: %s — counterexample (%zu steps), "
                        "last steps:\n",
                        r.violatedInvariant.c_str(), r.trace.size());
            const std::size_t start =
                r.trace.size() > 4 ? r.trace.size() - 4 : 0;
            for (std::size_t i = start; i < r.trace.size(); ++i)
                std::printf("    %zu: %s\n", i, r.trace[i].c_str());
        }
    }

    // --- push-button parametric verification of NeoMESI.
    std::printf("\n[parametric] NeoMESI for ALL tree configurations "
                "(view-abstraction cutoff):\n");
    {
        ExploreLimits lim{8'000'000, 600.0};
        const ParametricResult closed = verifyParametric(
            closedModelFactory(VerifFeatures::neoMESI()), 1, 7, lim);
        std::printf("  closed system: %s; %s\n",
                    verifStatusName(closed.status),
                    closed.detail.c_str());
        const ParametricResult open = verifyParametric(
            openModelFactory(VerifFeatures::neoMESI(),
                             CompositionMethod::Modified),
            1, 7, lim);
        std::printf("  open system:   %s; %s\n",
                    verifStatusName(open.status), open.detail.c_str());
        std::printf(
            "  => By the Neo theory's antecedents (§2.5), NeoMESI is "
            "safe in every tree\n     configuration: any arity at any "
            "node, any depth, balanced or not.\n");

        // The +O protocol's sweep needs instance sizes whose state
        // spaces blow the budget — the §4.2.2 conclusion.
        const ParametricResult owned = verifyParametric(
            openModelFactory(VerifFeatures::withOwned(),
                             CompositionMethod::Modified),
            1, 7, ExploreLimits{boundStates * 4, boundSeconds});
        std::printf("\n  + O state sweep: %s (%s) — the O state "
                    "remains out of reach of the\n    push-button "
                    "bounds, as the paper found.\n",
                    verifStatusName(owned.status),
                    owned.detail.c_str());
    }

    // --- serial vs sharded-parallel exploration on the matrix's
    // largest verified instance. The fixpoint state count must be
    // identical for every thread count (the differential guarantee);
    // wall-clock improves with threads on multicore hardware.
    std::printf("\n[parallel] serial vs sharded exploration, NeoMESI "
                "open N=%zu (%u hardware threads):\n",
                matrixN, std::thread::hardware_concurrency());
    {
        ModelShape shape;
        TransitionSystem ts = buildOpenModel(
            matrixN, VerifFeatures::neoMESI(),
            CompositionMethod::Modified, shape);
        ExploreLimits lim{boundStates, boundSeconds};
        const ExploreResult serial = explore(ts, lim, false, false);
        printRow("1 thread (sequential BFS)", serial);
        for (unsigned t : {2u, 4u}) {
            lim.threads = t;
            const ExploreResult par = explore(ts, lim, false, false);
            char label[64];
            std::snprintf(label, sizeof label,
                          "%u threads (speedup %.2fx)%s", t,
                          par.seconds > 0.0
                              ? serial.seconds / par.seconds
                              : 0.0,
                          par.statesExplored == serial.statesExplored
                              ? ""
                              : " STATE-COUNT MISMATCH");
            printRow(label, par);
        }
    }
    return 0;
}
