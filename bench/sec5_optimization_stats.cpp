/**
 * @file
 * Section 5.3's optimization-utilization statistics: how often are
 * the theory/tool-prohibited optimizations actually exercised?
 *
 * The paper reports, aggregated over all benchmarks: ~1.5% of L1
 * misses satisfied via non-sibling communication under NS-MESI, ~2%
 * under NS-MOESI, and blocked-request fractions of ~0.4% at the L2s
 * and ~0.7% at the L3 — which is why the optimizations buy almost
 * nothing (Figures 8-10).
 */

#include <cstdio>

#include "core/sim_runner.hpp"
#include "workload/workload.hpp"

using namespace neo;

int
main()
{
    setQuiet(true);
    constexpr std::uint64_t ops = 3000;
    const char *orgs[] = {"2perL2", "8perL2", "skewed"};

    std::printf("==== Section 5.3: utilization of the prohibited "
                "optimizations ====\n");
    std::printf("(aggregated over the 7 PARSEC-like benchmarks and "
                "all 3 organizations)\n\n");

    struct Agg
    {
        std::uint64_t misses = 0, upgrades = 0, ns = 0;
        std::uint64_t l2req = 0, l2blk = 0, l3req = 0, l3blk = 0;
    };

    for (ProtocolVariant v :
         {ProtocolVariant::NeoMESI, ProtocolVariant::NSMESI,
          ProtocolVariant::NSMOESI}) {
        Agg agg;
        for (const char *org : orgs) {
            for (const auto &wl : parsecSuite()) {
                HierarchySpec spec = organizationByName(org, v);
                RunConfig cfg;
                cfg.opsPerCore = ops;
                cfg.seed = 7;
                const RunResult r = runOnce(spec, wl, cfg);
                agg.misses += r.l1Misses;
                agg.upgrades += r.l1Upgrades;
                agg.ns += r.nonSiblingData;
                agg.l2req += r.l2Requests;
                agg.l2blk += r.l2Blocked;
                agg.l3req += r.l3Requests;
                agg.l3blk += r.l3Blocked;
            }
        }
        const double denom =
            static_cast<double>(agg.misses + agg.upgrades);
        std::printf("%-9s  non-sibling data transfers: %6.2f%% of L1 "
                    "misses\n",
                    protocolName(v),
                    denom > 0 ? 100.0 * static_cast<double>(agg.ns) /
                                    denom
                              : 0.0);
        std::printf("           blocked arrivals: %5.2f%% at L2 "
                    "directories, %5.2f%% at the L3\n",
                    agg.l2req ? 100.0 *
                                    static_cast<double>(agg.l2blk) /
                                    static_cast<double>(agg.l2req)
                              : 0.0,
                    agg.l3req ? 100.0 *
                                    static_cast<double>(agg.l3blk) /
                                    static_cast<double>(agg.l3req)
                              : 0.0);
    }

    std::printf("\nShape check (paper): NeoMESI uses no non-sibling "
                "transfers by construction;\nNS-MESI/NS-MOESI use them "
                "on only a few percent of misses, and blocked\n"
                "fractions stay below ~1%% — the prohibited "
                "optimizations are rarely exercised.\n");
    return 0;
}
