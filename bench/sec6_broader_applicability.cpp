/**
 * @file
 * Section 6: modeling systems that are not obvious fits as Neo
 * Systems. Each subsection's modeling trick is demonstrated as a
 * small, machine-checked transition system:
 *
 *  6.1 Heterogeneous protocols — leaves carry the union of all leaf
 *      behaviors and are initialized by their internal node; the
 *      checker does not traverse the superfluous partition.
 *  6.2 Snooping protocols — the internal node models the ordered
 *      broadcast bus: collect, order, then deliver to every leaf
 *      through a string of transitions.
 *  6.3 Ring protocols — unidirectional communication is encoded as
 *      leaf-state successor indices plus an ordering-point flag,
 *      instantiated by the internal node's initial transitions.
 *  6.5 Banked shared caches — one independent Neo hierarchy per bank;
 *      verifying each bank suffices, and the product's state count
 *      demonstrates why one does not model them jointly.
 *
 *  (6.4, non-inclusive hierarchies, is a statement about which state
 *  must be inclusive — metadata, not data — and is exercised by the
 *  main NeoMESI models, whose safety invariants never consult data
 *  residency.)
 */

#include <cstdio>

#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

/** Alternating flavor assignment used by heterogeneousDemo's init. */
std::uint8_t
fold_union_flavor(std::size_t i)
{
    return static_cast<std::uint8_t>(i % 2);
}

/**
 * 6.1: two leaf "flavors" (an invalidate-style client and a
 * write-through-style client) folded into one leaf definition; the
 * root's first transitions assign flavors. Safety: never two leaves
 * with write permission.
 */
ExploreResult
heterogeneousDemo(std::size_t n, bool fold_union)
{
    TransitionSystem ts;
    const auto inited = ts.addVar("inited", 0);
    struct LV
    {
        std::size_t flavor, st;
    };
    std::vector<LV> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        L[i].flavor = ts.addVar("flavor" + std::to_string(i), 0);
        L[i].st = ts.addVar("st" + std::to_string(i), 0); // 0=I,1=S,2=M
    }
    const auto tok = ts.addVar("writeToken", n); // holder index or n

    // Root initialization: assign alternating flavors (6.1's "the
    // directories initialize the leaves they are composed with").
    ts.addRule(
        "init", ActionKind::Internal,
        [inited](const VState &s) { return s[inited] == 0; },
        [inited, L, n](VState &s) {
            s[inited] = 1;
            for (std::size_t i = 0; i < n; ++i)
                s[L[i].flavor] = fold_union_flavor(i);
        });

    for (std::size_t i = 0; i < n; ++i) {
        const LV me = L[i];
        // Flavor-0 behavior: acquire exclusive via the token.
        ts.addRule(
            "acquireM_" + std::to_string(i), ActionKind::Internal,
            [me, inited, tok, n, fold_union](const VState &s) {
                if (!s[inited] || s[tok] != n)
                    return false;
                return !fold_union || s[me.flavor] == 0;
            },
            [me, tok, i](VState &s) {
                s[tok] = static_cast<std::uint8_t>(i);
                s[me.st] = 2;
            });
        ts.addRule(
            "releaseM_" + std::to_string(i), ActionKind::Internal,
            [me, i, tok](const VState &s) {
                return s[tok] == i && s[me.st] == 2;
            },
            [me, tok, n](VState &s) {
                s[tok] = static_cast<std::uint8_t>(n);
                s[me.st] = 0;
            });
        // Flavor-1 behavior: read-only shared accesses (write-through
        // clients never take the token).
        ts.addRule(
            "readS_" + std::to_string(i), ActionKind::Internal,
            [me, inited, fold_union](const VState &s) {
                if (!s[inited] || s[me.st] != 0)
                    return false;
                return !fold_union || s[me.flavor] == 1;
            },
            [me](VState &s) { s[me.st] = 1; });
        ts.addRule(
            "dropS_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) { return s[me.st] == 1; },
            [me](VState &s) { s[me.st] = 0; });
    }

    ts.addInvariant("SingleWriter", [L, n](const VState &s) {
        unsigned writers = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (s[L[i].st] == 2)
                ++writers;
        return writers <= 1;
    });

    return explore(ts, ExploreLimits{5'000'000, 60.0});
}

/** 6.2: an ordered-broadcast bus modeled inside the root node. */
ExploreResult
snoopingDemo(std::size_t n)
{
    TransitionSystem ts;
    // bus: 0 idle; 1..n: broadcasting owner grant for leaf (v-1)
    const auto bus = ts.addVar("bus", 0);
    const auto deliverIdx = ts.addVar("deliverIdx", 0);
    struct LV
    {
        std::size_t st, req;
    };
    std::vector<LV> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        L[i].st = ts.addVar("st" + std::to_string(i), 0); // 0=I,2=M
        L[i].req = ts.addVar("req" + std::to_string(i), 0);
    }

    for (std::size_t i = 0; i < n; ++i) {
        const LV me = L[i];
        ts.addRule(
            "request_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.st] == 0 && s[me.req] == 0;
            },
            [me](VState &s) { s[me.req] = 1; });
        // The bus (root) picks one pending request: the ordering point.
        ts.addRule(
            "bus_order_" + std::to_string(i), ActionKind::Internal,
            [me, bus](const VState &s) {
                return s[bus] == 0 && s[me.req] == 1;
            },
            [me, bus, deliverIdx, i](VState &s) {
                s[me.req] = 0;
                s[bus] = static_cast<std::uint8_t>(i + 1);
                s[deliverIdx] = 0;
            });
    }
    // Broadcast delivery: a string of transitions, one per leaf, in
    // index order (every controller snoops the same total order).
    ts.addRule(
        "bus_deliver", ActionKind::Internal,
        [bus, deliverIdx, n](const VState &s) {
            return s[bus] != 0 && s[deliverIdx] < n;
        },
        [bus, deliverIdx, L](VState &s) {
            const std::size_t j = s[deliverIdx];
            const std::size_t winner = s[bus] - 1u;
            s[L[j].st] = (j == winner) ? 2 : 0; // grant or snoop-inv
            ++s[deliverIdx];
        });
    ts.addRule(
        "bus_done", ActionKind::Internal,
        [bus, deliverIdx, n](const VState &s) {
            return s[bus] != 0 && s[deliverIdx] == n;
        },
        [bus](VState &s) { s[bus] = 0; });

    ts.addInvariant("SingleWriter", [L, n, bus](const VState &s) {
        if (s[bus] != 0)
            return true; // mid-broadcast
        unsigned writers = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (s[L[i].st] == 2)
                ++writers;
        return writers <= 1;
    });
    return explore(ts, ExploreLimits{5'000'000, 60.0});
}

/** 6.3: a unidirectional ring with an ordering point, with successor
 *  indices instantiated by the internal node's initial transition. */
ExploreResult
ringDemo(std::size_t n)
{
    TransitionSystem ts;
    const auto inited = ts.addVar("inited", 0);
    struct LV
    {
        std::size_t next, op, tok;
    };
    std::vector<LV> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        L[i].next = ts.addVar("next" + std::to_string(i), 0);
        L[i].op = ts.addVar("op" + std::to_string(i), 0);
        L[i].tok = ts.addVar("tok" + std::to_string(i), 0);
    }
    ts.addRule(
        "init", ActionKind::Internal,
        [inited](const VState &s) { return s[inited] == 0; },
        [inited, L, n](VState &s) {
            s[inited] = 1;
            for (std::size_t i = 0; i < n; ++i) {
                s[L[i].next] =
                    static_cast<std::uint8_t>((i + 1) % n);
                s[L[i].op] = (i == 0) ? 1 : 0; // leaf 0 orders
            }
            s[L[0].tok] = 1; // the ordering point holds the token
        });
    for (std::size_t i = 0; i < n; ++i) {
        const LV me = L[i];
        ts.addRule(
            "pass_" + std::to_string(i), ActionKind::Internal,
            [me, inited](const VState &s) {
                return s[inited] && s[me.tok] == 1;
            },
            [me, L](VState &s) {
                s[me.tok] = 0;
                s[L[s[me.next]].tok] = 1; // unidirectional send
            });
    }
    ts.addInvariant("OneToken", [L, n, inited](const VState &s) {
        if (!s[inited])
            return true;
        unsigned toks = 0;
        for (std::size_t i = 0; i < n; ++i)
            toks += s[L[i].tok];
        return toks == 1;
    });
    return explore(ts, ExploreLimits{5'000'000, 60.0});
}

} // namespace

int
main()
{
    std::printf("==== Section 6: modeling diverse systems as Neo "
                "Systems ====\n\n");

    std::printf("[6.1] Heterogeneous protocols (union leaves, "
                "directory-initialized flavors):\n");
    const auto het = heterogeneousDemo(4, true);
    const auto hom = heterogeneousDemo(4, false);
    std::printf("  union leaves, flavored:   %-10s %7llu states\n",
                verifStatusName(het.status),
                static_cast<unsigned long long>(het.statesExplored));
    std::printf("  same leaves, unflavored:  %-10s %7llu states\n",
                verifStatusName(hom.status),
                static_cast<unsigned long long>(hom.statesExplored));
    std::printf("  => the superfluous partition is never traversed: "
                "the flavored system is\n     no larger than its "
                "homogeneous projection (paper §6.1).\n\n");

    std::printf("[6.2] Snooping: the bus as an ordering point inside "
                "the root node:\n");
    for (std::size_t n : {2u, 3u, 4u}) {
        const auto r = snoopingDemo(n);
        std::printf("  N=%zu leaves: %-10s %7llu states\n", n,
                    verifStatusName(r.status),
                    static_cast<unsigned long long>(r.statesExplored));
    }

    std::printf("\n[6.3] Ring: successor indices + ordering point "
                "instantiated by the internal node:\n");
    for (std::size_t n : {2u, 4u, 6u}) {
        const auto r = ringDemo(n);
        std::printf("  N=%zu leaves: %-10s %7llu states\n", n,
                    verifStatusName(r.status),
                    static_cast<unsigned long long>(r.statesExplored));
    }

    std::printf("\n[6.5] Banked shared caches: independent hierarchies "
                "per bank:\n");
    {
        ModelShape shape;
        const auto one = explore(
            buildClosedModel(3, VerifFeatures::neoMESI(), shape),
            ExploreLimits{10'000'000, 120.0}, false, false);
        std::printf("  one bank (closed NeoMESI, N=3): %-10s %llu "
                    "states\n",
                    verifStatusName(one.status),
                    static_cast<unsigned long long>(one.statesExplored));
        std::printf("  two banks jointly would be ~%.2e states (the "
                    "product); verifying each\n  independent bank "
                    "once suffices (paper §6.5).\n",
                    static_cast<double>(one.statesExplored) *
                        static_cast<double>(one.statesExplored));
    }

    std::printf("\n[6.4] Non-inclusive hierarchies: the Neo "
                "invariants consult only permissions\n  and sharer "
                "metadata — the NeoMESI models in "
                "sec4_verification_matrix never\n  read data "
                "residency, so data may be non-inclusive while "
                "metadata remains\n  inclusive (paper §6.4).\n");
    return 0;
}
