/**
 * @file
 * Service-substrate throughput: what do the crash-only building
 * blocks cost per job and per routed state?
 *
 * Three measurements, all on the hot paths the distributed service
 * adds around the explorer:
 *
 *  1. Journal append rate — every queue transition is written in full
 *     and fsync'd before it is acknowledged, so submissions are
 *     bounded by the fsync rate of the state directory's filesystem.
 *     Measured with realistic SUBMIT/START/DONE record sizes.
 *
 *  2. Frame codec throughput — every state routed between shard
 *     owners crosses the wire protocol (CRC per frame), so encode +
 *     feed + decode throughput bounds the mesh; measured at the
 *     actual batched-States frame size the workers use.
 *
 *  3. Shard balance — the partition is fp mod W over stateHash; the
 *     whole recovery story (reshard to survivors) assumes the hash
 *     spreads real protocol states evenly. Explores german and
 *     reports the min/max shard occupancy for W in {2,4,8}.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "verif/checkpoint.hpp"
#include "verif/explorer.hpp"
#include "verif/models/german.hpp"
#include "verif/service/job_queue.hpp"
#include "verif/service/wire.hpp"
#include "verif/state_store.hpp"

using namespace neo;
using neo::verif::buildGermanModel;

namespace
{

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/neo_service_bench_XXXXXX";
    if (!mkdtemp(tmpl)) {
        std::perror("mkdtemp");
        std::exit(1);
    }
    return tmpl;
}

void
benchJournal(const std::string &dir)
{
    std::printf("journal append (write-all + fsync per record)\n");
    std::printf("%-10s %10s %9s %14s\n", "record", "appends",
                "seconds", "appends/sec");

    JobSpec spec;
    spec.features = "german";
    spec.n = 6;
    struct Case
    {
        const char *label;
        std::vector<std::uint8_t> body;
    };
    std::vector<Case> cases;
    {
        SnapshotWriter w;
        w.putU64(1);
        spec.encode(w);
        cases.push_back({"SUBMIT", w.take()});
    }
    {
        SnapshotWriter w;
        w.putU64(1);
        w.putU32(1);
        w.putU32(4);
        cases.push_back({"START", w.take()});
    }
    {
        SnapshotWriter w;
        w.putU64(1);
        JobResult res;
        res.states = 549880;
        res.transitions = 4433198;
        res.invariantChecks = 549880;
        res.seconds = 42.0;
        res.encode(w);
        cases.push_back({"DONE", w.take()});
    }

    constexpr int kAppends = 2000;
    for (const Case &c : cases) {
        JobJournal j;
        std::string err;
        const std::string path =
            dir + "/bench_" + c.label + ".neoj";
        if (!j.open(path, err)) {
            std::fprintf(stderr, "journal open: %s\n", err.c_str());
            std::exit(1);
        }
        const double t0 = nowSec();
        for (int i = 0; i < kAppends; ++i)
            j.append(kRecSubmit, c.body);
        const double dt = nowSec() - t0;
        std::printf("%-10s %10d %9.3f %14.0f\n", c.label, kAppends,
                    dt, kAppends / dt);
        std::remove(path.c_str());
    }
    std::printf("\n");

    // Group commit: the coordinator defers every fsync to the end of
    // the poll iteration, so a burst of B appends shares one flush
    // (acknowledgements still wait for it). The appends/sec ratio
    // against batch=1 is the headroom a submission storm gains.
    std::printf("journal append, group commit (one fsync per "
                "batch)\n");
    std::printf("%-10s %10s %9s %14s\n", "batch", "appends",
                "seconds", "appends/sec");
    const std::vector<std::uint8_t> &body = cases[0].body;
    for (const int batch : {1, 8, 64, 256}) {
        JobJournal j;
        std::string err;
        const std::string path = dir + "/bench_group.neoj";
        if (!j.open(path, err)) {
            std::fprintf(stderr, "journal open: %s\n", err.c_str());
            std::exit(1);
        }
        const double t0 = nowSec();
        int done = 0;
        while (done < kAppends) {
            const int n = std::min(batch, kAppends - done);
            for (int i = 0; i < n; ++i)
                j.append(kRecSubmit, body, /*sync=*/false);
            j.sync();
            done += n;
        }
        const double dt = nowSec() - t0;
        std::printf("%-10d %10d %9.3f %14.0f\n", batch, kAppends, dt,
                    kAppends / dt);
        std::remove(path.c_str());
    }
    std::printf("\n");
}

void
benchFrameCodec()
{
    std::printf("frame codec (encode + CRC + incremental decode)\n");
    std::printf("%-14s %10s %9s %12s %10s\n", "frame", "frames",
                "seconds", "frames/sec", "MB/sec");

    // The worker mesh ships states in batches of up to 128; german
    // N=6 states are 26 variables. Model that payload exactly:
    // [u32 count][count * (u64 hash + 26 bytes)].
    struct Case
    {
        const char *label;
        std::size_t statesPerFrame;
    };
    const Case cases[] = {{"States[1]", 1},
                          {"States[32]", 32},
                          {"States[128]", 128}};
    constexpr std::size_t kVars = 26;
    constexpr int kFrames = 200000;

    for (const Case &c : cases) {
        SnapshotWriter w;
        w.putU32(static_cast<std::uint32_t>(c.statesPerFrame));
        for (std::size_t s = 0; s < c.statesPerFrame; ++s) {
            w.putU64(0x9e3779b97f4a7c15ull * (s + 1));
            for (std::size_t v = 0; v < kVars; ++v)
                w.putU8(static_cast<std::uint8_t>(v));
        }
        const std::vector<std::uint8_t> body = w.take();

        const double t0 = nowSec();
        std::uint64_t bytes = 0;
        FrameReader reader;
        MsgType type;
        std::vector<std::uint8_t> out;
        for (int i = 0; i < kFrames; ++i) {
            const auto frame = encodeFrame(MsgType::States, body);
            bytes += frame.size();
            reader.feed(frame.data(), frame.size());
            if (!reader.next(type, out) || out.size() != body.size()) {
                std::fprintf(stderr, "codec roundtrip broke\n");
                std::exit(1);
            }
        }
        const double dt = nowSec() - t0;
        std::printf("%-14s %10d %9.3f %12.0f %10.1f\n", c.label,
                    kFrames, dt, kFrames / dt,
                    static_cast<double>(bytes) / dt / 1e6);
    }
    std::printf("\n");
}

void
benchShardBalance()
{
    std::printf("shard balance (german N=5, fp mod W occupancy)\n");
    std::printf("%-4s %10s %10s %10s %8s\n", "W", "states", "min",
                "max", "skew");

    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(5, shape);
    const std::size_t numVars = ts.numVars();
    std::vector<std::uint64_t> hashes;
    ExploreLimits lim;
    explore(ts, lim, false, false, [&](const VState &s) {
        hashes.push_back(stateHash(s.data(), numVars));
    });

    for (const unsigned W : {2u, 4u, 8u}) {
        std::vector<std::size_t> shard(W, 0);
        for (const std::uint64_t h : hashes)
            ++shard[h % W];
        std::size_t mn = hashes.size(), mx = 0;
        for (const std::size_t s : shard) {
            mn = std::min(mn, s);
            mx = std::max(mx, s);
        }
        const double ideal =
            static_cast<double>(hashes.size()) / W;
        std::printf("%-4u %10zu %10zu %10zu %7.3fx\n", W,
                    hashes.size(), mn, mx, mx / ideal);
    }
}

} // namespace

int
main()
{
    const std::string dir = makeTempDir();
    std::printf("==== service substrate: journal, codec, shards "
                "====\n\n");
    benchJournal(dir);
    benchFrameCodec();
    benchShardBalance();
    std::string cleanup = "rm -rf " + dir;
    if (std::system(cleanup.c_str()) != 0)
        std::fprintf(stderr, "cleanup failed for %s\n", dir.c_str());
    return 0;
}
