/**
 * @file
 * StateStore performance bench: exhaustive-exploration states/s,
 * real bytes/state, and probe-length histogram, new arena-interned
 * explorer vs the seed `unordered_map<VState, id>` implementation
 * (replicated verbatim below), on the bundled protocol models.
 *
 * bytes/state is measured, not estimated: each candidate runs in a
 * forked child and the parent reads the child's peak RSS from
 * wait4(); a do-nothing child (model built, no exploration) is
 * subtracted so the binary's own footprint and the COW-inherited
 * pages cancel out. Fork-based runs happen before any in-process
 * exploration so every child inherits the same small image.
 *
 * Also asserts fixpoint equality — states, transitions, per-rule
 * fires, status — between the legacy replica, the new sequential
 * explorer and the parallel explorer at 2/4/8 threads; a perf win
 * that changes the fixpoint would be a bug, not a result.
 *
 * Emits a JSON artifact (bench/eval_common.hpp JsonWriter) so CI
 * uploads leave a perf trajectory across PRs.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "eval_common.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/german.hpp"
#include "verif/models/verif_features.hpp"
#include "verif/state_store.hpp"

using namespace neo;
using neo::verif::buildClosedModel;
using neo::verif::buildGermanModel;
using neo::verif::VerifFeatures;

namespace
{

struct Fixpoint
{
    VerifStatus status = VerifStatus::Verified;
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::vector<std::uint64_t> ruleFires;
    double seconds = 0.0;
};

bool
sameFixpoint(const Fixpoint &a, const Fixpoint &b)
{
    return a.status == b.status && a.states == b.states &&
           a.transitions == b.transitions &&
           a.ruleFires == b.ruleFires;
}

/** The seed visited-set hash (byte-wise FNV-1a), kept verbatim so
 *  the legacy replica pays exactly what the old explorer paid. */
struct LegacyVStateHash
{
    std::size_t
    operator()(const VState &s) const
    {
        std::size_t h = 1469598103934665603ULL;
        for (std::uint8_t b : s) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        return h;
    }
};

/**
 * The seed explorer's hot loop, structure for structure:
 * unordered_map visited set keyed by full VState copies, a deque of
 * (id, state) work items, a fresh successor VState per rule firing,
 * and a predecessor pair per state (keep_trace).
 */
Fixpoint
legacyExplore(const TransitionSystem &ts)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    Fixpoint out;
    out.ruleFires.assign(ts.rules().size(), 0);

    const auto &canon = ts.canonicalizer();
    const auto &rules = ts.rules();

    std::unordered_map<VState, std::uint64_t, LegacyVStateHash>
        visited;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> parent;
    std::deque<std::pair<std::uint64_t, VState>> work;

    VState init = ts.initialState();
    if (canon)
        canon(init);
    visited.emplace(init, 0);
    parent.emplace_back(0, 0);
    work.emplace_back(0, init);

    while (!work.empty()) {
        const std::uint64_t id = work.front().first;
        VState s = std::move(work.front().second);
        work.pop_front();
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!rules[r].guard(s))
                continue;
            VState next = s;
            rules[r].effect(next);
            ++out.transitions;
            ++out.ruleFires[r];
            if (canon)
                canon(next);
            auto [it, inserted] =
                visited.emplace(next, visited.size());
            if (!inserted)
                continue;
            parent.emplace_back(id,
                                static_cast<std::uint32_t>(r));
            bool bad = false;
            for (const auto &inv : ts.invariants()) {
                if (!inv.check(next)) {
                    bad = true;
                    break;
                }
            }
            if (bad) {
                out.status = VerifStatus::InvariantViolated;
                out.states = visited.size();
                out.seconds =
                    std::chrono::duration<double>(Clock::now() - t0)
                        .count();
                return out;
            }
            work.emplace_back(it->second, std::move(next));
        }
    }
    out.states = visited.size();
    out.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

Fixpoint
arenaExplore(const TransitionSystem &ts, unsigned threads)
{
    ExploreLimits lim;
    lim.maxSeconds = 600.0;
    lim.threads = threads;
    const ExploreResult r = explore(ts, lim);
    Fixpoint out;
    out.status = r.status;
    out.states = r.statesExplored;
    out.transitions = r.transitionsFired;
    out.ruleFires = r.ruleFires;
    out.seconds = r.seconds;
    return out;
}

/** Capacity-tier run: trace off (capacity experiments don't keep
 *  predecessor links), accounted live memory and tier metrics out. */
Fixpoint
tierExplore(const TransitionSystem &ts, unsigned threads,
            const StoreTierOptions &opts,
            std::uint64_t *memBytes = nullptr,
            double *omission = nullptr,
            std::uint64_t *sheds = nullptr)
{
    ExploreLimits lim;
    lim.maxSeconds = 600.0;
    lim.threads = threads;
    lim.store = opts;
    const ExploreResult r =
        explore(ts, lim, false, /*keep_trace=*/false);
    if (memBytes)
        *memBytes = r.memoryBytes;
    if (omission)
        *omission = r.omissionProbability;
    if (sheds)
        *sheds = r.spillSheds;
    Fixpoint out;
    out.status = r.status;
    out.states = r.statesExplored;
    out.transitions = r.transitionsFired;
    out.ruleFires = r.ruleFires;
    out.seconds = r.seconds;
    return out;
}

/** The tier axis benched on the german models: plain arena, delta
 *  compression, delta + disk spill (1 MB hot budget so the LRU sheds
 *  aggressively), and hash compaction. */
struct TierRow
{
    const char *label;
    StoreTierOptions opts;
};

std::vector<TierRow>
tierRows()
{
    std::vector<TierRow> rows;
    rows.push_back({"plain", {}});
    TierRow delta{"delta", {}};
    delta.opts.tier = StoreTier::Delta;
    rows.push_back(delta);
    TierRow spill{"delta+spill", {}};
    spill.opts.tier = StoreTier::Delta;
    spill.opts.spillDir = "/tmp/neo-bench-spill";
    spill.opts.hotBytes = 1ULL << 20;
    rows.push_back(spill);
    TierRow compact{"compact", {}};
    compact.opts.tier = StoreTier::Compact;
    rows.push_back(compact);
    return rows;
}

struct BenchModel
{
    std::string name;
    TransitionSystem (*build)(std::size_t);
    std::size_t n;
};

TransitionSystem
buildNeoMesiClosed(std::size_t n)
{
    ModelShape shape;
    return buildClosedModel(n, VerifFeatures::neoMESI(), shape);
}

TransitionSystem
buildGerman(std::size_t n)
{
    ModelShape shape;
    return buildGermanModel(n, shape);
}

/** Peak RSS of a forked child running @p kind on the model:
 *  0 = build only (baseline), 1 = legacy replica, 2 = new explorer,
 *  3 = tier run (trace off) with @p tier options.
 *  @return (peak RSS bytes, states explored). */
std::pair<std::uint64_t, std::uint64_t>
childPeakRss(const BenchModel &m, int kind,
             const StoreTierOptions *tier = nullptr)
{
    int fds[2];
    if (pipe(fds) != 0) {
        std::perror("pipe");
        std::exit(1);
    }
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        std::exit(1);
    }
    if (pid == 0) {
        close(fds[0]);
        const TransitionSystem ts = m.build(m.n);
        std::uint64_t states = 0;
        if (kind == 1)
            states = legacyExplore(ts).states;
        else if (kind == 2)
            states = arenaExplore(ts, 1).states;
        else if (kind == 3)
            states = tierExplore(ts, 1, *tier).states;
        const ssize_t wr = write(fds[1], &states, sizeof(states));
        (void)wr;
        close(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    std::uint64_t states = 0;
    if (read(fds[0], &states, sizeof(states)) !=
        static_cast<ssize_t>(sizeof(states))) {
        std::fprintf(stderr, "child for %s died\n", m.name.c_str());
        std::exit(1);
    }
    close(fds[0]);
    int status = 0;
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    if (wait4(pid, &status, 0, &ru) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "child for %s failed\n", m.name.c_str());
        std::exit(1);
    }
    // Linux reports ru_maxrss in kilobytes.
    return {static_cast<std::uint64_t>(ru.ru_maxrss) * 1024, states};
}

/** Re-run the new path's interning workload in-process to collect
 *  the probe-length histogram (explore() owns its store privately). */
std::array<std::uint64_t, StateStore::kProbeBuckets>
probeHistogram(const TransitionSystem &ts)
{
    const auto &canon = ts.canonicalizer();
    const auto &rules = ts.rules();
    StateStore store(ts.numVars());
    std::vector<std::uint32_t> work;
    std::size_t head = 0;
    VState cur;
    VState next;
    VState init = ts.initialState();
    if (canon)
        canon(init);
    store.intern(init);
    work.push_back(0);
    while (head < work.size()) {
        store.copyTo(work[head++], cur);
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!rules[r].guard(cur))
                continue;
            next = cur;
            rules[r].effect(next);
            if (canon)
                canon(next);
            const auto [nid, fresh] = store.intern(next);
            if (fresh)
                work.push_back(nid);
        }
    }
    return store.probeHistogram();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "state_store_bench.json";
    std::size_t n = 6;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
        else if (arg == "--n" && i + 1 < argc)
            n = static_cast<std::size_t>(std::atoi(argv[++i]));
    }

    const BenchModel models[] = {
        {"closed-neomesi-n" + std::to_string(n), &buildNeoMesiClosed,
         n},
        {"german-n" + std::to_string(n), &buildGerman, n},
    };

    std::printf("==== state store: arena-interned explorer vs seed "
                "unordered_map ====\n\n");

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "state_store");
    json.beginArray("models");

    // All RSS children first, before ANY in-process exploration: a
    // child's ru_maxrss starts from the parent's resident image, so
    // forking after a big in-process run would bury the measurement
    // under inherited pages. Taken up front, every child inherits the
    // same small image and the baseline subtraction is honest.
    struct RssTriple
    {
        std::uint64_t base, legacy, arena, statesL, statesA;
        /** Per-tier fork RSS (german models only; indexed like
         *  tierRows()). NOTE fork RSS is PEAK resident: the spill
         *  tier's pre-shed pages count even after madvise drops
         *  them, so the accounted live bytes (below) are the
         *  capacity metric; both are reported. */
        std::vector<std::uint64_t> tierRss;
    };
    const std::vector<TierRow> tiers = tierRows();
    std::vector<RssTriple> rss;
    for (const BenchModel &m : models) {
        RssTriple t{};
        t.base = childPeakRss(m, 0).first;
        std::tie(t.legacy, t.statesL) = childPeakRss(m, 1);
        std::tie(t.arena, t.statesA) = childPeakRss(m, 2);
        if (m.name.rfind("german", 0) == 0) {
            for (const TierRow &tr : tiers)
                t.tierRss.push_back(
                    childPeakRss(m, 3, &tr.opts).first);
        }
        rss.push_back(t);
    }

    bool allOk = true;
    std::size_t mi = 0;
    for (const BenchModel &m : models) {
        const RssTriple &rs = rss[mi++];
        const std::uint64_t rssBase = rs.base;
        const std::uint64_t rssLegacy = rs.legacy;
        const std::uint64_t rssArena = rs.arena;
        const std::uint64_t statesL = rs.statesL;
        const std::uint64_t statesA = rs.statesA;

        const TransitionSystem ts = m.build(m.n);
        const Fixpoint legacy = legacyExplore(ts);
        const Fixpoint arena = arenaExplore(ts, 1);
        bool equal = sameFixpoint(legacy, arena) &&
                     statesL == legacy.states &&
                     statesA == legacy.states;
        bool parallelEqual = true;
        for (unsigned threads : {2u, 4u, 8u}) {
            const Fixpoint p = arenaExplore(ts, threads);
            parallelEqual = parallelEqual && sameFixpoint(legacy, p);
        }

        const double legacyRate = legacy.states / legacy.seconds;
        const double arenaRate = arena.states / arena.seconds;
        const double speedup = arenaRate / legacyRate;
        const double legacyBytes =
            static_cast<double>(rssLegacy - rssBase) / legacy.states;
        const double arenaBytes =
            static_cast<double>(rssArena - rssBase) / arena.states;
        const double bytesRatio = legacyBytes / arenaBytes;

        std::printf("%-20s %9llu states, %10llu transitions\n",
                    m.name.c_str(),
                    static_cast<unsigned long long>(legacy.states),
                    static_cast<unsigned long long>(
                        legacy.transitions));
        std::printf("  legacy: %8.0f states/s  %7.1f bytes/state "
                    "(%.2f s)\n",
                    legacyRate, legacyBytes, legacy.seconds);
        std::printf("  arena:  %8.0f states/s  %7.1f bytes/state "
                    "(%.2f s)\n",
                    arenaRate, arenaBytes, arena.seconds);
        std::printf("  speedup: %.2fx   bytes/state ratio: %.2fx   "
                    "fixpoint equal: %s   parallel 2/4/8 equal: %s\n\n",
                    speedup, bytesRatio, equal ? "yes" : "NO",
                    parallelEqual ? "yes" : "NO");
        allOk = allOk && equal && parallelEqual;

        const auto hist = probeHistogram(ts);
        std::printf("  insert probe distance: direct %llu",
                    static_cast<unsigned long long>(hist[0]));
        for (std::size_t b = 1; b < hist.size(); ++b) {
            if (hist[b] != 0)
                std::printf(", <2^%zu: %llu", b,
                            static_cast<unsigned long long>(hist[b]));
        }
        std::printf("\n\n");

        json.beginObject();
        json.field("name", m.name);
        json.field("states", legacy.states);
        json.field("transitions", legacy.transitions);
        json.beginObject("legacy");
        json.field("seconds", legacy.seconds);
        json.field("statesPerSec", legacyRate);
        json.field("rssBytes", rssLegacy - rssBase);
        json.field("bytesPerState", legacyBytes);
        json.endObject();
        json.beginObject("arena");
        json.field("seconds", arena.seconds);
        json.field("statesPerSec", arenaRate);
        json.field("rssBytes", rssArena - rssBase);
        json.field("bytesPerState", arenaBytes);
        json.endObject();
        json.field("speedup", speedup);
        json.field("bytesPerStateRatio", bytesRatio);
        json.field("fixpointEqual", equal);
        json.field("parallelEqual", parallelEqual);
        json.beginArray("probeHistogram");
        for (const std::uint64_t c : hist)
            json.element(c);
        json.endArray();

        // ---- capacity-tier axis (german models) ----
        if (!rs.tierRss.empty()) {
            std::printf("  capacity tiers (trace off, accounted live "
                        "bytes):\n");
            json.beginArray("tiers");
            double plainBytes = 0.0;
            double spillBytes = 0.0;
            bool tiersEqual = true;
            bool compactEqual = true;
            Fixpoint ref; // plain, trace-off, sequential
            for (std::size_t ti = 0; ti < tiers.size(); ++ti) {
                const TierRow &tr = tiers[ti];
                const bool isCompact =
                    tr.opts.tier == StoreTier::Compact;
                std::uint64_t mem = 0, sheds = 0;
                double omis = 0.0;
                const Fixpoint fx =
                    tierExplore(ts, 1, tr.opts, &mem, &omis, &sheds);
                if (ti == 0)
                    ref = fx;
                // Exact tiers must agree at every thread count;
                // compact agreement is expected but probabilistic,
                // so it is reported, not gated.
                bool eq = sameFixpoint(ref, fx);
                for (unsigned th : {2u, 4u, 8u})
                    eq = eq &&
                         sameFixpoint(ref,
                                      tierExplore(ts, th, tr.opts));
                if (isCompact)
                    compactEqual = eq;
                else
                    tiersEqual = tiersEqual && eq;
                const double accounted =
                    static_cast<double>(mem) /
                    static_cast<double>(fx.states);
                if (ti == 0)
                    plainBytes = accounted;
                if (std::string(tr.label) == "delta+spill")
                    spillBytes = accounted;
                const double rssB =
                    static_cast<double>(rs.tierRss[ti] > rssBase
                                            ? rs.tierRss[ti] - rssBase
                                            : 0) /
                    static_cast<double>(fx.states);
                std::printf("    %-12s %7.1f B/state accounted  "
                            "%7.1f B/state fork-RSS  %8.0f states/s"
                            "  %llu sheds  eq(1/2/4/8): %s\n",
                            tr.label, accounted, rssB,
                            fx.states / fx.seconds,
                            static_cast<unsigned long long>(sheds),
                            eq ? "yes" : "NO");
                json.beginObject();
                json.field("tier", tr.label);
                json.field("trace", false);
                json.field("states", fx.states);
                json.field("seconds", fx.seconds);
                json.field("accountedBytes", mem);
                json.field("accountedBytesPerState", accounted);
                json.field("rssBytes",
                           rs.tierRss[ti] > rssBase
                               ? rs.tierRss[ti] - rssBase
                               : 0);
                json.field("rssBytesPerState", rssB);
                json.field("statesPerGB",
                           accounted > 0.0
                               ? (1024.0 * 1024.0 * 1024.0) /
                                     accounted
                               : 0.0);
                json.field("spillSheds", sheds);
                json.field("fixpointEqual", eq);
                if (isCompact)
                    json.field("omissionProbability", omis);
                json.endObject();
            }
            json.endArray();
            const double reduction =
                spillBytes > 0.0 ? plainBytes / spillBytes : 0.0;
            std::printf("    delta+spill reduction vs plain: %.1fx "
                        "(>=10x wanted)   exact tiers equal: %s   "
                        "compact equal: %s\n\n",
                        reduction, tiersEqual ? "yes" : "NO",
                        compactEqual ? "yes" : "NO");
            json.field("deltaSpillReduction", reduction);
            json.field("deltaSpillAtLeast10x", reduction >= 10.0);
            json.field("tiersFixpointEqual", tiersEqual);
            json.field("compactFixpointEqual", compactEqual);
            allOk = allOk && tiersEqual;
        }
        json.endObject();
    }
    json.endArray();
    json.field("ok", allOk);
    json.endObject();

    if (std::FILE *f = std::fopen(outPath.c_str(), "w")) {
        std::fputs(json.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("JSON written to %s\n", outPath.c_str());
    } else {
        std::perror(outPath.c_str());
        return 1;
    }
    return allOk ? 0 : 1;
}
