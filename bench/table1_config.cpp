/**
 * @file
 * Table 1: the simulated system configuration. Prints the table and
 * verifies a System instantiates with exactly these parameters in
 * each Figure 7 organization.
 */

#include <cstdio>

#include "core/system.hpp"

using namespace neo;

int
main()
{
    setQuiet(true);
    std::printf("==== Table 1: Simulation System Configurations ====\n");
    std::printf("%-22s %s\n", "Cores and ISA", "32 in-order x86 cores");
    std::printf("%-22s %s\n", "Frequency", "2 GHz");
    std::printf("%-22s %s\n", "Inclusivity", "Fully Inclusive Hierarchy");
    std::printf("%-22s %s\n", "Cache Block Size", "64 Bytes");
    std::printf("%-22s %s\n", "L1 I&D Caches", "32KB, 2-way, 2-cycle");
    std::printf("%-22s %s\n", "L2 Cache",
                "4MB, 8-way, 6-cycle, Unbanked");
    std::printf("%-22s %s\n", "L3 Cache",
                "64MB, 16-way, 16-cycle, Unbanked");
    std::printf("%-22s %s\n", "DRAM", "2GB, 160-cycle");
    std::printf("%-22s %s\n", "Link Bandwidth", "32GB/s");
    std::printf("%-22s %s\n", "Link Latency", "1-cycle");

    // Cross-check against the code's constants.
    const CacheGeometry l1 = table1L1();
    const CacheGeometry l2 = table1L2();
    const CacheGeometry l3 = table1L3();
    neo_assert(l1.sizeBytes == 32 * 1024 && l1.assoc == 2 &&
                   l1.accessLatency == 2 && l1.blockSize == 64,
               "L1 geometry drifted from Table 1");
    neo_assert(l2.sizeBytes == 4ULL << 20 && l2.assoc == 8 &&
                   l2.accessLatency == 6,
               "L2 geometry drifted from Table 1");
    neo_assert(l3.sizeBytes == 64ULL << 20 && l3.assoc == 16 &&
                   l3.accessLatency == 16,
               "L3 geometry drifted from Table 1");

    std::printf("\nInstantiating the three Figure 7 organizations:\n");
    for (const char *org : {"skewed", "2perL2", "8perL2"}) {
        EventQueue eventq;
        HierarchySpec spec =
            organizationByName(org, ProtocolVariant::NeoMESI);
        System system(spec, eventq);
        neo_assert(system.numL1s() == 32,
                   "every organization has 32 cores");
        std::printf("  %-8s: %2zu directories, %zu L1s, DRAM %lluMB, "
                    "link %llu cycle\n",
                    org, system.numDirs(), system.numL1s(),
                    static_cast<unsigned long long>(spec.dramBytes >>
                                                    20),
                    static_cast<unsigned long long>(
                        spec.network.linkLatency));
    }
    std::printf("\nTable 1 configuration verified.\n");
    return 0;
}
