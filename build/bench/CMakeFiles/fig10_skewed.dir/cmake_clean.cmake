file(REMOVE_RECURSE
  "CMakeFiles/fig10_skewed.dir/fig10_skewed.cpp.o"
  "CMakeFiles/fig10_skewed.dir/fig10_skewed.cpp.o.d"
  "fig10_skewed"
  "fig10_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
