# Empty compiler generated dependencies file for fig10_skewed.
# This may be replaced when dependencies are built.
