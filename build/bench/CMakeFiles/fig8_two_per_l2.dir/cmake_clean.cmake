file(REMOVE_RECURSE
  "CMakeFiles/fig8_two_per_l2.dir/fig8_two_per_l2.cpp.o"
  "CMakeFiles/fig8_two_per_l2.dir/fig8_two_per_l2.cpp.o.d"
  "fig8_two_per_l2"
  "fig8_two_per_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_two_per_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
