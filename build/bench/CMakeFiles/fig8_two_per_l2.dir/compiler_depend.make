# Empty compiler generated dependencies file for fig8_two_per_l2.
# This may be replaced when dependencies are built.
