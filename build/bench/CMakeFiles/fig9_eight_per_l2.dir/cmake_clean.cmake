file(REMOVE_RECURSE
  "CMakeFiles/fig9_eight_per_l2.dir/fig9_eight_per_l2.cpp.o"
  "CMakeFiles/fig9_eight_per_l2.dir/fig9_eight_per_l2.cpp.o.d"
  "fig9_eight_per_l2"
  "fig9_eight_per_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_eight_per_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
