# Empty compiler generated dependencies file for fig9_eight_per_l2.
# This may be replaced when dependencies are built.
