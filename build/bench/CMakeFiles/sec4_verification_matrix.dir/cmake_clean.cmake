file(REMOVE_RECURSE
  "CMakeFiles/sec4_verification_matrix.dir/sec4_verification_matrix.cpp.o"
  "CMakeFiles/sec4_verification_matrix.dir/sec4_verification_matrix.cpp.o.d"
  "sec4_verification_matrix"
  "sec4_verification_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_verification_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
