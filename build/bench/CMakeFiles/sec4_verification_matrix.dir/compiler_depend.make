# Empty compiler generated dependencies file for sec4_verification_matrix.
# This may be replaced when dependencies are built.
