file(REMOVE_RECURSE
  "CMakeFiles/sec5_optimization_stats.dir/sec5_optimization_stats.cpp.o"
  "CMakeFiles/sec5_optimization_stats.dir/sec5_optimization_stats.cpp.o.d"
  "sec5_optimization_stats"
  "sec5_optimization_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_optimization_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
