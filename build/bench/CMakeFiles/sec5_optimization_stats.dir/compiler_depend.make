# Empty compiler generated dependencies file for sec5_optimization_stats.
# This may be replaced when dependencies are built.
