file(REMOVE_RECURSE
  "CMakeFiles/sec6_broader_applicability.dir/sec6_broader_applicability.cpp.o"
  "CMakeFiles/sec6_broader_applicability.dir/sec6_broader_applicability.cpp.o.d"
  "sec6_broader_applicability"
  "sec6_broader_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_broader_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
