# Empty compiler generated dependencies file for sec6_broader_applicability.
# This may be replaced when dependencies are built.
