file(REMOVE_RECURSE
  "CMakeFiles/neo_executions.dir/neo_executions.cpp.o"
  "CMakeFiles/neo_executions.dir/neo_executions.cpp.o.d"
  "neo_executions"
  "neo_executions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
