# Empty dependencies file for neo_executions.
# This may be replaced when dependencies are built.
