file(REMOVE_RECURSE
  "CMakeFiles/protocol_walkthrough.dir/protocol_walkthrough.cpp.o"
  "CMakeFiles/protocol_walkthrough.dir/protocol_walkthrough.cpp.o.d"
  "protocol_walkthrough"
  "protocol_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
