file(REMOVE_RECURSE
  "CMakeFiles/verify_neomesi.dir/verify_neomesi.cpp.o"
  "CMakeFiles/verify_neomesi.dir/verify_neomesi.cpp.o.d"
  "verify_neomesi"
  "verify_neomesi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_neomesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
