# Empty dependencies file for verify_neomesi.
# This may be replaced when dependencies are built.
