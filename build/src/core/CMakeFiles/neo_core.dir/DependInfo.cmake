
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core_model.cpp" "src/core/CMakeFiles/neo_core.dir/core_model.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/core_model.cpp.o.d"
  "/root/repo/src/core/sim_runner.cpp" "src/core/CMakeFiles/neo_core.dir/sim_runner.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/sim_runner.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/neo_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocol/CMakeFiles/neo_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/neo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/neo_network.dir/DependInfo.cmake"
  "/root/repo/build/src/neo/CMakeFiles/neo_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
