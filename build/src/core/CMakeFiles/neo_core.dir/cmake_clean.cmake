file(REMOVE_RECURSE
  "CMakeFiles/neo_core.dir/core_model.cpp.o"
  "CMakeFiles/neo_core.dir/core_model.cpp.o.d"
  "CMakeFiles/neo_core.dir/sim_runner.cpp.o"
  "CMakeFiles/neo_core.dir/sim_runner.cpp.o.d"
  "CMakeFiles/neo_core.dir/system.cpp.o"
  "CMakeFiles/neo_core.dir/system.cpp.o.d"
  "libneo_core.a"
  "libneo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
