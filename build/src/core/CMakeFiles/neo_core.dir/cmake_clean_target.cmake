file(REMOVE_RECURSE
  "libneo_core.a"
)
