
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neo/execution.cpp" "src/neo/CMakeFiles/neo_theory.dir/execution.cpp.o" "gcc" "src/neo/CMakeFiles/neo_theory.dir/execution.cpp.o.d"
  "/root/repo/src/neo/hierarchy.cpp" "src/neo/CMakeFiles/neo_theory.dir/hierarchy.cpp.o" "gcc" "src/neo/CMakeFiles/neo_theory.dir/hierarchy.cpp.o.d"
  "/root/repo/src/neo/permission.cpp" "src/neo/CMakeFiles/neo_theory.dir/permission.cpp.o" "gcc" "src/neo/CMakeFiles/neo_theory.dir/permission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
