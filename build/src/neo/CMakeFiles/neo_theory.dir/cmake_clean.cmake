file(REMOVE_RECURSE
  "CMakeFiles/neo_theory.dir/execution.cpp.o"
  "CMakeFiles/neo_theory.dir/execution.cpp.o.d"
  "CMakeFiles/neo_theory.dir/hierarchy.cpp.o"
  "CMakeFiles/neo_theory.dir/hierarchy.cpp.o.d"
  "CMakeFiles/neo_theory.dir/permission.cpp.o"
  "CMakeFiles/neo_theory.dir/permission.cpp.o.d"
  "libneo_theory.a"
  "libneo_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
