file(REMOVE_RECURSE
  "libneo_theory.a"
)
