# Empty dependencies file for neo_theory.
# This may be replaced when dependencies are built.
