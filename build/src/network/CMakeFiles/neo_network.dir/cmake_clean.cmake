file(REMOVE_RECURSE
  "CMakeFiles/neo_network.dir/tree_network.cpp.o"
  "CMakeFiles/neo_network.dir/tree_network.cpp.o.d"
  "libneo_network.a"
  "libneo_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
