file(REMOVE_RECURSE
  "libneo_network.a"
)
