# Empty compiler generated dependencies file for neo_network.
# This may be replaced when dependencies are built.
