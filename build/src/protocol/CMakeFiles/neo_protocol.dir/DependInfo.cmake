
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/coherence_checker.cpp" "src/protocol/CMakeFiles/neo_protocol.dir/coherence_checker.cpp.o" "gcc" "src/protocol/CMakeFiles/neo_protocol.dir/coherence_checker.cpp.o.d"
  "/root/repo/src/protocol/dir_controller.cpp" "src/protocol/CMakeFiles/neo_protocol.dir/dir_controller.cpp.o" "gcc" "src/protocol/CMakeFiles/neo_protocol.dir/dir_controller.cpp.o.d"
  "/root/repo/src/protocol/l1_controller.cpp" "src/protocol/CMakeFiles/neo_protocol.dir/l1_controller.cpp.o" "gcc" "src/protocol/CMakeFiles/neo_protocol.dir/l1_controller.cpp.o.d"
  "/root/repo/src/protocol/protocol_config.cpp" "src/protocol/CMakeFiles/neo_protocol.dir/protocol_config.cpp.o" "gcc" "src/protocol/CMakeFiles/neo_protocol.dir/protocol_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/neo_network.dir/DependInfo.cmake"
  "/root/repo/build/src/neo/CMakeFiles/neo_theory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
