file(REMOVE_RECURSE
  "CMakeFiles/neo_protocol.dir/coherence_checker.cpp.o"
  "CMakeFiles/neo_protocol.dir/coherence_checker.cpp.o.d"
  "CMakeFiles/neo_protocol.dir/dir_controller.cpp.o"
  "CMakeFiles/neo_protocol.dir/dir_controller.cpp.o.d"
  "CMakeFiles/neo_protocol.dir/l1_controller.cpp.o"
  "CMakeFiles/neo_protocol.dir/l1_controller.cpp.o.d"
  "CMakeFiles/neo_protocol.dir/protocol_config.cpp.o"
  "CMakeFiles/neo_protocol.dir/protocol_config.cpp.o.d"
  "libneo_protocol.a"
  "libneo_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
