file(REMOVE_RECURSE
  "libneo_protocol.a"
)
