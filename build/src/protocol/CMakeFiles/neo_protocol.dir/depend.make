# Empty dependencies file for neo_protocol.
# This may be replaced when dependencies are built.
