file(REMOVE_RECURSE
  "CMakeFiles/neo_sim.dir/event_queue.cpp.o"
  "CMakeFiles/neo_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/neo_sim.dir/logging.cpp.o"
  "CMakeFiles/neo_sim.dir/logging.cpp.o.d"
  "CMakeFiles/neo_sim.dir/random.cpp.o"
  "CMakeFiles/neo_sim.dir/random.cpp.o.d"
  "CMakeFiles/neo_sim.dir/stats.cpp.o"
  "CMakeFiles/neo_sim.dir/stats.cpp.o.d"
  "libneo_sim.a"
  "libneo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
