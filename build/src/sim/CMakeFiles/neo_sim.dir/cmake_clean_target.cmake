file(REMOVE_RECURSE
  "libneo_sim.a"
)
