
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verif/explorer.cpp" "src/verif/CMakeFiles/neo_verif.dir/explorer.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/explorer.cpp.o.d"
  "/root/repo/src/verif/models/flat_closed.cpp" "src/verif/CMakeFiles/neo_verif.dir/models/flat_closed.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/models/flat_closed.cpp.o.d"
  "/root/repo/src/verif/models/flat_open.cpp" "src/verif/CMakeFiles/neo_verif.dir/models/flat_open.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/models/flat_open.cpp.o.d"
  "/root/repo/src/verif/models/german.cpp" "src/verif/CMakeFiles/neo_verif.dir/models/german.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/models/german.cpp.o.d"
  "/root/repo/src/verif/models/verif_features.cpp" "src/verif/CMakeFiles/neo_verif.dir/models/verif_features.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/models/verif_features.cpp.o.d"
  "/root/repo/src/verif/parametric.cpp" "src/verif/CMakeFiles/neo_verif.dir/parametric.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/parametric.cpp.o.d"
  "/root/repo/src/verif/transition_system.cpp" "src/verif/CMakeFiles/neo_verif.dir/transition_system.cpp.o" "gcc" "src/verif/CMakeFiles/neo_verif.dir/transition_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/neo/CMakeFiles/neo_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
