file(REMOVE_RECURSE
  "CMakeFiles/neo_verif.dir/explorer.cpp.o"
  "CMakeFiles/neo_verif.dir/explorer.cpp.o.d"
  "CMakeFiles/neo_verif.dir/models/flat_closed.cpp.o"
  "CMakeFiles/neo_verif.dir/models/flat_closed.cpp.o.d"
  "CMakeFiles/neo_verif.dir/models/flat_open.cpp.o"
  "CMakeFiles/neo_verif.dir/models/flat_open.cpp.o.d"
  "CMakeFiles/neo_verif.dir/models/german.cpp.o"
  "CMakeFiles/neo_verif.dir/models/german.cpp.o.d"
  "CMakeFiles/neo_verif.dir/models/verif_features.cpp.o"
  "CMakeFiles/neo_verif.dir/models/verif_features.cpp.o.d"
  "CMakeFiles/neo_verif.dir/parametric.cpp.o"
  "CMakeFiles/neo_verif.dir/parametric.cpp.o.d"
  "CMakeFiles/neo_verif.dir/transition_system.cpp.o"
  "CMakeFiles/neo_verif.dir/transition_system.cpp.o.d"
  "libneo_verif.a"
  "libneo_verif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_verif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
