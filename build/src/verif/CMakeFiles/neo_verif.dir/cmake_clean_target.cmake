file(REMOVE_RECURSE
  "libneo_verif.a"
)
