# Empty compiler generated dependencies file for neo_verif.
# This may be replaced when dependencies are built.
