file(REMOVE_RECURSE
  "CMakeFiles/neo_workload.dir/workload.cpp.o"
  "CMakeFiles/neo_workload.dir/workload.cpp.o.d"
  "libneo_workload.a"
  "libneo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
