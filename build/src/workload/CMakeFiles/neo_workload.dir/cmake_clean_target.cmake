file(REMOVE_RECURSE
  "libneo_workload.a"
)
