# Empty compiler generated dependencies file for neo_workload.
# This may be replaced when dependencies are built.
