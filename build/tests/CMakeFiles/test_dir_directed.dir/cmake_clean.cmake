file(REMOVE_RECURSE
  "CMakeFiles/test_dir_directed.dir/test_dir_directed.cpp.o"
  "CMakeFiles/test_dir_directed.dir/test_dir_directed.cpp.o.d"
  "test_dir_directed"
  "test_dir_directed.pdb"
  "test_dir_directed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dir_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
