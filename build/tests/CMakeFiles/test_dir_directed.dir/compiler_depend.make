# Empty compiler generated dependencies file for test_dir_directed.
# This may be replaced when dependencies are built.
