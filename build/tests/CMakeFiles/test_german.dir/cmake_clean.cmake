file(REMOVE_RECURSE
  "CMakeFiles/test_german.dir/test_german.cpp.o"
  "CMakeFiles/test_german.dir/test_german.cpp.o.d"
  "test_german"
  "test_german.pdb"
  "test_german[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_german.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
