# Empty compiler generated dependencies file for test_german.
# This may be replaced when dependencies are built.
