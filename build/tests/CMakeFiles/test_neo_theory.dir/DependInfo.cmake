
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_neo_theory.cpp" "tests/CMakeFiles/test_neo_theory.dir/test_neo_theory.cpp.o" "gcc" "tests/CMakeFiles/test_neo_theory.dir/test_neo_theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/neo_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/neo_network.dir/DependInfo.cmake"
  "/root/repo/build/src/neo/CMakeFiles/neo_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/neo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
