file(REMOVE_RECURSE
  "CMakeFiles/test_neo_theory.dir/test_neo_theory.cpp.o"
  "CMakeFiles/test_neo_theory.dir/test_neo_theory.cpp.o.d"
  "test_neo_theory"
  "test_neo_theory.pdb"
  "test_neo_theory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neo_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
