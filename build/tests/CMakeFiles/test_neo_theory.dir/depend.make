# Empty dependencies file for test_neo_theory.
# This may be replaced when dependencies are built.
