file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_basic.dir/test_protocol_basic.cpp.o"
  "CMakeFiles/test_protocol_basic.dir/test_protocol_basic.cpp.o.d"
  "test_protocol_basic"
  "test_protocol_basic.pdb"
  "test_protocol_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
