file(REMOVE_RECURSE
  "CMakeFiles/test_unordered_network.dir/test_unordered_network.cpp.o"
  "CMakeFiles/test_unordered_network.dir/test_unordered_network.cpp.o.d"
  "test_unordered_network"
  "test_unordered_network.pdb"
  "test_unordered_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unordered_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
