# Empty compiler generated dependencies file for test_unordered_network.
# This may be replaced when dependencies are built.
