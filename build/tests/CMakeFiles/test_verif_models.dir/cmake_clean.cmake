file(REMOVE_RECURSE
  "CMakeFiles/test_verif_models.dir/test_verif_models.cpp.o"
  "CMakeFiles/test_verif_models.dir/test_verif_models.cpp.o.d"
  "test_verif_models"
  "test_verif_models.pdb"
  "test_verif_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verif_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
