# Empty compiler generated dependencies file for test_verif_models.
# This may be replaced when dependencies are built.
