# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_protocol_basic[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_stress[1]_include.cmake")
include("/root/repo/build/tests/test_verif_models[1]_include.cmake")
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_neo_theory[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_german[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_properties[1]_include.cmake")
include("/root/repo/build/tests/test_core_system[1]_include.cmake")
include("/root/repo/build/tests/test_unordered_network[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_conformance[1]_include.cmake")
include("/root/repo/build/tests/test_dir_directed[1]_include.cmake")
