file(REMOVE_RECURSE
  "CMakeFiles/neosim.dir/neosim.cpp.o"
  "CMakeFiles/neosim.dir/neosim.cpp.o.d"
  "neosim"
  "neosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
