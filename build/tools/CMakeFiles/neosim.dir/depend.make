# Empty dependencies file for neosim.
# This may be replaced when dependencies are built.
