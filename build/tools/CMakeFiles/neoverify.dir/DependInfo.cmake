
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/neoverify.cpp" "tools/CMakeFiles/neoverify.dir/neoverify.cpp.o" "gcc" "tools/CMakeFiles/neoverify.dir/neoverify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verif/CMakeFiles/neo_verif.dir/DependInfo.cmake"
  "/root/repo/build/src/neo/CMakeFiles/neo_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
