file(REMOVE_RECURSE
  "CMakeFiles/neoverify.dir/neoverify.cpp.o"
  "CMakeFiles/neoverify.dir/neoverify.cpp.o.d"
  "neoverify"
  "neoverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neoverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
