# Empty compiler generated dependencies file for neoverify.
# This may be replaced when dependencies are built.
