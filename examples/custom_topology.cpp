/**
 * @file
 * The point of parametric verification: pick ANY tree shape and run.
 *
 * Builds a deliberately weird hierarchy — unbalanced depth, mixed
 * arities (1, 3, 5), a lopsided deep arm — and drives it hard under
 * NeoMESI. Because NeoMESI is verified for all tree configurations
 * (examples/verify_neomesi, bench/sec4_verification_matrix), no new
 * verification is needed for this shape: that is the property the
 * paper's title promises.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "core/system.hpp"
#include "sim/random.hpp"

using namespace neo;

int
main()
{
    setQuiet(true);
    const CacheGeometry l1{4 * 1024, 2, 64, 1};
    const CacheGeometry mid{32 * 1024, 4, 64, 4};
    auto leaf = [&] { return TreeNodeSpec{l1, {}}; };

    HierarchySpec spec;
    spec.name = "franken-tree";
    spec.protocol = ProtocolVariant::NeoMESI;
    spec.root.geom = CacheGeometry{256 * 1024, 8, 64, 8};

    // Arm 1: a chain three directories deep ending in one leaf.
    TreeNodeSpec chain{mid, {TreeNodeSpec{mid, {TreeNodeSpec{mid, {leaf()}}}}}};
    spec.root.children.push_back(chain);

    // Arm 2: a wide 5-ary directory of leaves.
    TreeNodeSpec wide{mid, {}};
    for (int i = 0; i < 5; ++i)
        wide.children.push_back(leaf());
    spec.root.children.push_back(wide);

    // Arm 3: a 3-ary directory of 2-leaf directories.
    TreeNodeSpec nested{mid, {}};
    for (int i = 0; i < 3; ++i)
        nested.children.push_back(TreeNodeSpec{mid, {leaf(), leaf()}});
    spec.root.children.push_back(nested);

    EventQueue eventq;
    System system(spec, eventq);
    std::printf("built '%s': %zu directories, %zu leaves, depths "
                "1..4, arities 1..5\n",
                spec.name.c_str(), system.numDirs(), system.numL1s());

    // Hammer one hot block plus private traffic from every leaf.
    Random rng(2026);
    const unsigned cores = static_cast<unsigned>(system.numL1s());
    std::vector<unsigned> left(cores, 600);
    std::function<void(unsigned)> issue = [&](unsigned c) {
        if (left[c]-- == 0)
            return;
        const bool hot = rng.chance(0.3);
        const Addr addr =
            hot ? 0x40 : (0x10000 + (c * 64 + rng.below(32)) * 64);
        system.l1(c).coreRequest(addr, rng.chance(0.5),
                                 [&issue, c] { issue(c); });
    };
    for (unsigned c = 0; c < cores; ++c)
        issue(c);
    eventq.run();

    const auto violations = system.checker().check();
    std::printf("ran %u ops/leaf; network carried %llu messages\n",
                600u,
                static_cast<unsigned long long>(
                    system.network().messageCount().value()));
    std::printf("hot block final state: ");
    for (unsigned c = 0; c < cores; ++c)
        std::printf("%s ", permName(system.l1(c).blockPerm(0x40)));
    std::printf("\ncoherence: %s\n",
                violations.empty() ? "OK — as the verification "
                                     "guarantees for every tree shape"
                                   : "VIOLATED");
    for (const auto &v : violations)
        std::printf("  %s\n", v.c_str());
    return violations.empty() ? 0 : 1;
}
