/**
 * @file
 * Figure 2 of the paper, executable: executions of a Neo System and
 * their summaries, plus the implementation relation in action.
 *
 * The paper's example composes an L2 controller with an L1 controller
 * into an Open Neo System Omega = L2 (.) L1, then shows the execution
 * in which an invalidation is received, buffered, applied, and acked
 * — and how its summary sum(e) matches a leaf execution.
 */

#include <cstdio>

#include "neo/execution.hpp"
#include "neo/permission.hpp"

using namespace neo;

int
main()
{
    // The execution e_Omega of Fig. 2: Omega starts with the L1 in S.
    // Time (1): input Inv arrives (buffered)       -> sum S
    // Time (2): internal pop, L1 goes S -> I       -> sum I
    // Time (3): output InvAck                      -> sum I
    ExecutionSummary omega;
    omega.initialSum = Perm::S;
    omega.steps = {
        {Action{"Inv", ActionKind::Input}, Perm::S},
        {lambda(), Perm::I},
        {Action{"InvAck", ActionKind::Output}, Perm::I},
    };
    std::printf("sum(e_Omega) = %s\n", omega.str().c_str());

    // A leaf L matches: buffer the Inv (input), stutter a while, then
    // ack with its own internal pop + output.
    ExecutionSummary leaf;
    leaf.initialSum = Perm::S;
    leaf.steps = {
        {Action{"Inv", ActionKind::Input}, Perm::S},
        {lambda(), Perm::S}, // stutter while Omega works internally
        {lambda(), Perm::S},
        {lambda(), Perm::I}, // pop: S -> I
        {Action{"InvAck", ActionKind::Output}, Perm::I},
    };
    std::printf("sum(e_L)     = %s\n", leaf.str().c_str());

    std::printf("stutter-compressed Omega: %s\n",
                omega.compressStutter().str().c_str());
    std::printf("stutter-compressed L:     %s\n",
                leaf.compressStutter().str().c_str());

    if (summariesMatch(omega, leaf)) {
        std::printf("\n=> the summaries match: this execution of "
                    "Omega is implemented by L\n   (the Safe "
                    "Composition Invariant, checked exhaustively by "
                    "the model checker\n   in "
                    "bench/sec4_verification_matrix).\n");
    } else {
        std::printf("\nERROR: summaries should have matched\n");
        return 1;
    }

    // A NON-matching execution: Omega sends data to a non-sibling —
    // an output action the leaf alphabet does not contain (§4.2.1).
    ExecutionSummary ns = omega;
    ns.steps.push_back(
        {Action{"DataToNonSibling", ActionKind::Output}, Perm::I});
    std::printf("\nsum with a non-sibling output = %s\n",
                ns.str().c_str());
    std::printf("matches any leaf execution? %s (the theory prohibits "
                "non-sibling\ncommunication precisely because no leaf "
                "can produce this action)\n",
                summariesMatch(ns, leaf) ? "yes - BUG" : "no");
    return summariesMatch(ns, leaf) ? 1 : 0;
}
