/**
 * @file
 * Reproduces the paper's Figures 4, 5 and 6 as live message traces.
 *
 * The scenario in all three figures: caches C1..C4 under intermediate
 * directories C5 (over C1, C2) and C6 (over C3, C4), rooted at C7.
 * C4 holds the block in M; C1 issues a GetS. The three protocols
 * satisfy the request differently:
 *
 *   NeoMESI  (Fig. 4): data relays C4 -> C6 -> C5 -> C1 (sibling hops
 *            only), Unblocks update C5 and C7 with the valid data.
 *   NS-MESI  (Fig. 5): C4 sends the data directly to C1 AND to its
 *            parent C6 — a hop saved, but non-sibling communication
 *            is prohibited by the Neo theory.
 *   NS-MOESI (Fig. 6): C4 moves to O and keeps supplying readers; no
 *            copy to the parent; directories do not block.
 */

#include <cstdio>
#include <map>
#include <string>

#include "core/system.hpp"

using namespace neo;

namespace
{

void
runScenario(ProtocolVariant v)
{
    std::printf("---- %s (the paper's C1 GetS against C4 in M) "
                "----\n",
                protocolName(v));
    EventQueue eventq;
    HierarchySpec spec;
    spec.name = "walkthrough";
    spec.protocol = v;
    spec.root.geom = CacheGeometry{64 * 1024, 8, 64, 4}; // C7
    for (int d = 0; d < 2; ++d) {
        TreeNodeSpec l2{CacheGeometry{16 * 1024, 4, 64, 2}, {}};
        for (int j = 0; j < 2; ++j)
            l2.children.push_back(
                TreeNodeSpec{CacheGeometry{4 * 1024, 2, 64, 1}, {}});
        spec.root.children.push_back(l2);
    }
    System system(spec, eventq);

    // Paper names: l1_0..l1_3 = C1..C4, dir_1 = C5, dir_2 = C6,
    // root_0 = C7.
    const std::map<std::string, std::string> names = {
        {"l1_0", "C1"},   {"l1_1", "C2"},  {"l1_2", "C3"},
        {"l1_3", "C4"},   {"dir_1", "C5"}, {"dir_2", "C6"},
        {"root_0", "C7"},
    };
    const std::map<NodeId, std::string> byId = [&] {
        std::map<NodeId, std::string> m;
        for (std::size_t i = 0; i < system.numDirs(); ++i)
            m[system.dir(i).nodeId()] =
                names.at(system.dir(i).name());
        for (std::size_t i = 0; i < system.numL1s(); ++i)
            m[system.l1(i).nodeId()] = names.at(system.l1(i).name());
        return m;
    }();

    // C4 writes first (silently; no trace yet).
    bool done = false;
    system.l1(3).coreRequest(0x1000, true, [&done] { done = true; });
    eventq.run();
    neo_assert(done, "setup write did not complete");
    std::printf("  setup: C4 now holds the block in %s\n",
                permName(system.l1(3).blockPerm(0x1000)));

    // Trace C1's GetS, numbering the sends like the figures.
    unsigned step = 0;
    system.setTrace([&](const std::string &line) {
        if (line.find("send") == std::string::npos)
            return;
        std::string pretty = line;
        for (const auto &[raw, name] : names) {
            const auto pos = pretty.find(raw + ":");
            if (pos != std::string::npos)
                pretty.replace(pos, raw.size(), name);
        }
        for (const auto &[id, name] : byId) {
            for (const std::string key :
                 {" src=" + std::to_string(id),
                  " dst=" + std::to_string(id),
                  " target=" + std::to_string(id)}) {
                auto pos = pretty.find(key);
                while (pos != std::string::npos) {
                    const auto eq = pretty.find('=', pos);
                    pretty.replace(eq + 1,
                                   key.size() - (eq - pos) - 1, name);
                    pos = pretty.find(key);
                }
            }
        }
        std::printf("  (%u) %s\n", ++step, pretty.c_str());
    });

    done = false;
    system.l1(0).coreRequest(0x1000, false, [&done] { done = true; });
    eventq.run();
    neo_assert(done, "GetS did not complete");
    system.setTrace(nullptr);

    std::printf("  final: C1=%s C4=%s; checker: %s\n\n",
                permName(system.l1(0).blockPerm(0x1000)),
                permName(system.l1(3).blockPerm(0x1000)),
                system.checker().check().empty() ? "coherent"
                                                 : "VIOLATION");
}

} // namespace

int
main()
{
    setQuiet(true);
    runScenario(ProtocolVariant::NeoMESI);
    runScenario(ProtocolVariant::NSMESI);
    runScenario(ProtocolVariant::NSMOESI);
    std::printf("Compare the message counts and who touches the data: "
                "NeoMESI relays through\nthe tree; NS-MESI saves the "
                "C6 hop; NS-MOESI leaves C4 as the owner in O.\n");
    return 0;
}
