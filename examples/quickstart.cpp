/**
 * @file
 * Quickstart: build a hierarchy, run a workload, read the statistics.
 *
 * This is the 60-second tour of the library:
 *   1. describe a cache tree (any shape — NeoMESI is verified for all
 *      of them),
 *   2. pick a protocol variant,
 *   3. drive it with a synthetic workload,
 *   4. check coherence and print the numbers.
 */

#include <cstdio>
#include <iostream>

#include "core/sim_runner.hpp"
#include "sim/stats.hpp"

using namespace neo;

int
main()
{
    // 1. A small 2-level hierarchy: root L3 over two L2s, two L1s each.
    HierarchySpec spec;
    spec.name = "quickstart";
    spec.protocol = ProtocolVariant::NeoMESI;
    spec.root.geom = CacheGeometry{256 * 1024, 8, 64, 10};
    for (int i = 0; i < 2; ++i) {
        TreeNodeSpec l2{CacheGeometry{64 * 1024, 4, 64, 4}, {}};
        for (int j = 0; j < 2; ++j)
            l2.children.push_back(
                TreeNodeSpec{CacheGeometry{8 * 1024, 2, 64, 1}, {}});
        spec.root.children.push_back(l2);
    }

    // 2..3. A sharing-heavy workload on 4 cores, 2 perturbed trials.
    WorkloadParams wl;
    wl.name = "quickstart-mix";
    wl.privateBlocksPerCore = 64;
    wl.sharedBlocks = 32;
    wl.sharedFraction = 0.25;
    wl.sharedWriteFraction = 0.4;

    RunConfig cfg;
    cfg.opsPerCore = 20000;
    const RunResult r = runOnce(spec, wl, cfg);

    // 4. Results.
    std::printf("protocol        : %s\n",
                protocolName(spec.protocol));
    std::printf("simulated cycles: %llu\n",
                static_cast<unsigned long long>(r.runtime));
    std::printf("L1 accesses     : %llu (%.1f%% hits)\n",
                static_cast<unsigned long long>(r.l1Hits + r.l1Misses),
                100.0 * static_cast<double>(r.l1Hits) /
                    static_cast<double>(r.l1Hits + r.l1Misses));
    std::printf("network messages: %llu\n",
                static_cast<unsigned long long>(r.networkMessages));
    std::printf("blocked at dirs : %.2f%% (L2)  %.2f%% (root)\n",
                100.0 * r.blockedL2Fraction(),
                100.0 * r.blockedL3Fraction());
    if (r.violations.empty() && !r.deadlocked) {
        std::printf("coherence       : OK (Neo-sum checker passed)\n");
        return 0;
    }
    for (const auto &v : r.violations)
        std::printf("VIOLATION: %s\n", v.c_str());
    return 1;
}
