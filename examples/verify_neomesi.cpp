/**
 * @file
 * Push-button verification of NeoMESI, end to end.
 *
 * Runs the full Neo methodology (§2.5) against the NeoMESI models:
 *   Antecedent 1 — the flat Closed and Open Neo Systems satisfy Neo
 *                  safety;
 *   Antecedent 2 — the flat Open Neo System implements a leaf (the
 *                  Safe Composition Invariant, modified methodology);
 *   Parametric   — view-abstraction cutoff convergence extends both
 *                  to every instance size.
 *
 * If every check prints VERIFIED, the Neo theory licenses composing
 * these subprotocols into ANY tree: any arity, any depth, unbalanced
 * or not — the paper's headline property.
 */

#include <cstdio>

#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/parametric.hpp"

using namespace neo;
using namespace neo::verif;

int
main()
{
    const VerifFeatures f = VerifFeatures::neoMESI();
    const ExploreLimits lim{8'000'000, 600.0};
    bool all_ok = true;

    std::printf("Verifying NeoMESI (%s) with the Neo methodology\n\n",
                f.describe().c_str());

    std::printf("[Antecedent 1] Neo safety of the flat systems:\n");
    for (std::size_t n : {2u, 3u, 4u}) {
        ModelShape shape;
        const auto c =
            explore(buildClosedModel(n, f, shape), lim, false, false);
        const auto o = explore(
            buildOpenModel(n, f, CompositionMethod::None, shape), lim,
            false, false);
        std::printf("  N=%zu: closed %-9s (%7llu states)   open %-9s "
                    "(%7llu states)\n",
                    n, verifStatusName(c.status),
                    static_cast<unsigned long long>(c.statesExplored),
                    verifStatusName(o.status),
                    static_cast<unsigned long long>(o.statesExplored));
        all_ok = all_ok && c.status == VerifStatus::Verified &&
                 o.status == VerifStatus::Verified;
    }

    std::printf("\n[Antecedent 2] Safe Composition Invariant "
                "(modified methodology, §4.1.3):\n");
    for (std::size_t n : {2u, 3u, 4u}) {
        ModelShape shape;
        const auto r = explore(
            buildOpenModel(n, f, CompositionMethod::Modified, shape),
            lim, false, false);
        std::printf("  N=%zu: %-9s (%7llu states) — every Omega "
                    "transition matched by a leaf\n",
                    n, verifStatusName(r.status),
                    static_cast<unsigned long long>(r.statesExplored));
        all_ok = all_ok && r.status == VerifStatus::Verified;
    }

    std::printf("\n[Parametric] view-abstraction cutoff:\n");
    const auto pc = verifyParametric(closedModelFactory(f), 1, 7, lim);
    std::printf("  closed: %s — %s\n", verifStatusName(pc.status),
                pc.detail.c_str());
    const auto po = verifyParametric(
        openModelFactory(f, CompositionMethod::Modified), 1, 7, lim);
    std::printf("  open:   %s — %s\n", verifStatusName(po.status),
                po.detail.c_str());
    all_ok = all_ok && pc.converged && po.converged;

    if (all_ok) {
        std::printf("\n=> NeoMESI is verified for EVERY tree "
                    "configuration. Compose away.\n");
        return 0;
    }
    std::printf("\nSome check failed — see above.\n");
    return 1;
}
