#include "core_model.hpp"

namespace neo
{

CoreModel::CoreModel(std::string name, EventQueue &eventq, CoreId id,
                     L1Controller &l1, WorkloadGen &workload,
                     std::uint64_t num_ops, FinishedFn on_finish)
    : SimObject(std::move(name), eventq), id_(id), l1_(l1),
      workload_(workload), numOps_(num_ops),
      onFinish_(std::move(on_finish))
{
}

void
CoreModel::start()
{
    issueNext();
}

void
CoreModel::issueNext()
{
    if (opsDone_ >= numOps_) {
        finishTick_ = curTick();
        if (onFinish_)
            onFinish_(id_);
        return;
    }
    const MemOp op = workload_.next(id_);
    eventq().schedule(curTick() + op.think, [this, op]() {
        l1_.coreRequest(op.addr, op.write, [this]() {
            ++opsDone_;
            issueNext();
        });
    });
}

} // namespace neo
