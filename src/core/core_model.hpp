/**
 * @file
 * In-order core model (Table 1: 32 in-order x86 cores at 2 GHz).
 *
 * Each core replays a synthetic workload stream: think for the op's
 * compute gap, issue the memory op to its L1, stall until completion,
 * repeat. Runtime for the Figure 8-10 experiments is the tick at which
 * the last core finishes its quota of operations.
 */

#ifndef NEO_CORE_CORE_MODEL_HPP
#define NEO_CORE_CORE_MODEL_HPP

#include <functional>

#include "protocol/l1_controller.hpp"
#include "sim/sim_object.hpp"
#include "workload/workload.hpp"

namespace neo
{

class CoreModel : public SimObject
{
  public:
    using FinishedFn = std::function<void(CoreId)>;

    CoreModel(std::string name, EventQueue &eventq, CoreId id,
              L1Controller &l1, WorkloadGen &workload,
              std::uint64_t num_ops, FinishedFn on_finish);

    /** Begin replaying the stream. */
    void start();

    bool finished() const { return opsDone_ >= numOps_; }
    Tick finishTick() const { return finishTick_; }
    std::uint64_t opsDone() const { return opsDone_; }

  private:
    void issueNext();

    CoreId id_;
    L1Controller &l1_;
    WorkloadGen &workload_;
    std::uint64_t numOps_;
    std::uint64_t opsDone_ = 0;
    Tick finishTick_ = 0;
    FinishedFn onFinish_;
};

} // namespace neo

#endif // NEO_CORE_CORE_MODEL_HPP
