#include "sim_runner.hpp"

#include <iostream>
#include <memory>
#include <sstream>

#include "core/core_model.hpp"

namespace neo
{

RunResult
runOnce(const HierarchySpec &spec, const WorkloadParams &workload,
        const RunConfig &cfg)
{
    EventQueue eventq;
    System system(spec, eventq);

    const auto num_cores = static_cast<unsigned>(system.numL1s());
    WorkloadGen gen(workload, num_cores, spec.root.geom.blockSize,
                    cfg.seed);

    std::vector<std::unique_ptr<CoreModel>> cores;
    unsigned finished = 0;
    Tick last_finish = 0;
    for (unsigned c = 0; c < num_cores; ++c) {
        std::ostringstream name;
        name << "core_" << c;
        cores.push_back(std::make_unique<CoreModel>(
            name.str(), eventq, c, system.l1(c), gen, cfg.opsPerCore,
            [&finished, &last_finish, &eventq](CoreId) {
                ++finished;
                last_finish = eventq.curTick();
            }));
    }
    for (auto &core : cores)
        core->start();

    eventq.run(maxTick, cfg.maxEvents);

    RunResult result;
    result.runtime = last_finish;
    result.deadlocked = finished != num_cores;
    if (result.deadlocked) {
        neo_warn(spec.name, "/", workload.name, ": only ", finished,
                 " of ", num_cores, " cores finished (deadlock?)");
    }

    for (std::size_t i = 0; i < system.numL1s(); ++i) {
        const auto &l1 = system.l1(i);
        result.l1Hits += l1.hits().value();
        result.l1Misses += l1.misses().value();
        result.l1Upgrades += l1.upgrades().value();
        result.nonSiblingData += l1.nonSiblingData().value();
    }
    const auto leaf_dirs = system.leafLevelDirs();
    for (std::size_t i = 0; i < system.numDirs(); ++i) {
        const auto &dir = system.dir(i);
        const bool is_leaf_level =
            std::find(leaf_dirs.begin(), leaf_dirs.end(), &dir) !=
            leaf_dirs.end();
        if (is_leaf_level && !dir.isRoot()) {
            result.l2Requests += dir.requestArrivals().value();
            result.l2Blocked += dir.blockedArrivals().value();
        } else {
            result.l3Requests += dir.requestArrivals().value();
            result.l3Blocked += dir.blockedArrivals().value();
        }
    }
    result.networkMessages = system.network().messageCount().value();

    if (cfg.checkCoherence) {
        if (!system.checker().quiescent()) {
            result.violations.push_back(
                "system not quiescent at end of run");
        }
        auto v = system.checker().check();
        result.violations.insert(result.violations.end(), v.begin(),
                                 v.end());
    }

    if (cfg.dumpStats) {
        StatGroup group(spec.name + "/" + workload.name);
        system.addStats(group);
        group.print(std::cout);
    }
    return result;
}

TrialSummary
runTrials(const HierarchySpec &spec, const WorkloadParams &workload,
          const RunConfig &base, unsigned trials)
{
    TrialSummary summary;
    for (unsigned t = 0; t < trials; ++t) {
        RunConfig cfg = base;
        cfg.seed = base.seed + t * 7919;
        const RunResult r = runOnce(spec, workload, cfg);
        summary.runtime.sample(static_cast<double>(r.runtime));
        summary.nonSiblingFraction.sample(r.nonSiblingFraction());
        summary.blockedL2.sample(r.blockedL2Fraction());
        summary.blockedL3.sample(r.blockedL3Fraction());
        const auto accesses = r.l1Hits + r.l1Misses;
        summary.missRate.sample(
            accesses ? static_cast<double>(r.l1Misses) /
                           static_cast<double>(accesses)
                     : 0.0);
        if (!r.violations.empty() || r.deadlocked)
            summary.allCoherent = false;
    }
    return summary;
}

} // namespace neo
