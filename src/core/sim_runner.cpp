#include "sim_runner.hpp"

#include <iostream>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "core/core_model.hpp"
#include "sim/exit_codes.hpp"
#include "sim/watchdog.hpp"

namespace neo
{

RunResult
runOnce(const HierarchySpec &spec, const WorkloadParams &workload,
        const RunConfig &cfg)
{
    EventQueue eventq;
    System system(spec, eventq);

    RecoveryParams recovery = cfg.recovery;
    // Default reissue timeout: comfortably above the natural tail
    // latency of a Table-1 hierarchy, so a fault-injected run with no
    // drops sees zero spurious retries.
    if (cfg.faults.enabled() && recovery.timeout == 0)
        recovery.timeout = 20000;
    if (cfg.faults.enabled() || recovery.enabled())
        system.configureResilience(cfg.faults, recovery);

    // Debug aid: NEO_TRACE_ADDR=0x<addr> streams every controller
    // send/recv touching that block to stderr, tick-stamped. Useful
    // for replaying a fault campaign's postmortem one address at a
    // time.
    if (const char *ta = std::getenv("NEO_TRACE_ADDR")) {
        std::ostringstream os;
        os << "0x" << std::hex << std::strtoull(ta, nullptr, 0);
        system.setTrace([&eventq, want = os.str()](
                            const std::string &line) {
            if (line.find(want) != std::string::npos)
                std::cerr << eventq.curTick() << " " << line << "\n";
        });
    }

    const auto num_cores = static_cast<unsigned>(system.numL1s());
    WorkloadGen gen(workload, num_cores, spec.root.geom.blockSize,
                    cfg.seed);

    std::vector<std::unique_ptr<CoreModel>> cores;
    std::unique_ptr<ProgressWatchdog> watchdog;
    unsigned finished = 0;
    Tick last_finish = 0;
    for (unsigned c = 0; c < num_cores; ++c) {
        std::ostringstream name;
        name << "core_" << c;
        cores.push_back(std::make_unique<CoreModel>(
            name.str(), eventq, c, system.l1(c), gen, cfg.opsPerCore,
            [&finished, &last_finish, &eventq, &watchdog,
             num_cores](CoreId) {
                ++finished;
                last_finish = eventq.curTick();
                if (finished == num_cores && watchdog)
                    watchdog->stop();
            }));
    }

    auto collect_postmortem = [&]() {
        std::ostringstream os;
        os << "tick " << eventq.curTick() << ": " << eventq.pending()
           << " events pending, "
           << system.network().parkedCount().value()
           << " messages parked on dead links, " << finished << "/"
           << num_cores << " cores done\n";
        for (std::size_t i = 0; i < system.numDirs(); ++i)
            os << system.dir(i).debugDump();
        for (std::size_t i = 0; i < system.numL1s(); ++i)
            if (system.l1(i).busy() || !system.l1(i).quiescent())
                os << system.l1(i).debugDump();
        return os.str();
    };

    bool wd_fired = false;
    Tick wd_tick = 0;
    std::string postmortem;
    if (cfg.watchdogInterval > 0) {
        watchdog = std::make_unique<ProgressWatchdog>(
            "watchdog", eventq, cfg.watchdogInterval,
            [&](Tick t) {
                wd_fired = true;
                wd_tick = t;
                postmortem = collect_postmortem();
                eventq.requestStop();
            });
        watchdog->setStrikeLimit(cfg.watchdogStrikes);
        for (auto &core : cores) {
            watchdog->addPrimaryProbe(
                [c = core.get()] { return c->opsDone(); });
        }
        watchdog->addSecondaryProbe([net = &system.network()] {
            return net->deliveredCount().value();
        });
        watchdog->start();
    }

    for (auto &core : cores)
        core->start();

    eventq.run(maxTick, cfg.maxEvents);

    RunResult result;
    result.runtime = last_finish;
    result.deadlocked = finished != num_cores;
    result.watchdogFired = wd_fired;
    result.watchdogTick = wd_tick;
    result.postmortem = std::move(postmortem);
    if (result.deadlocked) {
        if (result.postmortem.empty())
            result.postmortem = collect_postmortem();
        neo_warn(spec.name, "/", workload.name, ": only ", finished,
                 " of ", num_cores, " cores finished (",
                 wd_fired ? "watchdog fired" : "quiescent deadlock",
                 ")\n", result.postmortem);
    }

    double latency_sum = 0.0;
    for (std::size_t i = 0; i < system.numL1s(); ++i) {
        const auto &l1 = system.l1(i);
        result.l1Hits += l1.hits().value();
        result.l1Misses += l1.misses().value();
        result.l1Upgrades += l1.upgrades().value();
        result.nonSiblingData += l1.nonSiblingData().value();
        result.retries += l1.retries().value();
        result.staleDrops += l1.staleDrops().value();
        result.dupDrops += l1.dupDrops().value();
        result.recoveredTxns += l1.recoveryLatency().count();
        latency_sum += l1.recoveryLatency().mean() *
                       static_cast<double>(l1.recoveryLatency().count());
    }
    if (result.recoveredTxns != 0) {
        result.recoveryLatencyMean =
            latency_sum / static_cast<double>(result.recoveredTxns);
    }
    const auto leaf_dirs = system.leafLevelDirs();
    for (std::size_t i = 0; i < system.numDirs(); ++i) {
        const auto &dir = system.dir(i);
        const bool is_leaf_level =
            std::find(leaf_dirs.begin(), leaf_dirs.end(), &dir) !=
            leaf_dirs.end();
        if (is_leaf_level && !dir.isRoot()) {
            result.l2Requests += dir.requestArrivals().value();
            result.l2Blocked += dir.blockedArrivals().value();
        } else {
            result.l3Requests += dir.requestArrivals().value();
            result.l3Blocked += dir.blockedArrivals().value();
        }
    }
    for (std::size_t i = 0; i < system.numDirs(); ++i) {
        const auto &dir = system.dir(i);
        result.redrives += dir.redrives().value();
        result.staleDrops += dir.staleDrops().value();
        result.dupDrops += dir.dupDrops().value();
    }
    if (const FaultInjector *fi = system.faultInjector()) {
        result.faultDrops = fi->drops();
        result.faultDups = fi->dups();
        result.faultDelays = fi->delays();
        result.faultHolds = fi->holds();
    }
    result.networkMessages = system.network().messageCount().value();

    // A hung run is reported as a deadlock, not a violation: the
    // system is necessarily non-quiescent and the permission sums of
    // in-flight transients are not meaningful to the checker.
    if (cfg.checkCoherence && !result.deadlocked) {
        if (!system.checker().quiescent()) {
            result.violations.push_back(
                "system not quiescent at end of run:\n" +
                collect_postmortem());
        }
        auto v = system.checker().check();
        result.violations.insert(result.violations.end(), v.begin(),
                                 v.end());
    }

    if (cfg.dumpStats) {
        StatGroup group(spec.name + "/" + workload.name);
        system.addStats(group);
        group.print(std::cout);
    }
    return result;
}

int
exitCodeFor(const RunResult &result)
{
    if (!result.violations.empty())
        return kExitViolation;
    if (result.watchdogFired)
        return kExitWatchdog;
    if (result.deadlocked)
        return kExitDeadlock;
    return kExitClean;
}

TrialSummary
runTrials(const HierarchySpec &spec, const WorkloadParams &workload,
          const RunConfig &base, unsigned trials)
{
    TrialSummary summary;
    for (unsigned t = 0; t < trials; ++t) {
        RunConfig cfg = base;
        cfg.seed = base.seed + t * 7919;
        const RunResult r = runOnce(spec, workload, cfg);
        summary.runtime.sample(static_cast<double>(r.runtime));
        summary.nonSiblingFraction.sample(r.nonSiblingFraction());
        summary.blockedL2.sample(r.blockedL2Fraction());
        summary.blockedL3.sample(r.blockedL3Fraction());
        const auto accesses = r.l1Hits + r.l1Misses;
        summary.missRate.sample(
            accesses ? static_cast<double>(r.l1Misses) /
                           static_cast<double>(accesses)
                     : 0.0);
        if (!r.violations.empty() || r.deadlocked)
            summary.allCoherent = false;
    }
    return summary;
}

} // namespace neo
