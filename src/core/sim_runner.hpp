/**
 * @file
 * Experiment driver: one full simulation = hierarchy + protocol +
 * workload + seed. Multi-trial runs reproduce the paper's methodology
 * of averaging perturbed runs and reporting +/- one standard deviation
 * (Alameldeen & Wood, HPCA 2003).
 */

#ifndef NEO_CORE_SIM_RUNNER_HPP
#define NEO_CORE_SIM_RUNNER_HPP

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "sim/stats.hpp"
#include "workload/workload.hpp"

namespace neo
{

/** Aggregate outcome of one simulation. */
struct RunResult
{
    Tick runtime = 0; ///< tick at which the last core finished
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l1Upgrades = 0;
    std::uint64_t nonSiblingData = 0;
    std::uint64_t l2Requests = 0;
    std::uint64_t l2Blocked = 0;
    std::uint64_t l3Requests = 0;
    std::uint64_t l3Blocked = 0;
    std::uint64_t networkMessages = 0;
    bool deadlocked = false;
    std::vector<std::string> violations; ///< coherence checker output

    // Fault-campaign outcome (all zero on fault-free runs).
    bool watchdogFired = false;
    Tick watchdogTick = 0;
    /** Controller dumps + queue summary captured at the hang. */
    std::string postmortem;
    std::uint64_t retries = 0;      ///< L1 timeout reissues
    std::uint64_t staleDrops = 0;   ///< stale messages absorbed
    std::uint64_t dupDrops = 0;     ///< transport duplicates filtered
    std::uint64_t redrives = 0;     ///< directory sweep re-drives
    std::uint64_t faultDrops = 0;
    std::uint64_t faultDups = 0;
    std::uint64_t faultDelays = 0;
    std::uint64_t faultHolds = 0;
    std::uint64_t recoveredTxns = 0; ///< misses needing >= 1 reissue
    double recoveryLatencyMean = 0.0;

    double
    nonSiblingFraction() const
    {
        const auto total = l1Misses + l1Upgrades;
        return total ? static_cast<double>(nonSiblingData) /
                           static_cast<double>(total)
                     : 0.0;
    }
    double
    blockedL2Fraction() const
    {
        return l2Requests ? static_cast<double>(l2Blocked) /
                                static_cast<double>(l2Requests)
                          : 0.0;
    }
    double
    blockedL3Fraction() const
    {
        return l3Requests ? static_cast<double>(l3Blocked) /
                                static_cast<double>(l3Requests)
                          : 0.0;
    }
};

struct RunConfig
{
    std::uint64_t opsPerCore = 20000;
    std::uint64_t seed = 1;
    /** Run the coherence checker at the end of the simulation. */
    bool checkCoherence = true;
    /** Dump every controller/network statistic to stdout at the end. */
    bool dumpStats = false;
    /** Hard event cap as a runaway/deadlock backstop. */
    std::uint64_t maxEvents = 2'000'000'000ULL;

    /** Transport faults to inject (default: none). */
    FaultParams faults;
    /** Protocol recovery knobs. When faults are enabled and
     *  recovery.timeout is 0, runOnce defaults it to 20000 ticks. */
    RecoveryParams recovery;
    /** Watchdog sampling window in ticks; 0 disables the watchdog. */
    Tick watchdogInterval = 0;
    /** Primary-silent windows tolerated while the network still moves. */
    unsigned watchdogStrikes = 4;
};

/** Execute one simulation to completion. */
RunResult runOnce(const HierarchySpec &spec,
                  const WorkloadParams &workload, const RunConfig &cfg);

/**
 * Process exit code for one run: 1 = coherence violation,
 * 4 = watchdog fired, 3 = quiescent deadlock, 0 = clean.
 * Violations dominate (a violated run that also hung is reported as
 * a violation).
 */
int exitCodeFor(const RunResult &result);

/** Multi-trial summary for one (protocol, organization, benchmark). */
struct TrialSummary
{
    SampleStat runtime{"runtime"};
    SampleStat nonSiblingFraction{"ns_fraction"};
    SampleStat blockedL2{"blocked_l2"};
    SampleStat blockedL3{"blocked_l3"};
    SampleStat missRate{"miss_rate"};
    bool allCoherent = true;
};

TrialSummary runTrials(const HierarchySpec &spec,
                       const WorkloadParams &workload,
                       const RunConfig &base, unsigned trials);

} // namespace neo

#endif // NEO_CORE_SIM_RUNNER_HPP
