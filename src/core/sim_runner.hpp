/**
 * @file
 * Experiment driver: one full simulation = hierarchy + protocol +
 * workload + seed. Multi-trial runs reproduce the paper's methodology
 * of averaging perturbed runs and reporting +/- one standard deviation
 * (Alameldeen & Wood, HPCA 2003).
 */

#ifndef NEO_CORE_SIM_RUNNER_HPP
#define NEO_CORE_SIM_RUNNER_HPP

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "sim/stats.hpp"
#include "workload/workload.hpp"

namespace neo
{

/** Aggregate outcome of one simulation. */
struct RunResult
{
    Tick runtime = 0; ///< tick at which the last core finished
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l1Upgrades = 0;
    std::uint64_t nonSiblingData = 0;
    std::uint64_t l2Requests = 0;
    std::uint64_t l2Blocked = 0;
    std::uint64_t l3Requests = 0;
    std::uint64_t l3Blocked = 0;
    std::uint64_t networkMessages = 0;
    bool deadlocked = false;
    std::vector<std::string> violations; ///< coherence checker output

    double
    nonSiblingFraction() const
    {
        const auto total = l1Misses + l1Upgrades;
        return total ? static_cast<double>(nonSiblingData) /
                           static_cast<double>(total)
                     : 0.0;
    }
    double
    blockedL2Fraction() const
    {
        return l2Requests ? static_cast<double>(l2Blocked) /
                                static_cast<double>(l2Requests)
                          : 0.0;
    }
    double
    blockedL3Fraction() const
    {
        return l3Requests ? static_cast<double>(l3Blocked) /
                                static_cast<double>(l3Requests)
                          : 0.0;
    }
};

struct RunConfig
{
    std::uint64_t opsPerCore = 20000;
    std::uint64_t seed = 1;
    /** Run the coherence checker at the end of the simulation. */
    bool checkCoherence = true;
    /** Dump every controller/network statistic to stdout at the end. */
    bool dumpStats = false;
    /** Hard event cap as a runaway/deadlock backstop. */
    std::uint64_t maxEvents = 2'000'000'000ULL;
};

/** Execute one simulation to completion. */
RunResult runOnce(const HierarchySpec &spec,
                  const WorkloadParams &workload, const RunConfig &cfg);

/** Multi-trial summary for one (protocol, organization, benchmark). */
struct TrialSummary
{
    SampleStat runtime{"runtime"};
    SampleStat nonSiblingFraction{"ns_fraction"};
    SampleStat blockedL2{"blocked_l2"};
    SampleStat blockedL3{"blocked_l3"};
    SampleStat missRate{"miss_rate"};
    bool allCoherent = true;
};

TrialSummary runTrials(const HierarchySpec &spec,
                       const WorkloadParams &workload,
                       const RunConfig &base, unsigned trials);

} // namespace neo

#endif // NEO_CORE_SIM_RUNNER_HPP
