#include "system.hpp"

#include <sstream>

namespace neo
{

CacheGeometry
table1L1()
{
    // 32 KB, 2-way, 2-cycle, 64 B blocks.
    return CacheGeometry{32 * 1024, 2, 64, 2};
}

CacheGeometry
table1L2()
{
    // 4 MB, 8-way, 6-cycle, unbanked.
    return CacheGeometry{4ULL * 1024 * 1024, 8, 64, 6};
}

CacheGeometry
table1L3()
{
    // 64 MB, 16-way, 16-cycle, unbanked.
    return CacheGeometry{64ULL * 1024 * 1024, 16, 64, 16};
}

namespace
{

TreeNodeSpec
l1Leaf()
{
    return TreeNodeSpec{table1L1(), {}};
}

TreeNodeSpec
l2With(unsigned num_l1s)
{
    TreeNodeSpec l2{table1L2(), {}};
    for (unsigned i = 0; i < num_l1s; ++i)
        l2.children.push_back(l1Leaf());
    return l2;
}

HierarchySpec
baseSpec(ProtocolVariant v)
{
    HierarchySpec spec;
    spec.protocol = v;
    spec.root.geom = table1L3();
    spec.network = NetworkParams{};
    return spec;
}

} // namespace

HierarchySpec
skewedOrg(ProtocolVariant v)
{
    // Fig. 7A: 16 cores with private L1+L2, plus 16 cores behind one
    // shared L2, all under the unified L3.
    HierarchySpec spec = baseSpec(v);
    spec.name = "Skewed";
    for (unsigned i = 0; i < 16; ++i)
        spec.root.children.push_back(l2With(1));
    spec.root.children.push_back(l2With(16));
    return spec;
}

HierarchySpec
twoCoresPerL2Org(ProtocolVariant v)
{
    // Fig. 7B: 16 L2s, 2 cores each.
    HierarchySpec spec = baseSpec(v);
    spec.name = "2 Cores per L2";
    for (unsigned i = 0; i < 16; ++i)
        spec.root.children.push_back(l2With(2));
    return spec;
}

HierarchySpec
eightCoresPerL2Org(ProtocolVariant v)
{
    // Fig. 7C: 4 L2s, 8 cores each.
    HierarchySpec spec = baseSpec(v);
    spec.name = "8 Cores per L2";
    for (unsigned i = 0; i < 4; ++i)
        spec.root.children.push_back(l2With(8));
    return spec;
}

HierarchySpec
organizationByName(const std::string &name, ProtocolVariant v)
{
    if (name == "skewed")
        return skewedOrg(v);
    if (name == "2perL2")
        return twoCoresPerL2Org(v);
    if (name == "8perL2")
        return eightCoresPerL2Org(v);
    neo_fatal("unknown organization: ", name);
}

System::System(const HierarchySpec &spec, EventQueue &eventq)
    : spec_(spec), cfg_(ProtocolConfig::forVariant(spec.protocol))
{
    neo_assert(!spec.root.children.empty(),
               "the root must have children");
    dram_ = std::make_unique<DramModel>(spec.dramBytes, spec.dramLatency);
    net_ = std::make_unique<TreeNetwork>(spec.name + ".net", eventq,
                                         spec.network);
    build(spec.root, invalidNode, 0, eventq);
    checker_ = std::make_unique<CoherenceChecker>(*net_);
    for (auto &d : dirs_)
        checker_->addDir(d.get());
    for (auto &l : l1s_)
        checker_->addL1(l.get());
}

void
System::build(const TreeNodeSpec &node, NodeId parent, unsigned depth,
              EventQueue &eventq)
{
    if (node.children.empty()) {
        std::ostringstream name;
        name << "l1_" << l1s_.size();
        l1s_.push_back(std::make_unique<L1Controller>(
            name.str(), eventq, *net_, parent, node.geom, cfg_));
        return;
    }
    std::ostringstream name;
    name << (parent == invalidNode ? "root" : "dir") << "_"
         << dirs_.size();
    dirs_.push_back(std::make_unique<DirController>(
        name.str(), eventq, *net_, parent, node.geom, cfg_,
        parent == invalidNode ? dram_.get() : nullptr));
    const NodeId self = dirs_.back()->nodeId();
    for (const auto &child : node.children)
        build(child, self, depth + 1, eventq);
}

void
System::configureResilience(const FaultParams &faults,
                            const RecoveryParams &rec)
{
    if (faults.enabled()) {
        injector_ = std::make_unique<FaultInjector>(faults);
        net_->setFaultInjector(injector_.get());
    }
    if (rec.enabled()) {
        for (auto &d : dirs_)
            d->setResilience(rec);
        for (auto &l : l1s_)
            l->setResilience(rec);
    }
}

void
System::setTrace(const std::function<void(const std::string &)> &fn)
{
    for (auto &d : dirs_)
        d->setTrace(fn);
    for (auto &l : l1s_)
        l->setTrace(fn);
}

std::vector<const DirController *>
System::leafLevelDirs() const
{
    std::vector<const DirController *> out;
    for (const auto &d : dirs_) {
        bool all_leaves = true;
        for (NodeId c : net_->childrenOf(d->nodeId())) {
            bool is_l1 = false;
            for (const auto &l : l1s_)
                if (l->nodeId() == c)
                    is_l1 = true;
            if (!is_l1)
                all_leaves = false;
        }
        if (all_leaves)
            out.push_back(d.get());
    }
    return out;
}

void
System::addStats(StatGroup &group) const
{
    net_->addStats(group);
    for (const auto &d : dirs_)
        d->addStats(group);
    for (const auto &l : l1s_)
        l->addStats(group);
}

} // namespace neo
