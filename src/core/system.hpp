/**
 * @file
 * Whole-system assembly: an arbitrary cache-tree hierarchy running one
 * of the four protocol variants.
 *
 * A HierarchySpec is a recursive tree description — NeoMESI is verified
 * for every tree configuration, so the builder accepts any arity at
 * any node and any depth (§3: "the protocol does not assume symmetry
 * or balance in the tree hierarchy").
 */

#ifndef NEO_CORE_SYSTEM_HPP
#define NEO_CORE_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "mem/dram.hpp"
#include "network/tree_network.hpp"
#include "protocol/coherence_checker.hpp"
#include "protocol/dir_controller.hpp"
#include "protocol/l1_controller.hpp"
#include "protocol/protocol_config.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"

namespace neo
{

/** Recursive description of one tree node. */
struct TreeNodeSpec
{
    /** Geometry of this node's cache (L1 for leaves, L2/L3+directory
     *  for internal nodes). */
    CacheGeometry geom;
    /** Children; empty means this node is an L1 leaf. */
    std::vector<TreeNodeSpec> children;
};

struct HierarchySpec
{
    std::string name = "system";
    TreeNodeSpec root;
    NetworkParams network;
    ProtocolVariant protocol = ProtocolVariant::NeoMESI;
    std::uint64_t dramBytes = 2ULL << 30;
    Tick dramLatency = 160;
};

/** Table 1 cache geometries. */
CacheGeometry table1L1();
CacheGeometry table1L2();
CacheGeometry table1L3();

/**
 * The three Figure 7 cache organizations, 32 cores each.
 * @{
 */
HierarchySpec skewedOrg(ProtocolVariant v);
HierarchySpec twoCoresPerL2Org(ProtocolVariant v);
HierarchySpec eightCoresPerL2Org(ProtocolVariant v);
/** @} */

/** Organization lookup by name: "skewed", "2perL2", "8perL2". */
HierarchySpec organizationByName(const std::string &name,
                                 ProtocolVariant v);

/**
 * A fully wired hierarchy: network, root + intermediate directories,
 * L1s, DRAM, and a coherence checker over all of it.
 */
class System
{
  public:
    System(const HierarchySpec &spec, EventQueue &eventq);

    std::size_t numL1s() const { return l1s_.size(); }
    L1Controller &l1(std::size_t i) { return *l1s_.at(i); }
    const L1Controller &l1(std::size_t i) const { return *l1s_.at(i); }

    std::size_t numDirs() const { return dirs_.size(); }
    DirController &dir(std::size_t i) { return *dirs_.at(i); }
    DirController &root() { return *dirs_.front(); }

    TreeNetwork &network() { return *net_; }
    CoherenceChecker &checker() { return *checker_; }
    const HierarchySpec &spec() const { return spec_; }

    /** Install a trace callback on every controller. */
    void setTrace(const std::function<void(const std::string &)> &fn);

    /**
     * Arm fault injection and/or protocol recovery. When @p faults has
     * any rate or blackout configured, a FaultInjector (owned here) is
     * attached to the network; when @p rec is enabled, every controller
     * gets transaction serials, dedup, and timeout/backoff reissue.
     * Never calling this leaves runs bit-identical to pre-fault builds.
     */
    void configureResilience(const FaultParams &faults,
                             const RecoveryParams &rec);

    /** The attached injector, or nullptr when faults are off. */
    FaultInjector *faultInjector() { return injector_.get(); }

    /** Directories whose children are all leaves ("L2 level") vs the
     *  rest — used by the §5.3 blocked-fraction breakdown. */
    std::vector<const DirController *> leafLevelDirs() const;

    void addStats(StatGroup &group) const;

  private:
    void build(const TreeNodeSpec &node, NodeId parent, unsigned depth,
               EventQueue &eventq);

    HierarchySpec spec_;
    ProtocolConfig cfg_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<DramModel> dram_;
    std::unique_ptr<TreeNetwork> net_;
    std::vector<std::unique_ptr<DirController>> dirs_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::unique_ptr<CoherenceChecker> checker_;
};

} // namespace neo

#endif // NEO_CORE_SYSTEM_HPP
