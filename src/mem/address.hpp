/**
 * @file
 * Address slicing helpers. Cache-block granularity everywhere; the
 * block size is 64 B per Table 1 but kept as a runtime parameter.
 */

#ifndef NEO_MEM_ADDRESS_HPP
#define NEO_MEM_ADDRESS_HPP

#include <cstdint>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace neo
{

/** True iff v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/**
 * Slices addresses into (tag, set, offset) for a given geometry.
 */
class AddressMap
{
  public:
    AddressMap(std::uint64_t block_size, std::uint64_t num_sets)
        : blockBits_(log2i(block_size)), setBits_(log2i(num_sets))
    {
        neo_assert(isPowerOf2(block_size), "block size must be 2^k");
        neo_assert(isPowerOf2(num_sets), "set count must be 2^k");
    }

    Addr blockAlign(Addr a) const { return a >> blockBits_ << blockBits_; }
    std::uint64_t
    setIndex(Addr a) const
    {
        return (a >> blockBits_) & ((1ULL << setBits_) - 1);
    }
    Addr tag(Addr a) const { return a >> (blockBits_ + setBits_); }
    unsigned blockBits() const { return blockBits_; }

  private:
    unsigned blockBits_;
    unsigned setBits_;
};

} // namespace neo

#endif // NEO_MEM_ADDRESS_HPP
