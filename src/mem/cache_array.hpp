/**
 * @file
 * Generic set-associative tag/metadata array with true-LRU replacement.
 *
 * The array stores protocol-defined per-line entries (L1 line state,
 * directory entries, ...). Victim selection is split from allocation so
 * the coherence protocol can veto victims that are mid-transaction and
 * perform the recursive-invalidation work required by the inclusive
 * hierarchy before the line is actually dropped.
 */

#ifndef NEO_MEM_CACHE_ARRAY_HPP
#define NEO_MEM_CACHE_ARRAY_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/address.hpp"
#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace neo
{

/** Geometry + latency of one cache level (Table 1 rows). */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint64_t assoc = 1;
    std::uint64_t blockSize = 64;
    Tick accessLatency = 1;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (assoc * blockSize);
    }
};

template <typename EntryT>
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom)
        : geom_(geom), map_(geom.blockSize, geom.numSets()),
          ways_(geom.numSets() * geom.assoc)
    {
        neo_assert(geom.sizeBytes % (geom.assoc * geom.blockSize) == 0,
                   "cache size not divisible by assoc*block");
        neo_assert(isPowerOf2(geom.numSets()), "set count must be 2^k");
    }

    const CacheGeometry &geometry() const { return geom_; }
    const AddressMap &addressMap() const { return map_; }

    /** Find the entry for a block, or nullptr on miss. Updates LRU. */
    EntryT *
    find(Addr addr)
    {
        Way *w = lookup(addr);
        if (w == nullptr)
            return nullptr;
        w->lastUsed = ++useClock_;
        return &w->entry;
    }

    /** Find without disturbing LRU state. */
    EntryT *
    peek(Addr addr)
    {
        Way *w = lookup(addr);
        return w != nullptr ? &w->entry : nullptr;
    }

    const EntryT *
    peek(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->peek(addr);
    }

    /** True when the set holding @p addr has an invalid way free. */
    bool
    hasFreeWay(Addr addr) const
    {
        const std::uint64_t base = setBase(addr);
        for (std::uint64_t i = 0; i < geom_.assoc; ++i)
            if (!ways_[base + i].valid)
                return true;
        return false;
    }

    /**
     * Pick the LRU victim among valid ways of @p addr's set for which
     * @p evictable returns true. Returns the victim's block address.
     */
    std::optional<Addr>
    victimFor(Addr addr,
              const std::function<bool(Addr, const EntryT &)> &evictable)
        const
    {
        const std::uint64_t base = setBase(addr);
        const Way *best = nullptr;
        for (std::uint64_t i = 0; i < geom_.assoc; ++i) {
            const Way &w = ways_[base + i];
            if (!w.valid || !evictable(wayAddr(w, addr), w.entry))
                continue;
            if (best == nullptr || w.lastUsed < best->lastUsed)
                best = &w;
        }
        if (best == nullptr)
            return std::nullopt;
        return wayAddr(*best, addr);
    }

    /**
     * Install a fresh entry for @p addr in a free way. The caller must
     * have made room first (see victimFor / erase).
     */
    EntryT &
    allocate(Addr addr)
    {
        neo_assert(lookup(addr) == nullptr, "double allocate of block ",
                   addr);
        const std::uint64_t base = setBase(addr);
        for (std::uint64_t i = 0; i < geom_.assoc; ++i) {
            Way &w = ways_[base + i];
            if (!w.valid) {
                w.valid = true;
                w.tag = map_.tag(addr);
                w.lastUsed = ++useClock_;
                w.entry = EntryT{};
                ++allocated_;
                return w.entry;
            }
        }
        neo_panic("allocate with no free way for block ", addr);
    }

    /** Drop a block from the array. */
    void
    erase(Addr addr)
    {
        Way *w = lookup(addr);
        neo_assert(w != nullptr, "erasing non-resident block ", addr);
        w->valid = false;
        --allocated_;
    }

    /** Number of currently valid lines. */
    std::uint64_t occupancy() const { return allocated_; }

    /** Invoke fn(addr, entry) for every valid line. */
    void
    forEach(const std::function<void(Addr, EntryT &)> &fn)
    {
        for (std::uint64_t set = 0; set < geom_.numSets(); ++set) {
            for (std::uint64_t i = 0; i < geom_.assoc; ++i) {
                Way &w = ways_[set * geom_.assoc + i];
                if (w.valid)
                    fn(reconstruct(w.tag, set), w.entry);
            }
        }
    }

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUsed = 0;
        EntryT entry{};
    };

    std::uint64_t
    setBase(Addr addr) const
    {
        return map_.setIndex(addr) * geom_.assoc;
    }

    Way *
    lookup(Addr addr)
    {
        const std::uint64_t base = setBase(addr);
        const Addr tag = map_.tag(addr);
        for (std::uint64_t i = 0; i < geom_.assoc; ++i) {
            Way &w = ways_[base + i];
            if (w.valid && w.tag == tag)
                return &w;
        }
        return nullptr;
    }

    /** Rebuild the block address of a way that shares addr's set. */
    Addr
    wayAddr(const Way &w, Addr addr_in_set) const
    {
        return reconstruct(w.tag, map_.setIndex(addr_in_set));
    }

    Addr
    reconstruct(Addr tag, std::uint64_t set) const
    {
        const unsigned set_bits = log2i(geom_.numSets());
        return (tag << (set_bits + map_.blockBits())) |
               (set << map_.blockBits());
    }

    CacheGeometry geom_;
    AddressMap map_;
    std::vector<Way> ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t allocated_ = 0;
};

} // namespace neo

#endif // NEO_MEM_CACHE_ARRAY_HPP
