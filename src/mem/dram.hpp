/**
 * @file
 * Fixed-latency DRAM timing model (Table 1: 2 GB, 160-cycle access).
 *
 * Capacity is tracked only for sanity checks; the coherence state of
 * memory-resident blocks lives in the root directory (the hierarchy is
 * fully inclusive in metadata).
 */

#ifndef NEO_MEM_DRAM_HPP
#define NEO_MEM_DRAM_HPP

#include <cstdint>

#include "sim/types.hpp"

namespace neo
{

class DramModel
{
  public:
    DramModel(std::uint64_t capacity_bytes, Tick access_latency)
        : capacity_(capacity_bytes), latency_(access_latency)
    {
    }

    Tick accessLatency() const { return latency_; }
    std::uint64_t capacityBytes() const { return capacity_; }

    /** Latency of a read or write of one block starting now. */
    Tick
    access(Tick now)
    {
        // Single-channel occupancy: back-to-back accesses serialize.
        const Tick start = now > busyUntil_ ? now : busyUntil_;
        busyUntil_ = start + latency_;
        ++accesses_;
        return busyUntil_ - now;
    }

    std::uint64_t accesses() const { return accesses_; }

  private:
    std::uint64_t capacity_;
    Tick latency_;
    Tick busyUntil_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace neo

#endif // NEO_MEM_DRAM_HPP
