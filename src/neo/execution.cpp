#include "execution.hpp"

#include <sstream>

namespace neo
{

const char *
actionKindName(ActionKind k)
{
    switch (k) {
      case ActionKind::Input:
        return "input";
      case ActionKind::Output:
        return "output";
      case ActionKind::Internal:
      default:
        return "internal";
    }
}

Action
lambda()
{
    return Action{"lambda", ActionKind::Internal};
}

std::string
ExecutionSummary::str() const
{
    std::ostringstream os;
    os << permName(initialSum);
    for (const auto &step : steps) {
        os << ", "
           << (step.action.kind == ActionKind::Internal ? "lambda"
                                                        : step.action.name)
           << ", " << permName(step.sum);
    }
    return os.str();
}

ExecutionSummary
ExecutionSummary::compressStutter() const
{
    ExecutionSummary out;
    out.initialSum = initialSum;
    Perm prev = initialSum;
    for (const auto &step : steps) {
        if (step.action.kind == ActionKind::Internal && step.sum == prev)
            continue; // pure stutter
        out.steps.push_back(step);
        prev = step.sum;
    }
    return out;
}

bool
summariesMatch(const ExecutionSummary &omega, const ExecutionSummary &leaf)
{
    return omega.compressStutter() == leaf.compressStutter();
}

} // namespace neo
