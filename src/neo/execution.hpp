/**
 * @file
 * Executions and execution summaries (Section 2.3 of the paper).
 *
 * An execution of a Neo System is a sequence s0, a1, s1, ..., ak, sk of
 * states and actions. Its summary sum(e) substitutes each state with
 * its permission summary and each internal action with the silent
 * symbol lambda. The Safe Composition Invariant says every execution
 * of an Open Neo System Ω has a leaf execution with an identical
 * summary — then Ω "implements" the leaf.
 *
 * These types are the concrete artifact behind Figure 2 and are used
 * by the composition checker and the neo_executions example.
 */

#ifndef NEO_NEO_EXECUTION_HPP
#define NEO_NEO_EXECUTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "neo/permission.hpp"

namespace neo
{

/** Visibility class of a transition's action. */
enum class ActionKind : std::uint8_t { Input, Output, Internal };

const char *actionKindName(ActionKind k);

/** The label on one transition edge. */
struct Action
{
    std::string name;
    ActionKind kind = ActionKind::Internal;

    bool
    operator==(const Action &o) const
    {
        // Internal actions are all identified with lambda.
        if (kind == ActionKind::Internal &&
            o.kind == ActionKind::Internal) {
            return true;
        }
        return kind == o.kind && name == o.name;
    }
};

/** The canonical silent action. */
Action lambda();

/** One step of a summarized execution: the action taken and the
 *  permission summary of the state it leads to. */
struct SummaryStep
{
    Action action;
    Perm sum = Perm::I;

    bool
    operator==(const SummaryStep &o) const
    {
        return action == o.action && sum == o.sum;
    }
};

/**
 * A summarized execution: the summary of the start state followed by
 * (action, summary) steps.
 */
struct ExecutionSummary
{
    Perm initialSum = Perm::I;
    std::vector<SummaryStep> steps;

    bool
    operator==(const ExecutionSummary &o) const
    {
        return initialSum == o.initialSum && steps == o.steps;
    }

    /** Render like the paper's e_Omega listing. */
    std::string str() const;

    /**
     * The stuttering-insensitive core used by the implementation
     * relation in practice: drop lambda steps that do not change the
     * summary (a leaf matches them by stuttering).
     */
    ExecutionSummary compressStutter() const;
};

/**
 * Checks sum(e_L) == sum(e_Omega) modulo stuttering — i.e. whether the
 * leaf execution witnesses that Omega implements the leaf on this
 * behavior.
 */
bool summariesMatch(const ExecutionSummary &omega,
                    const ExecutionSummary &leaf);

} // namespace neo

#endif // NEO_NEO_EXECUTION_HPP
