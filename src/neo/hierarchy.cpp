#include "hierarchy.hpp"

#include <algorithm>
#include <sstream>

#include "sim/logging.hpp"

namespace neo
{

NeoNode
NeoNode::leaf(Perm p)
{
    NeoNode n;
    n.perm_ = p;
    n.internal_ = false;
    return n;
}

NeoNode
NeoNode::internal(Perm p)
{
    NeoNode n;
    n.perm_ = p;
    n.internal_ = true;
    return n;
}

NeoNode &
NeoNode::compose(NeoNode child)
{
    neo_assert(internal_, "only internal/root nodes compose children");
    children_.push_back(std::move(child));
    return *this;
}

Perm
NeoNode::sum() const
{
    if (isLeaf())
        return leafSum(perm_);
    std::vector<Perm> child_sums;
    child_sums.reserve(children_.size());
    for (const NeoNode &c : children_)
        child_sums.push_back(c.sum());
    return composeSum(perm_, child_sums);
}

std::size_t
NeoNode::size() const
{
    std::size_t n = 1;
    for (const NeoNode &c : children_)
        n += c.size();
    return n;
}

std::size_t
NeoNode::depth() const
{
    std::size_t d = 0;
    for (const NeoNode &c : children_)
        d = std::max(d, c.depth());
    return d + 1;
}

std::string
NeoNode::str() const
{
    std::ostringstream os;
    os << permName(perm_);
    if (!children_.empty()) {
        os << "(";
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (i)
                os << ",";
            os << children_[i].str();
        }
        os << ")";
    }
    return os.str();
}

namespace
{

bool
replaceLeafImpl(NeoNode &node, std::size_t &remaining,
                NeoNode &subtree, bool &done)
{
    if (node.isLeaf()) {
        if (remaining == 0) {
            node = std::move(subtree);
            done = true;
            return true;
        }
        --remaining;
        return false;
    }
    for (std::size_t i = 0; i < node.numChildren() && !done; ++i)
        replaceLeafImpl(node.child(i), remaining, subtree, done);
    return done;
}

} // namespace

bool
replaceLeaf(NeoNode &root, std::size_t leaf_index, NeoNode subtree)
{
    bool done = false;
    std::size_t remaining = leaf_index;
    replaceLeafImpl(root, remaining, subtree, done);
    return done;
}

} // namespace neo
