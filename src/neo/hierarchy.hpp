/**
 * @file
 * Figure 1 as a data structure: composable Neo Systems with recursive
 * summaries.
 *
 * A NeoHierarchy is the abstract tree the theory quantifies over — a
 * root node composing Open Neo Systems, each an internal node
 * composing further Open systems, bottoming out at leaves. Its one
 * operation is the recursive sum of §2.2/§2.4: summarize every
 * subtree into a permission, forcing any violation anywhere below to
 * surface as `bad` at the top.
 *
 * The simulator's CoherenceChecker computes the same sums over live
 * controllers; this standalone structure is the theory-level object
 * used for reasoning, testing, and teaching (examples/neo_executions).
 */

#ifndef NEO_NEO_HIERARCHY_HPP
#define NEO_NEO_HIERARCHY_HPP

#include <memory>
#include <string>
#include <vector>

#include "neo/permission.hpp"

namespace neo
{

/**
 * A node of a Neo hierarchy: a leaf with a permission, or an internal
 * or root node with a Permission variable and composed children.
 */
class NeoNode
{
  public:
    /** Construct a leaf with permission @p p. */
    static NeoNode leaf(Perm p);

    /** Construct an internal/root node with Permission @p p. */
    static NeoNode internal(Perm p);

    /** Compose a child Open Neo System under this (internal) node.
     *  @return *this, for chaining. */
    NeoNode &compose(NeoNode child);

    bool isLeaf() const { return children_.empty() && !internal_; }

    /** The node's own permission (leaf) or Permission variable. */
    Perm permission() const { return perm_; }
    void setPermission(Perm p) { perm_ = p; }

    std::size_t numChildren() const { return children_.size(); }
    const NeoNode &child(std::size_t i) const
    {
        return children_.at(i);
    }
    NeoNode &child(std::size_t i) { return children_.at(i); }

    /**
     * The recursive Neo summary of this subtree (§2.2): the leaf's
     * permission, or composeSum over the node's Permission and its
     * children's summaries.
     */
    Perm sum() const;

    /** Total node count in the subtree (for tests/inventory). */
    std::size_t size() const;

    /** Depth of the subtree (a leaf has depth 1). */
    std::size_t depth() const;

    /** Render like "M(S(S,I),I)" for debugging. */
    std::string str() const;

  private:
    NeoNode() = default;

    Perm perm_ = Perm::I;
    bool internal_ = false;
    std::vector<NeoNode> children_;
};

/**
 * Replace the @p leaf_index 'th leaf (in left-to-right order) of the
 * hierarchy with @p subtree — the scaling operation the Safe
 * Composition Invariant licenses (§2.3): when the subtree implements
 * a leaf, the result remains safe.
 *
 * @return true if the leaf existed and was replaced.
 */
bool replaceLeaf(NeoNode &root, std::size_t leaf_index,
                 NeoNode subtree);

} // namespace neo

#endif // NEO_NEO_HIERARCHY_HPP
