#include "permission.hpp"

namespace neo
{

const char *
permName(Perm p)
{
    switch (p) {
      case Perm::I:
        return "I";
      case Perm::S:
        return "S";
      case Perm::O:
        return "O";
      case Perm::E:
        return "E";
      case Perm::M:
        return "M";
      case Perm::Bad:
      default:
        return "Bad";
    }
}

Perm
composeSum(Perm node_permission, std::span<const Perm> child_sums)
{
    if (node_permission == Perm::Bad)
        return Perm::Bad;
    for (std::size_t i = 0; i < child_sums.size(); ++i) {
        const Perm ci = child_sums[i];
        if (ci == Perm::Bad)
            return Perm::Bad;
        if (!permDominates(node_permission, ci))
            return Perm::Bad;
        for (std::size_t j = i + 1; j < child_sums.size(); ++j) {
            if (!permCompatible(ci, child_sums[j]))
                return Perm::Bad;
        }
    }
    return node_permission;
}

Perm
permFromName(const std::string &name)
{
    if (name == "I")
        return Perm::I;
    if (name == "S")
        return Perm::S;
    if (name == "O")
        return Perm::O;
    if (name == "E")
        return Perm::E;
    if (name == "M")
        return Perm::M;
    return Perm::Bad;
}

} // namespace neo
