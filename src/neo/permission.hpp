/**
 * @file
 * The coherence permission lattice and Neo summary (sum) functions.
 *
 * Section 2.2/2.4 of the paper: permissions form the set
 * P = {I, S, O, E, M, bad} with partial order I < S < O < {E, M} < bad
 * (E and M are both top exclusive permissions; a silent E->M upgrade
 * does not change what external observers can see). The Neo coherence
 * summary sumC of a subtree is its internal node's Permission variable,
 * with side conditions that force any violation below to surface as
 * `bad`:
 *   (1) Permission of a node dominates the summary of each child
 *       subtree (the "permission principle"), and
 *   (2) the children's summaries are mutually compatible in the MOESI
 *       sense (at most one E/M with everyone else I; at most one O,
 *       coexisting only with S/I).
 */

#ifndef NEO_NEO_PERMISSION_HPP
#define NEO_NEO_PERMISSION_HPP

#include <cstdint>
#include <span>
#include <string>

namespace neo
{

/** MOESI coherence permissions plus the Neo `bad` element. */
enum class Perm : std::uint8_t { I = 0, S, O, E, M, Bad };

/** Number of non-bad permissions. */
constexpr unsigned numPerms = 5;

/** Short display name ("I", "S", ...). */
const char *permName(Perm p);

/**
 * Rank in the partial order; E and M share the top non-bad rank.
 * I=0 < S=1 < O=2 < E=M=3 < Bad=4.
 */
constexpr unsigned
permRank(Perm p)
{
    switch (p) {
      case Perm::I:
        return 0;
      case Perm::S:
        return 1;
      case Perm::O:
        return 2;
      case Perm::E:
      case Perm::M:
        return 3;
      case Perm::Bad:
      default:
        return 4;
    }
}

/** True when a child subtree summarizing to @p child may live under a
 *  node whose Permission is @p parent (the permission principle). */
constexpr bool
permDominates(Perm parent, Perm child)
{
    return permRank(parent) >= permRank(child) &&
           parent != Perm::Bad;
}

/**
 * Pairwise MOESI compatibility between two sibling subtree summaries.
 * E/M demand all siblings I; O tolerates S/I; S tolerates S/I.
 */
constexpr bool
permCompatible(Perm a, Perm b)
{
    if (a == Perm::Bad || b == Perm::Bad)
        return false;
    if (a == Perm::I || b == Perm::I)
        return true;
    if (a == Perm::E || a == Perm::M || b == Perm::E || b == Perm::M)
        return false; // exclusive vs. any non-I
    if (a == Perm::O && b == Perm::O)
        return false; // single owner
    return true; // {S,O} x {S,O} minus (O,O)
}

/** Leaf summary: a leaf's sum is just its coherence permission. */
constexpr Perm
leafSum(Perm leaf_perm)
{
    return leaf_perm;
}

/**
 * Composite summary per Section 2.4: returns `bad` when any child
 * summarizes to bad, when children are mutually incompatible, or when
 * a child exceeds the node's Permission; otherwise returns the node's
 * Permission variable.
 */
Perm composeSum(Perm node_permission, std::span<const Perm> child_sums);

/** Parse "I"/"S"/"O"/"E"/"M"/"Bad"; returns Bad for unknown names. */
Perm permFromName(const std::string &name);

} // namespace neo

#endif // NEO_NEO_PERMISSION_HPP
