/**
 * @file
 * Base message type and consumer interface for the interconnect.
 */

#ifndef NEO_NETWORK_MESSAGE_HPP
#define NEO_NETWORK_MESSAGE_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "sim/types.hpp"

namespace neo
{

/**
 * A unit of transfer on the interconnect. Protocol layers derive from
 * this to add coherence payloads; the network only needs source,
 * destination and size.
 */
struct Message
{
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    std::uint32_t sizeBytes = 8;

    /**
     * Network-assigned send identity (0 until first offered). A
     * fault-injected duplicate shares its original's id, so ingress
     * dedup filters see transport copies, never distinct sends.
     */
    std::uint64_t msgId = 0;

    virtual ~Message() = default;

    /** Human-readable tag for traces. */
    virtual std::string describe() const { return "Message"; }

    /** Deep copy for fault-injected duplication. */
    virtual std::unique_ptr<Message>
    clone() const
    {
        return std::make_unique<Message>(*this);
    }
};

using MessagePtr = std::unique_ptr<Message>;

/** Endpoint that accepts delivered messages. */
class MessageConsumer
{
  public:
    virtual ~MessageConsumer() = default;

    /** Called by the network when a message arrives at this node. */
    virtual void deliver(MessagePtr msg) = 0;
};

} // namespace neo

#endif // NEO_NETWORK_MESSAGE_HPP
