#include "tree_network.hpp"

#include <algorithm>

namespace neo
{

TreeNetwork::TreeNetwork(std::string name, EventQueue &eventq,
                         const NetworkParams &params)
    : SimObject(std::move(name), eventq), params_(params),
      jitterRng_(params.jitterSeed)
{
}

NodeId
TreeNetwork::addNode(MessageConsumer *sink, NodeId parent)
{
    neo_assert(sink != nullptr, "network node needs a sink");
    const auto id = static_cast<NodeId>(nodes_.size());
    NodeInfo info;
    info.sink = sink;
    info.parent = parent;
    if (parent == invalidNode) {
        info.depth = 0;
    } else {
        neo_assert(parent < nodes_.size(), "unknown parent node ", parent);
        info.depth = nodes_[parent].depth + 1;
        nodes_[parent].children.push_back(id);
    }
    nodes_.push_back(std::move(info));
    return id;
}

unsigned
TreeNetwork::hops(NodeId a, NodeId b) const
{
    neo_assert(a < nodes_.size() && b < nodes_.size(),
               "hops on unregistered node");
    unsigned n = 0;
    NodeId x = a;
    NodeId y = b;
    while (nodes_[x].depth > nodes_[y].depth) {
        x = nodes_[x].parent;
        ++n;
    }
    while (nodes_[y].depth > nodes_[x].depth) {
        y = nodes_[y].parent;
        ++n;
    }
    while (x != y) {
        x = nodes_[x].parent;
        y = nodes_[y].parent;
        n += 2;
    }
    return n;
}

Tick &
TreeNetwork::linkBusy(NodeId child_end, bool upward)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(child_end) << 1) | (upward ? 1 : 0);
    return linkBusy_[key];
}

void
TreeNetwork::scheduleDelivery(MessagePtr msg, Tick arrive)
{
    MessageConsumer *sink = nodes_[msg->dst].sink;
    auto *raw = msg.release();
    eventq().schedule(arrive, [this, sink, raw]() {
        ++delivered_;
        sink->deliver(MessagePtr(raw));
    });
}

void
TreeNetwork::deliver(MessagePtr msg)
{
    neo_assert(msg->src < nodes_.size() && msg->dst < nodes_.size(),
               "message endpoints not registered");
    neo_assert(msg->src != msg->dst, "message to self: ",
               msg->describe());

    const Tick now = curTick();

    // First offering of this payload: stamp its transport identity.
    // (Protocol-level reissues build fresh Message objects, so they
    // get fresh ids; only fault duplicates share one.)
    if (msg->msgId == 0)
        msg->msgId = ++msgSeq_;

    FaultInjector::Decision fate;
    if (faults_ != nullptr)
        fate = faults_->decide(msg->msgId, now, msg->src, msg->dst);
    if (fate.drop) {
        ++messages_;
        bytes_ += msg->sizeBytes;
        return; // the payload evaporates
    }

    const auto ser_ticks = static_cast<Tick>(
        static_cast<double>(msg->sizeBytes) / params_.bytesPerTick + 0.999);

    // Find the lowest common ancestor, collecting the downward leg.
    NodeId lca;
    std::vector<NodeId> down_path; // child endpoints of downward links
    {
        NodeId cx = msg->src;
        NodeId cy = msg->dst;
        while (nodes_[cx].depth > nodes_[cy].depth)
            cx = nodes_[cx].parent;
        while (nodes_[cy].depth > nodes_[cx].depth) {
            down_path.push_back(cy);
            cy = nodes_[cy].parent;
        }
        while (cx != cy) {
            down_path.push_back(cy);
            cx = nodes_[cx].parent;
            cy = nodes_[cy].parent;
        }
        lca = cx;
        // down_path holds child endpoints from dst upward; reverse so
        // we traverse from the LCA downward.
        std::reverse(down_path.begin(), down_path.end());
    }

    // Store-and-forward over the path, charging per-link latency +
    // serialization + occupancy.
    Tick arrive = now;
    unsigned hop_count = 0;
    for (NodeId cx = msg->src; cx != lca; cx = nodes_[cx].parent) {
        Tick &busy = linkBusy(cx, true);
        Tick start = std::max(arrive, busy);
        if (faults_ != nullptr) {
            const Tick release = faults_->linkRelease(cx, true, start);
            if (release != start) {
                faults_->noteHold(msg->msgId, now, msg->src, msg->dst,
                                  release);
                if (release == maxTick) {
                    // Permanently severed: park instead of scheduling
                    // an event at infinity, so the queue can drain.
                    ++messages_;
                    bytes_ += msg->sizeBytes;
                    ++parkedMessages_;
                    parked_.push_back(std::move(msg));
                    return;
                }
                start = release;
            }
        }
        busy = start + ser_ticks;
        arrive = start + ser_ticks + params_.linkLatency;
        ++hop_count;
    }
    // Downward links: from the LCA to dst.
    for (NodeId child_end : down_path) {
        Tick &busy = linkBusy(child_end, false);
        Tick start = std::max(arrive, busy);
        if (faults_ != nullptr) {
            const Tick release =
                faults_->linkRelease(child_end, false, start);
            if (release != start) {
                faults_->noteHold(msg->msgId, now, msg->src, msg->dst,
                                  release);
                if (release == maxTick) {
                    ++messages_;
                    bytes_ += msg->sizeBytes;
                    ++parkedMessages_;
                    parked_.push_back(std::move(msg));
                    return;
                }
                start = release;
            }
        }
        busy = start + ser_ticks;
        arrive = start + ser_ticks + params_.linkLatency;
        ++hop_count;
    }

    if (params_.maxJitter > 0)
        arrive += jitterRng_.below(params_.maxJitter + 1);
    arrive += fate.delay;

    ++messages_;
    bytes_ += msg->sizeBytes;
    hopStat_.sample(static_cast<double>(hop_count));
    latencyStat_.sample(static_cast<double>(arrive - now));

    if (fate.duplicate) {
        // The clone keeps the original's msgId; ingress dedup at the
        // destination recognizes and discards the extra copy.
        MessagePtr copy = msg->clone();
        scheduleDelivery(std::move(copy), arrive + fate.dupSkew);
    }
    scheduleDelivery(std::move(msg), arrive);
}

void
TreeNetwork::addStats(StatGroup &group) const
{
    group.add(&messages_);
    group.add(&bytes_);
    group.add(&hopStat_);
    group.add(&latencyStat_);
    group.add(&delivered_);
    group.add(&parkedMessages_);
}

} // namespace neo
