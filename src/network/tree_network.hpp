/**
 * @file
 * Tree-topology interconnection network.
 *
 * The physical network mirrors the logical coherence tree: one
 * bidirectional link per parent-child edge, with a crossbar at each
 * internal node, so sibling traffic crosses two links via the shared
 * parent switch and arbitrary (non-sibling) traffic is routed through
 * the lowest common ancestor. Links have a fixed per-hop latency and a
 * serialization bandwidth (Table 1: 1 cycle, 32 GB/s => 16 B/cycle at
 * 2 GHz); contention is modeled with per-directed-link occupancy.
 *
 * The network does NOT guarantee point-to-point ordering (the paper's
 * NeoMESI is designed for such networks, which is why its directories
 * block): an optional bounded random jitter can reorder same-path
 * messages.
 */

#ifndef NEO_NETWORK_TREE_NETWORK_HPP
#define NEO_NETWORK_TREE_NETWORK_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "network/message.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace neo
{

struct NetworkParams
{
    Tick linkLatency = 1;
    /** Bytes transferable per tick on one link (32 GB/s / 2 GHz). */
    double bytesPerTick = 16.0;
    /** Max extra random delay per message; 0 keeps delivery FIFO. */
    Tick maxJitter = 0;
    std::uint64_t jitterSeed = 1;
};

class TreeNetwork : public SimObject, public MessageConsumer
{
  public:
    TreeNetwork(std::string name, EventQueue &eventq,
                const NetworkParams &params);

    /**
     * Register a node. The root is added with parent == invalidNode;
     * every other node names an already-registered parent.
     * @return the new node's id.
     */
    NodeId addNode(MessageConsumer *sink, NodeId parent);

    /** Route and deliver a message after the modeled delay. */
    void deliver(MessagePtr msg) override;

    /** Path length in links between two registered nodes. */
    unsigned hops(NodeId a, NodeId b) const;

    NodeId parentOf(NodeId n) const { return nodes_.at(n).parent; }
    const std::vector<NodeId> &
    childrenOf(NodeId n) const
    {
        return nodes_.at(n).children;
    }
    std::size_t numNodes() const { return nodes_.size(); }

    /** True when a and b share the same parent (or one is the other's
     *  parent — one link apart either way in the tree). */
    bool
    areSiblings(NodeId a, NodeId b) const
    {
        return nodes_.at(a).parent != invalidNode &&
               nodes_.at(a).parent == nodes_.at(b).parent;
    }

    const Scalar &messageCount() const { return messages_; }
    const Scalar &totalBytes() const { return bytes_; }
    const SampleStat &hopStat() const { return hopStat_; }
    const SampleStat &latencyStat() const { return latencyStat_; }
    /** Messages handed to a sink (excludes drops and parked traffic;
     *  includes fault-injected duplicate copies). */
    const Scalar &deliveredCount() const { return delivered_; }
    /** Messages parked forever behind a permanent blackout. */
    const Scalar &parkedCount() const { return parkedMessages_; }

    /**
     * Install (or clear) the transport fault injector. With no
     * injector the data path is bit-identical to the fault-free
     * network. Not owned; must outlive the network's use of it.
     */
    void setFaultInjector(FaultInjector *fi) { faults_ = fi; }
    FaultInjector *faultInjector() { return faults_; }

    void addStats(StatGroup &group) const;

  private:
    struct NodeInfo
    {
        MessageConsumer *sink = nullptr;
        NodeId parent = invalidNode;
        unsigned depth = 0;
        std::vector<NodeId> children;
    };

    /** Occupancy of one directed link, keyed by (childEnd, up?). */
    Tick &linkBusy(NodeId child_end, bool upward);

    /** Schedule the sink handoff of @p msg at @p arrive. */
    void scheduleDelivery(MessagePtr msg, Tick arrive);

    NetworkParams params_;
    std::vector<NodeInfo> nodes_;
    std::unordered_map<std::uint64_t, Tick> linkBusy_;
    Random jitterRng_;
    FaultInjector *faults_ = nullptr;
    std::uint64_t msgSeq_ = 0;
    /** Traffic caught behind a permanent blackout: held, never
     *  scheduled, so a severed subtree drains the event queue fast. */
    std::vector<MessagePtr> parked_;

    Scalar messages_{"network.messages"};
    Scalar bytes_{"network.bytes"};
    SampleStat hopStat_{"network.hops"};
    SampleStat latencyStat_{"network.latency"};
    Scalar delivered_{"network.delivered"};
    Scalar parkedMessages_{"network.parked"};
};

} // namespace neo

#endif // NEO_NETWORK_TREE_NETWORK_HPP
