#include "coherence_checker.hpp"

#include <sstream>

namespace neo
{

void
CoherenceChecker::addDir(const DirController *dir)
{
    dirs_[dir->nodeId()] = dir;
}

void
CoherenceChecker::addL1(const L1Controller *l1)
{
    l1s_[l1->nodeId()] = l1;
}

bool
CoherenceChecker::quiescent() const
{
    for (const auto &[id, dir] : dirs_)
        if (!dir->quiescent())
            return false;
    for (const auto &[id, l1] : l1s_)
        if (!l1->quiescent())
            return false;
    return true;
}

Perm
CoherenceChecker::subtreeSum(NodeId node, Addr addr,
                             std::vector<std::string> &violations) const
{
    auto l1_it = l1s_.find(node);
    if (l1_it != l1s_.end())
        return leafSum(l1_it->second->blockPerm(addr));

    auto dir_it = dirs_.find(node);
    neo_assert(dir_it != dirs_.end(), "unregistered node ", node);
    const DirController *dir = dir_it->second;

    std::vector<Perm> child_sums;
    const auto &children = net_.childrenOf(node);
    child_sums.reserve(children.size());
    for (NodeId c : children)
        child_sums.push_back(subtreeSum(c, addr, violations));

    const Perm perm = dir->blockPerm(addr);
    const Perm sum = composeSum(perm, child_sums);
    if (sum == Perm::Bad) {
        std::ostringstream os;
        os << dir->name() << ": block 0x" << std::hex << addr << std::dec
           << " summarizes to bad (Permission=" << permName(perm)
           << ", children:";
        for (std::size_t i = 0; i < child_sums.size(); ++i)
            os << " " << permName(child_sums[i]);
        os << ")";
        violations.push_back(os.str());
    }

    // Inclusion: any child holding the block must be tracked here.
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (child_sums[i] != Perm::I && perm == Perm::I) {
            std::ostringstream os;
            os << dir->name() << ": inclusion violated for block 0x"
               << std::hex << addr << std::dec << " held by child "
               << children[i];
            violations.push_back(os.str());
        }
    }
    return sum;
}

std::vector<std::string>
CoherenceChecker::check() const
{
    std::vector<std::string> violations;

    // Collect every address tracked anywhere in the hierarchy.
    std::set<Addr> addrs;
    for (const auto &[id, dir] : dirs_) {
        dir->forEachEntry(
            [&addrs](const DirController::EntryView &e) {
                addrs.insert(e.addr);
            });
    }
    for (const auto &[id, l1] : l1s_) {
        l1->forEachLine([&addrs](Addr a, L1State s) {
            if (l1StatePerm(s) != Perm::I)
                addrs.insert(a);
        });
    }

    // Find the root (the registered dir whose parent is invalid).
    const DirController *root = nullptr;
    for (const auto &[id, dir] : dirs_) {
        if (dir->isRoot())
            root = dir;
    }
    neo_assert(root != nullptr, "checker needs a root directory");

    for (Addr a : addrs)
        subtreeSum(root->nodeId(), a, violations);

    return violations;
}

} // namespace neo
