/**
 * @file
 * Whole-hierarchy coherence oracle for tests and debug runs.
 *
 * At quiescent points it recomputes, bottom-up, the Neo summary of
 * every subtree using the Section 2.4 sum functions and reports every
 * block whose Closed-System summary is `bad`, every violation of the
 * permission principle, and every inclusion violation (a child holding
 * a block its directory does not track). A protocol bug anywhere in
 * the hierarchy therefore surfaces as a named violation string.
 */

#ifndef NEO_PROTOCOL_COHERENCE_CHECKER_HPP
#define NEO_PROTOCOL_COHERENCE_CHECKER_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "network/tree_network.hpp"
#include "protocol/dir_controller.hpp"
#include "protocol/l1_controller.hpp"

namespace neo
{

class CoherenceChecker
{
  public:
    explicit CoherenceChecker(const TreeNetwork &net) : net_(net) {}

    void addDir(const DirController *dir);
    void addL1(const L1Controller *l1);

    /** True when every registered controller is between transactions. */
    bool quiescent() const;

    /**
     * Run all invariant checks over every block tracked anywhere.
     * @return human-readable violations; empty means coherent.
     */
    std::vector<std::string> check() const;

  private:
    /** Recursive Neo summary of the subtree rooted at @p node. */
    Perm subtreeSum(NodeId node, Addr addr,
                    std::vector<std::string> &violations) const;

    const TreeNetwork &net_;
    std::map<NodeId, const DirController *> dirs_;
    std::map<NodeId, const L1Controller *> l1s_;
};

} // namespace neo

#endif // NEO_PROTOCOL_COHERENCE_CHECKER_HPP
