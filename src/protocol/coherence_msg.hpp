/**
 * @file
 * Coherence message vocabulary shared by every protocol variant.
 *
 * The message set is the union of what TreeMSI, NeoMESI, NS-MESI and
 * NS-MOESI need; variants simply never emit the types they do not use
 * (e.g. PutO exists only under NS-MOESI, and globalRequester is only
 * consulted when non-sibling forwarding is enabled).
 */

#ifndef NEO_PROTOCOL_COHERENCE_MSG_HPP
#define NEO_PROTOCOL_COHERENCE_MSG_HPP

#include <cstdint>
#include <sstream>
#include <string>

#include "neo/permission.hpp"
#include "network/message.hpp"
#include "sim/types.hpp"

namespace neo
{

enum class MsgType : std::uint8_t
{
    // Child -> parent requests.
    GetS,    ///< request read permission
    GetM,    ///< request write permission
    PutS,    ///< evict a shared copy (explicit eviction notification)
    PutE,    ///< evict a clean exclusive copy
    PutM,    ///< write back a dirty copy
    PutO,    ///< write back an owned copy (NS-MOESI only)
    // Parent -> child demands.
    FwdGetS, ///< owner: supply data to a reader
    FwdGetM, ///< owner: supply data to a writer and invalidate
    Inv,     ///< invalidate a shared copy
    // Responses.
    Data,    ///< data + permission grant
    InvAck,  ///< invalidation acknowledged
    PutAck,  ///< eviction acknowledged
    // Completion.
    Unblock, ///< requester is done; unblocks the directory
};

const char *msgTypeName(MsgType t);

/** True for the message classes a blocked directory must still accept
 *  (responses to its own outstanding operations). */
constexpr bool
isResponse(MsgType t)
{
    return t == MsgType::Data || t == MsgType::InvAck ||
           t == MsgType::PutAck || t == MsgType::Unblock;
}

constexpr bool
isRequest(MsgType t)
{
    return t == MsgType::GetS || t == MsgType::GetM ||
           t == MsgType::PutS || t == MsgType::PutE ||
           t == MsgType::PutM || t == MsgType::PutO;
}

constexpr bool
isDemand(MsgType t)
{
    return t == MsgType::FwdGetS || t == MsgType::FwdGetM ||
           t == MsgType::Inv;
}

/** Control messages are 8 B; Data adds a 64 B block (Table 1). */
constexpr std::uint32_t controlMsgBytes = 8;
constexpr std::uint32_t dataMsgBytes = 72;

struct CoherenceMsg : Message
{
    MsgType type = MsgType::GetS;
    Addr addr = 0;

    /**
     * For FwdGetS/FwdGetM: the node the data must be sent to. Under
     * Neo rules this is always a sibling of the recipient (or, with
     * respondToParent, the recipient's parent); under NS protocols it
     * may be an arbitrary tree node.
     */
    NodeId target = invalidNode;

    /** For Fwd*: send the data up to the recipient's parent instead of
     *  to `target` (used when satisfying an external request). */
    bool respondToParent = false;

    /** For Data: the permission granted with the block. */
    Perm grant = Perm::I;

    /** For Data/Unblock/InvAck/Put*: block is dirty wrt next level. */
    bool dirty = false;

    /** Originating L1 of the whole transaction (NS forwarding). */
    NodeId globalRequester = invalidNode;

    /** Data supplied by a cache (an L1), not a directory — the §5.3
     *  non-sibling-communication statistic counts only these. */
    bool fromCache = false;

    /**
     * End-to-end transaction identity for fault recovery: the serial
     * the originating L1 (@p serialOwner) stamped on its request. It
     * rides every relay, Fwd, Data, ack and Unblock of the
     * transaction, so reissued requests and stale responses can be
     * matched by (serialOwner, serial) anywhere in the tree. Zero
     * when resilience is off (nothing consults it then).
     */
    std::uint64_t serial = 0;
    NodeId serialOwner = invalidNode;

    std::unique_ptr<Message>
    clone() const override
    {
        return std::make_unique<CoherenceMsg>(*this);
    }

    std::string
    describe() const override
    {
        std::ostringstream os;
        os << msgTypeName(type) << "[addr=0x" << std::hex << addr
           << std::dec << " src=" << src << " dst=" << dst;
        if (target != invalidNode)
            os << " target=" << target;
        if (type == MsgType::Data)
            os << " grant=" << permName(grant);
        if (dirty)
            os << " dirty";
        if (serial != 0)
            os << " txn=" << serialOwner << ":" << serial;
        os << "]";
        return os.str();
    }
};

/** Construct a coherence message with size set from its type. */
inline std::unique_ptr<CoherenceMsg>
makeMsg(MsgType type, Addr addr, NodeId src, NodeId dst)
{
    auto m = std::make_unique<CoherenceMsg>();
    m->type = type;
    m->addr = addr;
    m->src = src;
    m->dst = dst;
    m->sizeBytes =
        (type == MsgType::Data) ? dataMsgBytes : controlMsgBytes;
    return m;
}

} // namespace neo

#endif // NEO_PROTOCOL_COHERENCE_MSG_HPP
