#include "dir_controller.hpp"

#include <bit>

namespace neo
{

namespace
{

constexpr std::uint64_t
bitOf(int slot)
{
    return 1ULL << static_cast<unsigned>(slot);
}

} // namespace

const char *
dirModeName(DirMode m)
{
    switch (m) {
      case DirMode::LocalRead:
        return "LocalRead";
      case DirMode::LocalWrite:
        return "LocalWrite";
      case DirMode::FetchRead:
        return "FetchRead";
      case DirMode::FetchWrite:
        return "FetchWrite";
      case DirMode::ExtRead:
        return "ExtRead";
      case DirMode::ExtWrite:
        return "ExtWrite";
      case DirMode::ExtInv:
        return "ExtInv";
      case DirMode::Evict:
        return "Evict";
      case DirMode::EvictWB:
        return "EvictWB";
    }
    return "?";
}

DirController::DirController(std::string name, EventQueue &eventq,
                             TreeNetwork &net, NodeId parent,
                             const CacheGeometry &geom,
                             const ProtocolConfig &cfg, DramModel *dram)
    : SimObject(std::move(name), eventq), net_(net), parent_(parent),
      cfg_(cfg), cache_(geom), dram_(dram),
      requestArrivals_(this->name() + ".request_arrivals"),
      blockedArrivals_(this->name() + ".blocked_arrivals"),
      relaysUp_(this->name() + ".relays_up"),
      localSatisfied_(this->name() + ".local_satisfied"),
      evictions_(this->name() + ".evictions"),
      recalls_(this->name() + ".recalls"),
      dramReads_(this->name() + ".dram_reads"),
      dramWrites_(this->name() + ".dram_writes"),
      redrives_(this->name() + ".redrives"),
      staleDrops_(this->name() + ".stale_drops"),
      dupDrops_(this->name() + ".dup_drops")
{
    neo_assert((parent == invalidNode) == (dram != nullptr),
               "exactly the root directory fronts the DRAM");
    nodeId_ = net_.addNode(this, parent);
}

void
DirController::trace(const std::string &s)
{
    if (trace_)
        trace_(name() + ": " + s);
}

std::unique_ptr<CoherenceMsg>
DirController::make(MsgType t, Addr addr, NodeId dst)
{
    return makeMsg(t, addr, nodeId_, dst);
}

void
DirController::send(std::unique_ptr<CoherenceMsg> msg)
{
    trace("send " + msg->describe());
    net_.deliver(std::move(msg));
}

void
DirController::ensureChildren()
{
    if (!children_.empty())
        return;
    children_ = net_.childrenOf(nodeId_);
    neo_assert(children_.size() <= 64,
               "directory supports at most 64 children");
    for (std::size_t i = 0; i < children_.size(); ++i)
        slotMap_[children_[i]] = static_cast<int>(i);
}

int
DirController::slotOf(NodeId child)
{
    ensureChildren();
    auto it = slotMap_.find(child);
    neo_assert(it != slotMap_.end(), name(), ": ", child,
               " is not a child");
    return it->second;
}

bool
DirController::isChild(NodeId n)
{
    ensureChildren();
    return slotMap_.count(n) != 0;
}

Perm
DirController::blockPerm(Addr addr) const
{
    const DirEntry *e = cache_.peek(addr);
    return e != nullptr ? e->perm : Perm::I;
}

void
DirController::forEachEntry(
    const std::function<void(const EntryView &)> &fn) const
{
    const_cast<CacheArray<DirEntry> &>(cache_).forEach(
        [&fn](Addr a, DirEntry &e) {
            fn(EntryView{a, e.perm, e.sharers, e.owner, e.dataValid,
                         e.dirty});
        });
}

NodeId
DirController::childAt(std::size_t slot) const
{
    const_cast<DirController *>(this)->ensureChildren();
    return children_.at(slot);
}

std::size_t
DirController::numChildren() const
{
    const_cast<DirController *>(this)->ensureChildren();
    return children_.size();
}

void
DirController::setResilience(const RecoveryParams &rec)
{
    rec_ = rec;
    resilient_ = true;
}

void
DirController::deliver(MessagePtr msg)
{
    auto *raw = dynamic_cast<CoherenceMsg *>(msg.get());
    neo_assert(raw != nullptr, name(), ": non-coherence message");
    if (resilient_ && raw->msgId != 0 && dedup_.seen(raw->msgId)) {
        ++dupDrops_;
        trace("dup-drop " + raw->describe());
        return;
    }
    trace("recv " + raw->describe());
    msg.release();
    std::unique_ptr<CoherenceMsg> cm(raw);

    if (isResponse(cm->type)) {
        switch (cm->type) {
          case MsgType::Data:
            handleData(*cm);
            break;
          case MsgType::InvAck:
            handleInvAck(*cm);
            break;
          case MsgType::PutAck:
            handlePutAck(*cm);
            break;
          case MsgType::Unblock:
            handleUnblock(*cm);
            break;
          default:
            neo_panic("unreachable");
        }
        maybeScheduleSweep();
        return;
    }

    if (isRequest(cm->type))
        ++requestArrivals_;

    routeOrDefer(std::move(cm), true);
    maybeScheduleSweep();
}

void
DirController::routeOrDefer(std::unique_ptr<CoherenceMsg> cm,
                            bool count_blocked)
{
    if (resilient_ &&
        (cm->type == MsgType::GetS || cm->type == MsgType::GetM) &&
        absorbReissue(*cm))
        return;

    auto it = tbes_.find(cm->addr);
    if (it != tbes_.end()) {
        TBE &tbe = it->second;
        if (cm->type == MsgType::Inv &&
            (tbe.mode == DirMode::FetchRead ||
             tbe.mode == DirMode::FetchWrite)) {
            // A parent Inv must not wait behind our pending fetch or
            // the hierarchy deadlocks (we wait up, parent waits down).
            handleInvDuringFetch(tbe, *cm);
            return;
        }
        if (tbe.mode == DirMode::EvictWB && isDemand(cm->type)) {
            // Our writeback is racing the parent's transaction; answer
            // from the copy we still hold (the L1 MI_A analogue).
            handleDemandDuringEvictWB(tbe, *cm);
            return;
        }
        if ((tbe.mode == DirMode::FetchRead ||
             tbe.mode == DirMode::FetchWrite) &&
            (cm->type == MsgType::FwdGetS ||
             cm->type == MsgType::FwdGetM)) {
            // With write transfers serialized at the parent, a Fwd
            // landing during our own fetch is an older-epoch demand
            // against the copy this subtree still owns (or a demand
            // racing the grant itself); serve or relay it now —
            // deferring a servable demand would close a cross-subtree
            // wait cycle (our grant depends on its completion).
            if (handleFwdDuringFetch(tbe, *cm))
                return;
            // Old data still in flight back to us: hold the demand.
            tbe.deferred.push_back(std::move(cm));
            return;
        }
        if (isRequest(cm->type) && count_blocked)
            ++blockedArrivals_;
        tbe.deferred.push_back(std::move(cm));
        return;
    }

    process(std::move(cm));
}

void
DirController::process(std::unique_ptr<CoherenceMsg> msg)
{
    switch (msg->type) {
      case MsgType::GetS:
        handleChildGetS(std::move(msg));
        break;
      case MsgType::GetM:
        handleChildGetM(std::move(msg));
        break;
      case MsgType::PutS:
      case MsgType::PutE:
      case MsgType::PutM:
      case MsgType::PutO:
        handleChildPut(*msg);
        break;
      case MsgType::Inv:
        handleParentInv(*msg);
        break;
      case MsgType::FwdGetS:
        handleParentFwdGetS(*msg);
        break;
      case MsgType::FwdGetM:
        handleParentFwdGetM(*msg);
        break;
      default:
        neo_panic(name(), ": cannot process ", msg->describe());
    }
}

bool
DirController::absorbReissue(const CoherenceMsg &msg)
{
    if (msg.serial == 0)
        return false;
    auto it = tbes_.find(msg.addr);
    if (it != tbes_.end()) {
        TBE &tbe = it->second;
        if (tbe.requester == msg.src &&
            tbe.serialOwner == msg.serialOwner &&
            tbe.serial == msg.serial) {
            // The requester timed out on a transaction we are still
            // working: re-send whatever of ours is outstanding.
            ++staleDrops_;
            redrive(msg.addr, tbe);
            return true;
        }
        return false; // a different transaction: defer normally
    }
    // No TBE. If we retired this transaction, its requester completed
    // (retirement needs the Unblock), so this copy was in flight
    // before completion and is stale: absorb it. Re-executing it
    // would race metadata that has already moved on.
    for (const auto &r : recentRetired_) {
        if (r.addr == msg.addr && r.requester == msg.src &&
            r.serialOwner == msg.serialOwner &&
            r.serial == msg.serial) {
            ++staleDrops_;
            return true;
        }
    }
    return false; // never seen (the original was dropped): process it
}

bool
DirController::replayRetiredUnblock(const CoherenceMsg &msg)
{
    if (!resilient_ || msg.serial == 0)
        return false;
    for (const auto &r : recentRetired_) {
        if (r.addr != msg.addr || r.serial != msg.serial ||
            r.serialOwner != msg.serialOwner)
            continue;
        if (r.sentUnblock && !isRoot()) {
            // Our Unblock may have been the lost message; the parent
            // re-drove its grant to ask for it again.
            auto ub = make(MsgType::Unblock, msg.addr, parent_);
            ub->dirty = r.dirtyUp;
            ub->grant = r.achieved;
            ub->sizeBytes = dataMsgBytes;
            ub->serial = r.serial;
            ub->serialOwner = r.serialOwner;
            send(std::move(ub));
        }
        ++staleDrops_;
        return true;
    }
    return false;
}

void
DirController::redrive(Addr addr, TBE &tbe)
{
    ++redrives_;
    tbe.lastActivity = curTick();
    ensureChildren();
    for (std::size_t s = 0; s < children_.size(); ++s) {
        const auto bit = bitOf(static_cast<int>(s));
        if ((tbe.invMask | tbe.subInvMask) & bit)
            send(make(MsgType::Inv, addr, children_[s]));
    }
    const bool fetching = tbe.mode == DirMode::FetchRead ||
                          tbe.mode == DirMode::FetchWrite;
    if (fetching &&
        (tbe.waitingData ||
         (cfg_.nonSiblingFwd && tbe.waitingUnblock))) {
        // The upward relay (or its answer) may have been lost.
        auto req = make(tbe.mode == DirMode::FetchRead ? MsgType::GetS
                                                       : MsgType::GetM,
                        addr, parent_);
        req->globalRequester = tbe.globalRequester;
        req->serial = tbe.serial;
        req->serialOwner = tbe.serialOwner;
        send(std::move(req));
    }
    if (tbe.fwdDispatched &&
        (tbe.fwdToParent ? tbe.waitingData : tbe.waitingUnblock)) {
        auto fwd = make(tbe.fwdType, addr, tbe.fwdTo);
        fwd->target = tbe.fwdTarget;
        fwd->respondToParent = tbe.fwdToParent;
        fwd->globalRequester = tbe.globalRequester;
        fwd->serial = tbe.serial;
        fwd->serialOwner = tbe.serialOwner;
        send(std::move(fwd));
    }
    if (tbe.grantDispatched && tbe.waitingUnblock) {
        auto data = make(MsgType::Data, addr, tbe.lastGrantDest);
        data->grant = tbe.grantPerm;
        data->dirty = tbe.grantDirty;
        data->serial = tbe.serial;
        data->serialOwner = tbe.serialOwner;
        send(std::move(data));
    }
    if (tbe.mode == DirMode::EvictWB && !isRoot()) {
        auto put = make(tbe.putType, addr, parent_);
        put->dirty = tbe.putDirty;
        if (tbe.putDirty)
            put->sizeBytes = dataMsgBytes;
        put->serial = tbe.serial;
        put->serialOwner = tbe.serialOwner;
        send(std::move(put));
    }
}

void
DirController::maybeScheduleSweep()
{
    if (!resilient_ || rec_.timeout == 0 || sweepScheduled_ ||
        tbes_.empty())
        return;
    sweepScheduled_ = true;
    eventq().schedule(curTick() + rec_.dirSweepPeriod(),
                      [this]() { sweep(); });
}

void
DirController::sweep()
{
    sweepScheduled_ = false;
    if (tbes_.empty())
        return;
    const Tick idle = rec_.dirSweepPeriod();
    const Tick now = curTick();
    bool live = false;
    for (auto &[addr, tbe] : tbes_) {
        if (tbe.redrives >= rec_.maxRetries)
            continue; // given up: the postmortem will report it
        live = true;
        if (now - tbe.lastActivity >= idle) {
            ++tbe.redrives;
            redrive(addr, tbe);
        }
    }
    // Without a live TBE the sweep stops rescheduling itself so the
    // event queue can drain to the quiescent-deadlock report; a new
    // TBE re-arms it via deliver().
    if (live)
        maybeScheduleSweep();
}

bool
DirController::makeRoom(Addr addr, std::unique_ptr<CoherenceMsg> &msg)
{
    if (cache_.peek(addr) != nullptr)
        return true;
    if (cache_.hasFreeWay(addr)) {
        DirEntry &e = cache_.allocate(addr);
        if (isRoot()) {
            // The root owns every block; memory is its backing copy.
            e.perm = Perm::M;
            e.dataValid = false;
            e.dirty = false;
        }
        return true;
    }
    auto victim = cache_.victimFor(
        addr, [this](Addr a, const DirEntry &) {
            return tbes_.count(a) == 0;
        });
    // Park the request BEFORE kicking the eviction: a recall with no
    // holders retires synchronously and drains the retry queue.
    retryQueue_.push_back(std::move(msg));
    if (victim.has_value())
        startEviction(*victim);
    return false;
}

void
DirController::startEviction(Addr victim)
{
    DirEntry *entry = cache_.peek(victim);
    neo_assert(entry != nullptr, name(), ": evicting absent block");
    ++evictions_;
    TBE tbe;
    tbe.mode = DirMode::Evict;
    tbe.lastActivity = curTick();
    // Recall every child copy (inclusive hierarchy, §4.2.2): Inv all
    // holders; the owner's ack brings the dirty block home.
    ensureChildren();
    for (std::size_t s = 0; s < children_.size(); ++s) {
        if (entry->sharers & bitOf(static_cast<int>(s))) {
            send(make(MsgType::Inv, victim, children_[s]));
            ++tbe.acksLeft;
            tbe.invMask |= bitOf(static_cast<int>(s));
            ++recalls_;
        }
    }
    entry->sharers = 0;
    entry->owner = -1;
    auto [it, inserted] = tbes_.emplace(victim, std::move(tbe));
    neo_assert(inserted, "eviction TBE already present");
    if (it->second.acksLeft == 0)
        completeIfReady(victim);
}

void
DirController::sendUpward(MsgType t, Addr addr, bool dirty,
                          std::uint64_t serial, NodeId serial_owner)
{
    neo_assert(!isRoot(), "root has no parent to relay to");
    auto msg = make(t, addr, parent_);
    msg->dirty = dirty;
    if (dirty)
        msg->sizeBytes = dataMsgBytes;
    msg->serial = serial;
    msg->serialOwner = serial_owner;
    send(std::move(msg));
}

void
DirController::handleChildGetS(std::unique_ptr<CoherenceMsg> msg)
{
    const Addr addr = msg->addr;
    if (!makeRoom(addr, msg))
        return;
    DirEntry *entry = cache_.peek(addr);
    const int slot = slotOf(msg->src);

    TBE tbe;
    tbe.requester = msg->src;
    tbe.globalRequester = msg->globalRequester;
    tbe.serial = msg->serial;
    tbe.serialOwner = msg->serialOwner;
    tbe.lastActivity = curTick();

    if (entry->owner == slot && (cfg_.nonBlockingDir || resilient_)) {
        // The recorded owner is asking for the block again: its copy
        // is gone (a use-once drop or a raced Inv); drop the stale
        // ownership record before deciding how to serve.
        entry->owner = -1;
        entry->sharers &= ~bitOf(slot);
    }

    const bool servable_here =
        entry->perm != Perm::I &&
        (entry->owner != -1 || entry->dataValid || isRoot());

    if (!servable_here) {
        // Relay up: the subtree's Permission is insufficient (or the
        // collocated copy is gone under NS forwarding). Under NS the
        // data goes straight to the global requester, so the relay
        // completes on the requester's Unblock instead of on Data.
        tbe.mode = DirMode::FetchRead;
        tbe.waitingData = !cfg_.nonSiblingFwd;
        tbe.waitingUnblock = true;
        ++relaysUp_;
        auto req = make(MsgType::GetS, addr, parent_);
        req->globalRequester = tbe.globalRequester;
        req->serial = tbe.serial;
        req->serialOwner = tbe.serialOwner;
        send(std::move(req));
        tbes_.emplace(addr, std::move(tbe));
        return;
    }

    tbe.mode = DirMode::LocalRead;
    ++localSatisfied_;
    tbe.waitingUnblock = !cfg_.nonBlockingDir;
    if (cfg_.nonBlockingDir)
        ++entry->pendingUnblocks;

    if (entry->owner != -1 && entry->owner != slot) {
        // Fetch from the owning child; data flows sibling-to-sibling
        // (Fig. 4 time (6)) or directly to the global requester under
        // NS forwarding (Fig. 5/6).
        auto fwd = make(MsgType::FwdGetS, addr,
                        children_[entry->owner]);
        fwd->target = cfg_.nonSiblingFwd ? tbe.globalRequester
                                         : tbe.requester;
        fwd->globalRequester = tbe.globalRequester;
        fwd->serial = tbe.serial;
        fwd->serialOwner = tbe.serialOwner;
        tbe.fwdDispatched = true;
        tbe.fwdType = MsgType::FwdGetS;
        tbe.fwdTo = fwd->dst;
        tbe.fwdTarget = fwd->target;
        tbe.fwdToParent = false;
        send(std::move(fwd));
        entry->sharers |= bitOf(slot);
        if (!cfg_.ownedState) {
            // MESI: ownership migrates toward this level; the
            // requester's Unblock will deliver the (dirty) data.
            entry->owner = -1;
            entry->dataValid = false;
        }
        // else MOESI: the child stays owner in O.
    } else {
        // Serve from the collocated copy (or DRAM at the root).
        neo_assert(entry->owner == -1 || entry->owner == slot, name(),
                   ": GetS from the owner");
        if (!entry->dataValid) {
            neo_assert(isRoot(), name(),
                       ": inclusive hierarchy lost the data");
            tbe.waitingData = true;
            ++dramReads_;
            const Tick delay = dram_->access(curTick());
            eventq().schedule(curTick() + delay, [this, addr]() {
                auto it = tbes_.find(addr);
                neo_assert(it != tbes_.end(), "DRAM fill without TBE");
                DirEntry *e = cache_.peek(addr);
                e->dataValid = true;
                it->second.waitingData = false;
                armLocalGrant(addr, it->second, *e);
                completeIfReady(addr);
            });
        } else {
            armLocalGrant(addr, tbe, *entry);
        }
    }
    auto [it, ok] = tbes_.emplace(addr, std::move(tbe));
    neo_assert(ok, "TBE already present");
    completeIfReady(addr);
}

void
DirController::handleChildGetM(std::unique_ptr<CoherenceMsg> msg)
{
    const Addr addr = msg->addr;
    if (!makeRoom(addr, msg))
        return;
    DirEntry *entry = cache_.peek(addr);
    const int slot = slotOf(msg->src);

    TBE tbe;
    tbe.requester = msg->src;
    tbe.globalRequester = msg->globalRequester;
    tbe.serial = msg->serial;
    tbe.serialOwner = msg->serialOwner;
    tbe.lastActivity = curTick();

    (void)slot;
    if (permRank(entry->perm) < permRank(Perm::E)) {
        // I, S or O: the permission principle forbids granting M until
        // this subtree itself holds M; relay the upgrade to the parent.
        tbe.mode = DirMode::FetchWrite;
        tbe.waitingData = !cfg_.nonSiblingFwd;
        tbe.waitingUnblock = true;
        ++relaysUp_;
        if (cfg_.nonSiblingFwd) {
            // The grant will go straight to the requester, so local
            // sharers must be invalidated concurrently with the relay.
            const int slot = slotOf(tbe.requester);
            ensureChildren();
            for (std::size_t s = 0; s < children_.size(); ++s) {
                const int si = static_cast<int>(s);
                if (si == slot)
                    continue;
                if (entry->sharers & bitOf(si)) {
                    send(make(MsgType::Inv, addr, children_[s]));
                    entry->sharers &= ~bitOf(si);
                    if (entry->owner == si)
                        entry->owner = -1;
                    ++tbe.acksLeft;
                    tbe.invMask |= bitOf(si);
                }
            }
        }
        auto req = make(MsgType::GetM, addr, parent_);
        req->globalRequester = tbe.globalRequester;
        req->serial = tbe.serial;
        req->serialOwner = tbe.serialOwner;
        send(std::move(req));
        tbes_.emplace(addr, std::move(tbe));
        return;
    }

    // E or M: satisfiable within the subtree. Write-ownership
    // transfers stay blocking even under NS-MOESI: releasing a write
    // before its Unblock lets two transfer epochs cross and deadlock
    // or double-grant M (the §4.2.2 verification cliff, mechanically).
    // Only reads get the back-to-back treatment.
    tbe.mode = DirMode::LocalWrite;
    ++localSatisfied_;
    tbe.waitingUnblock = true;
    auto [it, ok] = tbes_.emplace(addr, std::move(tbe));
    neo_assert(ok, "TBE already present");
    localWritePhase(addr, it->second, *entry);
    completeIfReady(addr);
}

/**
 * Arm the directory's own Data grant for a local read. Exclusive is
 * granted when the requester will be the sole holder (MESI).
 */
void
DirController::armLocalGrant(Addr addr, TBE &tbe, DirEntry &entry)
{
    const int slot = slotOf(tbe.requester);
    const bool sole = entry.sharers == 0 && entry.owner == -1;
    Perm grant = Perm::S;
    if (sole && cfg_.exclusiveState &&
        permRank(entry.perm) >= permRank(Perm::E)) {
        grant = Perm::E;
    }
    tbe.grantPending = true;
    tbe.grantPerm = grant;
    tbe.grantDirty = false;
    entry.sharers |= bitOf(slot);
    if (grant == Perm::E)
        entry.owner = slot;
    (void)addr;
}

void
DirController::localWritePhase(Addr addr, TBE &tbe, DirEntry &entry)
{
    const int slot = slotOf(tbe.requester);

    // Invalidate every other sharer first; the grant is armed and only
    // dispatched once the acks are in (single-writer safety).
    ensureChildren();
    for (std::size_t s = 0; s < children_.size(); ++s) {
        const int si = static_cast<int>(s);
        if (si == slot || si == entry.owner)
            continue;
        if (entry.sharers & bitOf(si)) {
            send(make(MsgType::Inv, addr, children_[s]));
            entry.sharers &= ~bitOf(si);
            ++tbe.acksLeft;
            tbe.invMask |= bitOf(si);
        }
    }

    if (entry.owner != -1 && entry.owner != slot) {
        // The owning child supplies the writer.
        tbe.fwdPending = true;
        tbe.fwdType = MsgType::FwdGetM;
        tbe.fwdTo = children_[entry.owner];
        tbe.fwdTarget = cfg_.nonSiblingFwd ? tbe.globalRequester
                                           : tbe.requester;
        entry.sharers &= ~bitOf(entry.owner);
        entry.owner = -1;
    } else {
        if (!entry.dataValid && entry.owner == -1) {
            neo_assert(isRoot(), name(),
                       ": local write lost the data");
            tbe.waitingData = true;
            ++dramReads_;
            const Tick delay = dram_->access(curTick());
            eventq().schedule(curTick() + delay, [this, addr]() {
                auto it = tbes_.find(addr);
                neo_assert(it != tbes_.end(), "DRAM fill without TBE");
                cache_.peek(addr)->dataValid = true;
                it->second.waitingData = false;
                completeIfReady(addr);
            });
        }
        tbe.grantPending = true;
        tbe.grantPerm = Perm::M;
        tbe.grantDirty = false;
    }

    // Final bookkeeping: the requester becomes the sole owner.
    entry.sharers = bitOf(slot);
    entry.owner = slot;
    entry.perm = Perm::M; // silent E->M upgrade at this level
    entry.dataValid = false;
    entry.dirty = false; // dirtiness now lives below the owner child
}

void
DirController::handleChildPut(const CoherenceMsg &msg)
{
    DirEntry *entry = cache_.peek(msg.addr);
    auto ack = make(MsgType::PutAck, msg.addr, msg.src);
    ack->serial = msg.serial; // the ack names the Put it answers
    ack->serialOwner = msg.serialOwner;
    if (entry == nullptr) {
        // Stale Put: the block was recalled while the Put was in
        // flight; the child is already in II_A.
        send(std::move(ack));
        return;
    }
    const int slot = slotOf(msg.src);
    const bool is_owner = entry->owner == slot;
    const bool is_sharer = (entry->sharers & bitOf(slot)) != 0;

    switch (msg.type) {
      case MsgType::PutM:
      case MsgType::PutO:
        if (is_owner) {
            entry->owner = -1;
            entry->sharers &= ~bitOf(slot);
            entry->dataValid = true;
            entry->dirty |= msg.dirty;
        } else if (is_sharer) {
            // Downgraded en route (a Fwd_GetS raced the Put): treat as
            // a shared-copy eviction carrying still-current data.
            entry->sharers &= ~bitOf(slot);
            if (entry->owner == -1)
                entry->dataValid = true;
        }
        break;
      case MsgType::PutE:
        if (is_owner) {
            entry->owner = -1;
            entry->sharers &= ~bitOf(slot);
            entry->dataValid = true;
        } else if (is_sharer) {
            entry->sharers &= ~bitOf(slot);
        }
        break;
      case MsgType::PutS:
        if (is_sharer)
            entry->sharers &= ~bitOf(slot);
        // A MOESI owner subtree that served readers from a clean copy
        // downgrades to S without telling us; its PutS is also the end
        // of its ownership.
        if (is_owner)
            entry->owner = -1;
        break;
      default:
        neo_panic("not a Put");
    }
    send(std::move(ack));
}

void
DirController::handleParentInv(const CoherenceMsg &msg)
{
    DirEntry *entry = cache_.peek(msg.addr);
    if (entry == nullptr) {
        // Stale Inv: we already evicted and the notifications crossed.
        send(make(MsgType::InvAck, msg.addr, parent_));
        return;
    }
    TBE tbe;
    tbe.mode = DirMode::ExtInv;
    tbe.lastActivity = curTick();
    ensureChildren();
    for (std::size_t s = 0; s < children_.size(); ++s) {
        if (entry->sharers & bitOf(static_cast<int>(s))) {
            send(make(MsgType::Inv, msg.addr, children_[s]));
            ++tbe.acksLeft;
            tbe.invMask |= bitOf(static_cast<int>(s));
        }
    }
    entry->sharers = 0;
    entry->owner = -1;
    auto [it, ok] = tbes_.emplace(msg.addr, std::move(tbe));
    neo_assert(ok, "TBE already present");
    completeIfReady(msg.addr);
}

void
DirController::handleParentFwdGetS(const CoherenceMsg &msg)
{
    DirEntry *entry = cache_.peek(msg.addr);
    if (entry == nullptr && resilient_) {
        // Re-driven demand for a block this subtree already passed on
        // and erased: feed the target again (values are untracked).
        ++staleDrops_;
        auto data = make(MsgType::Data, msg.addr,
                         msg.respondToParent ? parent_ : msg.target);
        data->grant = Perm::S;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        return;
    }
    neo_assert(entry != nullptr, name(), ": Fwd_GetS for absent block");
    TBE tbe;
    tbe.mode = DirMode::ExtRead;
    tbe.extTarget = msg.target;
    tbe.extToParent = msg.respondToParent;
    tbe.globalRequester = msg.globalRequester;
    tbe.serial = msg.serial;
    tbe.serialOwner = msg.serialOwner;
    tbe.lastActivity = curTick();

    if (entry->owner != -1) {
        auto fwd = make(MsgType::FwdGetS, msg.addr,
                        children_[entry->owner]);
        if (cfg_.nonSiblingFwd) {
            // NS: the data goes straight to the global requester.
            fwd->target = msg.target;
            fwd->globalRequester = msg.globalRequester;
        } else {
            // NeoMESI: the owner sends the data up to us and we relay
            // it to the sibling (Fig. 4 times (5)-(6)).
            fwd->respondToParent = true;
            tbe.waitingData = true;
        }
        fwd->serial = tbe.serial;
        fwd->serialOwner = tbe.serialOwner;
        tbe.fwdDispatched = true;
        tbe.fwdType = MsgType::FwdGetS;
        tbe.fwdTo = fwd->dst;
        tbe.fwdTarget = fwd->target;
        tbe.fwdToParent = fwd->respondToParent;
        send(std::move(fwd));
        if (!cfg_.ownedState) {
            entry->owner = -1;
            entry->dataValid = false;
        }
    } else {
        neo_assert(entry->dataValid, name(),
                   ": owner subtree without data");
        tbe.grantPending = true;
        tbe.grantPerm = Perm::S;
        if (cfg_.ownedState && entry->dirty) {
            tbe.grantDirty = false; // we keep ownership in O
        } else {
            tbe.grantDirty = entry->dirty; // pass dirtiness across
        }
    }
    auto [it, ok] = tbes_.emplace(msg.addr, std::move(tbe));
    neo_assert(ok, "TBE already present");
    completeIfReady(msg.addr);
}

void
DirController::handleParentFwdGetM(const CoherenceMsg &msg)
{
    DirEntry *entry = cache_.peek(msg.addr);
    if (entry == nullptr && resilient_) {
        // See handleParentFwdGetS: re-driven demand after we already
        // handed the block over and erased it.
        ++staleDrops_;
        auto data = make(MsgType::Data, msg.addr,
                         msg.respondToParent ? parent_ : msg.target);
        data->grant = Perm::M;
        data->dirty = true;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        return;
    }
    neo_assert(entry != nullptr, name(), ": Fwd_GetM for absent block");
    TBE tbe;
    tbe.mode = DirMode::ExtWrite;
    tbe.extTarget = msg.target;
    tbe.extToParent = msg.respondToParent;
    tbe.globalRequester = msg.globalRequester;
    tbe.serial = msg.serial;
    tbe.serialOwner = msg.serialOwner;
    tbe.lastActivity = curTick();

    ensureChildren();
    for (std::size_t s = 0; s < children_.size(); ++s) {
        const int si = static_cast<int>(s);
        if (si == entry->owner)
            continue;
        if (entry->sharers & bitOf(si)) {
            send(make(MsgType::Inv, msg.addr, children_[s]));
            entry->sharers &= ~bitOf(si);
            ++tbe.acksLeft;
            tbe.invMask |= bitOf(si);
        }
    }

    if (entry->owner != -1) {
        tbe.fwdPending = true;
        tbe.fwdType = MsgType::FwdGetM;
        tbe.fwdTo = children_[entry->owner];
        if (cfg_.nonSiblingFwd) {
            tbe.fwdTarget = msg.target;
            tbe.fwdToParent = false;
        } else {
            tbe.fwdToParent = true; // owner sends the data up to us
            // waitingData is set when the Fwd is dispatched
        }
        entry->sharers &= ~bitOf(entry->owner);
        entry->owner = -1;
    } else {
        neo_assert(entry->dataValid, name(),
                   ": owner subtree without data");
        tbe.grantPending = true;
        tbe.grantPerm = Perm::M;
        tbe.grantDirty = entry->dirty;
    }
    auto [it, ok] = tbes_.emplace(msg.addr, std::move(tbe));
    neo_assert(ok, "TBE already present");
    completeIfReady(msg.addr);
}

void
DirController::handleData(const CoherenceMsg &msg)
{
    // Unsolicited copies (NS-MESI owner-to-parent data, Fig. 5 (5))
    // refresh the collocated copy; the dirtiness responsibility rides
    // the requester's Unblock chain, not the copy.
    auto copy_update = [this, &msg]() {
        DirEntry *entry = cache_.peek(msg.addr);
        if (entry != nullptr && entry->owner == -1)
            entry->dataValid = true;
    };

    auto it = tbes_.find(msg.addr);
    if (it == tbes_.end()) {
        if (replayRetiredUnblock(msg))
            return;
        copy_update();
        return;
    }
    TBE &tbe = it->second;
    DirEntry *entry = cache_.peek(msg.addr);
    neo_assert(entry != nullptr, name(), ": Data for absent entry");

    if (!tbe.waitingData) {
        // This transaction is not expecting data (NS relays complete
        // on the Unblock); any Data landing now is a copy — unless it
        // is a re-driven grant for a transaction we already retired,
        // which re-elicits the Unblock the parent is waiting for.
        if (replayRetiredUnblock(msg))
            return;
        copy_update();
        return;
    }
    if (resilient_ && (msg.serial != tbe.serial ||
                       msg.serialOwner != tbe.serialOwner)) {
        // A delayed grant from an older transaction of this block:
        // adopting it could out-grant what the parent gave THIS
        // transaction, and a re-driven grant for a transaction we
        // already retired re-elicits the Unblock instead.
        if (replayRetiredUnblock(msg))
            return;
        ++staleDrops_;
        copy_update();
        return;
    }
    tbe.lastActivity = curTick();

    switch (tbe.mode) {
      case DirMode::FetchRead: {
        // Our subtree was granted msg.grant (S or E); pass it on.
        entry->perm = msg.grant;
        entry->dataValid = true;
        tbe.dirtyCarried = msg.dirty;
        tbe.waitingData = false;
        armLocalGrant(msg.addr, tbe, *entry);
        tbe.grantDirty = msg.dirty;
        if (tbe.grantPerm == Perm::E && msg.grant != Perm::E)
            tbe.grantPerm = Perm::S; // cannot out-grant our own grant
        break;
      }
      case DirMode::FetchWrite:
        entry->perm = Perm::M;
        entry->dataValid = true;
        tbe.dirtyCarried = true;
        tbe.waitingData = false;
        localWritePhase(msg.addr, tbe, *entry);
        break;
      case DirMode::ExtRead:
        // The owning child returned the data for us to relay.
        neo_assert(tbe.waitingData, name(), ": unexpected ExtRead data");
        tbe.waitingData = false;
        entry->dataValid = true;
        entry->dirty |= msg.dirty;
        tbe.grantPending = true;
        tbe.grantPerm = Perm::S;
        tbe.grantDirty = entry->dirty;
        break;
      case DirMode::ExtWrite:
        neo_assert(tbe.waitingData, name(),
                   ": unexpected ExtWrite data");
        tbe.waitingData = false;
        tbe.dirtyCarried = tbe.dirtyCarried || msg.dirty || entry->dirty;
        tbe.grantPending = true;
        tbe.grantPerm = Perm::M;
        tbe.grantDirty = tbe.dirtyCarried;
        break;
      case DirMode::LocalRead:
      case DirMode::LocalWrite:
        // Copy landing while the root's DRAM fill is pending.
        copy_update();
        return; // not a completion signal
      default:
        neo_panic(name(), ": Data in mode ", dirModeName(tbe.mode));
    }
    completeIfReady(msg.addr);
}

void
DirController::handleInvAck(const CoherenceMsg &msg)
{
    auto it = tbes_.find(msg.addr);
    if (resilient_ && it == tbes_.end()) {
        ++staleDrops_; // ack for an already-finished invalidation
        return;
    }
    neo_assert(it != tbes_.end(), name(), ": InvAck without TBE");
    TBE &tbe = it->second;
    DirEntry *entry = cache_.peek(msg.addr);
    if (resilient_ && entry == nullptr) {
        ++staleDrops_;
        return;
    }
    neo_assert(entry != nullptr, name(), ": InvAck for absent entry");
    const std::uint64_t src_bit =
        resilient_ && isChild(msg.src) ? bitOf(slotOf(msg.src)) : 0;
    if (resilient_ && src_bit == 0) {
        ++staleDrops_;
        return;
    }
    tbe.lastActivity = curTick();

    if (tbe.subInvActive) {
        if (resilient_) {
            if ((tbe.subInvMask & src_bit) == 0) {
                ++staleDrops_; // duplicate ack of this nested wave
                return;
            }
            tbe.subInvMask &= ~src_bit;
        }
        if (--tbe.subInvAcksLeft == 0) {
            // Nested parent Inv satisfied: report up, stay fetching.
            send(make(MsgType::InvAck, msg.addr, parent_));
            entry->perm = Perm::I;
            entry->dataValid = false;
            tbe.subInvActive = false;
            // The fetch itself may already have finished (its Unblock
            // can beat the nested acks under non-blocking reads).
            completeIfReady(msg.addr);
        }
        return;
    }

    if (resilient_) {
        if ((tbe.invMask & src_bit) == 0) {
            ++staleDrops_; // duplicate or reissue-crossed ack
            return;
        }
        tbe.invMask &= ~src_bit;
    }
    neo_assert(tbe.acksLeft > 0, name(), ": spurious InvAck");
    --tbe.acksLeft;
    if (msg.dirty) {
        // A recalled owner returned the dirty block.
        entry->dataValid = true;
        entry->dirty = true;
    }
    completeIfReady(msg.addr);
}

void
DirController::handleUnblock(const CoherenceMsg &msg)
{
    auto it = tbes_.find(msg.addr);
    DirEntry *entry = cache_.peek(msg.addr);
    if (it != tbes_.end() && it->second.waitingUnblock &&
        it->second.requester == msg.src &&
        (!resilient_ || (msg.serial == it->second.serial &&
                         msg.serialOwner == it->second.serialOwner))) {
        TBE &tbe = it->second;
        tbe.lastActivity = curTick();
        tbe.waitingUnblock = false;
        tbe.unblockDirty = msg.dirty;
        tbe.unblockGrant = msg.grant;
        if (entry != nullptr && entry->owner == -1)
            entry->dataValid = true;
        completeIfReady(msg.addr);
        return;
    }
    // Duplicates of a replayed Unblock must be inert under a blocking
    // directory: the metadata-only adoption below is NS bookkeeping.
    if (resilient_ && !cfg_.nonBlockingDir) {
        ++staleDrops_;
        return;
    }
    // Late Unblock under non-blocking directories: metadata only.
    if (entry != nullptr) {
        if (entry->pendingUnblocks > 0)
            --entry->pendingUnblocks;
        if (entry->owner == -1) {
            entry->dataValid = true;
            if (permRank(entry->perm) >= permRank(Perm::E))
                entry->dirty |= msg.dirty;
        }
    }
}

void
DirController::handlePutAck(const CoherenceMsg &msg)
{
    auto it = tbes_.find(msg.addr);
    if (resilient_ &&
        (it == tbes_.end() || it->second.mode != DirMode::EvictWB ||
         msg.serial != it->second.serial)) {
        ++staleDrops_; // ack for an already-retired (or reissued) Put
        return;
    }
    neo_assert(it != tbes_.end() && it->second.mode == DirMode::EvictWB,
               name(), ": PutAck without a pending writeback");
    if (cache_.peek(msg.addr) != nullptr)
        cache_.erase(msg.addr);
    retire(msg.addr);
}

bool
DirController::handleFwdDuringFetch(TBE &tbe, const CoherenceMsg &msg)
{
    {
        DirEntry *e = cache_.peek(msg.addr);
        if (e != nullptr && e->owner == -1 && !e->dataValid &&
            tbe.acksLeft > 0) {
            // The old owner's copy is riding back on an InvAck; hold
            // the demand until it lands (completeIfReady re-runs us).
            return false;
        }
    }
    // Only NS-MOESI's back-to-back read processing exposes this race;
    // write-ownership transfers are serialized at the parent, so the
    // demand is necessarily from an epoch older than our pending one
    // and applies to the copy this subtree currently owns.
    if (resilient_ && !cfg_.nonBlockingDir) {
        // A delayed or re-driven Fwd caught us after our old copy was
        // already evicted (the parent revoked our ownership when it
        // processed the Put). We have nothing to hand over; grant the
        // demanded permission directly so the parent's transaction can
        // complete — in this permission-only model the supply itself
        // carries no payload.
        auto data = make(MsgType::Data, msg.addr,
                         msg.respondToParent ? parent_ : msg.target);
        data->grant = msg.type == MsgType::FwdGetM ? Perm::M : Perm::S;
        data->dirty = msg.type == MsgType::FwdGetM;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        ++staleDrops_;
        return true;
    }
    neo_assert(cfg_.nonBlockingDir, name(),
               ": Fwd during a fetch under a blocking directory");
    DirEntry *entry = cache_.peek(msg.addr);
    neo_assert(entry != nullptr, name(), ": Fwd race on absent entry");
    const bool is_getm = msg.type == MsgType::FwdGetM;

    if (is_getm) {
        // Invalidate any remaining old shared copies (at most the
        // upgrading requester itself after the FetchWrite setup).
        ensureChildren();
        for (std::size_t s = 0; s < children_.size(); ++s) {
            const int si = static_cast<int>(s);
            if (si == entry->owner)
                continue;
            if (entry->sharers & bitOf(si)) {
                send(make(MsgType::Inv, msg.addr, children_[s]));
                entry->sharers &= ~bitOf(si);
                ++tbe.acksLeft;
                tbe.invMask |= bitOf(si);
            }
        }
    }

    if (entry->owner != -1) {
        // The old copy lives in a child; relay the demand down.
        auto fwd = make(msg.type, msg.addr, children_[entry->owner]);
        fwd->target = msg.target;
        fwd->respondToParent = false;
        fwd->globalRequester = msg.globalRequester;
        fwd->serial = msg.serial;
        fwd->serialOwner = msg.serialOwner;
        send(std::move(fwd));
        if (is_getm) {
            entry->sharers &= ~bitOf(entry->owner);
            entry->owner = -1;
        }
        // A read against a MOESI owner leaves the owner in place.
    } else if (entry->dataValid) {
        auto data = make(MsgType::Data, msg.addr,
                         msg.respondToParent ? parent_ : msg.target);
        data->grant = is_getm ? Perm::M : Perm::S;
        data->dirty = entry->dirty;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        if (is_getm) {
            entry->dataValid = false;
            entry->dirty = false;
            entry->perm = Perm::I; // superseded by our pending epoch
        }
    } else {
        // No copy here at all: the demand is racing the very grant we
        // are fetching (back-to-back reads at the parent). Relay it to
        // our in-flight requester, who buffers it until its data lands
        // (or answers from the copy it already received). Either way
        // the Unblock may already be in flight with a stale grant, so
        // record how this demand degrades what we actually keep.
        auto fwd = make(msg.type, msg.addr, tbe.requester);
        fwd->target = msg.target;
        fwd->respondToParent = false;
        fwd->globalRequester = msg.globalRequester;
        fwd->serial = msg.serial;
        fwd->serialOwner = msg.serialOwner;
        send(std::move(fwd));
        if (is_getm)
            tbe.grantRevoked = true;
        else
            tbe.fwdSRelayed = true;
    }
    return true;
}

void
DirController::handleDemandDuringEvictWB(TBE &tbe, const CoherenceMsg &msg)
{
    DirEntry *entry = cache_.peek(msg.addr);
    neo_assert(entry != nullptr, name(), ": EvictWB race on absent entry");
    (void)tbe;
    switch (msg.type) {
      case MsgType::Inv: {
        auto ack = make(MsgType::InvAck, msg.addr, parent_);
        ack->dirty = entry->dirty;
        if (entry->dirty)
            ack->sizeBytes = dataMsgBytes;
        send(std::move(ack));
        entry->perm = Perm::I;
        entry->dirty = false;
        break;
      }
      case MsgType::FwdGetS: {
        auto data = make(MsgType::Data, msg.addr,
                         msg.respondToParent ? parent_ : msg.target);
        data->grant = Perm::S;
        data->dirty = entry->dirty;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        entry->perm = Perm::S;
        entry->dirty = false;
        break;
      }
      case MsgType::FwdGetM: {
        auto data = make(MsgType::Data, msg.addr,
                         msg.respondToParent ? parent_ : msg.target);
        data->grant = Perm::M;
        data->dirty = entry->dirty;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        entry->perm = Perm::I;
        entry->dirty = false;
        break;
      }
      default:
        neo_panic("not a demand");
    }
}

void
DirController::handleInvDuringFetch(TBE &tbe, const CoherenceMsg &msg)
{
    DirEntry *entry = cache_.peek(msg.addr);
    neo_assert(entry != nullptr, name(), ": Inv race on absent entry");
    neo_assert(!tbe.subInvActive, name(), ": nested Inv twice");
    tbe.subInvActive = true;
    tbe.subInvAcksLeft = 0;
    ensureChildren();
    if (tbe.mode == DirMode::FetchRead && entry->perm == Perm::I &&
        cfg_.nonBlockingDir) {
        // No old copy exists here, so this Inv revokes the very grant
        // we are fetching (a back-to-back writer at the parent beat
        // our Unblock). Chase the grant down to the requester — it
        // answers from IS_D (use-once) — and drop the achieved
        // permission at retire.
        send(make(MsgType::Inv, msg.addr, tbe.requester));
        ++tbe.subInvAcksLeft;
        tbe.subInvMask |= bitOf(slotOf(tbe.requester));
        tbe.grantRevoked = true;
    }
    for (std::size_t s = 0; s < children_.size(); ++s) {
        if (entry->sharers & bitOf(static_cast<int>(s))) {
            send(make(MsgType::Inv, msg.addr, children_[s]));
            ++tbe.subInvAcksLeft;
            tbe.subInvMask |= bitOf(static_cast<int>(s));
        }
    }
    entry->sharers = 0;
    entry->owner = -1;
    if (tbe.subInvAcksLeft == 0) {
        send(make(MsgType::InvAck, msg.addr, parent_));
        entry->perm = Perm::I;
        entry->dataValid = false;
        tbe.subInvActive = false;
    }
}

void
DirController::completeIfReady(Addr addr)
{
    auto it = tbes_.find(addr);
    if (it == tbes_.end())
        return;
    TBE &tbe = it->second;
    DirEntry *entry = cache_.peek(addr);

    if (tbe.subInvActive || tbe.acksLeft > 0 || tbe.waitingData)
        return;

    // Acks are in: dispatch any pending owner-forward, then any
    // pending grant from our own copy.
    if (tbe.fwdPending) {
        tbe.fwdPending = false;
        tbe.fwdDispatched = true;
        auto fwd = make(tbe.fwdType, addr, tbe.fwdTo);
        fwd->target = tbe.fwdTarget;
        fwd->respondToParent = tbe.fwdToParent;
        fwd->globalRequester = tbe.globalRequester;
        fwd->serial = tbe.serial;
        fwd->serialOwner = tbe.serialOwner;
        send(std::move(fwd));
        if (tbe.fwdToParent) {
            tbe.waitingData = true;
            return;
        }
    }
    if (tbe.grantPending) {
        tbe.grantPending = false;
        NodeId dest;
        if (tbe.mode == DirMode::ExtRead ||
            tbe.mode == DirMode::ExtWrite) {
            dest = tbe.extToParent ? parent_ : tbe.extTarget;
        } else if (cfg_.nonSiblingFwd &&
                   tbe.globalRequester != invalidNode) {
            // NS: serve the originating L1 directly, however deep.
            dest = tbe.globalRequester;
        } else {
            dest = tbe.requester;
        }
        auto data = make(MsgType::Data, addr, dest);
        data->grant = tbe.grantPerm;
        data->dirty = tbe.grantDirty;
        data->serial = tbe.serial;
        data->serialOwner = tbe.serialOwner;
        send(std::move(data));
        tbe.grantDispatched = true;
        tbe.lastGrantDest = dest;
    }

    if (tbe.waitingUnblock) {
        // Acks are in; any demand held for the returning old copy can
        // now be answered (see handleFwdDuringFetch).
        if ((tbe.mode == DirMode::FetchRead ||
             tbe.mode == DirMode::FetchWrite) &&
            tbe.acksLeft == 0 && !tbe.deferred.empty()) {
            auto deferred = std::move(tbe.deferred);
            tbe.deferred.clear();
            for (auto &m : deferred) {
                auto *cm = static_cast<CoherenceMsg *>(m.get());
                if ((cm->type == MsgType::FwdGetS ||
                     cm->type == MsgType::FwdGetM) &&
                    handleFwdDuringFetch(tbe, *cm)) {
                    continue;
                }
                tbe.deferred.push_back(std::move(m));
            }
        }
        return;
    }

    if (tbe.mode == DirMode::Evict) {
        // Recall finished; move to the writeback phase.
        tbe.mode = DirMode::EvictWB;
        neo_assert(entry != nullptr, "evicting absent entry");
        if (isRoot()) {
            if (entry->dirty) {
                ++dramWrites_;
                dram_->access(curTick());
            }
            cache_.erase(addr);
            retire(addr);
            return;
        }
        if (entry->perm == Perm::I) {
            // Never granted anything; drop silently.
            cache_.erase(addr);
            retire(addr);
            return;
        }
        MsgType put;
        if (entry->dirty) {
            put = (entry->perm == Perm::O) ? MsgType::PutO
                                           : MsgType::PutM;
        } else {
            put = (entry->perm == Perm::E) ? MsgType::PutE
                                           : MsgType::PutS;
        }
        tbe.putType = put;
        tbe.putDirty = entry->dirty;
        if (resilient_) {
            tbe.serial = ++serialCtr_;
            tbe.serialOwner = nodeId_;
        }
        sendUpward(put, addr, entry->dirty, tbe.serial, tbe.serialOwner);
        // Any demands deferred during the recall can now be answered
        // from the copy in hand.
        auto deferred = std::move(tbe.deferred);
        tbe.deferred.clear();
        for (auto &m : deferred) {
            auto *cm = static_cast<CoherenceMsg *>(m.get());
            if (isDemand(cm->type)) {
                handleDemandDuringEvictWB(tbe, *cm);
            } else {
                tbe.deferred.push_back(std::move(m));
            }
        }
        return; // awaits PutAck
    }
    if (tbe.mode == DirMode::EvictWB)
        return; // awaits PutAck

    // Mode-specific retirement bookkeeping.
    switch (tbe.mode) {
      case DirMode::LocalRead:
      case DirMode::LocalWrite:
      case DirMode::FetchRead:
      case DirMode::FetchWrite: {
        neo_assert(entry != nullptr, "local retire on absent entry");
        const bool is_fetch = tbe.mode == DirMode::FetchRead ||
                              tbe.mode == DirMode::FetchWrite;
        if (is_fetch && cfg_.nonSiblingFwd && !tbe.grantRevoked) {
            // The data bypassed us; adopt what the Unblock reported.
            // Buffered Fwds may have already moved the block on, so
            // the achieved permission can be anything down to I.
            const int slot = slotOf(tbe.requester);
            Perm achieved = tbe.unblockGrant;
            if (tbe.fwdSRelayed &&
                permRank(achieved) >= permRank(Perm::E)) {
                // A reader was served out of our exclusive grant.
                achieved = cfg_.ownedState ? Perm::O : Perm::S;
            }
            entry->perm = achieved;
            if (achieved != Perm::I) {
                entry->sharers |= bitOf(slot);
                if (permRank(achieved) >= permRank(Perm::O)) {
                    entry->owner = slot;
                    entry->dataValid = false;
                }
            }
        }
        const bool carried = tbe.dirtyCarried || tbe.unblockDirty;
        bool pass_up = false;
        if (carried) {
            if (permRank(entry->perm) >= permRank(Perm::E)) {
                entry->dirty = true; // absorbed at this level
            } else {
                pass_up = true; // an S subtree cannot own dirtiness
            }
        }
        if (is_fetch && !isRoot()) {
            auto ub = make(MsgType::Unblock, addr, parent_);
            ub->dirty = pass_up;
            ub->grant = entry->perm;
            ub->sizeBytes = dataMsgBytes;
            ub->serial = tbe.serial;
            ub->serialOwner = tbe.serialOwner;
            tbe.sentUnblock = true;
            tbe.achievedGrant = ub->grant;
            tbe.achievedDirty = ub->dirty;
            send(std::move(ub));
        }
        break;
      }
      case DirMode::ExtRead: {
        neo_assert(entry != nullptr, "ExtRead retire on absent entry");
        if (cfg_.ownedState &&
            (entry->owner != -1 || entry->dirty)) {
            entry->perm = Perm::O;
        } else {
            entry->perm = Perm::S;
            entry->dirty = false; // ownership passed across/up
        }
        break;
      }
      case DirMode::ExtWrite:
      case DirMode::ExtInv: {
        if (tbe.mode == DirMode::ExtInv) {
            auto ack = make(MsgType::InvAck, addr, parent_);
            ack->dirty = entry != nullptr && entry->dirty;
            if (ack->dirty)
                ack->sizeBytes = dataMsgBytes;
            send(std::move(ack));
        }
        if (entry != nullptr)
            cache_.erase(addr);
        break;
      }
      default:
        break;
    }
    retire(addr);
}

void
DirController::retire(Addr addr)
{
    auto it = tbes_.find(addr);
    neo_assert(it != tbes_.end(), "retiring absent TBE");
    if (resilient_ && it->second.serial != 0 &&
        it->second.requester != invalidNode) {
        // Retirement implies the requester's Unblock arrived, so any
        // same-serial reissue still in flight is stale; remember the
        // identity so absorbReissue can drop it.
        // Sized to outlive the parent's reissue sweep: a directory
        // retires transactions at the combined rate of its whole
        // subtree, and an Unblock-loss repair needs this entry to
        // still be here when the parent's re-driven grant lands.
        recentRetired_.push_front(RetiredTxn{
            addr, it->second.requester, it->second.serialOwner,
            it->second.serial, it->second.sentUnblock,
            it->second.achievedGrant, it->second.achievedDirty});
        if (recentRetired_.size() > 8192)
            recentRetired_.pop_back();
    }
    auto deferred = std::move(it->second.deferred);
    tbes_.erase(it);

    for (auto &m : deferred)
        retryQueue_.push_back(std::move(m));

    if (draining_)
        return; // the outer drain loop will pick these up
    draining_ = true;
    // Drain in bounded passes: a message that re-parks (its set is
    // still full of busy ways) must wait for a future retirement, not
    // spin this loop forever.
    bool progress = true;
    while (progress && !retryQueue_.empty()) {
        const std::size_t before = retryQueue_.size();
        for (std::size_t k = 0; k < before && !retryQueue_.empty();
             ++k) {
            MessagePtr m = std::move(retryQueue_.front());
            retryQueue_.pop_front();
            auto *raw = static_cast<CoherenceMsg *>(m.release());
            std::unique_ptr<CoherenceMsg> cm(raw);
            // Re-route through the full busy check so demands keep
            // their special handling against TBEs created mid-drain.
            routeOrDefer(std::move(cm), false);
        }
        progress = retryQueue_.size() < before;
    }
    draining_ = false;
}

std::string
DirController::debugDump() const
{
    std::ostringstream os;
    for (const auto &[addr, tbe] : tbes_) {
        os << name() << " 0x" << std::hex << addr << std::dec << " "
           << dirModeName(tbe.mode) << " req=" << tbe.requester
           << " acks=" << tbe.acksLeft
           << (tbe.waitingData ? " wData" : "")
           << (tbe.waitingUnblock ? " wUnblk" : "")
           << (tbe.grantPending ? " grant!" : "")
           << (tbe.fwdPending ? " fwd!" : "")
           << (tbe.subInvActive ? " subInv" : "")
           << " deferred=" << tbe.deferred.size()
           << " txn=" << tbe.serialOwner << ":" << tbe.serial
           << " redrives=" << tbe.redrives << "\n";
    }
    if (!retryQueue_.empty())
        os << name() << " retryQueue=" << retryQueue_.size() << "\n";
    return os.str();
}

void
DirController::addStats(StatGroup &group) const
{
    group.add(&requestArrivals_);
    group.add(&blockedArrivals_);
    group.add(&relaysUp_);
    group.add(&localSatisfied_);
    group.add(&evictions_);
    group.add(&recalls_);
    group.add(&dramReads_);
    group.add(&dramWrites_);
    group.add(&redrives_);
    group.add(&staleDrops_);
    group.add(&dupDrops_);
}

} // namespace neo
