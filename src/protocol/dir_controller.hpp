/**
 * @file
 * Directory controller: internal and root nodes of the hierarchy.
 *
 * Each directory is collocated with a cache (L2/L3 per Figure 7) and
 * provides MESI (MOESI under NS-MOESI) permissions for its children,
 * exactly as Section 3 describes:
 *
 *  - It keeps, per block, the Neo `Permission` variable summarizing
 *    the permission the whole subtree below it appears to hold, and
 *    enforces the permission principle (no child may exceed it).
 *  - When a child request cannot be satisfied under the current
 *    Permission, the request is relayed to the parent directory,
 *    indistinguishably from how an L1 talks to a directory (this is
 *    what makes an Open Neo System implement a leaf).
 *  - Directories block per-block from request receipt until the
 *    requester's Unblock (NeoMESI assumes no point-to-point network
 *    ordering); under NS-MOESI the block is released as soon as the
 *    responses are dispatched (non-blocking directories, §5.1.2).
 *  - The hierarchy is fully inclusive in metadata: children hold a
 *    block only if the directory tracks it, children are recalled
 *    before a directory eviction, and children send explicit eviction
 *    notifications (PutS/PutE/PutM/PutO).
 *
 * The root directory owns all blocks (its Permission is conceptually M
 * for the whole address space) and fronts the DRAM model.
 */

#ifndef NEO_PROTOCOL_DIR_CONTROLLER_HPP
#define NEO_PROTOCOL_DIR_CONTROLLER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hpp"
#include "mem/dram.hpp"
#include "network/tree_network.hpp"
#include "protocol/coherence_msg.hpp"
#include "protocol/protocol_config.hpp"
#include "sim/fault.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace neo
{

/** Transaction modes of a directory TBE. */
enum class DirMode : std::uint8_t
{
    LocalRead,  ///< child GetS satisfiable within the subtree
    LocalWrite, ///< child GetM satisfiable within the subtree
    FetchRead,  ///< child GetS relayed to the parent
    FetchWrite, ///< child GetM relayed to the parent (incl. upgrades)
    ExtRead,    ///< parent Fwd_GetS being served
    ExtWrite,   ///< parent Fwd_GetM being served
    ExtInv,     ///< parent Inv being served (recursive invalidation)
    Evict,      ///< recalling children before a capacity eviction
    EvictWB,    ///< writeback sent; awaiting the parent's PutAck
};

const char *dirModeName(DirMode m);

class DirController : public SimObject, public MessageConsumer
{
  public:
    using TraceFn = std::function<void(const std::string &)>;

    /**
     * Construct an intermediate directory (parent is a registered
     * node) or the root (parent == invalidNode, @p dram non-null).
     */
    DirController(std::string name, EventQueue &eventq, TreeNetwork &net,
                  NodeId parent, const CacheGeometry &geom,
                  const ProtocolConfig &cfg, DramModel *dram = nullptr);

    NodeId nodeId() const { return nodeId_; }
    NodeId parentId() const { return parent_; }
    bool isRoot() const { return parent_ == invalidNode; }

    void deliver(MessagePtr msg) override;

    void setTrace(TraceFn fn) { trace_ = std::move(fn); }

    /** The Neo Permission variable for @p addr (I when untracked). */
    Perm blockPerm(Addr addr) const;

    /** True when no transaction is in flight at this directory. */
    bool quiescent() const { return tbes_.empty() && retryQueue_.empty(); }

    /** Directory-entry view for the global coherence checker. */
    struct EntryView
    {
        Addr addr;
        Perm perm;
        std::uint64_t sharers; ///< bitmask over child slots
        int owner;             ///< child slot or -1
        bool dataValid;
        bool dirty;
    };
    void forEachEntry(const std::function<void(const EntryView &)> &fn)
        const;

    /** Child node id for a slot index (checker support). */
    NodeId childAt(std::size_t slot) const;
    std::size_t numChildren() const;

    /** Render in-flight transaction state (deadlock diagnostics). */
    std::string debugDump() const;

    /**
     * Arm fault recovery: ingress duplicate suppression, stale
     * response/reissue tolerance, and a periodic sweep that re-drives
     * transactions idle for a full directory timeout. Never called on
     * fault-free runs, keeping them bit-identical.
     */
    void setResilience(const RecoveryParams &rec);

    /** Requests parked waiting for a way or a retired TBE. */
    std::size_t retryQueueDepth() const { return retryQueue_.size(); }

    // Statistics (§5.3: blocked-request fractions are
    // blockedArrivals / requestArrivals).
    const Scalar &requestArrivals() const { return requestArrivals_; }
    const Scalar &blockedArrivals() const { return blockedArrivals_; }
    /** Sweep/reissue-triggered re-sends of outstanding messages. */
    const Scalar &redrives() const { return redrives_; }
    const Scalar &staleDrops() const { return staleDrops_; }
    const Scalar &dupDrops() const { return dupDrops_; }
    void addStats(StatGroup &group) const;

  private:
    struct DirEntry
    {
        Perm perm = Perm::I;
        std::uint64_t sharers = 0;
        int owner = -1;
        /** Collocated copy usable to serve readers. */
        bool dataValid = false;
        /** Collocated copy dirty wrt the parent level. */
        bool dirty = false;
        /** Unblocks outstanding under non-blocking directories. */
        std::uint8_t pendingUnblocks = 0;
    };

    struct TBE
    {
        DirMode mode = DirMode::LocalRead;
        NodeId requester = invalidNode; ///< local child being served
        NodeId extTarget = invalidNode; ///< Fwd data destination
        bool extToParent = false;
        NodeId globalRequester = invalidNode;
        int acksLeft = 0;
        bool waitingData = false;
        bool waitingUnblock = false;
        /** Dirty data gathered for / carried by this transaction. */
        bool dirtyCarried = false;
        /** The requester's Unblock reported migrated dirty data. */
        bool unblockDirty = false;
        /** Permission the requester reported achieving (NS relays
         *  learn the grant from the Unblock, not from Data). */
        Perm unblockGrant = Perm::I;
        /** A Data grant from this directory's own copy, dispatched
         *  once all invalidation acks are in. */
        bool grantPending = false;
        Perm grantPerm = Perm::S;
        bool grantDirty = false;
        /** An owner-child forward, dispatched once acks are in. */
        bool fwdPending = false;
        MsgType fwdType = MsgType::FwdGetS;
        NodeId fwdTo = invalidNode;
        NodeId fwdTarget = invalidNode;
        bool fwdToParent = false;
        /** Parent Inv nested inside a Fetch* (§ deadlock avoidance). */
        bool subInvActive = false;
        int subInvAcksLeft = 0;
        /** The in-flight grant itself was revoked by a nested Inv or a
         *  relayed Fwd_GetM. */
        bool grantRevoked = false;
        /** A Fwd_GetS was relayed at the in-flight requester: an
         *  exclusive achievement degrades to O (or S). */
        bool fwdSRelayed = false;
        /** Writeback pending for Evict/EvictWB. */
        MsgType putType = MsgType::PutS;
        std::deque<MessagePtr> deferred;

        // Fault-recovery bookkeeping (all zero when resilience is off).
        /** End-to-end transaction identity (see CoherenceMsg). */
        std::uint64_t serial = 0;
        NodeId serialOwner = invalidNode;
        /** Last tick this transaction made observable progress. */
        Tick lastActivity = 0;
        /** Child slots with an unacknowledged Inv outstanding. */
        std::uint64_t invMask = 0;
        std::uint64_t subInvMask = 0;
        /** The armed grant/fwd was actually put on the wire (the
         *  armed fields persist, so a re-drive can re-send them). */
        bool grantDispatched = false;
        NodeId lastGrantDest = invalidNode;
        bool fwdDispatched = false;
        /** Dirty flag of the EvictWB writeback (for re-drives). */
        bool putDirty = false;
        /** Sweep re-drives consumed (bounded by maxRetries). */
        unsigned redrives = 0;
        /** Recorded when the fetch-retirement Unblock goes out, so a
         *  retired transaction can replay it (see RetiredTxn). */
        bool sentUnblock = false;
        Perm achievedGrant = Perm::I;
        bool achievedDirty = false;
    };

    /** Retired transaction identity: a reissued request matching one
     *  of these is a stale in-flight copy, absorbed rather than
     *  re-executed against already-moved-on metadata. */
    struct RetiredTxn
    {
        Addr addr = 0;
        NodeId requester = invalidNode;
        NodeId serialOwner = invalidNode;
        std::uint64_t serial = 0;
        /** This transaction ended with an Unblock to the parent; a
         *  re-driven grant re-elicits it (the original may have been
         *  dropped, leaving the parent waiting forever). */
        bool sentUnblock = false;
        Perm achieved = Perm::I; ///< grant the Unblock reported
        bool dirtyUp = false;    ///< dirtiness the Unblock carried
    };

    void trace(const std::string &s);
    std::unique_ptr<CoherenceMsg> make(MsgType t, Addr addr, NodeId dst);
    void send(std::unique_ptr<CoherenceMsg> msg);

    /** Lazily build the child slot table from the network topology. */
    void ensureChildren();
    int slotOf(NodeId child);

    DirEntry *entryOf(Addr addr) { return cache_.peek(addr); }

    /** Process a fresh (non-deferred, idle-block) message. */
    void process(std::unique_ptr<CoherenceMsg> msg);

    /**
     * Route a request/demand against the block's busy state: special
     * demand handling, deferral, or fresh processing.
     */
    void routeOrDefer(std::unique_ptr<CoherenceMsg> msg,
                      bool count_blocked);

    void handleChildGetS(std::unique_ptr<CoherenceMsg> msg);
    void handleChildGetM(std::unique_ptr<CoherenceMsg> msg);
    void handleChildPut(const CoherenceMsg &msg);
    void handleParentInv(const CoherenceMsg &msg);
    void handleParentFwdGetS(const CoherenceMsg &msg);
    void handleParentFwdGetM(const CoherenceMsg &msg);

    void handleData(const CoherenceMsg &msg);
    void handleInvAck(const CoherenceMsg &msg);
    void handleUnblock(const CoherenceMsg &msg);
    void handlePutAck(const CoherenceMsg &msg);

    /** Demands that arrive while a writeback is racing (EvictWB). */
    void handleDemandDuringEvictWB(TBE &tbe, const CoherenceMsg &msg);

    /** Serve an old-epoch Fwd demand nested inside a Fetch*
     *  transaction (non-blocking directories only).
     *  @return false when the demand must wait for returning data. */
    bool handleFwdDuringFetch(TBE &tbe, const CoherenceMsg &msg);
    /** Parent Inv nested inside Fetch* (the deadlock-avoidance path). */
    void handleInvDuringFetch(TBE &tbe, const CoherenceMsg &msg);

    /**
     * Grant phase of a write at this level: invalidate local sharers,
     * route data to the requester (from the owner child, the collocated
     * copy, or DRAM at the root).
     */
    void localWritePhase(Addr addr, TBE &tbe, DirEntry &entry);

    /** Arm the Data grant for a local read from this level's copy. */
    void armLocalGrant(Addr addr, TBE &tbe, DirEntry &entry);

    /** Make room for @p addr, evicting if needed.
     *  @return true when an entry exists/was allocated. */
    bool makeRoom(Addr addr, std::unique_ptr<CoherenceMsg> &msg);

    void startEviction(Addr victim);

    /** Relay a request up: to the parent, or to DRAM at the root. */
    void sendUpward(MsgType t, Addr addr, bool dirty,
                    std::uint64_t serial = 0,
                    NodeId serial_owner = invalidNode);

    /**
     * Absorb a reissued GetS/GetM: re-drive the matching in-flight
     * transaction, or drop a stale copy of a retired one.
     * @return true when the message was consumed.
     */
    bool absorbReissue(const CoherenceMsg &msg);

    /**
     * A response for a retired transaction (a re-driven grant whose
     * original completed here) re-elicits the retirement Unblock the
     * parent may have lost. @return true when @p msg matched one.
     */
    bool replayRetiredUnblock(const CoherenceMsg &msg);

    /** Re-send every outstanding message of a stuck transaction. */
    void redrive(Addr addr, TBE &tbe);

    /** Arm the periodic stuck-transaction sweep while TBEs exist. */
    void maybeScheduleSweep();
    void sweep();

    /** Check completion conditions and retire the TBE if met. */
    void completeIfReady(Addr addr);
    void retire(Addr addr);

    bool isChild(NodeId n);

    TreeNetwork &net_;
    NodeId nodeId_ = invalidNode;
    NodeId parent_ = invalidNode;
    ProtocolConfig cfg_;
    CacheArray<DirEntry> cache_;
    DramModel *dram_ = nullptr;
    std::unordered_map<Addr, TBE> tbes_;
    std::vector<NodeId> children_;
    std::unordered_map<NodeId, int> slotMap_;
    std::deque<MessagePtr> retryQueue_;
    bool draining_ = false;
    TraceFn trace_;

    // Fault-recovery state (dormant until setResilience()).
    bool resilient_ = false;
    RecoveryParams rec_;
    std::uint64_t serialCtr_ = 0; ///< serials for dir-originated Puts
    bool sweepScheduled_ = false;
    DedupWindow dedup_{4096};
    std::deque<RetiredTxn> recentRetired_;

    Scalar requestArrivals_;
    Scalar blockedArrivals_;
    Scalar relaysUp_;
    Scalar localSatisfied_;
    Scalar evictions_;
    Scalar recalls_;
    Scalar dramReads_;
    Scalar dramWrites_;
    Scalar redrives_;
    Scalar staleDrops_;
    Scalar dupDrops_;
};

} // namespace neo

#endif // NEO_PROTOCOL_DIR_CONTROLLER_HPP
