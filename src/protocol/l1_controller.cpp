#include "l1_controller.hpp"

#include <sstream>

namespace neo
{

const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::I:
        return "I";
      case L1State::S:
        return "S";
      case L1State::E:
        return "E";
      case L1State::M:
        return "M";
      case L1State::O:
        return "O";
      case L1State::IS_D:
        return "IS_D";
      case L1State::IM_D:
        return "IM_D";
      case L1State::SM_D:
        return "SM_D";
      case L1State::OM_D:
        return "OM_D";
      case L1State::IS_D_I:
        return "IS_D_I";
      case L1State::IS_D_F:
        return "IS_D_F";
      case L1State::IM_D_F:
        return "IM_D_F";
      case L1State::SI_A:
        return "SI_A";
      case L1State::EI_A:
        return "EI_A";
      case L1State::MI_A:
        return "MI_A";
      case L1State::OI_A:
        return "OI_A";
      case L1State::II_A:
        return "II_A";
    }
    return "?";
}

Perm
l1StatePerm(L1State s)
{
    // Eviction transients (*I_A) relinquished their permission when
    // the Put left; their effective coherence permission is I.
    switch (s) {
      case L1State::S:
      case L1State::SM_D:
        return Perm::S;
      case L1State::E:
        return Perm::E;
      case L1State::M:
        return Perm::M;
      case L1State::O:
      case L1State::OM_D:
        return Perm::O;
      default:
        return Perm::I;
    }
}

L1Controller::L1Controller(std::string name, EventQueue &eventq,
                           TreeNetwork &net, NodeId parent,
                           const CacheGeometry &geom,
                           const ProtocolConfig &cfg)
    : SimObject(std::move(name), eventq), net_(net), parent_(parent),
      cfg_(cfg), cache_(geom),
      hits_(this->name() + ".hits"), misses_(this->name() + ".misses"),
      upgrades_(this->name() + ".upgrades"),
      evictions_(this->name() + ".evictions"),
      invsReceived_(this->name() + ".invs_received"),
      fwdsServed_(this->name() + ".fwds_served"),
      nonSiblingData_(this->name() + ".non_sibling_data"),
      retries_(this->name() + ".retries"),
      staleDrops_(this->name() + ".stale_drops"),
      dupDrops_(this->name() + ".dup_drops"),
      missLatency_(this->name() + ".miss_latency"),
      recoveryLatency_(this->name() + ".recovery_latency")
{
    nodeId_ = net_.addNode(this, parent);
}

void
L1Controller::setResilience(const RecoveryParams &rec)
{
    rec_ = rec;
    resilient_ = true;
}

std::string
L1Controller::debugDump() const
{
    std::ostringstream os;
    if (req_.has_value()) {
        os << name() << ": req addr=0x" << std::hex << req_->addr
           << std::dec << (req_->isWrite ? " W" : " R")
           << (req_->issued ? " issued" : " queued");
        if (req_->serial != 0)
            os << " serial=" << req_->serial
               << " attempts=" << req_->attempts;
        os << "\n";
    }
    forEachLine([&](Addr a, L1State s) {
        if (!l1Stable(s))
            os << name() << ": 0x" << std::hex << a << std::dec << " "
               << l1StateName(s) << "\n";
    });
    for (const auto &[addr, pp] : puts_)
        os << name() << ": pending " << msgTypeName(pp.type) << " 0x"
           << std::hex << addr << std::dec << " serial=" << pp.serial
           << " attempts=" << pp.attempts << "\n";
    if (!bufferedFwds_.empty())
        os << name() << ": " << bufferedFwds_.size()
           << " buffered Fwd demand(s)\n";
    return os.str();
}

void
L1Controller::armReqTimer()
{
    if (!resilient_ || rec_.timeout == 0)
        return;
    const std::uint64_t epoch = ++reqEpoch_;
    eventq().schedule(curTick() + rec_.backoff(req_->attempts),
                      [this, epoch]() { onReqTimeout(epoch); });
}

void
L1Controller::onReqTimeout(std::uint64_t epoch)
{
    if (epoch != reqEpoch_ || !req_.has_value() || !req_->issued)
        return; // completed or superseded
    if (req_->attempts > rec_.maxRetries)
        return; // give up; the watchdog will report the stall
    ++req_->attempts;
    ++retries_;
    trace("reissue " + std::string(msgTypeName(req_->issuedType)));
    auto msg = make(req_->issuedType, req_->addr, parent_);
    msg->globalRequester = nodeId_;
    msg->serial = req_->serial;
    msg->serialOwner = nodeId_;
    send(std::move(msg));
    armReqTimer();
}

void
L1Controller::armPutTimer(Addr addr, std::uint64_t epoch)
{
    if (rec_.timeout == 0)
        return;
    const auto it = puts_.find(addr);
    if (it == puts_.end() || it->second.epoch != epoch)
        return;
    eventq().schedule(curTick() + rec_.backoff(it->second.attempts),
                      [this, addr, epoch]() { onPutTimeout(addr, epoch); });
}

void
L1Controller::onPutTimeout(Addr addr, std::uint64_t epoch)
{
    const auto it = puts_.find(addr);
    if (it == puts_.end() || it->second.epoch != epoch)
        return; // acked (or superseded) meanwhile
    PendingPut &pp = it->second;
    if (pp.attempts > rec_.maxRetries)
        return;
    ++pp.attempts;
    ++retries_;
    trace("reissue " + std::string(msgTypeName(pp.type)));
    auto msg = make(pp.type, addr, parent_);
    msg->dirty = pp.dirty;
    if (pp.dirty)
        msg->sizeBytes = dataMsgBytes;
    msg->serial = pp.serial;
    msg->serialOwner = nodeId_;
    send(std::move(msg));
    armPutTimer(addr, epoch);
}

void
L1Controller::noteAck(Addr addr, bool dirty)
{
    if (!resilient_)
        return;
    ackMemos_.push_front(AckMemo{addr, dirty});
    if (ackMemos_.size() > 64)
        ackMemos_.pop_back();
}

bool
L1Controller::recallAckDirty(Addr addr) const
{
    for (const auto &m : ackMemos_)
        if (m.addr == addr)
            return m.dirty;
    return false;
}

void
L1Controller::trace(const std::string &s)
{
    if (trace_)
        trace_(name() + ": " + s);
}

std::unique_ptr<CoherenceMsg>
L1Controller::make(MsgType t, Addr addr, NodeId dst)
{
    return makeMsg(t, addr, nodeId_, dst);
}

void
L1Controller::send(std::unique_ptr<CoherenceMsg> msg)
{
    if (msg->type == MsgType::Data)
        msg->fromCache = true;
    trace("send " + msg->describe());
    net_.deliver(std::move(msg));
}

Perm
L1Controller::blockPerm(Addr addr) const
{
    const Line *line = cache_.peek(cache_.addressMap().blockAlign(addr));
    return line != nullptr ? l1StatePerm(line->state) : Perm::I;
}

L1State
L1Controller::blockState(Addr addr) const
{
    const Line *line = cache_.peek(cache_.addressMap().blockAlign(addr));
    return line != nullptr ? line->state : L1State::I;
}

bool
L1Controller::quiescent() const
{
    bool quiet = true;
    const_cast<CacheArray<Line> &>(cache_).forEach(
        [&quiet](Addr, Line &l) {
            if (!l1Stable(l.state))
                quiet = false;
        });
    return quiet && !req_.has_value();
}

void
L1Controller::forEachLine(
    const std::function<void(Addr, L1State)> &fn) const
{
    const_cast<CacheArray<Line> &>(cache_).forEach(
        [&fn](Addr a, Line &l) { fn(a, l.state); });
}

void
L1Controller::coreRequest(Addr addr, bool is_write, DoneFn done)
{
    neo_assert(!req_.has_value(), name(), ": second outstanding request");
    CoreReq req;
    req.addr = cache_.addressMap().blockAlign(addr);
    req.isWrite = is_write;
    req.done = std::move(done);
    req_.emplace(std::move(req));
    pump();
}

void
L1Controller::pump()
{
    if (!req_.has_value() || req_->issued)
        return;

    const Addr addr = req_->addr;
    Line *line = cache_.find(addr);

    if (line != nullptr && line->state != L1State::I) {
        if (!l1Stable(line->state)) {
            // The line is mid-eviction (same-set or same-block churn);
            // retry when its Put completes.
            return;
        }
        const L1State s = line->state;
        if (!req_->isWrite ||
            s == L1State::M || s == L1State::E) {
            // Hit. Stores to E upgrade silently (the point of E).
            if (req_->isWrite && s == L1State::E)
                line->state = L1State::M;
            ++hits_;
            DoneFn done = std::move(req_->done);
            req_.reset();
            eventq().schedule(
                curTick() + cache_.geometry().accessLatency,
                [done = std::move(done)]() { done(); });
            return;
        }
        // Write to S or O: upgrade through the directory.
        ++upgrades_;
        req_->issued = true;
        missStart_ = curTick();
        line->state = (s == L1State::O) ? L1State::OM_D : L1State::SM_D;
        auto msg = make(MsgType::GetM, addr, parent_);
        msg->globalRequester = nodeId_;
        if (resilient_) {
            req_->serial = ++serialCtr_;
            req_->issuedType = MsgType::GetM;
            req_->attempts = 1;
            msg->serial = req_->serial;
            msg->serialOwner = nodeId_;
        }
        send(std::move(msg));
        armReqTimer();
        return;
    }

    // Miss: ensure a way is available.
    if (line == nullptr && !cache_.hasFreeWay(addr)) {
        auto victim = cache_.victimFor(
            addr, [](Addr, const Line &l) { return l1Stable(l.state) &&
                                                   l.state != L1State::I; });
        if (!victim.has_value()) {
            // Every way is mid-transaction; retry on the next PutAck.
            return;
        }
        Line *vline = cache_.peek(*victim);
        startEviction(*victim, *vline);
        return; // pump() re-runs when the PutAck lands
    }

    if (line == nullptr)
        line = &cache_.allocate(addr);

    ++misses_;
    req_->issued = true;
    missStart_ = curTick();
    line->state = req_->isWrite ? L1State::IM_D : L1State::IS_D;
    auto msg = make(req_->isWrite ? MsgType::GetM : MsgType::GetS, addr,
                    parent_);
    msg->globalRequester = nodeId_;
    if (resilient_) {
        req_->serial = ++serialCtr_;
        req_->issuedType = msg->type;
        req_->attempts = 1;
        msg->serial = req_->serial;
        msg->serialOwner = nodeId_;
    }
    send(std::move(msg));
    armReqTimer();
}

void
L1Controller::startEviction(Addr victim, Line &line)
{
    ++evictions_;
    MsgType t = MsgType::PutS;
    L1State next = L1State::SI_A;
    bool dirty = false;
    switch (line.state) {
      case L1State::S:
        break;
      case L1State::E:
        t = MsgType::PutE;
        next = L1State::EI_A;
        break;
      case L1State::M:
        t = MsgType::PutM;
        next = L1State::MI_A;
        dirty = true;
        break;
      case L1State::O:
        t = MsgType::PutO;
        next = L1State::OI_A;
        dirty = true;
        break;
      default:
        neo_panic(name(), ": evicting unstable line ",
                  l1StateName(line.state));
    }
    line.state = next;
    auto msg = make(t, victim, parent_);
    msg->dirty = dirty;
    if (dirty)
        msg->sizeBytes = dataMsgBytes; // writeback carries the block
    if (resilient_) {
        const std::uint64_t serial = ++serialCtr_;
        const std::uint64_t epoch = ++putEpochCtr_;
        puts_[victim] = PendingPut{serial, t, dirty, 1, epoch};
        msg->serial = serial;
        msg->serialOwner = nodeId_;
        send(std::move(msg));
        armPutTimer(victim, epoch);
        return;
    }
    send(std::move(msg));
}

void
L1Controller::complete(Perm achieved, bool carry_dirty)
{
    neo_assert(req_.has_value(), name(), ": completion without request");
    missLatency_.sample(static_cast<double>(curTick() - missStart_));
    // Unblock the directory chain; the dirty flag propagates migrated
    // ownership up to the level that absorbs it (Fig. 4's (9)/(10)),
    // and the grant reports the permission this transaction left the
    // leaf with (NS relays learn their grant from this since the data
    // bypassed them; buffered Fwds may have already downgraded us).
    auto ub = make(MsgType::Unblock, req_->addr, parent_);
    ub->dirty = carry_dirty;
    ub->grant = achieved;
    ub->sizeBytes = dataMsgBytes; // Unblock carries the valid data
    if (resilient_) {
        ++reqEpoch_; // cancel any pending reissue timer
        if (req_->serial != 0) {
            if (req_->attempts > 1)
                recoveryLatency_.sample(
                    static_cast<double>(curTick() - missStart_));
            ub->serial = req_->serial;
            ub->serialOwner = nodeId_;
            // The window must outlive the directory's reissue sweep:
            // an Unblock loss is only repaired when a re-driven grant
            // finds the finished transaction here, and the first
            // redrive can lag the loss by ~2 sweep periods while this
            // L1 keeps completing misses every few hundred ticks.
            completed_.push_front(Completed{req_->addr, req_->serial,
                                            achieved, carry_dirty});
            if (completed_.size() > 1024)
                completed_.pop_back();
        }
    }
    send(std::move(ub));
    DoneFn done = std::move(req_->done);
    req_.reset();
    eventq().schedule(curTick() + cache_.geometry().accessLatency,
                      [done = std::move(done)]() { done(); });
}

NodeId
L1Controller::fwdDest(const CoherenceMsg &msg) const
{
    return msg.respondToParent ? parent_ : msg.target;
}

void
L1Controller::deliver(MessagePtr msg)
{
    auto *cm = dynamic_cast<CoherenceMsg *>(msg.get());
    neo_assert(cm != nullptr, name(), ": non-coherence message");
    if (resilient_ && cm->msgId != 0 && dedup_.seen(cm->msgId)) {
        ++dupDrops_;
        trace("dup-drop " + cm->describe());
        return;
    }
    trace("recv " + cm->describe());
    const L1State pre = blockState(cm->addr);
    switch (cm->type) {
      case MsgType::Data:
        handleData(*cm);
        break;
      case MsgType::Inv:
        handleInv(*cm);
        break;
      case MsgType::FwdGetS:
        handleFwdGetS(*cm);
        break;
      case MsgType::FwdGetM:
        handleFwdGetM(*cm);
        break;
      case MsgType::PutAck:
        handlePutAck(*cm);
        break;
      default:
        neo_panic(name(), ": unexpected message ", cm->describe());
    }
    if (observer_)
        observer_(cm->addr, pre, cm->type, blockState(cm->addr));
}

void
L1Controller::handleData(const CoherenceMsg &msg)
{
    if (resilient_) {
        const bool current = req_.has_value() && req_->issued &&
                             req_->addr == msg.addr &&
                             msg.serialOwner == nodeId_ &&
                             msg.serial != 0 &&
                             msg.serial == req_->serial;
        if (!current) {
            // Stale or repeated grant. If it matches a transaction we
            // already finished, the directory re-drove the grant
            // because our Unblock was lost: send the Unblock again.
            for (const auto &c : completed_) {
                if (c.addr == msg.addr && c.serial == msg.serial &&
                    msg.serialOwner == nodeId_) {
                    auto ub = make(MsgType::Unblock, msg.addr, parent_);
                    ub->dirty = c.dirty;
                    ub->grant = c.achieved;
                    ub->sizeBytes = dataMsgBytes;
                    ub->serial = c.serial;
                    ub->serialOwner = nodeId_;
                    send(std::move(ub));
                    break;
                }
            }
            ++staleDrops_;
            return;
        }
    }
    Line *line = cache_.peek(msg.addr);
    neo_assert(line != nullptr, name(), ": Data for non-resident block");
    if (msg.fromCache && msg.src != parent_ &&
        !net_.areSiblings(nodeId_, msg.src))
        ++nonSiblingData_;
    switch (line->state) {
      case L1State::IS_D:
        line->state = (msg.grant == Perm::E && cfg_.exclusiveState)
                          ? L1State::E
                          : L1State::S;
        complete(l1StatePerm(line->state), msg.dirty);
        break;
      case L1State::IS_D_I:
        // Invalidated in flight: use the value once, then drop. The
        // Unblock reports I so no level re-registers us as a sharer.
        line->state = L1State::I;
        complete(Perm::I, msg.dirty);
        cache_.erase(msg.addr);
        break;
      case L1State::IM_D:
      case L1State::SM_D:
      case L1State::OM_D:
        line->state = L1State::M;
        complete(Perm::M, true);
        break;
      case L1State::IS_D_F:
      case L1State::IM_D_F: {
        // Serve the buffered Fwd demands now that the data arrived,
        // in arrival order, BEFORE unblocking: the Unblock must report
        // the permission we end up with (O after serving a reader, I
        // after handing the block to a writer).
        line->state = line->state == L1State::IS_D_F
                          ? (msg.grant == Perm::E ? L1State::E
                                                  : L1State::S)
                          : L1State::M;
        auto pending = std::move(bufferedFwds_);
        bufferedFwds_.clear();
        for (const auto &fwd : pending) {
            auto replay = make(fwd.isGetM ? MsgType::FwdGetM
                                          : MsgType::FwdGetS,
                               msg.addr, nodeId_);
            replay->target = fwd.target;
            replay->respondToParent = fwd.toParent;
            replay->serial = fwd.serial;
            replay->serialOwner = fwd.serialOwner;
            if (fwd.isGetM)
                handleFwdGetM(*replay);
            else
                handleFwdGetS(*replay);
        }
        // The replays may have erased the line; re-derive the state.
        Line *after = cache_.peek(msg.addr);
        const Perm achieved =
            after != nullptr ? l1StatePerm(after->state) : Perm::I;
        complete(achieved, achieved == Perm::M);
        break;
      }
      default:
        neo_panic(name(), ": Data in state ", l1StateName(line->state));
    }
}

void
L1Controller::handleInv(const CoherenceMsg &msg)
{
    Line *line = cache_.peek(msg.addr);
    ++invsReceived_;
    if (line == nullptr) {
        // The Inv chased a grant we already consumed use-once (the
        // IS_D_I path erases the line on Data), or — under fault
        // recovery — it is a re-driven Inv whose original ack was
        // dropped. Re-ack, restoring the remembered dirty bit so
        // migrated dirtiness is not lost with the retry.
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Inv for non-resident block");
        auto ack = make(MsgType::InvAck, msg.addr, parent_);
        if (resilient_) {
            ++staleDrops_;
            ack->dirty = recallAckDirty(msg.addr);
            if (ack->dirty)
                ack->sizeBytes = dataMsgBytes;
        }
        send(std::move(ack));
        return;
    }
    bool dirty = false;
    switch (line->state) {
      case L1State::S:
      case L1State::E:
        line->state = L1State::I;
        break;
      case L1State::M:
      case L1State::O:
        dirty = true;
        line->state = L1State::I;
        break;
      case L1State::SM_D:
        line->state = L1State::IM_D;
        break;
      case L1State::OM_D:
        dirty = true;
        line->state = L1State::IM_D;
        break;
      case L1State::IM_D_F:
        // Old-epoch Inv against the shared copy we upgraded from;
        // the buffered demands still apply to our incoming M.
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Inv during IM_D_F under a blocking directory");
        break;
      case L1State::IS_D:
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Inv during IS_D under a blocking directory");
        line->state = L1State::IS_D_I;
        break;
      case L1State::SI_A:
      case L1State::EI_A:
        line->state = L1State::II_A;
        break;
      case L1State::MI_A:
      case L1State::OI_A:
        dirty = true;
        line->state = L1State::II_A;
        break;
      default:
        if (resilient_) {
            // Re-driven Inv against a transient that already answered
            // the original (IM_D, IS_D_I, II_A, ...): re-ack with the
            // remembered dirty bit, leaving the state alone.
            ++staleDrops_;
            auto stale = make(MsgType::InvAck, msg.addr, parent_);
            stale->dirty = recallAckDirty(msg.addr);
            if (stale->dirty)
                stale->sizeBytes = dataMsgBytes;
            send(std::move(stale));
            return;
        }
        neo_panic(name(), ": Inv in state ", l1StateName(line->state));
    }
    noteAck(msg.addr, dirty);
    auto ack = make(MsgType::InvAck, msg.addr, parent_);
    ack->dirty = dirty;
    if (dirty)
        ack->sizeBytes = dataMsgBytes; // ack carries the dirty block
    send(std::move(ack));
    if (line->state == L1State::I)
        cache_.erase(msg.addr);
}

void
L1Controller::handleFwdGetS(const CoherenceMsg &msg)
{
    Line *line = cache_.peek(msg.addr);
    ++fwdsServed_;
    const NodeId dest = fwdDest(msg);
    if (line == nullptr) {
        // Epoch-crossed demand under back-to-back directories (or a
        // re-driven demand under fault recovery): our copy is already
        // gone, but the reader is starving; supply it (values are
        // untracked; see DESIGN.md deviations).
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Fwd_GetS for absent block");
        if (resilient_ && !cfg_.nonBlockingDir)
            ++staleDrops_;
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::S;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        return;
    }

    auto supply = [&](bool dirty_to_reader) {
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::S;
        data->dirty = dirty_to_reader;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        // NS-MESI: the owner also sends a copy to its parent (the new
        // owner) directly, saving the relay hop (Fig. 5, time (5)).
        if (cfg_.nonSiblingFwd && !cfg_.ownedState &&
            !msg.respondToParent && dest != parent_) {
            auto copy = make(MsgType::Data, msg.addr, parent_);
            copy->grant = Perm::S;
            copy->dirty = true;
            copy->serial = msg.serial;
            copy->serialOwner = msg.serialOwner;
            send(std::move(copy));
        }
    };

    // Under a blocking directory a Fwd that catches us mid-transaction
    // can only be a fault-recovery re-drive of a demand we already
    // served before moving on: feed the target again (stamped with the
    // demand's own transaction identity) without touching our state.
    auto staleSupply = [&]() {
        ++staleDrops_;
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::S;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
    };

    switch (line->state) {
      case L1State::M:
        if (cfg_.ownedState) {
            line->state = L1State::O;
            supply(false);
        } else {
            line->state = L1State::S;
            supply(true);
        }
        break;
      case L1State::E:
        // Under MOESI the directory keeps pointing at us as owner, so
        // we must stay a forwardable owner: E -> O (clean O is legal).
        line->state = cfg_.ownedState ? L1State::O : L1State::S;
        supply(false);
        break;
      case L1State::O:
        supply(false); // owner keeps supplying readers
        break;
      case L1State::OM_D:
        // Our own upgrade is queued behind this reader: serve it from
        // the O copy we still hold (non-blocking directories only).
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetS during OM_D under a blocking directory");
        supply(false);
        break;
      case L1State::MI_A:
        line->state = L1State::SI_A;
        supply(true);
        break;
      case L1State::EI_A:
        if (!cfg_.ownedState)
            line->state = L1State::SI_A;
        supply(false);
        break;
      case L1State::OI_A:
        supply(false);
        break;
      case L1State::SI_A:
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetS during SI_A under a blocking directory");
        supply(false);
        break;
      case L1State::IM_D:
      case L1State::SM_D:
      case L1State::IM_D_F:
        // The directory made us owner and forwarded a reader before
        // our own data grant arrived (back-to-back processing).
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetS during ", l1StateName(line->state),
                   " under a blocking directory");
        line->state = L1State::IM_D_F;
        bufferedFwds_.push_back(
            PendingFwd{false, msg.target, msg.respondToParent,
                       msg.serial, msg.serialOwner});
        break;
      case L1State::IS_D:
      case L1State::IS_D_F:
        // We were granted E and a reader was forwarded at us before
        // the data arrived.
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetS during ", l1StateName(line->state),
                   " under a blocking directory");
        line->state = L1State::IS_D_F;
        bufferedFwds_.push_back(
            PendingFwd{false, msg.target, msg.respondToParent,
                       msg.serial, msg.serialOwner});
        break;
      case L1State::IS_D_I: {
        // Our own grant was revoked mid-flight; still feed the reader.
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Fwd_GetS during IS_D_I under a blocking dir");
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::S;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        break;
      }
      default:
        if (resilient_) {
            staleSupply();
            break;
        }
        neo_panic(name(), ": Fwd_GetS in state ",
                  l1StateName(line->state));
    }
}

void
L1Controller::handleFwdGetM(const CoherenceMsg &msg)
{
    Line *line = cache_.peek(msg.addr);
    ++fwdsServed_;
    const NodeId dest = fwdDest(msg);
    if (line == nullptr) {
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Fwd_GetM for absent block");
        if (resilient_ && !cfg_.nonBlockingDir)
            ++staleDrops_;
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::M;
        data->dirty = true;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        return;
    }

    auto supply = [&](bool dirty) {
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::M;
        data->dirty = dirty;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
    };

    // See handleFwdGetS: under a blocking directory a mid-transaction
    // Fwd is a fault-recovery re-drive; re-feed the writer with the
    // demand's transaction identity, leaving our state alone.
    auto staleSupply = [&]() {
        ++staleDrops_;
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::M;
        data->dirty = true;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
    };

    switch (line->state) {
      case L1State::M:
        supply(true);
        line->state = L1State::I;
        break;
      case L1State::E:
        supply(false);
        line->state = L1State::I;
        break;
      case L1State::O:
        supply(true);
        line->state = L1State::I;
        break;
      case L1State::OM_D:
        // A competing writer won the race at the directory: hand the
        // block over; our own GetM grant will re-supply us.
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetM during OM_D under a blocking directory");
        supply(true);
        line->state = L1State::IM_D;
        break;
      case L1State::MI_A:
      case L1State::OI_A:
        supply(true);
        line->state = L1State::II_A;
        break;
      case L1State::EI_A:
        supply(false);
        line->state = L1State::II_A;
        break;
      case L1State::SI_A:
        // A back-to-back directory saw us as the last forwardable
        // copy while our PutS is in flight; feed the writer.
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetM during SI_A under a blocking directory");
        supply(false);
        line->state = L1State::II_A;
        break;
      case L1State::IM_D:
      case L1State::SM_D:
      case L1State::IM_D_F:
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetM during ", l1StateName(line->state),
                   " under a blocking directory");
        line->state = L1State::IM_D_F;
        bufferedFwds_.push_back(
            PendingFwd{true, msg.target, msg.respondToParent,
                       msg.serial, msg.serialOwner});
        break;
      case L1State::IS_D:
      case L1State::IS_D_F:
        // Granted E; a writer was forwarded at us before our data.
        if (resilient_ && !cfg_.nonBlockingDir) {
            staleSupply();
            break;
        }
        neo_assert(cfg_.nonBlockingDir, name(),
                   ": Fwd_GetM during ", l1StateName(line->state),
                   " under a blocking directory");
        line->state = L1State::IS_D_F;
        bufferedFwds_.push_back(
            PendingFwd{true, msg.target, msg.respondToParent,
                       msg.serial, msg.serialOwner});
        break;
      case L1State::IS_D_I: {
        neo_assert(cfg_.nonBlockingDir || resilient_, name(),
                   ": Fwd_GetM during IS_D_I under a blocking dir");
        auto data = make(MsgType::Data, msg.addr, dest);
        data->grant = Perm::M;
        data->serial = msg.serial;
        data->serialOwner = msg.serialOwner;
        send(std::move(data));
        break;
      }
      default:
        if (resilient_) {
            staleSupply();
            break;
        }
        neo_panic(name(), ": Fwd_GetM in state ",
                  l1StateName(line->state));
    }
    if (line->state == L1State::I)
        cache_.erase(msg.addr);
}

void
L1Controller::handlePutAck(const CoherenceMsg &msg)
{
    if (resilient_) {
        // Only the ack for the outstanding Put retires it; acks for
        // reissued copies of an already-retired Put are stale.
        const auto it = puts_.find(msg.addr);
        if (it == puts_.end() || it->second.serial != msg.serial) {
            ++staleDrops_;
            return;
        }
        puts_.erase(it);
    }
    Line *line = cache_.peek(msg.addr);
    neo_assert(line != nullptr, name(), ": PutAck for absent block");
    switch (line->state) {
      case L1State::SI_A:
      case L1State::EI_A:
      case L1State::MI_A:
      case L1State::OI_A:
      case L1State::II_A:
        cache_.erase(msg.addr);
        break;
      default:
        if (resilient_) {
            ++staleDrops_;
            break;
        }
        neo_panic(name(), ": PutAck in state ",
                  l1StateName(line->state));
    }
    pump(); // a pending miss may have been waiting for this way
}

void
L1Controller::addStats(StatGroup &group) const
{
    group.add(&hits_);
    group.add(&misses_);
    group.add(&upgrades_);
    group.add(&evictions_);
    group.add(&invsReceived_);
    group.add(&fwdsServed_);
    group.add(&nonSiblingData_);
    group.add(&retries_);
    group.add(&staleDrops_);
    group.add(&dupDrops_);
    group.add(&missLatency_);
    group.add(&recoveryLatency_);
}

} // namespace neo
