/**
 * @file
 * The leaf node of the hierarchy: a private L1 cache controller.
 *
 * In Neo terms this is the leaf L that every Open Neo System must
 * implement (Section 2.3.3). It services one in-order core with a
 * single outstanding demand miss, maintains a MESI (or MOESI, under
 * NS-MOESI) line state machine with the transient states needed for
 * an unordered network, and participates in the inclusive hierarchy
 * with explicit eviction notifications (PutS/PutE/PutM/PutO).
 */

#ifndef NEO_PROTOCOL_L1_CONTROLLER_HPP
#define NEO_PROTOCOL_L1_CONTROLLER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "mem/cache_array.hpp"
#include "network/tree_network.hpp"
#include "protocol/coherence_msg.hpp"
#include "protocol/protocol_config.hpp"
#include "sim/fault.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace neo
{

/** L1 line states: stable MOESI plus transients.
 *  _D suffix: awaiting a Data grant. _A suffix: awaiting a PutAck. */
enum class L1State : std::uint8_t
{
    I,
    S,
    E,
    M,
    O,
    IS_D,   ///< GetS issued from I
    IM_D,   ///< GetM issued from I
    SM_D,   ///< GetM issued from S (upgrade)
    OM_D,   ///< GetM issued from O (upgrade)
    IS_D_I, ///< IS_D that was invalidated in flight (non-blocking dirs)
    IS_D_F, ///< IS_D holding buffered Fwd demands (we were granted E)
    IM_D_F, ///< IM_D holding buffered Fwd demands to satisfy after Data
    SI_A,   ///< PutS issued
    EI_A,   ///< PutE issued
    MI_A,   ///< PutM issued
    OI_A,   ///< PutO issued
    II_A,   ///< Put raced with an Inv/Fwd; awaiting (stale) PutAck
};

const char *l1StateName(L1State s);

/** True for states a replacement policy may victimize. */
constexpr bool
l1Stable(L1State s)
{
    return s == L1State::I || s == L1State::S || s == L1State::E ||
           s == L1State::M || s == L1State::O;
}

/** The coherence permission a state confers (transients keep the
 *  permission of the stable state they came from, per Neo sums). */
Perm l1StatePerm(L1State s);

class L1Controller : public SimObject, public MessageConsumer
{
  public:
    using TraceFn = std::function<void(const std::string &)>;
    using DoneFn = std::function<void()>;

    /**
     * @param parent network id of this cache's directory
     * @param geom L1 geometry (Table 1: 32 KB, 2-way, 2-cycle)
     */
    L1Controller(std::string name, EventQueue &eventq, TreeNetwork &net,
                 NodeId parent, const CacheGeometry &geom,
                 const ProtocolConfig &cfg);

    NodeId nodeId() const { return nodeId_; }
    NodeId parentId() const { return parent_; }

    /** True while a core request is outstanding. */
    bool busy() const { return req_.has_value(); }

    /**
     * Issue a load (@p is_write false) or store from the core. Exactly
     * one request may be outstanding; @p done fires at completion.
     */
    void coreRequest(Addr addr, bool is_write, DoneFn done);

    void deliver(MessagePtr msg) override;

    /** Install a per-event trace callback (protocol walkthroughs). */
    void setTrace(TraceFn fn) { trace_ = std::move(fn); }

    /**
     * Observe every message-driven line transition:
     * (pre-state, message type, post-state). Conformance tests check
     * these against the verified model's leaf state machine.
     */
    using TransitionObserver =
        std::function<void(Addr, L1State pre, MsgType, L1State post)>;
    void
    setTransitionObserver(TransitionObserver fn)
    {
        observer_ = std::move(fn);
    }

    /** Permission currently held for @p addr (I when not resident). */
    Perm blockPerm(Addr addr) const;

    /** Raw line state for @p addr (I when not resident). */
    L1State blockState(Addr addr) const;

    /** True when no line is in a transient state (checker precondition). */
    bool quiescent() const;

    /**
     * Arm the fault-recovery machinery: transaction serials, ingress
     * duplicate suppression, stale-message tolerance, and (when
     * rec.timeout > 0) timeout/backoff reissue of requests and Puts.
     * Never called on fault-free runs, keeping them bit-identical.
     */
    void setResilience(const RecoveryParams &rec);

    /** Render in-flight state for deadlock postmortems. */
    std::string debugDump() const;

    /** Iterate (addr, state) over resident lines. */
    void forEachLine(
        const std::function<void(Addr, L1State)> &fn) const;

    // Statistics.
    const Scalar &hits() const { return hits_; }
    const Scalar &misses() const { return misses_; }
    const Scalar &upgrades() const { return upgrades_; }
    const Scalar &evictions() const { return evictions_; }
    /** Misses whose data arrived from a non-parent, non-sibling node —
     *  the §5.3 "satisfied using non-sibling communication" counter. */
    const Scalar &nonSiblingData() const { return nonSiblingData_; }
    /** Timeout-driven reissues of GetS/GetM/Put*. */
    const Scalar &retries() const { return retries_; }
    /** Stale responses/demands recognized and absorbed. */
    const Scalar &staleDrops() const { return staleDrops_; }
    /** Transport duplicates filtered at ingress. */
    const Scalar &dupDrops() const { return dupDrops_; }
    /** Miss latency of transactions that needed >= 1 reissue. */
    const SampleStat &recoveryLatency() const { return recoveryLatency_; }
    void addStats(StatGroup &group) const;

  private:
    struct Line
    {
        L1State state = L1State::I;
    };

    /** The single outstanding core request. */
    struct CoreReq
    {
        Addr addr = 0;
        bool isWrite = false;
        DoneFn done;
        bool issued = false; ///< GetS/GetM sent (or waiting on evict)
        std::uint64_t serial = 0;          ///< transaction serial
        MsgType issuedType = MsgType::GetS; ///< for reissue
        unsigned attempts = 0;             ///< issues so far
    };

    void trace(const std::string &s);
    void send(std::unique_ptr<CoherenceMsg> msg);
    std::unique_ptr<CoherenceMsg> make(MsgType t, Addr addr, NodeId dst);

    /** Try to start (or restart) the pending core request. */
    void pump();

    /** Begin eviction of @p victim to make room. */
    void startEviction(Addr victim, Line &line);

    /**
     * Finish the outstanding request: callback + Unblock reporting the
     * permission this leaf ended the transaction with (@p achieved)
     * and whether migrated dirtiness rides up with it.
     */
    void complete(Perm achieved, bool carry_dirty);

    void handleData(const CoherenceMsg &msg);
    void handleInv(const CoherenceMsg &msg);
    void handleFwdGetS(const CoherenceMsg &msg);
    void handleFwdGetM(const CoherenceMsg &msg);
    void handlePutAck(const CoherenceMsg &msg);

    /** Destination for the data demanded by a Fwd message. */
    NodeId fwdDest(const CoherenceMsg &msg) const;

    /** A Fwd demand buffered while the data grant is in flight. */
    struct PendingFwd
    {
        bool isGetM = false;
        NodeId target = invalidNode;
        bool toParent = false;
        std::uint64_t serial = 0; ///< demand's transaction identity
        NodeId serialOwner = invalidNode;
    };

    /** An eviction Put awaiting its ack, eligible for reissue. */
    struct PendingPut
    {
        std::uint64_t serial = 0;
        MsgType type = MsgType::PutS;
        bool dirty = false;
        unsigned attempts = 0;
        std::uint64_t epoch = 0; ///< guards the one-shot timer chain
    };

    /** Recently finished transaction; lets a duplicate/re-driven Data
     *  grant re-elicit the Unblock the directory may have lost. */
    struct Completed
    {
        Addr addr = 0;
        std::uint64_t serial = 0;
        Perm achieved = Perm::I;
        bool dirty = false;
    };

    /** Dirty bit of a recently sent InvAck, so a re-acked duplicate
     *  Inv does not lose migrated dirtiness. */
    struct AckMemo
    {
        Addr addr = 0;
        bool dirty = false;
    };

    /** Arm (or re-arm) the demand-reissue timer with backoff. */
    void armReqTimer();
    void onReqTimeout(std::uint64_t epoch);
    void armPutTimer(Addr addr, std::uint64_t epoch);
    void onPutTimeout(Addr addr, std::uint64_t epoch);
    /** Remember an InvAck's dirty bit (bounded memory). */
    void noteAck(Addr addr, bool dirty);
    /** Dirty bit recorded for @p addr, if any. */
    bool recallAckDirty(Addr addr) const;

    TreeNetwork &net_;
    NodeId nodeId_ = invalidNode;
    NodeId parent_ = invalidNode;
    ProtocolConfig cfg_;
    CacheArray<Line> cache_;
    std::optional<CoreReq> req_;
    /** Demands buffered while in IM_D_F (non-blocking directories can
     *  forward several readers/writers at us back to back). */
    std::vector<PendingFwd> bufferedFwds_;
    TraceFn trace_;
    TransitionObserver observer_;

    // Fault-recovery state. Dormant (and never consulted on hot paths
    // beyond a bool test) until setResilience() arms it.
    bool resilient_ = false;
    RecoveryParams rec_;
    std::uint64_t serialCtr_ = 0;
    std::uint64_t reqEpoch_ = 0;  ///< invalidates pending req timers
    std::uint64_t putEpochCtr_ = 0;
    DedupWindow dedup_{4096};
    std::unordered_map<Addr, PendingPut> puts_;
    std::deque<Completed> completed_;
    std::deque<AckMemo> ackMemos_;

    Scalar hits_;
    Scalar misses_;
    Scalar upgrades_;
    Scalar evictions_;
    Scalar invsReceived_;
    Scalar fwdsServed_;
    Scalar nonSiblingData_;
    Scalar retries_;
    Scalar staleDrops_;
    Scalar dupDrops_;
    SampleStat missLatency_;
    SampleStat recoveryLatency_;
    Tick missStart_ = 0;
};

} // namespace neo

#endif // NEO_PROTOCOL_L1_CONTROLLER_HPP
