#include "protocol_config.hpp"

#include "coherence_msg.hpp"

namespace neo
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
        return "GetS";
      case MsgType::GetM:
        return "GetM";
      case MsgType::PutS:
        return "PutS";
      case MsgType::PutE:
        return "PutE";
      case MsgType::PutM:
        return "PutM";
      case MsgType::PutO:
        return "PutO";
      case MsgType::FwdGetS:
        return "Fwd_GetS";
      case MsgType::FwdGetM:
        return "Fwd_GetM";
      case MsgType::Inv:
        return "Inv";
      case MsgType::Data:
        return "Data";
      case MsgType::InvAck:
        return "InvAck";
      case MsgType::PutAck:
        return "PutAck";
      case MsgType::Unblock:
        return "Unblock";
    }
    return "?";
}

const char *
protocolName(ProtocolVariant v)
{
    switch (v) {
      case ProtocolVariant::TreeMSI:
        return "TreeMSI";
      case ProtocolVariant::NeoMESI:
        return "NeoMESI";
      case ProtocolVariant::NSMESI:
        return "NS-MESI";
      case ProtocolVariant::NSMOESI:
        return "NS-MOESI";
    }
    return "?";
}

ProtocolConfig
ProtocolConfig::forVariant(ProtocolVariant v)
{
    ProtocolConfig c;
    switch (v) {
      case ProtocolVariant::TreeMSI:
        break;
      case ProtocolVariant::NeoMESI:
        c.exclusiveState = true;
        break;
      case ProtocolVariant::NSMESI:
        c.exclusiveState = true;
        c.nonSiblingFwd = true;
        break;
      case ProtocolVariant::NSMOESI:
        c.exclusiveState = true;
        c.nonSiblingFwd = true;
        c.ownedState = true;
        c.nonBlockingDir = true;
        break;
    }
    return c;
}

} // namespace neo
