/**
 * @file
 * Protocol variants along the paper's iterative-feature axis (§4.2).
 *
 * One parameterized engine implements all four evaluated protocols;
 * the flags correspond exactly to the features the paper adds (or is
 * forbidden from adding):
 *
 *   TreeMSI  — the §4 baseline: MSI permissions, blocking directories,
 *              inclusive hierarchy with explicit evictions.
 *   NeoMESI  — +E state. The verified protocol (§3).
 *   NS-MESI  — +non-sibling data forwarding (prohibited by the Neo
 *              theory, §4.2.1 / §5.1.1).
 *   NS-MOESI — +O state and non-blocking directories (exceed the model
 *              checker's capacity, §4.2.2 / §5.1.2).
 */

#ifndef NEO_PROTOCOL_PROTOCOL_CONFIG_HPP
#define NEO_PROTOCOL_PROTOCOL_CONFIG_HPP

#include <string>

namespace neo
{

enum class ProtocolVariant
{
    TreeMSI,
    NeoMESI,
    NSMESI,
    NSMOESI,
};

const char *protocolName(ProtocolVariant v);

struct ProtocolConfig
{
    /** Grant/track the E state (MESI instead of MSI). */
    bool exclusiveState = false;

    /** Owners answer FwdGetS by moving to O and keeping the line
     *  (MOESI); otherwise they downgrade to S and the data migrates
     *  toward the directory. */
    bool ownedState = false;

    /** Owners send data directly to the original (possibly
     *  non-sibling) requester instead of relaying through the tree. */
    bool nonSiblingFwd = false;

    /** Directories release the block as soon as responses are out,
     *  instead of blocking until the requester's Unblock arrives. */
    bool nonBlockingDir = false;

    static ProtocolConfig forVariant(ProtocolVariant v);
};

} // namespace neo

#endif // NEO_PROTOCOL_PROTOCOL_CONFIG_HPP
