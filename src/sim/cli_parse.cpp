#include "cli_parse.hpp"

#include <cerrno>
#include <cstdlib>

#include "sim/logging.hpp"

namespace neo
{

bool
parseU64(const std::string &text, std::uint64_t &out, std::string &err)
{
    if (text.empty()) {
        err = "empty value";
        return false;
    }
    // strtoull accepts leading whitespace, '+', '-' (with wraparound!)
    // and hex; restrict to plain decimal digits up front.
    for (const char c : text) {
        if (c < '0' || c > '9') {
            err = "'" + text + "' is not a non-negative integer";
            return false;
        }
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE) {
        err = "'" + text + "' overflows a 64-bit integer";
        return false;
    }
    if (end != text.c_str() + text.size()) {
        err = "'" + text + "' has trailing characters";
        return false;
    }
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseF64(const std::string &text, double &out, std::string &err)
{
    if (text.empty()) {
        err = "empty value";
        return false;
    }
    // Plain non-negative decimal only: digits with one optional dot.
    bool seen_dot = false, seen_digit = false;
    for (const char c : text) {
        if (c == '.') {
            if (seen_dot) {
                err = "'" + text + "' is not a number";
                return false;
            }
            seen_dot = true;
        } else if (c >= '0' && c <= '9') {
            seen_digit = true;
        } else {
            err = "'" + text + "' is not a non-negative number";
            return false;
        }
    }
    if (!seen_digit) {
        err = "'" + text + "' is not a number";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE) {
        err = "'" + text + "' is out of range";
        return false;
    }
    if (end != text.c_str() + text.size()) {
        err = "'" + text + "' has trailing characters";
        return false;
    }
    out = v;
    return true;
}

bool
parseSeconds(const std::string &text, double &out, std::string &err)
{
    std::string digits = text;
    double scale = 1.0;
    // "ms" must be peeled before the single-letter suffixes or
    // "200ms" would parse as "200m" + trailing junk.
    if (digits.size() >= 2 &&
        digits.compare(digits.size() - 2, 2, "ms") == 0) {
        scale = 1e-3;
        digits.erase(digits.size() - 2);
    } else if (!digits.empty()) {
        const char suffix = digits.back();
        if (suffix == 's' || suffix == 'm' || suffix == 'h') {
            scale = suffix == 's' ? 1.0 : suffix == 'm' ? 60.0 : 3600.0;
            digits.pop_back();
        }
    }
    double v = 0.0;
    if (!parseF64(digits, v, err))
        return false;
    out = v * scale;
    return true;
}

std::uint64_t
parseU64OrDie(const std::string &opt, const std::string &text)
{
    std::uint64_t v = 0;
    std::string err;
    if (!parseU64(text, v, err))
        neo_fatal(opt, ": ", err);
    return v;
}

double
parseF64OrDie(const std::string &opt, const std::string &text)
{
    double v = 0.0;
    std::string err;
    if (!parseF64(text, v, err))
        neo_fatal(opt, ": ", err);
    return v;
}

double
parseSecondsOrDie(const std::string &opt, const std::string &text)
{
    double v = 0.0;
    std::string err;
    if (!parseSeconds(text, v, err))
        neo_fatal(opt, ": ", err);
    return v;
}

} // namespace neo
