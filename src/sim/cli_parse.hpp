/**
 * @file
 * Strict numeric parsing for the CLI front ends.
 *
 * The tools used to call strtoull() bare, which silently turns
 * "3x", "abc" (-> 0) or "99999999999999999999999" (saturated) into a
 * plausible-looking run with the wrong parameters. These helpers
 * reject empty strings, signs, trailing junk and overflow, and report
 * a message the caller can neo_fatal with.
 */

#ifndef NEO_SIM_CLI_PARSE_HPP
#define NEO_SIM_CLI_PARSE_HPP

#include <cstdint>
#include <string>

namespace neo
{

/**
 * Parse a non-negative decimal integer strictly.
 * @return true and set @p out on success; false and set @p err to a
 *         human-readable reason otherwise.
 */
bool parseU64(const std::string &text, std::uint64_t &out,
              std::string &err);

/** Strict non-negative decimal double (for --max-seconds). */
bool parseF64(const std::string &text, double &out, std::string &err);

/**
 * Non-negative duration in seconds, optionally suffixed ms/s/m/h
 * ("90", "200ms", "1.5m", "2h"); used by --max-seconds,
 * --checkpoint-every and the service supervision flags
 * (--heartbeat/--job-timeout/--backoff). Rejection is as strict as
 * the numeric parser: a bare suffix, doubled suffix or any trailing
 * junk fails with a precise message.
 */
bool parseSeconds(const std::string &text, double &out,
                  std::string &err);

/**
 * Parse @p text for option @p opt or die with a clear message
 * (fatal exits with the unified usage-error status 2; see
 * exit_codes.hpp).
 */
std::uint64_t parseU64OrDie(const std::string &opt,
                            const std::string &text);
double parseF64OrDie(const std::string &opt, const std::string &text);
double parseSecondsOrDie(const std::string &opt,
                         const std::string &text);

} // namespace neo

#endif // NEO_SIM_CLI_PARSE_HPP
