#include "event_queue.hpp"

namespace neo
{

class EventQueue::FunctionEvent : public Event
{
  public:
    explicit FunctionEvent(std::function<void()> fn) : fn_(std::move(fn)) {}

    void
    process() override
    {
        fn_();
    }

  private:
    std::function<void()> fn_;
};

EventQueue::~EventQueue()
{
    // Drain the heap, freeing any owned one-shot wrappers that never
    // fired. Caller-owned events are left alone.
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        if (e.generation == e.ev->generation_ && e.ev->scheduled_) {
            e.ev->scheduled_ = false;
            if (auto *fe = dynamic_cast<FunctionEvent *>(e.ev))
                delete fe;
        }
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    neo_assert(ev != nullptr, "scheduling null event");
    neo_assert(!ev->scheduled_, "event already scheduled");
    neo_assert(when >= curTick_, "scheduling event in the past: when=",
               when, " curTick=", curTick_);
    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ++ev->generation_;
    queue_.push(Entry{when, ev->seq_, ev->generation_, ev});
    ++live_;
}

void
EventQueue::deschedule(Event *ev)
{
    neo_assert(ev != nullptr && ev->scheduled_,
               "descheduling an unscheduled event");
    // Lazy deletion: bump the generation so the stale heap entry is
    // skipped when popped.
    ev->scheduled_ = false;
    ++ev->generation_;
    --live_;
}

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    schedule(new FunctionEvent(std::move(fn)), when);
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        if (e.generation != e.ev->generation_ || !e.ev->scheduled_)
            continue; // cancelled entry
        neo_assert(e.when >= curTick_, "event queue went backwards");
        curTick_ = e.when;
        e.ev->scheduled_ = false;
        --live_;
        ++processed_;
        Event *ev = e.ev;
        ev->process();
        if (auto *fe = dynamic_cast<FunctionEvent *>(ev)) {
            if (!fe->scheduled())
                delete fe;
        }
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    stopRequested_ = false;
    while (n < max_events) {
        // Peek for the limit check without consuming cancelled entries.
        bool found = false;
        while (!queue_.empty()) {
            const Entry &e = queue_.top();
            if (e.generation != e.ev->generation_ || !e.ev->scheduled_) {
                queue_.pop();
                continue;
            }
            found = true;
            break;
        }
        if (!found)
            break;
        if (queue_.top().when > limit)
            break;
        runOne();
        ++n;
        if (stopRequested_)
            break;
    }
    return n;
}

} // namespace neo
