/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders Events by (tick, insertion sequence), so
 * same-tick events run in a deterministic FIFO order. Controllers and
 * the network schedule work by posting events; the kernel owns global
 * simulated time.
 */

#ifndef NEO_SIM_EVENT_QUEUE_HPP
#define NEO_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace neo
{

class EventQueue;

/**
 * Base class for schedulable work. Derive and implement process(), or
 * use EventQueue::schedule(tick, fn) for one-shot lambdas.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Callback invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** True while sitting in an event queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is scheduled for (valid only while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * A priority queue of events plus the global simulated clock.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p ev at absolute time @p when (>= curTick()).
     * The caller retains ownership of the event.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event; it may later be rescheduled. */
    void deschedule(Event *ev);

    /**
     * Schedule a one-shot callable at absolute time @p when. The queue
     * owns the wrapper and frees it after it fires.
     */
    void schedule(Tick when, std::function<void()> fn);

    /** True when no events are pending. */
    bool empty() const { return live_ != 0 ? false : true; }

    /** Number of live (non-cancelled) pending events. */
    std::uint64_t pending() const { return live_; }

    /**
     * Run events until the queue drains, @p limit ticks pass, or
     * @p max_events events have been processed.
     *
     * @return number of events processed.
     */
    std::uint64_t run(Tick limit = maxTick,
                      std::uint64_t max_events = UINT64_MAX);

    /** Process exactly one event if any is pending.
     *  @return true if an event ran. */
    bool runOne();

    /**
     * Ask the current run() loop to return after the event in
     * progress (used by the watchdog to abort a hung simulation).
     * Cleared on the next run() entry.
     */
    void requestStop() { stopRequested_ = true; }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processedCount() const { return processed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** One-shot lambda adapter owned by the queue. */
    class FunctionEvent;

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t live_ = 0;
    std::uint64_t processed_ = 0;
    bool stopRequested_ = false;
};

} // namespace neo

#endif // NEO_SIM_EVENT_QUEUE_HPP
