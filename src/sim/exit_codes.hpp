/**
 * @file
 * Unified process exit-code conventions for the command-line tools.
 *
 * neoverify and neosim share one table (documented in README "Exit
 * codes", asserted by the CLI tests in tests/CMakeLists.txt):
 *
 *   0  clean — verified / coherent run
 *   1  property violation (invariant or coherence)
 *   2  usage error (bad flags, malformed values, unusable checkpoint)
 *   3  quiescent deadlock                          (neosim only)
 *   4  no-progress watchdog fired                  (neosim only)
 *   5  interrupted with a resumable checkpoint     (neoverify only)
 *   6  job quarantined as poison after K failed
 *      attempts                                    (neoverify --serve)
 *   7  verification service unreachable or could
 *      not start (socket bind/connect failure)     (neoverify --serve)
 *
 * neo_fatal() exits with kExitUsage, so every "the user asked for
 * something we cannot do" path lands on 2 in both tools.
 */

#ifndef NEO_SIM_EXIT_CODES_HPP
#define NEO_SIM_EXIT_CODES_HPP

namespace neo
{

inline constexpr int kExitClean = 0;
inline constexpr int kExitViolation = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitDeadlock = 3;
inline constexpr int kExitWatchdog = 4;
inline constexpr int kExitInterrupted = 5;
inline constexpr int kExitQuarantined = 6;
inline constexpr int kExitServiceUnavailable = 7;

} // namespace neo

#endif // NEO_SIM_EXIT_CODES_HPP
