#include "fault.hpp"

namespace neo
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Drop:
        return "drop";
      case FaultKind::Duplicate:
        return "dup";
      case FaultKind::DelaySpike:
        return "delay";
      case FaultKind::BlackoutHold:
        return "hold";
    }
    return "?";
}

FaultInjector::FaultInjector(const FaultParams &params)
    : params_(params), rng_(params.seed)
{
    neo_assert(params_.dropProb >= 0.0 && params_.dropProb <= 1.0,
               "drop probability out of [0,1]");
    neo_assert(params_.dupProb >= 0.0 && params_.dupProb <= 1.0,
               "dup probability out of [0,1]");
    neo_assert(params_.delayProb >= 0.0 && params_.delayProb <= 1.0,
               "delay probability out of [0,1]");
}

void
FaultInjector::record(std::uint64_t msg_id, Tick tick, FaultKind kind,
                      NodeId src, NodeId dst, Tick extra)
{
    if (log_.size() < maxLogEntries)
        log_.push_back(FaultRecord{msg_id, tick, kind, src, dst, extra});
}

FaultInjector::Decision
FaultInjector::decide(std::uint64_t msg_id, Tick now, NodeId src,
                      NodeId dst)
{
    Decision d;
    // Fixed draw order so the schedule is a pure function of the send
    // sequence: every message consumes exactly one draw per enabled
    // fault class.
    if (params_.dropProb > 0.0 && rng_.chance(params_.dropProb)) {
        d.drop = true;
        ++drops_;
        record(msg_id, now, FaultKind::Drop, src, dst, 0);
        return d; // a dropped message cannot also dup or stall
    }
    if (params_.dupProb > 0.0 && rng_.chance(params_.dupProb)) {
        d.duplicate = true;
        d.dupSkew = params_.dupSkewMax > 0
                        ? 1 + rng_.below(params_.dupSkewMax)
                        : 1;
        ++dups_;
        record(msg_id, now, FaultKind::Duplicate, src, dst, d.dupSkew);
    }
    if (params_.delayProb > 0.0 && rng_.chance(params_.delayProb)) {
        Tick spike = rng_.geometric(static_cast<double>(
            params_.delayMean));
        if (spike < 1)
            spike = 1;
        if (spike > params_.delayCap)
            spike = params_.delayCap;
        d.delay = spike;
        ++delays_;
        record(msg_id, now, FaultKind::DelaySpike, src, dst, spike);
    }
    return d;
}

Tick
FaultInjector::linkRelease(NodeId child_end, bool upward, Tick t) const
{
    // Windows may abut or nest; iterate until no window covers t.
    Tick release = t;
    bool moved = true;
    while (moved) {
        moved = false;
        for (const auto &b : params_.blackouts) {
            if (b.childEnd != child_end || b.upward != upward)
                continue;
            if (release >= b.begin && release < b.end) {
                if (b.end == maxTick)
                    return maxTick;
                release = b.end;
                moved = true;
            }
        }
    }
    return release;
}

void
FaultInjector::noteHold(std::uint64_t msg_id, Tick tick, NodeId src,
                        NodeId dst, Tick release)
{
    ++holds_;
    record(msg_id, tick, FaultKind::BlackoutHold, src, dst, release);
}

void
FaultInjector::writeSchedule(std::ostream &os) const
{
    for (const auto &r : log_) {
        os << r.tick << " " << faultKindName(r.kind) << " msg="
           << r.msgId << " " << r.src << "->" << r.dst;
        if (r.extra != 0)
            os << " extra=" << r.extra;
        os << "\n";
    }
}

} // namespace neo
