/**
 * @file
 * Deterministic transport-fault injection and recovery knobs.
 *
 * A FaultInjector is consulted by the network once per message send.
 * It draws from its own xoshiro stream (independent of the jitter
 * stream, so enabling faults never perturbs the fault-free timing
 * model) and decides whether the message is dropped, duplicated, or
 * hit by a heavy-tail delay spike. Per-directed-link blackout windows
 * [t0, t1) hold traffic until the window closes; an open-ended window
 * (end == maxTick) models a permanently severed link.
 *
 * Every decision is appended to a replayable record, so the complete
 * fault schedule of a run is reproducible from (params, seed) and can
 * be diffed across runs bit for bit.
 *
 * RecoveryParams and DedupWindow live here too: they are the protocol
 * layer's side of the bargain (timeout/backoff reissue and ingress
 * duplicate suppression), configured from the same place as the
 * faults they absorb.
 */

#ifndef NEO_SIM_FAULT_HPP
#define NEO_SIM_FAULT_HPP

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace neo
{

/** One directed link of the tree, identified by its child endpoint,
 *  unavailable during [begin, end). end == maxTick is permanent. */
struct LinkBlackout
{
    NodeId childEnd = invalidNode;
    bool upward = true;
    Tick begin = 0;
    Tick end = maxTick;
};

struct FaultParams
{
    double dropProb = 0.0;
    double dupProb = 0.0;
    /** Probability of a heavy-tail delay spike on delivery. */
    double delayProb = 0.0;
    /** Mean of the geometric spike, in ticks. */
    Tick delayMean = 256;
    /** Hard cap on a single spike. */
    Tick delayCap = 8192;
    /** Max extra skew between a duplicate and its original. */
    Tick dupSkewMax = 64;
    std::uint64_t seed = 1;
    std::vector<LinkBlackout> blackouts;

    bool
    enabled() const
    {
        return dropProb > 0.0 || dupProb > 0.0 || delayProb > 0.0 ||
               !blackouts.empty();
    }
};

enum class FaultKind : std::uint8_t
{
    Drop,
    Duplicate,
    DelaySpike,
    BlackoutHold,
};

const char *faultKindName(FaultKind k);

/** One entry of the replayable fault schedule. */
struct FaultRecord
{
    std::uint64_t msgId = 0;
    Tick tick = 0;
    FaultKind kind = FaultKind::Drop;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    /** Kind-specific payload: spike/skew length, or blackout release
     *  tick (maxTick when the link never comes back). */
    Tick extra = 0;

    bool
    operator==(const FaultRecord &o) const
    {
        return msgId == o.msgId && tick == o.tick && kind == o.kind &&
               src == o.src && dst == o.dst && extra == o.extra;
    }
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultParams &params);

    /** Per-message verdict computed at send time. */
    struct Decision
    {
        bool drop = false;
        bool duplicate = false;
        Tick dupSkew = 0; ///< extra delay of the duplicate copy
        Tick delay = 0;   ///< delay spike added to the arrival
    };

    /**
     * Draw the fate of message @p msgId offered at @p now. The draw
     * order is fixed (drop, dup, delay) so the schedule depends only
     * on the message send sequence, which the deterministic event
     * kernel fixes for a given run seed.
     */
    Decision decide(std::uint64_t msgId, Tick now, NodeId src,
                    NodeId dst);

    /**
     * Earliest tick >= @p t at which the directed link (childEnd,
     * upward) can start serializing a flit. Returns maxTick when a
     * permanent blackout covers @p t.
     */
    Tick linkRelease(NodeId child_end, bool upward, Tick t) const;

    /** Log a message held (finite window) or parked (permanent). */
    void noteHold(std::uint64_t msgId, Tick tick, NodeId src,
                  NodeId dst, Tick release);

    const FaultParams &params() const { return params_; }
    const std::vector<FaultRecord> &schedule() const { return log_; }
    void writeSchedule(std::ostream &os) const;

    std::uint64_t drops() const { return drops_; }
    std::uint64_t dups() const { return dups_; }
    std::uint64_t delays() const { return delays_; }
    std::uint64_t holds() const { return holds_; }

  private:
    void record(std::uint64_t msg_id, Tick tick, FaultKind kind,
                NodeId src, NodeId dst, Tick extra);

    /** Replay-log backstop for very long campaigns. */
    static constexpr std::size_t maxLogEntries = 1u << 20;

    FaultParams params_;
    Random rng_;
    std::vector<FaultRecord> log_;
    std::uint64_t drops_ = 0;
    std::uint64_t dups_ = 0;
    std::uint64_t delays_ = 0;
    std::uint64_t holds_ = 0;
};

/**
 * Protocol-side recovery knobs. timeout == 0 disables the reissue
 * timers (stale/duplicate tolerance stays on whenever a controller is
 * put in resilient mode at all).
 */
struct RecoveryParams
{
    /** Base reissue timeout for an outstanding L1 request, in ticks. */
    Tick timeout = 0;
    /** Reissue attempts before giving up and letting the watchdog or
     *  the quiescent-deadlock path report the hang. */
    unsigned maxRetries = 10;
    /** Backoff cap; 0 means timeout << 5. */
    Tick maxBackoff = 0;
    /** Directory re-drive sweep period; 0 means 2 * timeout. */
    Tick dirTimeout = 0;

    bool enabled() const { return timeout > 0; }

    Tick
    backoff(unsigned attempts) const
    {
        // timeout, 2*timeout, 4*timeout, ... capped.
        const Tick cap = maxBackoff != 0 ? maxBackoff : timeout << 5;
        unsigned shift = attempts > 0 ? attempts - 1 : 0;
        if (shift > 5)
            shift = 5;
        const Tick b = timeout << shift;
        return b < cap ? b : cap;
    }

    Tick
    dirSweepPeriod() const
    {
        return dirTimeout != 0 ? dirTimeout : 2 * timeout;
    }
};

/**
 * Bounded ingress filter over recently seen network message ids.
 * Duplicated messages share the id the network assigned the original,
 * so seen() returning true identifies a transport-level duplicate.
 */
class DedupWindow
{
  public:
    explicit DedupWindow(std::size_t capacity = 4096)
        : cap_(capacity)
    {
    }

    /** Record @p id; @return true when it was already in the window. */
    bool
    seen(std::uint64_t id)
    {
        if (set_.count(id) != 0)
            return true;
        set_.insert(id);
        order_.push_back(id);
        if (order_.size() > cap_) {
            set_.erase(order_.front());
            order_.pop_front();
        }
        return false;
    }

    std::size_t size() const { return order_.size(); }

  private:
    std::size_t cap_;
    std::deque<std::uint64_t> order_;
    std::unordered_set<std::uint64_t> set_;
};

} // namespace neo

#endif // NEO_SIM_FAULT_HPP
