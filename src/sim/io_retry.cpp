#include "io_retry.hpp"

#include <cerrno>
#include <csignal>

#include <sys/mman.h>
#include <unistd.h>

namespace neo
{

bool
writeFull(int fd, const void *buf, std::size_t n)
{
    const char *p = static_cast<const char *>(buf);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool
readFull(int fd, void *buf, std::size_t n)
{
    char *p = static_cast<char *>(buf);
    while (n > 0) {
        const ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0) {
            errno = 0; // clean EOF, not an error
            return false;
        }
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

ssize_t
writeRetry(int fd, const void *buf, std::size_t n)
{
    for (;;) {
        const ssize_t w = ::write(fd, buf, n);
        if (w < 0 && errno == EINTR)
            continue;
        return w;
    }
}

ssize_t
readRetry(int fd, void *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::read(fd, buf, n);
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

bool
fsyncRetry(int fd)
{
    for (;;) {
        if (::fsync(fd) == 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

bool
msyncRetry(void *addr, std::size_t len, int flags)
{
    for (;;) {
        if (::msync(addr, len, flags) == 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

void
ignoreSigpipe()
{
    struct sigaction sa;
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGPIPE, &sa, nullptr);
}

} // namespace neo
