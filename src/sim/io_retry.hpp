/**
 * @file
 * EINTR-hardened I/O primitives and SIGPIPE hygiene.
 *
 * A long-running daemon takes signals as a matter of course —
 * supervision timers, SIGCHLD from reaped workers, operators poking
 * it — and every one of them can interrupt a blocking write() or
 * fsync() mid-call. The bare syscalls then return short counts or
 * EINTR, which turns "checkpoint written" into "checkpoint torn" on
 * exactly the runs that need it most. These helpers loop until the
 * full transfer completes or a real error occurs, so the checkpoint,
 * journal and spill paths never mistake an interruption for a failure.
 *
 * SIGPIPE is the other classic daemon killer: a client or peer worker
 * that dies mid-conversation turns the next write into process death
 * by default. ignoreSigpipe() downgrades that to an EPIPE error the
 * caller handles like any other disconnect; both tools call it at
 * startup.
 */

#ifndef NEO_SIM_IO_RETRY_HPP
#define NEO_SIM_IO_RETRY_HPP

#include <cstddef>
#include <sys/types.h>

namespace neo
{

/**
 * Write all @p n bytes to @p fd, retrying on EINTR and short writes.
 * @return true when every byte was written; false on a real error
 * (errno is preserved). Intended for blocking fds — on a non-blocking
 * fd EAGAIN is surfaced as failure, use writeRetry instead.
 */
bool writeFull(int fd, const void *buf, std::size_t n);

/** Read exactly @p n bytes; false on EOF or error (errno holds the
 *  reason; errno == 0 after a clean EOF). */
bool readFull(int fd, void *buf, std::size_t n);

/** One write() retried only on EINTR: passes EAGAIN/EWOULDBLOCK and
 *  every other error through as -1, so non-blocking event loops keep
 *  their semantics while losing the EINTR failure mode. */
ssize_t writeRetry(int fd, const void *buf, std::size_t n);

/** One read() retried only on EINTR (see writeRetry). */
ssize_t readRetry(int fd, void *buf, std::size_t n);

/** fsync() retried on EINTR. */
bool fsyncRetry(int fd);

/** msync() retried on EINTR. */
bool msyncRetry(void *addr, std::size_t len, int flags);

/** Ignore SIGPIPE process-wide: writes to a dead peer return EPIPE
 *  instead of killing the process. Idempotent. */
void ignoreSigpipe();

} // namespace neo

#endif // NEO_SIM_IO_RETRY_HPP
