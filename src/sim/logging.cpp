#include "logging.hpp"

#include <atomic>
#include <stdexcept>

#include "sim/exit_codes.hpp"

namespace neo
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
isQuiet()
{
    return quietFlag.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(kExitUsage);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag.load())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag.load())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace neo
