/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal split.
 *
 * panic()  — an internal invariant of the simulator itself was violated;
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  — the user asked for something the simulator cannot do
 *            (bad configuration); exits with the usage-error code
 *            (exit_codes.hpp, kExitUsage = 2).
 * warn()/inform() — status messages that never stop the simulation.
 */

#ifndef NEO_SIM_LOGGING_HPP
#define NEO_SIM_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace neo
{

namespace detail
{

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Toggle for inform()/warn() output (benchmarks silence it). */
void setQuiet(bool quiet);
bool isQuiet();

#define neo_panic(...) \
    ::neo::detail::panicImpl(__FILE__, __LINE__, \
                             ::neo::detail::concat(__VA_ARGS__))

#define neo_fatal(...) \
    ::neo::detail::fatalImpl(__FILE__, __LINE__, \
                             ::neo::detail::concat(__VA_ARGS__))

#define neo_warn(...) \
    ::neo::detail::warnImpl(::neo::detail::concat(__VA_ARGS__))

#define neo_inform(...) \
    ::neo::detail::informImpl(::neo::detail::concat(__VA_ARGS__))

/** Panic unless a simulator-internal invariant holds. */
#define neo_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::neo::detail::panicImpl(__FILE__, __LINE__, \
                ::neo::detail::concat("assertion failed: ", #cond, \
                                      " ", ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace neo

#endif // NEO_SIM_LOGGING_HPP
