#include "random.hpp"

#include <cmath>

namespace neo
{

double
Random::logApprox(double x)
{
    return std::log(x);
}

} // namespace neo
