/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (workload generators, network jitter,
 * multi-trial evaluation) draws from an explicitly seeded Random so a
 * whole experiment is reproducible from one seed, per the
 * Alameldeen-Wood methodology of running multiple perturbed trials.
 */

#ifndef NEO_SIM_RANDOM_HPP
#define NEO_SIM_RANDOM_HPP

#include <cstdint>

#include "sim/logging.hpp"

namespace neo
{

/**
 * xoshiro256** generator: fast, high quality, trivially seedable.
 */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding so nearby seeds give uncorrelated streams.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        neo_assert(bound > 0, "Random::below with zero bound");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        neo_assert(lo <= hi, "Random::between with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish think time draw with the given mean; used for
     * inter-request compute gaps in the core model.
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 0.0)
            return 0;
        const double u = uniform();
        // Inverse CDF of the exponential, rounded down.
        double v = -mean * logApprox(1.0 - u);
        if (v < 0.0)
            v = 0.0;
        return static_cast<std::uint64_t>(v);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Cheap natural log good to a few ulps over (0, 1]; avoids <cmath>
     *  in this hot header. */
    static double logApprox(double x);

    std::uint64_t state_[4];
};

} // namespace neo

#endif // NEO_SIM_RANDOM_HPP
