/**
 * @file
 * Common base for named simulated components.
 */

#ifndef NEO_SIM_SIM_OBJECT_HPP
#define NEO_SIM_SIM_OBJECT_HPP

#include <string>
#include <utility>

#include "sim/event_queue.hpp"

namespace neo
{

/**
 * A named component bound to an event queue. All controllers, cores,
 * and the network derive from this so traces and stats carry readable
 * component names.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eventq)
        : name_(std::move(name)), eventq_(eventq)
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return eventq_; }
    Tick curTick() const { return eventq_.curTick(); }

    /** Hook called once after the whole system is wired together. */
    virtual void startup() {}

  private:
    std::string name_;
    EventQueue &eventq_;
};

} // namespace neo

#endif // NEO_SIM_SIM_OBJECT_HPP
