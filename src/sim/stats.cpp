#include "stats.hpp"

#include <cmath>
#include <iomanip>

namespace neo
{

void
SampleStat::sample(double v)
{
    ++n_;
    total_ += v;
    if (n_ == 1) {
        mean_ = v;
        m2_ = 0.0;
        min_ = v;
        max_ = v;
        return;
    }
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
SampleStat::stdev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

void
SampleStat::reset()
{
    n_ = 0;
    mean_ = m2_ = min_ = max_ = total_ = 0.0;
}

Histogram::Histogram(std::string name, double bucket_width,
                     std::size_t num_buckets)
    : name_(std::move(name)), width_(bucket_width),
      buckets_(num_buckets + 1, 0)
{
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < 0.0)
        v = 0.0;
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
}

void
Histogram::reset()
{
    count_ = 0;
    for (auto &b : buckets_)
        b = 0;
}

void
Histogram::print(std::ostream &os) const
{
    os << name_ << " (n=" << count_ << ")\n";
    for (std::size_t i = 0; i + 1 < buckets_.size(); ++i) {
        os << "  [" << width_ * static_cast<double>(i) << ", "
           << width_ * static_cast<double>(i + 1) << "): " << buckets_[i]
           << "\n";
    }
    os << "  overflow: " << buckets_.back() << "\n";
}

void
StatGroup::print(std::ostream &os) const
{
    os << "==== " << name_ << " ====\n";
    for (const auto *s : scalars_)
        os << "  " << s->name() << " = " << s->value() << "\n";
    for (const auto *s : samples_) {
        os << "  " << s->name() << ": n=" << s->count() << " mean="
           << std::setprecision(6) << s->mean() << " stdev=" << s->stdev()
           << " min=" << s->min() << " max=" << s->max() << "\n";
    }
    for (const auto *h : histograms_)
        h->print(os);
}

} // namespace neo
