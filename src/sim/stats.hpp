/**
 * @file
 * Lightweight statistics package (gem5-stats inspired).
 *
 * Scalar     — a named counter.
 * SampleStat — streaming mean / stdev / min / max over samples
 *              (Welford's algorithm).
 * Histogram  — fixed-bucket distribution.
 * StatGroup  — a named collection that can be dumped as text.
 */

#ifndef NEO_SIM_STATS_HPP
#define NEO_SIM_STATS_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace neo
{

/** A named monotonically adjustable counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name) : name_(std::move(name)) {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** Streaming sample statistics via Welford's online algorithm. */
class SampleStat
{
  public:
    SampleStat() = default;
    explicit SampleStat(std::string name) : name_(std::move(name)) {}

    void sample(double v);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample (n-1) standard deviation; 0 for fewer than 2 samples. */
    double stdev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double total() const { return total_; }
    const std::string &name() const { return name_; }
    void reset();

  private:
    std::string name_;
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double total_ = 0.0;
};

/** Fixed-width bucket histogram with overflow bucket. */
class Histogram
{
  public:
    Histogram() = default;

    /**
     * @param name display name
     * @param bucket_width width of each bucket
     * @param num_buckets number of regular buckets (plus one overflow)
     */
    Histogram(std::string name, double bucket_width,
              std::size_t num_buckets);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }
    const std::string &name() const { return name_; }
    void reset();

    void print(std::ostream &os) const;

  private:
    std::string name_;
    double width_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/**
 * A registry of statistics owned elsewhere; dumps them in one block.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const Scalar *s) { scalars_.push_back(s); }
    void add(const SampleStat *s) { samples_.push_back(s); }
    void add(const Histogram *h) { histograms_.push_back(h); }

    void print(std::ostream &os) const;
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<const Scalar *> scalars_;
    std::vector<const SampleStat *> samples_;
    std::vector<const Histogram *> histograms_;
};

} // namespace neo

#endif // NEO_SIM_STATS_HPP
