/**
 * @file
 * Fundamental simulation types shared by every substrate.
 *
 * The simulator is tick-based: a Tick is one cycle of the 2 GHz core
 * clock from Table 1 of the paper. All latencies in the memory system
 * are expressed in Ticks.
 */

#ifndef NEO_SIM_TYPES_HPP
#define NEO_SIM_TYPES_HPP

#include <cstdint>
#include <limits>

namespace neo
{

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** A physical address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a controller/node in the hierarchy. */
using NodeId = std::uint32_t;

/** Sentinel node id. */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Identifier of a core. */
using CoreId = std::uint32_t;

} // namespace neo

#endif // NEO_SIM_TYPES_HPP
