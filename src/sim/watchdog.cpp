#include "watchdog.hpp"

namespace neo
{

ProgressWatchdog::ProgressWatchdog(std::string name, EventQueue &eventq,
                                   Tick interval, StallFn on_stall)
    : SimObject(std::move(name), eventq), interval_(interval),
      onStall_(std::move(on_stall))
{
    neo_assert(interval_ > 0, "watchdog interval must be positive");
}

std::uint64_t
ProgressWatchdog::sum(const std::vector<Probe> &probes) const
{
    std::uint64_t total = 0;
    for (const auto &p : probes)
        total += p();
    return total;
}

void
ProgressWatchdog::start()
{
    ++epoch_;
    running_ = true;
    strikes_ = 0;
    lastPrimary_ = sum(primary_);
    lastSecondary_ = sum(secondary_);
    armNext(epoch_);
}

void
ProgressWatchdog::stop()
{
    // The pending one-shot check (if any) sees a stale epoch and
    // no-ops; it drains from the queue at its scheduled tick.
    ++epoch_;
    running_ = false;
}

void
ProgressWatchdog::armNext(std::uint64_t epoch)
{
    eventq().schedule(curTick() + interval_,
                      [this, epoch]() { check(epoch); });
}

void
ProgressWatchdog::check(std::uint64_t epoch)
{
    if (epoch != epoch_ || !running_ || fired_)
        return;
    ++checks_;
    const std::uint64_t p = sum(primary_);
    const std::uint64_t s = sum(secondary_);
    bool stall = false;
    if (p != lastPrimary_) {
        strikes_ = 0;
    } else if (s == lastSecondary_) {
        // Nothing retired AND nothing delivered: frozen.
        stall = true;
    } else {
        // Messages still flowing but no op retired in a whole window:
        // likely a retry livelock; tolerate a bounded number.
        if (++strikes_ >= strikeLimit_)
            stall = true;
    }
    lastPrimary_ = p;
    lastSecondary_ = s;
    if (stall) {
        fired_ = true;
        firedAt_ = curTick();
        running_ = false;
        if (onStall_)
            onStall_(curTick());
        return;
    }
    armNext(epoch);
}

} // namespace neo
