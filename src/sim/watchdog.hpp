/**
 * @file
 * No-progress watchdog for the simulation kernel.
 *
 * Samples registered progress probes every W ticks. Primary probes
 * (retired ops) define real forward progress; secondary probes
 * (delivered messages) distinguish "slow but moving" from "frozen".
 * A window with no primary AND no secondary progress fires
 * immediately; primary silence with the network still churning (a
 * retry livelock) fires after a bounded number of strike windows.
 *
 * On firing, the installed stall handler runs (typically: collect a
 * postmortem and EventQueue::requestStop()), so a genuine hang costs
 * a few W of simulated time instead of the entire maxTick budget.
 */

#ifndef NEO_SIM_WATCHDOG_HPP
#define NEO_SIM_WATCHDOG_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_object.hpp"

namespace neo
{

class ProgressWatchdog : public SimObject
{
  public:
    using Probe = std::function<std::uint64_t()>;
    using StallFn = std::function<void(Tick)>;

    ProgressWatchdog(std::string name, EventQueue &eventq,
                     Tick interval, StallFn on_stall);

    /** Real work retired (e.g. completed core ops). */
    void addPrimaryProbe(Probe p) { primary_.push_back(std::move(p)); }
    /** Underlying activity (e.g. messages delivered). */
    void
    addSecondaryProbe(Probe p)
    {
        secondary_.push_back(std::move(p));
    }

    /** Primary-silent windows tolerated while secondaries still move. */
    void setStrikeLimit(unsigned n) { strikeLimit_ = n; }

    /** Begin sampling; the first check runs interval ticks from now. */
    void start();

    /** Stop sampling (all work finished; pending checks become no-ops). */
    void stop();

    bool fired() const { return fired_; }
    Tick firedAt() const { return firedAt_; }
    std::uint64_t checks() const { return checks_; }

  private:
    void check(std::uint64_t epoch);
    void armNext(std::uint64_t epoch);
    std::uint64_t sum(const std::vector<Probe> &probes) const;

    Tick interval_;
    StallFn onStall_;
    std::vector<Probe> primary_;
    std::vector<Probe> secondary_;
    std::uint64_t lastPrimary_ = 0;
    std::uint64_t lastSecondary_ = 0;
    unsigned strikes_ = 0;
    unsigned strikeLimit_ = 4;
    bool fired_ = false;
    Tick firedAt_ = 0;
    std::uint64_t checks_ = 0;
    /** Bumped by start()/stop(); in-flight check events from an older
     *  epoch are no-ops (one-shot lambdas cannot be descheduled). */
    std::uint64_t epoch_ = 0;
    bool running_ = false;
};

} // namespace neo

#endif // NEO_SIM_WATCHDOG_HPP
