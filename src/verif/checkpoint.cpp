/**
 * @file
 * Snapshot file I/O, model fingerprinting and signal plumbing.
 *
 * Consistency contract with the parallel explorer's frontiers: a
 * snapshot is only serialized at a pause rendezvous, when every
 * worker is parked at the top of its loop holding no work item — so
 * all in-flight work sits in the per-worker queues, and draining them
 * (WorkQueue::forEach / SpillFrontier::forEach, which walks the
 * lock-free ring AND its spill deque) together with the shard stores
 * yields a consistent cut. The ring's forEach is only legal at such
 * quiescent points (mpmc_ring.hpp); the rendezvous is what grants it.
 *
 * Model fingerprints cover the initial state bytes, variable names,
 * rule names/kinds and invariant names — NOT the guard/effect
 * representation — so declaring a rule in flat term form
 * (transition_system.hpp) does not invalidate old snapshots.
 */
#include "checkpoint.hpp"

#include <array>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>

#include <fcntl.h>
#include <unistd.h>

#include "sim/io_retry.hpp"

namespace neo
{

namespace
{

constexpr char kMagic[8] = {'N', 'E', 'O', 'C', 'K', 'P', 'T', '1'};
/** magic + version + kind + fingerprint + payloadSize + payloadCrc. */
constexpr std::size_t kHeaderBody = 8 + 4 + 4 + 8 + 8 + 4;
/** ... plus the header's own CRC. */
constexpr std::size_t kHeaderSize = kHeaderBody + 4;

void
putLE32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

void
putLE64(std::uint8_t *p, std::uint64_t v)
{
    putLE32(p, static_cast<std::uint32_t>(v));
    putLE32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getLE32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
getLE64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(getLE32(p)) |
           static_cast<std::uint64_t>(getLE32(p + 4)) << 32;
}

/** Parsed+verified header of a snapshot file. */
struct Header
{
    std::uint32_t version = 0;
    std::uint32_t kind = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t payloadSize = 0;
    std::uint32_t payloadCrc = 0;
};

bool
readHeader(std::FILE *f, const std::string &path, Header &h,
           std::string &err)
{
    std::uint8_t raw[kHeaderSize];
    if (std::fread(raw, 1, kHeaderSize, f) != kHeaderSize) {
        err = path + ": truncated snapshot header";
        return false;
    }
    if (std::memcmp(raw, kMagic, 8) != 0) {
        err = path + ": not a neo checkpoint (bad magic)";
        return false;
    }
    if (crc32(raw, kHeaderBody) != getLE32(raw + kHeaderBody)) {
        err = path + ": snapshot header CRC mismatch";
        return false;
    }
    const std::uint32_t version = getLE32(raw + 8);
    if (version != kSnapshotVersionFull &&
        version != kSnapshotVersionCompact) {
        err = path + ": unsupported snapshot version " +
              std::to_string(version);
        return false;
    }
    h.version = version;
    h.kind = getLE32(raw + 12);
    h.fingerprint = getLE64(raw + 16);
    h.payloadSize = getLE64(raw + 24);
    h.payloadCrc = getLE32(raw + 32);
    return true;
}

// Written by the signal handler AND polled across explorer worker
// threads, so volatile sig_atomic_t is not enough (that is only
// signal-safe, not thread-safe); a lock-free atomic is both.
std::atomic<int> g_interrupted{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "interrupt flag must be async-signal-safe");

extern "C" void
interruptHandler(int)
{
    g_interrupted.store(1, std::memory_order_relaxed);
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n, std::uint32_t crc)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    crc = ~crc;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

std::uint64_t
modelFingerprint(const TransitionSystem &ts)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&](const void *p, std::size_t n) {
        const auto *b = static_cast<const std::uint8_t *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ULL;
        }
    };
    auto mixStr = [&](const std::string &s) {
        mix(s.data(), s.size());
        mix("\x1f", 1); // separator so {"ab","c"} != {"a","bc"}
    };
    const VState init = ts.initialState();
    mix(init.data(), init.size());
    for (std::size_t i = 0; i < ts.numVars(); ++i)
        mixStr(ts.varName(i));
    for (const auto &r : ts.rules()) {
        mixStr(r.name);
        const auto k = static_cast<std::uint8_t>(r.kind);
        mix(&k, 1);
    }
    for (const auto &inv : ts.invariants())
        mixStr(inv.name);
    return h;
}

void
SnapshotWriter::putU32(std::uint32_t v)
{
    const std::size_t at = buf_.size();
    buf_.resize(at + 4);
    putLE32(buf_.data() + at, v);
}

void
SnapshotWriter::putU64(std::uint64_t v)
{
    const std::size_t at = buf_.size();
    buf_.resize(at + 8);
    putLE64(buf_.data() + at, v);
}

void
SnapshotWriter::putF64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(bits);
}

void
SnapshotWriter::putBytes(const std::uint8_t *p, std::size_t n)
{
    buf_.insert(buf_.end(), p, p + n);
}

void
SnapshotWriter::putState(const VState &s)
{
    putBytes(s.data(), s.size());
}

std::uint8_t
SnapshotReader::getU8()
{
    std::uint8_t v = 0;
    getBytes(&v, 1);
    return v;
}

std::uint32_t
SnapshotReader::getU32()
{
    std::uint8_t raw[4];
    return getBytes(raw, 4) ? getLE32(raw) : 0;
}

std::uint64_t
SnapshotReader::getU64()
{
    std::uint8_t raw[8];
    return getBytes(raw, 8) ? getLE64(raw) : 0;
}

double
SnapshotReader::getF64()
{
    const std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

bool
SnapshotReader::getBytes(std::uint8_t *out, std::size_t n)
{
    if (!ok_ || size_ - pos_ < n) {
        ok_ = false;
        std::memset(out, 0, n);
        return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
}

bool
SnapshotReader::getState(std::size_t numVars, VState &out)
{
    out.assign(numVars, 0);
    return getBytes(out.data(), numVars);
}

const std::uint8_t *
SnapshotReader::viewBytes(std::size_t n)
{
    if (!ok_ || size_ - pos_ < n) {
        ok_ = false;
        return nullptr;
    }
    const std::uint8_t *p = data_ + pos_;
    pos_ += n;
    return p;
}

bool
writeSnapshotFile(const std::string &path, SnapshotKind kind,
                  std::uint64_t fingerprint,
                  const std::vector<std::uint8_t> &payload,
                  std::string &err, unsigned version)
{
    std::error_code ec;
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);

    std::uint8_t header[kHeaderSize];
    std::memcpy(header, kMagic, 8);
    putLE32(header + 8, version);
    putLE32(header + 12, static_cast<std::uint32_t>(kind));
    putLE64(header + 16, fingerprint);
    putLE64(header + 24, payload.size());
    putLE32(header + 32, crc32(payload.data(), payload.size()));
    putLE32(header + kHeaderBody, crc32(header, kHeaderBody));

    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        err = tmp + ": " + std::strerror(errno);
        return false;
    }
    // EINTR-hardened writes + fsync before the rename so the publish
    // is atomic even across a power cut or a signal storm: either the
    // old snapshot or the complete new one is visible, never a torn
    // mix — and a supervision signal landing mid-write cannot fake a
    // short write into a "failure" that throws the snapshot away.
    bool ok = writeFull(fd, header, kHeaderSize) &&
              (payload.empty() ||
               writeFull(fd, payload.data(), payload.size()));
    ok = ok && fsyncRetry(fd);
    if (::close(fd) != 0)
        ok = false;
    if (!ok) {
        err = tmp + ": write failed: " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        err = path + ": rename failed: " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readSnapshotFile(const std::string &path, SnapshotKind kind,
                 std::uint64_t fingerprint,
                 std::vector<std::uint8_t> &payload, std::string &err,
                 unsigned *version)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        err = path + ": " + std::strerror(errno);
        return false;
    }
    Header h;
    if (!readHeader(f, path, h, err)) {
        std::fclose(f);
        return false;
    }
    if (h.kind != static_cast<std::uint32_t>(kind)) {
        err = path + ": snapshot is from a different exploration mode";
        std::fclose(f);
        return false;
    }
    if (h.fingerprint != fingerprint) {
        err = path + ": snapshot was taken for a different model "
                     "(fingerprint mismatch)";
        std::fclose(f);
        return false;
    }
    std::vector<std::uint8_t> body(h.payloadSize);
    const bool readOk =
        std::fread(body.data(), 1, body.size(), f) == body.size() &&
        std::fgetc(f) == EOF;
    std::fclose(f);
    if (!readOk) {
        err = path + ": truncated snapshot payload";
        return false;
    }
    if (crc32(body.data(), body.size()) != h.payloadCrc) {
        err = path + ": snapshot payload CRC mismatch (corrupt file)";
        return false;
    }
    if (version != nullptr)
        *version = h.version;
    payload = std::move(body);
    return true;
}

std::uint64_t
peekSnapshotFingerprint(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return 0;
    Header h;
    std::string err;
    const bool ok = readHeader(f, path, h, err);
    std::fclose(f);
    return ok ? h.fingerprint : 0;
}

bool
snapshotExists(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::exists(path, ec);
}

void
removeSnapshot(const std::string &path)
{
    std::remove(path.c_str());
}

std::size_t
reapStaleCheckpointTmps(const std::string &dir)
{
    std::error_code ec;
    std::size_t reaped = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        constexpr std::string_view suffix = ".tmp";
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::error_code rmEc;
        if (std::filesystem::remove(entry.path(), rmEc))
            ++reaped;
    }
    return reaped;
}

std::string
partitionSnapshotPath(const std::string &dir, std::uint64_t epoch,
                      unsigned part, unsigned count)
{
    return dir + "/epoch-" + std::to_string(epoch) + "-part-" +
           std::to_string(part) + "-of-" + std::to_string(count) +
           ".ckpt";
}

std::string
exploreSnapshotPath(const CheckpointConfig &cfg)
{
    return cfg.dir + "/explore.ckpt";
}

std::string
walkSnapshotPath(const CheckpointConfig &cfg)
{
    return cfg.dir + "/walk.ckpt";
}

std::string
sweepSnapshotPath(const CheckpointConfig &cfg)
{
    return cfg.dir + "/sweep.ckpt";
}

std::vector<std::uint8_t>
encodeExploreSnapshot(const ExploreSnapshot &snap, std::size_t numVars)
{
    ExploreSnapshotMeta meta;
    meta.elapsedSeconds = snap.elapsedSeconds;
    meta.transitionsFired = snap.transitionsFired;
    meta.ruleFires = snap.ruleFires;
    meta.hasLinks = snap.hasLinks;
    meta.numStates = snap.states.size();
    // The struct form stores frontier states by value; the streamed
    // encoder pulls frontier bytes from stateAt(id), which is the
    // same bytes because every frontier state is a visited state.
    return encodeExploreSnapshotStreamed(
        meta, numVars,
        [&](std::uint64_t i) {
            return snap.states[static_cast<std::size_t>(i)].data();
        },
        [&](std::uint64_t i) {
            return snap.links[static_cast<std::size_t>(i)];
        },
        snap.frontier.size(),
        [&](std::uint64_t n) {
            const auto &fi = snap.frontier[static_cast<std::size_t>(n)];
            return std::pair<std::uint64_t, std::uint32_t>{fi.id,
                                                           fi.depth};
        });
}

std::vector<std::uint8_t>
encodeExploreSnapshotStreamed(
    const ExploreSnapshotMeta &meta, std::size_t numVars,
    const std::function<const std::uint8_t *(std::uint64_t)> &stateAt,
    const std::function<ExploreSnapshot::Link(std::uint64_t)> &linkAt,
    std::uint64_t numFrontier,
    const std::function<std::pair<std::uint64_t, std::uint32_t>(
        std::uint64_t)> &frontierAt)
{
    SnapshotWriter w;
    w.putU32(static_cast<std::uint32_t>(numVars));
    w.putU32(static_cast<std::uint32_t>(meta.ruleFires.size()));
    w.putF64(meta.elapsedSeconds);
    w.putU64(meta.transitionsFired);
    for (const std::uint64_t fires : meta.ruleFires)
        w.putU64(fires);
    w.putU8(meta.hasLinks ? 1 : 0);
    w.putU64(meta.numStates);
    for (std::uint64_t i = 0; i < meta.numStates; ++i)
        w.putBytes(stateAt(i), numVars);
    if (meta.hasLinks) {
        for (std::uint64_t i = 0; i < meta.numStates; ++i) {
            const ExploreSnapshot::Link l = linkAt(i);
            w.putU64(l.parent);
            w.putU32(l.rule);
            w.putU32(l.depth);
        }
    }
    w.putU64(numFrontier);
    for (std::uint64_t n = 0; n < numFrontier; ++n) {
        const auto [id, depth] = frontierAt(n);
        w.putU64(id);
        w.putU32(depth);
        w.putBytes(stateAt(id), numVars);
    }
    return w.take();
}

bool
decodeExploreSnapshot(const std::vector<std::uint8_t> &payload,
                      std::size_t numVars, std::size_t numRules,
                      ExploreSnapshot &out, std::string &err)
{
    ExploreSnapshotMeta meta;
    const bool okDecode = decodeExploreSnapshotStreamed(
        payload, numVars, numRules, meta,
        [&](std::uint64_t nStates) {
            out.states.assign(static_cast<std::size_t>(nStates),
                              VState{});
        },
        [&](std::uint64_t id, const std::uint8_t *state) {
            out.states[static_cast<std::size_t>(id)].assign(
                state, state + numVars);
        },
        [&](std::uint64_t id, const ExploreSnapshot::Link &l) {
            if (out.links.empty())
                out.links.assign(out.states.size(),
                                 ExploreSnapshot::Link{});
            out.links[static_cast<std::size_t>(id)] = l;
        },
        [&](std::uint64_t id, std::uint32_t depth,
            const std::uint8_t *state) {
            ExploreSnapshot::FrontierItem fi;
            fi.id = id;
            fi.depth = depth;
            fi.state.assign(state, state + numVars);
            out.frontier.push_back(std::move(fi));
        },
        err);
    if (!okDecode)
        return false;
    out.elapsedSeconds = meta.elapsedSeconds;
    out.transitionsFired = meta.transitionsFired;
    out.ruleFires = meta.ruleFires;
    out.hasLinks = meta.hasLinks;
    return true;
}

bool
decodeExploreSnapshotStreamed(
    const std::vector<std::uint8_t> &payload, std::size_t numVars,
    std::size_t numRules, ExploreSnapshotMeta &meta,
    const std::function<void(std::uint64_t numStates)> &beginStates,
    const std::function<void(std::uint64_t id,
                             const std::uint8_t *state)> &onState,
    const std::function<void(std::uint64_t id,
                             const ExploreSnapshot::Link &link)>
        &onLink,
    const std::function<void(std::uint64_t id, std::uint32_t depth,
                             const std::uint8_t *state)> &onFrontier,
    std::string &err)
{
    SnapshotReader r(payload);
    if (r.getU32() != numVars || r.getU32() != numRules) {
        err = "snapshot variable/rule counts do not match the model";
        return false;
    }
    meta.elapsedSeconds = r.getF64();
    meta.transitionsFired = r.getU64();
    meta.ruleFires.assign(numRules, 0);
    for (std::size_t i = 0; i < numRules; ++i)
        meta.ruleFires[i] = r.getU64();
    meta.hasLinks = r.getU8() != 0;
    const std::uint64_t nStates = r.getU64();
    if (!r.ok() || nStates > payload.size()) {
        err = "snapshot state count is implausible";
        return false;
    }
    meta.numStates = nStates;
    beginStates(nStates);
    for (std::uint64_t id = 0; id < nStates; ++id) {
        const std::uint8_t *state = r.viewBytes(numVars);
        if (state == nullptr)
            break;
        onState(id, state);
    }
    if (meta.hasLinks) {
        for (std::uint64_t id = 0; id < nStates; ++id) {
            ExploreSnapshot::Link l;
            l.parent = r.getU64();
            l.rule = r.getU32();
            l.depth = r.getU32();
            if (l.parent >= nStates || l.rule >= numRules) {
                err = "snapshot predecessor link out of range";
                return false;
            }
            if (r.ok())
                onLink(id, l);
        }
    }
    const std::uint64_t nFrontier = r.getU64();
    if (!r.ok() || nFrontier > payload.size()) {
        err = "snapshot frontier count is implausible";
        return false;
    }
    for (std::uint64_t n = 0; n < nFrontier; ++n) {
        const std::uint64_t id = r.getU64();
        const std::uint32_t depth = r.getU32();
        const std::uint8_t *state = r.viewBytes(numVars);
        if (id >= nStates) {
            err = "snapshot frontier id out of range";
            return false;
        }
        if (state != nullptr)
            onFrontier(id, depth, state);
    }
    if (!r.atEnd()) {
        err = "snapshot payload has trailing or missing bytes";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
encodeCompactExploreSnapshotStreamed(
    const ExploreSnapshotMeta &meta, std::size_t numVars,
    unsigned hashBits,
    const std::function<std::pair<std::uint64_t, std::uint64_t>(
        std::uint64_t)> &hashAt,
    const std::function<ExploreSnapshot::Link(std::uint64_t)> &linkAt,
    std::uint64_t numFrontier,
    const std::function<std::tuple<std::uint64_t, std::uint32_t,
                                   const std::uint8_t *>(
        std::uint64_t)> &frontierAt)
{
    SnapshotWriter w;
    w.putU32(static_cast<std::uint32_t>(numVars));
    w.putU32(static_cast<std::uint32_t>(meta.ruleFires.size()));
    w.putU32(hashBits);
    w.putF64(meta.elapsedSeconds);
    w.putU64(meta.transitionsFired);
    for (const std::uint64_t fires : meta.ruleFires)
        w.putU64(fires);
    w.putU8(meta.hasLinks ? 1 : 0);
    w.putU64(meta.numStates);
    for (std::uint64_t i = 0; i < meta.numStates; ++i) {
        const auto [lo, hi] = hashAt(i);
        w.putU64(lo);
        if (hashBits == 128)
            w.putU64(hi);
    }
    if (meta.hasLinks) {
        for (std::uint64_t i = 0; i < meta.numStates; ++i) {
            const ExploreSnapshot::Link l = linkAt(i);
            w.putU64(l.parent);
            w.putU32(l.rule);
            w.putU32(l.depth);
        }
    }
    // Unlike version 1, the frontier must carry its own bytes — the
    // visited set has none to share.
    w.putU64(numFrontier);
    for (std::uint64_t n = 0; n < numFrontier; ++n) {
        const auto [id, depth, state] = frontierAt(n);
        w.putU64(id);
        w.putU32(depth);
        w.putBytes(state, numVars);
    }
    return w.take();
}

bool
decodeCompactExploreSnapshotStreamed(
    const std::vector<std::uint8_t> &payload, std::size_t numVars,
    std::size_t numRules, ExploreSnapshotMeta &meta,
    unsigned &hashBits,
    const std::function<void(std::uint64_t numStates)> &beginStates,
    const std::function<void(std::uint64_t id, std::uint64_t lo,
                             std::uint64_t hi)> &onHash,
    const std::function<void(std::uint64_t id,
                             const ExploreSnapshot::Link &link)>
        &onLink,
    const std::function<void(std::uint64_t id, std::uint32_t depth,
                             const std::uint8_t *state)> &onFrontier,
    std::string &err)
{
    SnapshotReader r(payload);
    if (r.getU32() != numVars || r.getU32() != numRules) {
        err = "snapshot variable/rule counts do not match the model";
        return false;
    }
    hashBits = r.getU32();
    if (hashBits != 64 && hashBits != 128) {
        err = "compact snapshot has an unsupported fingerprint width";
        return false;
    }
    meta.elapsedSeconds = r.getF64();
    meta.transitionsFired = r.getU64();
    meta.ruleFires.assign(numRules, 0);
    for (std::size_t i = 0; i < numRules; ++i)
        meta.ruleFires[i] = r.getU64();
    meta.hasLinks = r.getU8() != 0;
    const std::uint64_t nStates = r.getU64();
    if (!r.ok() || nStates > payload.size()) {
        err = "snapshot state count is implausible";
        return false;
    }
    meta.numStates = nStates;
    beginStates(nStates);
    for (std::uint64_t id = 0; id < nStates; ++id) {
        const std::uint64_t lo = r.getU64();
        const std::uint64_t hi = hashBits == 128 ? r.getU64() : 0;
        if (r.ok())
            onHash(id, lo, hi);
    }
    if (meta.hasLinks) {
        for (std::uint64_t id = 0; id < nStates; ++id) {
            ExploreSnapshot::Link l;
            l.parent = r.getU64();
            l.rule = r.getU32();
            l.depth = r.getU32();
            if (l.parent >= nStates || l.rule >= numRules) {
                err = "snapshot predecessor link out of range";
                return false;
            }
            if (r.ok())
                onLink(id, l);
        }
    }
    const std::uint64_t nFrontier = r.getU64();
    if (!r.ok() || nFrontier > payload.size()) {
        err = "snapshot frontier count is implausible";
        return false;
    }
    for (std::uint64_t n = 0; n < nFrontier; ++n) {
        const std::uint64_t id = r.getU64();
        const std::uint32_t depth = r.getU32();
        const std::uint8_t *state = r.viewBytes(numVars);
        if (id >= nStates) {
            err = "snapshot frontier id out of range";
            return false;
        }
        if (state != nullptr)
            onFrontier(id, depth, state);
    }
    if (!r.atEnd()) {
        err = "snapshot payload has trailing or missing bytes";
        return false;
    }
    return true;
}

void
installInterruptHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = interruptHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
requestInterrupt()
{
    g_interrupted.store(1, std::memory_order_relaxed);
}

void
clearInterruptRequest()
{
    g_interrupted.store(0, std::memory_order_relaxed);
}

bool
interruptRequested()
{
    return g_interrupted.load(std::memory_order_relaxed) != 0;
}

} // namespace neo
