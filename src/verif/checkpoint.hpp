/**
 * @file
 * Crash-safe checkpoint/resume for verification runs.
 *
 * Long explorations are the norm at production scale (the paper's war
 * story is a >200 GB Neo baseline run); a preemption, OOM kill or ^C
 * must not throw away hours of reachability work. This module gives
 * every exploration mode — sequential BFS, the sharded parallel
 * explorer, random-walk falsification and the parametric sweep —
 * periodic, versioned, CRC-guarded snapshots written atomically
 * (serialize to a temp file, fsync, rename into place), so the last
 * good checkpoint survives a crash at ANY instant, including mid-write.
 *
 * Resumption contract (locked in by tests/test_checkpoint.cpp): an
 * uninterrupted run and a kill-then-resume run reach the identical
 * fixpoint — same status, state/transition/violation and per-rule fire
 * counts — for every exploration mode and thread count. Explore
 * snapshots use one canonical layout (states in discovery order with
 * dense ids) so a run checkpointed sequentially can resume on the
 * parallel explorer and vice versa.
 *
 * A snapshot is rejected — with a clean fatal error, never a wrong
 * answer — when its magic/version/CRC do not verify (truncation,
 * corruption, torn write) or when its model fingerprint does not match
 * the transition system being resumed.
 */

#ifndef NEO_VERIF_CHECKPOINT_HPP
#define NEO_VERIF_CHECKPOINT_HPP

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "verif/transition_system.hpp"

namespace neo
{

/** Checkpoint policy, shared by every exploration mode. */
struct CheckpointConfig
{
    /** Snapshot directory; empty disables checkpointing entirely. */
    std::string dir;
    /** Periodic snapshot interval in seconds; 0 = snapshots only on
     *  interrupt or memory pressure. */
    double everySeconds = 0.0;
    /** Restore the snapshot in dir before exploring further. A
     *  missing snapshot is not an error (the run starts fresh); a
     *  corrupt or wrong-model snapshot is fatal. */
    bool resume = false;
};

/** What kind of state a snapshot file carries. */
enum class SnapshotKind : std::uint32_t
{
    Explore = 1, ///< BFS/parallel reachability (canonical layout)
    Walk = 2,    ///< random-walk falsification progress
    Sweep = 3,   ///< parametric sweep progress (completed instances)
};

/** IEEE CRC-32 (the zlib polynomial), incremental via @p crc. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t n,
                    std::uint32_t crc = 0);

/** FNV-1a fingerprint of a model's shape: variable names, initial
 *  state, rule names/kinds and invariant names. Snapshots embed it so
 *  a resume against a different model is rejected cleanly. */
std::uint64_t modelFingerprint(const TransitionSystem &ts);

/** Little-endian byte-buffer serializer for snapshot payloads. */
class SnapshotWriter
{
  public:
    void putU8(std::uint8_t v) { buf_.push_back(v); }
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putF64(double v);
    void putBytes(const std::uint8_t *p, std::size_t n);
    /** Raw state payload; the reader knows numVars from the model. */
    void putState(const VState &s);

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader; any over-read latches ok() to false and
 *  yields zeros, so decoders can validate once at the end. */
class SnapshotReader
{
  public:
    SnapshotReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit SnapshotReader(const std::vector<std::uint8_t> &buf)
        : SnapshotReader(buf.data(), buf.size())
    {
    }

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    double getF64();
    bool getBytes(std::uint8_t *out, std::size_t n);
    bool getState(std::size_t numVars, VState &out);
    /** Zero-copy view of the next @p n bytes (streamed state decode);
     *  nullptr on over-read, which latches ok() false. */
    const std::uint8_t *viewBytes(std::size_t n);

    bool ok() const { return ok_; }
    /** True when the payload was consumed exactly. */
    bool atEnd() const { return ok_ && pos_ == size_; }
    /** Latch a decode failure from a caller-side validity check (e.g.
     *  a length field out of range) so every subsequent read fails
     *  instead of decoding from misaligned bytes. */
    void fail() { ok_ = false; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Snapshot payload layout versions. Version 1 carries full state
 *  bytes and can resume into ANY store tier (plain, delta, spill —
 *  the tiers re-encode on intern); version 2 is the hash-compaction
 *  layout (fingerprints for the visited set, full states only for
 *  the frontier) and can only resume a `--compact-hashes` run. */
inline constexpr unsigned kSnapshotVersionFull = 1;
inline constexpr unsigned kSnapshotVersionCompact = 2;

/**
 * Atomically write a snapshot file: header (magic, version, kind,
 * model fingerprint, payload size + CRC, header CRC) followed by the
 * payload, serialized to "<path>.tmp", fsync'd, then renamed onto
 * @p path. @return false and set @p err on any I/O failure; the
 * previous snapshot at @p path is untouched in that case.
 */
bool writeSnapshotFile(const std::string &path, SnapshotKind kind,
                       std::uint64_t fingerprint,
                       const std::vector<std::uint8_t> &payload,
                       std::string &err,
                       unsigned version = kSnapshotVersionFull);

/**
 * Read and validate a snapshot file. Magic, version, header CRC,
 * payload CRC, kind and fingerprint must all verify; any mismatch
 * (truncated file, flipped bytes, snapshot of a different model or
 * mode) fails with a precise @p err and an untouched @p payload.
 * @p version (optional) receives the file's payload-layout version
 * so the caller can pick the matching decoder.
 */
bool readSnapshotFile(const std::string &path, SnapshotKind kind,
                      std::uint64_t fingerprint,
                      std::vector<std::uint8_t> &payload,
                      std::string &err, unsigned *version = nullptr);

/** Read just the model fingerprint from a snapshot header; 0 if the
 *  file is missing or its header does not verify. */
std::uint64_t peekSnapshotFingerprint(const std::string &path);

bool snapshotExists(const std::string &path);
void removeSnapshot(const std::string &path);

/**
 * Startup hygiene: remove orphaned "*.tmp" files under @p dir (one
 * level, non-recursive). A crash between serializing "<path>.tmp" and
 * the atomic rename leaves the tmp behind; it is never a valid
 * snapshot (resume only ever reads the renamed path) and only wastes
 * disk, so every engine reaps the directory before its first write.
 * @return files removed; 0 for a missing or clean directory.
 */
std::size_t reapStaleCheckpointTmps(const std::string &dir);

/** Snapshot file locations inside a checkpoint directory. */
std::string exploreSnapshotPath(const CheckpointConfig &cfg);
std::string walkSnapshotPath(const CheckpointConfig &cfg);
std::string sweepSnapshotPath(const CheckpointConfig &cfg);

/**
 * Per-partition snapshot name for the distributed service (service/):
 * "<dir>/epoch-<epoch>-part-<part>-of-<count>.ckpt". Worker @p part
 * of @p count writes its shard's visited set + frontier here at each
 * coordinated checkpoint barrier; the reshard loader reads all
 * @p count files of an epoch and re-deals states by fingerprint, so
 * an epoch written by W workers can resume onto any worker count.
 */
std::string partitionSnapshotPath(const std::string &dir,
                                  std::uint64_t epoch, unsigned part,
                                  unsigned count);

// ---------------------------------------------------------------
// Canonical explore snapshot (sequential BFS and parallel explorer)
// ---------------------------------------------------------------

/**
 * Mode-neutral image of an in-progress reachability run. States are
 * listed in a canonical discovery order and referenced by dense index,
 * which the sequential explorer uses directly and the parallel
 * explorer maps onto its (shard, local) packed ids — so either
 * explorer can resume a snapshot the other wrote.
 */
struct ExploreSnapshot
{
    double elapsedSeconds = 0.0;
    std::uint64_t transitionsFired = 0;
    std::vector<std::uint64_t> ruleFires;

    /** Visited canonical states, dense-id order. */
    std::vector<VState> states;

    /** Predecessor link of states[i] (trace reconstruction). */
    struct Link
    {
        std::uint64_t parent = 0;
        std::uint32_t rule = 0;
        std::uint32_t depth = 0;
    };
    /** Parallel to states when hasLinks; empty when the run sheds
     *  predecessor links under memory pressure. */
    bool hasLinks = false;
    std::vector<Link> links;

    /** Unexpanded frontier: dense id + full state. */
    struct FrontierItem
    {
        std::uint64_t id = 0;
        std::uint32_t depth = 0;
        VState state;
    };
    std::vector<FrontierItem> frontier;
};

std::vector<std::uint8_t> encodeExploreSnapshot(const ExploreSnapshot &snap,
                                                std::size_t numVars);
bool decodeExploreSnapshot(const std::vector<std::uint8_t> &payload,
                           std::size_t numVars, std::size_t numRules,
                           ExploreSnapshot &out, std::string &err);

/**
 * Streamed explore-snapshot codec: byte-for-byte the same layout as
 * encodeExploreSnapshot/decodeExploreSnapshot (which are thin wrappers
 * over these), but states flow through callbacks instead of a
 * materialized `std::vector<VState>` image — the explorers read and
 * write their arena-interned storage directly, so snapshotting never
 * doubles the live state footprint.
 */
struct ExploreSnapshotMeta
{
    double elapsedSeconds = 0.0;
    std::uint64_t transitionsFired = 0;
    std::vector<std::uint64_t> ruleFires;
    bool hasLinks = false;
    std::uint64_t numStates = 0;
};

/**
 * @param stateAt bytes of the state with dense id i (numVars long)
 * @param linkAt predecessor link of state i; only called when
 *        meta.hasLinks
 * @param frontierAt (dense id, depth) of the n-th unexpanded frontier
 *        entry; its state bytes are taken from stateAt(id)
 */
std::vector<std::uint8_t> encodeExploreSnapshotStreamed(
    const ExploreSnapshotMeta &meta, std::size_t numVars,
    const std::function<const std::uint8_t *(std::uint64_t)> &stateAt,
    const std::function<ExploreSnapshot::Link(std::uint64_t)> &linkAt,
    std::uint64_t numFrontier,
    const std::function<std::pair<std::uint64_t, std::uint32_t>(
        std::uint64_t)> &frontierAt);

/**
 * Decode with the same validation as decodeExploreSnapshot. @p meta is
 * fully populated before the first callback runs; states, links and
 * frontier items then arrive in dense-id order. State pointers are
 * views into @p payload, valid only for the duration of the call.
 */
bool decodeExploreSnapshotStreamed(
    const std::vector<std::uint8_t> &payload, std::size_t numVars,
    std::size_t numRules, ExploreSnapshotMeta &meta,
    const std::function<void(std::uint64_t numStates)> &beginStates,
    const std::function<void(std::uint64_t id,
                             const std::uint8_t *state)> &onState,
    const std::function<void(std::uint64_t id,
                             const ExploreSnapshot::Link &link)>
        &onLink,
    const std::function<void(std::uint64_t id, std::uint32_t depth,
                             const std::uint8_t *state)> &onFrontier,
    std::string &err);

// ---------------------------------------------------------------
// Hash-compaction explore snapshot (payload version 2)
// ---------------------------------------------------------------

/**
 * Compact-mode snapshot: the visited set is fingerprints only (8 or
 * 16 bytes each), so full bytes exist solely for the unexpanded
 * frontier (whose states the engine still holds in its queues).
 * Written with file version kSnapshotVersionCompact; a full-state
 * engine must refuse it — the visited states are unrecoverable.
 *
 * @param hashBits 64 or 128; 64-bit snapshots omit the hi word
 * @param hashAt (lo, hi) fingerprint of dense id i
 * @param frontierAt (dense id, depth, state bytes) of entry n
 */
std::vector<std::uint8_t> encodeCompactExploreSnapshotStreamed(
    const ExploreSnapshotMeta &meta, std::size_t numVars,
    unsigned hashBits,
    const std::function<std::pair<std::uint64_t, std::uint64_t>(
        std::uint64_t)> &hashAt,
    const std::function<ExploreSnapshot::Link(std::uint64_t)> &linkAt,
    std::uint64_t numFrontier,
    const std::function<std::tuple<std::uint64_t, std::uint32_t,
                                   const std::uint8_t *>(
        std::uint64_t)> &frontierAt);

/** Mirror of decodeExploreSnapshotStreamed for the compact layout;
 *  @p hashBits receives the snapshot's fingerprint width, which must
 *  match the resuming store's --compact-hashes width. */
bool decodeCompactExploreSnapshotStreamed(
    const std::vector<std::uint8_t> &payload, std::size_t numVars,
    std::size_t numRules, ExploreSnapshotMeta &meta,
    unsigned &hashBits,
    const std::function<void(std::uint64_t numStates)> &beginStates,
    const std::function<void(std::uint64_t id, std::uint64_t lo,
                             std::uint64_t hi)> &onHash,
    const std::function<void(std::uint64_t id,
                             const ExploreSnapshot::Link &link)>
        &onLink,
    const std::function<void(std::uint64_t id, std::uint32_t depth,
                             const std::uint8_t *state)> &onFrontier,
    std::string &err);

// ---------------------------------------------------------------
// Interrupt plumbing (SIGINT/SIGTERM -> graceful drain + snapshot)
// ---------------------------------------------------------------

/** Install SIGINT/SIGTERM handlers that set the interrupt flag; the
 *  explorers notice it at their next safe point, flush a final
 *  snapshot and return VerifStatus::Interrupted. */
void installInterruptHandlers();

/** Set the interrupt flag programmatically (tests; also what the
 *  signal handler does — it is async-signal-safe). */
void requestInterrupt();
void clearInterruptRequest();
bool interruptRequested();

} // namespace neo

#endif // NEO_VERIF_CHECKPOINT_HPP
