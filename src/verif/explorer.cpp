#include "explorer.hpp"

#include <algorithm>
#include <chrono>

#include "verif/checkpoint.hpp"
#include "verif/parallel_explorer.hpp"
#include "verif/state_ring.hpp"
#include "verif/state_store.hpp"

namespace neo
{

const char *
verifStatusName(VerifStatus s)
{
    switch (s) {
      case VerifStatus::Verified:
        return "VERIFIED";
      case VerifStatus::InvariantViolated:
        return "INVARIANT VIOLATED";
      case VerifStatus::Deadlock:
        return "DEADLOCK";
      case VerifStatus::LimitExceeded:
        return "EXCEEDED BOUNDS";
      case VerifStatus::Interrupted:
        return "INTERRUPTED (resumable)";
    }
    return "?";
}

std::uint64_t
explorePresizeHint(const ExploreLimits &limits)
{
    // Only a non-default bound signals the expected scale; the cap
    // keeps a generous bound on a small model from ballooning the
    // up-front table (growth past the hint stays amortized).
    constexpr std::uint64_t kPresizeCapStates = 1ULL << 18;
    if (limits.maxStates == 0 ||
        limits.maxStates >= kDefaultMaxStates)
        return 0;
    return std::min(limits.maxStates, kPresizeCapStates);
}

ExploreResult
explore(const TransitionSystem &ts, const ExploreLimits &limits,
        bool detect_deadlock, bool keep_trace,
        const std::function<void(const VState &)> &on_state)
{
    if (limits.threads > 1)
        return exploreParallel(ts, limits, detect_deadlock, keep_trace,
                               on_state);

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    ExploreResult result;
    result.ruleFires.assign(ts.rules().size(), 0);

    // Visited set and state payloads live in the arena-interned
    // store; the arena id IS the state id, and the parent edges
    // (trace reconstruction) are flat arrays indexed by it.
    StateStore store(ts.numVars(), explorePresizeHint(limits),
                     nullptr, limits.store);
    const bool compact = store.tier() == StoreTier::Compact;
    std::vector<std::uint32_t> parentIds;
    std::vector<std::uint32_t> parentRules;
    // Runtime copy of keep_trace: memory-pressure degradation (below)
    // sheds the predecessor links and clears it mid-run.
    bool tracing = keep_trace;

    const auto &canon = ts.canonicalizer();
    const auto &canonCheck = ts.canonicalCheck();
    const auto &rules = ts.rules();
    const auto &invs = ts.invariants();
    // Flat guard/effect tables: term-form rules fire as contiguous
    // table scans, fallback rules through one raw function pointer —
    // either way no per-firing std::function dispatch.
    const CompiledRules comp(ts);
    // Static read/write dependency index: which guards and invariants
    // each rule's firing can affect. Drives the default fast path;
    // --no-rule-index keeps the original batch loop below as the
    // differential baseline.
    const RuleDepIndex depIdx(ts);
    const bool useIndex = limits.ruleIndex;
    const std::size_t R = rules.size();
    const std::size_t W = depIdx.ruleWords();
    // In-place fire-and-undo needs the expansion scratch back in its
    // pristine parent form for the NEXT firing — which the delta tier
    // also needs as the diff base for the CURRENT intern, so in-place
    // firing is disabled there (successors fire into a copy instead).
    const bool deltaTier = limits.store.tier == StoreTier::Delta;

    const CheckpointConfig *ckpt = limits.checkpoint;
    const bool ckptActive = ckpt != nullptr && !ckpt->dir.empty();
    const std::string ckptPath =
        ckptActive ? exploreSnapshotPath(*ckpt) : std::string();
    // Reap "<path>.tmp" orphans from a crash mid-write before this
    // run's first snapshot; resume only ever reads the renamed path.
    if (ckptActive)
        reapStaleCheckpointTmps(ckpt->dir);
    const std::uint64_t fingerprint =
        ckptActive ? modelFingerprint(ts) : 0;
    // Wall-clock already spent by the resumed run; maxSeconds bounds
    // the cumulative time across resumes, like a real compute budget.
    double baseSeconds = 0.0;

    auto elapsed = [&]() {
        return baseSeconds +
               std::chrono::duration<double>(Clock::now() - t0).count();
    };

    // Frontier of unexpanded state ids (states stay in the arena; a
    // work item is 4 bytes, not a VState copy). head is the BFS read
    // cursor; the consumed prefix is compacted away periodically.
    std::vector<std::uint32_t> work;
    std::size_t workHead = 0;
    if (const std::uint64_t hint = explorePresizeHint(limits))
        work.reserve(static_cast<std::size_t>(hint));
    auto frontierSize = [&]() { return work.size() - workHead; };
    // Compact tier: the visited set holds no bytes, so the frontier
    // must carry full states until expansion. pending.at(n) is the
    // state of work[workHead + n] — pushed and popped in lockstep,
    // packed at numVars bytes per slot (state_ring.hpp) instead of
    // one heap-allocated VState per unexpanded state.
    StateRing pending(ts.numVars());
    // Enabled-rule bitsets carried with the frontier (index path): W
    // words per work item, mirrored through every push / consume /
    // compact / rollback `work` sees. A cleared ok-byte (resumed
    // items, the initial state) means "unknown — full scan".
    std::vector<std::uint64_t> workBits;
    std::vector<std::uint8_t> workBitsOk;

    // Reusable successor scratch: one canonicalization buffer per
    // worker instead of a fresh VState per rule firing.
    VState cur;
    // Index-path scratch: the popped item's enabled bits, a child's
    // bits under construction, the fire-and-undo log, and the
    // fallback fire/canonicalize buffers.
    std::vector<std::uint64_t> curBits(W), childBits(W);
    std::vector<std::uint32_t> firedRules;
    std::vector<EffectUndo> undoLog(comp.maxEffectTerms());
    std::size_t undoCount = 0;
    VState fireBuf, canonBuf;
    auto pushFrontierBits = [&](bool ok) {
        if (!useIndex)
            return;
        if (ok)
            workBits.insert(workBits.end(), childBits.begin(),
                            childBits.end());
        else
            workBits.insert(workBits.end(), W, 0);
        workBitsOk.push_back(ok ? 1 : 0);
    };
    // Batched firing scratch (shared shape with the parallel
    // workers): all enabled rules fire into these reusable slots
    // first, then one in-order process pass counts, interns and
    // checks each successor. Counting in the PROCESS pass — not at
    // generation — is what keeps every count bit-identical to the
    // pre-batching engine: a violation at successor k leaves rules
    // after k uncounted, exactly as when each rule was fired and
    // checked inline.
    std::vector<VState> batchBuf;
    std::vector<std::uint32_t> batchRule;

    auto estimate_memory = [&]() -> std::uint64_t {
        // Arena payload + open-addressing table, measured not
        // modeled — memoryBytes() counts exactly the hot regions
        // (mmap'd slabs shed to the spill tier charge nothing) plus
        // the delta tier's anchor index.
        std::uint64_t bytes = store.memoryBytes();
        if (tracing)
            bytes += parentIds.size() * sizeof(std::uint32_t) +
                     parentRules.size() * sizeof(std::uint32_t);
        bytes += frontierSize() * sizeof(std::uint32_t);
        if (useIndex)
            bytes += frontierSize() *
                     (W * sizeof(std::uint64_t) + 1);
        bytes += pending.memoryBytes();
        // Serializing a snapshot buffers the whole image once more;
        // the limit must cover that transient or the checkpoint that
        // is meant to save the run OOMs it instead.
        if (ckptActive) {
            bytes += store.size() *
                     ((compact ? store.compactBits() / 8
                               : ts.numVars()) +
                      (tracing ? 16 : 0));
            bytes += frontierSize() * (ts.numVars() + 12);
        }
        return bytes;
    };

    auto note_store = [&]() {
        result.compactHashes = compact;
        if (compact)
            result.omissionProbability = compactOmissionProbability(
                store.size(), store.compactBits());
        result.spillSheds = store.spillSheds();
    };

    auto fail_invariants = [&](const VState &s) -> const char * {
        for (const auto &inv : ts.invariants()) {
            ++result.invariantChecks;
            if (!inv.check(s))
                return inv.name.c_str();
        }
        return nullptr;
    };

    auto build_trace = [&](std::uint32_t id) {
        std::vector<std::string> names;
        while (id != 0) {
            names.push_back(rules[parentRules[id]].name);
            id = parentIds[id];
        }
        std::reverse(names.begin(), names.end());
        return names;
    };

    // BFS depth of every visited state, derivable from the parent
    // links because a parent's id always precedes its children's.
    auto compute_depths = [&]() {
        std::vector<std::uint32_t> depth(parentIds.size(), 0);
        for (std::size_t i = 1; i < parentIds.size(); ++i)
            depth[i] = depth[parentIds[i]] + 1;
        return depth;
    };

    auto write_snapshot = [&]() {
        ExploreSnapshotMeta meta;
        meta.elapsedSeconds = elapsed();
        meta.transitionsFired = result.transitionsFired;
        meta.ruleFires = result.ruleFires;
        meta.hasLinks = tracing;
        meta.numStates = store.size();
        std::vector<std::uint32_t> depth;
        if (tracing)
            depth = compute_depths();
        auto linkAt = [&](std::uint64_t i) {
            return ExploreSnapshot::Link{
                parentIds[static_cast<std::size_t>(i)],
                parentRules[static_cast<std::size_t>(i)],
                depth[static_cast<std::size_t>(i)]};
        };
        std::vector<std::uint8_t> payload;
        if (compact) {
            // Version-2 layout: visited fingerprints + a frontier
            // that carries its own bytes (only `pending` has them).
            payload = encodeCompactExploreSnapshotStreamed(
                meta, ts.numVars(), store.compactBits(),
                [&](std::uint64_t i) {
                    return store.hashAt(
                        static_cast<std::uint32_t>(i));
                },
                linkAt, frontierSize(),
                [&](std::uint64_t n) {
                    const std::uint32_t id =
                        work[workHead + static_cast<std::size_t>(n)];
                    return std::tuple<std::uint64_t, std::uint32_t,
                                      const std::uint8_t *>{
                        id, tracing ? depth[id] : 0,
                        pending.at(static_cast<std::size_t>(n))};
                });
        } else {
            // Version-1 full-state layout, whatever the tier: delta
            // records are reconstructed on the way out, which is
            // exactly what lets a snapshot taken under one tier
            // resume under any other.
            VState scratch;
            payload = encodeExploreSnapshotStreamed(
                meta, ts.numVars(),
                [&](std::uint64_t i) -> const std::uint8_t * {
                    store.copyTo(static_cast<std::uint32_t>(i),
                                 scratch);
                    return scratch.data();
                },
                linkAt, frontierSize(),
                [&](std::uint64_t n) {
                    const std::uint32_t id =
                        work[workHead + static_cast<std::size_t>(n)];
                    return std::pair<std::uint64_t, std::uint32_t>{
                        id, tracing ? depth[id] : 0};
                });
        }
        std::string err;
        if (!writeSnapshotFile(ckptPath, SnapshotKind::Explore,
                               fingerprint, payload, err,
                               compact ? kSnapshotVersionCompact
                                       : kSnapshotVersionFull)) {
            neo_warn("checkpoint not written: ", err);
            return;
        }
        ++result.checkpointsWritten;
        result.lastSnapshotBytes = payload.size();
    };

    bool fresh = true;
    if (ckptActive && ckpt->resume && snapshotExists(ckptPath)) {
        std::vector<std::uint8_t> payload;
        std::string err;
        unsigned version = kSnapshotVersionFull;
        if (!readSnapshotFile(ckptPath, SnapshotKind::Explore,
                              fingerprint, payload, err, &version))
            neo_fatal("cannot resume: ", err);
        if (version == kSnapshotVersionCompact && !compact)
            neo_fatal("cannot resume: ", ckptPath,
                      ": snapshot was written by --compact-hashes "
                      "(visited states are fingerprints only); "
                      "resume with --compact-hashes");
        ExploreSnapshotMeta meta;
        auto beginStates = [&](std::uint64_t nStates) {
            store.reserve(nStates);
            if (tracing && meta.hasLinks) {
                parentIds.reserve(
                    static_cast<std::size_t>(nStates));
                parentRules.reserve(
                    static_cast<std::size_t>(nStates));
            }
        };
        auto onLink = [&](std::uint64_t,
                          const ExploreSnapshot::Link &l) {
            if (tracing && meta.hasLinks) {
                parentIds.push_back(
                    static_cast<std::uint32_t>(l.parent));
                parentRules.push_back(l.rule);
            }
        };
        auto onFrontier = [&](std::uint64_t id, std::uint32_t,
                              const std::uint8_t *state) {
            work.push_back(static_cast<std::uint32_t>(id));
            // Snapshots don't carry enabled bitsets; resumed items
            // get a full guard scan at expansion time.
            pushFrontierBits(false);
            if (compact)
                pending.push_back(state);
        };
        bool okDecode;
        if (version == kSnapshotVersionCompact) {
            unsigned hashBits = 0;
            okDecode = decodeCompactExploreSnapshotStreamed(
                payload, ts.numVars(), rules.size(), meta, hashBits,
                beginStates,
                [&](std::uint64_t, std::uint64_t lo,
                    std::uint64_t hi) { store.insertHash(lo, hi); },
                onLink, onFrontier, err);
            if (okDecode && hashBits != store.compactBits())
                neo_fatal("cannot resume: ", ckptPath, ": snapshot "
                          "uses ",
                          hashBits, "-bit fingerprints, this run ",
                          store.compactBits(), "-bit");
        } else {
            // Full-state snapshot: re-interning encodes into
            // WHATEVER tier this run uses — plain, delta and spill
            // runs resume each other's snapshots freely (and a
            // compact run can downgrade a full snapshot to hashes).
            okDecode = decodeExploreSnapshotStreamed(
                payload, ts.numVars(), rules.size(), meta,
                beginStates,
                [&](std::uint64_t, const std::uint8_t *state) {
                    store.intern(state);
                    if (on_state) {
                        cur.assign(state, state + ts.numVars());
                        on_state(cur);
                    }
                },
                onLink, onFrontier, err);
        }
        if (!okDecode)
            neo_fatal("cannot resume: ", ckptPath, ": ", err);
        baseSeconds = meta.elapsedSeconds;
        result.transitionsFired = meta.transitionsFired;
        result.ruleFires = meta.ruleFires;
        if (tracing && !meta.hasLinks) {
            // The snapshot shed its links (memory-pressure degrade);
            // older predecessors are unrecoverable, so the resumed
            // run keeps exact counts but cannot build traces.
            tracing = false;
            result.degradedTrace = true;
        }
        result.resumed = true;
        result.restoredStates = meta.numStates;
        fresh = false;
    }

    if (fresh) {
        VState init = ts.initialState();
        if (canon)
            canon(init);
        store.intern(init);
        if (tracing) {
            parentIds.push_back(0);
            parentRules.push_back(0);
        }
        if (on_state)
            on_state(init);
        work.push_back(0);
        pushFrontierBits(false);
        if (compact)
            pending.push_back(init.data());

        if (const char *inv = fail_invariants(init)) {
            result.status = VerifStatus::InvariantViolated;
            result.violatedInvariant = inv;
            result.badState = ts.describe(init);
            result.statesExplored = 1;
            result.seconds = elapsed();
            note_store();
            return result;
        }
    }

    double lastCkptSeconds = elapsed();
    bool nearLimitSnapshotDone = false;

    while (workHead < work.size()) {
        if (ckptActive && interruptRequested()) {
            write_snapshot();
            result.status = VerifStatus::Interrupted;
            break;
        }
        if (store.size() >= limits.maxStates ||
            elapsed() > limits.maxSeconds) {
            if (ckptActive)
                write_snapshot();
            result.status = VerifStatus::LimitExceeded;
            break;
        }
        if (limits.maxMemoryBytes != 0) {
            std::uint64_t mem = estimate_memory();
            if (mem > limits.maxMemoryBytes &&
                store.spillEnabled()) {
                // Memory-pressure ladder, first rung: shed the
                // store's cold regions to disk. Data survives (it
                // faults back on demand), so this happens BEFORE
                // anything lossy — links are only shed, and EXCEEDED
                // only returned, if disk alone cannot get us under.
                store.shedCold();
                mem = estimate_memory();
            }
            if (mem > limits.maxMemoryBytes && ckptActive && tracing) {
                // Second rung: snapshot what we have, then shed the
                // predecessor links (the single largest optional
                // structure) and keep exploring without traces.
                write_snapshot();
                parentIds.clear();
                parentIds.shrink_to_fit();
                parentRules.clear();
                parentRules.shrink_to_fit();
                tracing = false;
                result.degradedTrace = true;
                mem = estimate_memory();
            }
            if (mem > limits.maxMemoryBytes) {
                if (ckptActive)
                    write_snapshot();
                result.status = VerifStatus::LimitExceeded;
                break;
            }
            if (ckptActive && !nearLimitSnapshotDone &&
                mem * 10 > limits.maxMemoryBytes * 9) {
                // Nearing the budget: secure progress now in case the
                // next growth step lands on a real OOM kill.
                write_snapshot();
                nearLimitSnapshotDone = true;
            }
        }
        if (ckptActive && ckpt->everySeconds > 0.0 &&
            elapsed() - lastCkptSeconds >= ckpt->everySeconds) {
            write_snapshot();
            lastCkptSeconds = elapsed();
        }
        const std::uint32_t id = work[workHead];
        // Copy the item's enabled bits out of the frontier arrays
        // BEFORE consuming the slot: prefix compaction erases it, and
        // child pushes reallocate the arrays mid-expansion.
        bool curOk = false;
        if (useIndex && workBitsOk[workHead] != 0) {
            curOk = true;
            std::copy_n(workBits.begin() +
                            static_cast<std::ptrdiff_t>(workHead * W),
                        W, curBits.begin());
        }
        ++workHead;
        if (workHead >= 4096 && workHead * 2 >= work.size()) {
            work.erase(work.begin(),
                       work.begin() +
                           static_cast<std::ptrdiff_t>(workHead));
            if (useIndex) {
                workBits.erase(
                    workBits.begin(),
                    workBits.begin() +
                        static_cast<std::ptrdiff_t>(workHead * W));
                workBitsOk.erase(
                    workBitsOk.begin(),
                    workBitsOk.begin() +
                        static_cast<std::ptrdiff_t>(workHead));
            }
            workHead = 0;
        }
        if (compact) {
            cur.assign(pending.front(),
                       pending.front() + ts.numVars());
            pending.pop_front();
        } else {
            store.copyTo(id, cur);
        }

        if (useIndex) {
            // ---- Dependency-indexed expansion ----
            if (!curOk) {
                std::fill(curBits.begin(), curBits.end(), 0);
                for (std::size_t q = 0; q < R; ++q) {
                    if (comp.guard(q, cur))
                        curBits[q >> 6] |= 1ULL << (q & 63);
                }
                result.guardEvals += R;
            }
            bool any_enabled = false;
            std::size_t fired = 0;
            firedRules.clear();
            for (std::size_t wi = 0; wi < W; ++wi) {
                std::uint64_t m = curBits[wi];
                while (m != 0) {
                    const std::size_t r =
                        (wi << 6) + static_cast<std::size_t>(
                                        __builtin_ctzll(m));
                    m &= m - 1;
                    any_enabled = true;
                    if (store.size() >= limits.maxStates) {
                        // The bound holds mid-expansion, exactly like
                        // the batch loop below: un-count the partial
                        // expansion's firings and put the item (with
                        // its bits — cur is pristine, the previous
                        // firing was undone) back at the head.
                        result.transitionsFired -= fired;
                        for (const std::uint32_t fr : firedRules)
                            --result.ruleFires[fr];
                        work.insert(
                            work.begin() +
                                static_cast<std::ptrdiff_t>(workHead),
                            id);
                        workBits.insert(
                            workBits.begin() +
                                static_cast<std::ptrdiff_t>(workHead *
                                                            W),
                            curBits.begin(), curBits.end());
                        workBitsOk.insert(
                            workBitsOk.begin() +
                                static_cast<std::ptrdiff_t>(workHead),
                            1);
                        if (compact)
                            pending.push_front(cur.data());
                        if (ckptActive)
                            write_snapshot();
                        result.status = VerifStatus::LimitExceeded;
                        result.statesExplored = store.size();
                        result.seconds = elapsed();
                        result.memoryBytes = estimate_memory();
                        note_store();
                        return result;
                    }
                    ++result.transitionsFired;
                    ++result.ruleFires[r];
                    firedRules.push_back(
                        static_cast<std::uint32_t>(r));
                    ++fired;
                    // Fire in place when the effect's write-set is
                    // known and the store doesn't need the pristine
                    // parent as a delta base; otherwise into a copy.
                    const bool inPlace =
                        comp.effectFlat(r) && !deltaTier;
                    if (inPlace) {
                        undoCount = comp.effectInPlace(
                            r, cur, undoLog.data());
                        ++result.inPlaceFirings;
                    } else {
                        fireBuf = cur;
                        comp.effect(r, fireBuf);
                    }
                    VState &raw = inPlace ? cur : fireBuf;
                    // Canonicalizer-identity gate: the bitset delta
                    // (and the invariant skip) are only sound when
                    // the successor IS its canonical representative.
                    bool identical = true;
                    VState *succ = &raw;
                    if (canon) {
                        if (canonCheck) {
                            identical = canonCheck(raw);
                            if (!identical) {
                                canonBuf = raw;
                                canon(canonBuf);
                                succ = &canonBuf;
                            }
                        } else {
                            canonBuf = raw;
                            canon(canonBuf);
                            identical = canonBuf == raw;
                            if (!identical)
                                succ = &canonBuf;
                        }
                        if (identical)
                            ++result.canonIdentityHits;
                    }
                    const auto [nid, inserted] =
                        deltaTier ? store.intern(succ->data(), id,
                                                 cur.data())
                                  : store.intern(succ->data());
                    if (inserted) {
                        if (tracing) {
                            parentIds.push_back(id);
                            parentRules.push_back(
                                static_cast<std::uint32_t>(r));
                        }
                        if (on_state)
                            on_state(*succ);
                        // Invariants the firing cannot have changed
                        // (identity + known write-set) provably still
                        // hold — the parent passed them — so skip the
                        // predicate call but still count the logical
                        // evaluation: invariantChecks stays bit-equal
                        // to the no-index engine's, and a skipped
                        // invariant can never be the first failure.
                        const char *bad = nullptr;
                        if (identical) {
                            const std::uint64_t *aim =
                                depIdx.affectedInvariants(r);
                            for (std::size_t i = 0; i < invs.size();
                                 ++i) {
                                ++result.invariantChecks;
                                if (((aim[i >> 6] >> (i & 63)) & 1) !=
                                        0 &&
                                    !invs[i].check(*succ)) {
                                    bad = invs[i].name.c_str();
                                    break;
                                }
                            }
                        } else {
                            bad = fail_invariants(*succ);
                        }
                        if (bad != nullptr) {
                            result.status =
                                VerifStatus::InvariantViolated;
                            result.violatedInvariant = bad;
                            result.badState = ts.describe(*succ);
                            if (tracing)
                                result.trace = build_trace(nid);
                            result.statesExplored = store.size();
                            result.seconds = elapsed();
                            result.memoryBytes = estimate_memory();
                            note_store();
                            if (ckptActive)
                                removeSnapshot(ckptPath);
                            return result;
                        }
                        // Child bits: delta from the parent's when
                        // the identity gate held, full scan when the
                        // representative was permuted.
                        const std::uint32_t nAff =
                            depIdx.affectedRuleCount(r);
                        if (identical && curOk) {
                            std::copy(curBits.begin(), curBits.end(),
                                      childBits.begin());
                            const std::uint64_t *aff =
                                depIdx.affectedRules(r);
                            for (std::size_t awi = 0; awi < W;
                                 ++awi) {
                                std::uint64_t am = aff[awi];
                                while (am != 0) {
                                    const std::size_t q =
                                        (awi << 6) +
                                        static_cast<std::size_t>(
                                            __builtin_ctzll(am));
                                    am &= am - 1;
                                    const std::uint64_t bit =
                                        1ULL << (q & 63);
                                    if (comp.guard(q, *succ))
                                        childBits[q >> 6] |= bit;
                                    else
                                        childBits[q >> 6] &= ~bit;
                                }
                            }
                            result.guardEvals += nAff;
                            result.guardEvalsSkipped += R - nAff;
                        } else {
                            std::fill(childBits.begin(),
                                      childBits.end(), 0);
                            for (std::size_t q = 0; q < R; ++q) {
                                if (comp.guard(q, *succ))
                                    childBits[q >> 6] |= 1ULL
                                                         << (q & 63);
                            }
                            result.guardEvals += R;
                        }
                        work.push_back(nid);
                        pushFrontierBits(true);
                        if (compact)
                            pending.push_back(succ->data());
                    }
                    if (inPlace)
                        CompiledRules::undoEffect(cur, undoLog.data(),
                                                  undoCount);
                }
            }
            if (detect_deadlock && !any_enabled) {
                result.status = VerifStatus::Deadlock;
                result.badState = ts.describe(cur);
                result.statesExplored = store.size();
                result.seconds = elapsed();
                result.memoryBytes = estimate_memory();
                note_store();
                if (ckptActive)
                    removeSnapshot(ckptPath);
                return result;
            }
            continue;
        }

        // Generate phase (--no-rule-index): fire every enabled rule
        // into the batch scratch (guard, effect, canonicalize — no
        // bookkeeping). This is the pre-index engine, kept verbatim
        // as the differential baseline.
        bool any_enabled = false;
        std::size_t batchN = 0;
        result.guardEvals += R;
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!comp.guard(r, cur))
                continue;
            any_enabled = true;
            if (batchBuf.size() <= batchN) {
                batchBuf.emplace_back();
                batchRule.push_back(0);
            }
            VState &next = batchBuf[batchN];
            next = cur;
            comp.effect(r, next);
            if (canon)
                canon(next);
            batchRule[batchN] = static_cast<std::uint32_t>(r);
            ++batchN;
        }

        // Process phase, in rule order: count, intern, check.
        for (std::size_t k = 0; k < batchN; ++k) {
            if (store.size() >= limits.maxStates) {
                // The bound holds mid-batch: stop at EXACTLY
                // maxStates instead of letting this batch overshoot.
                // Treat the item as never expanded — un-count the
                // partial batch's firings and put the item back at
                // the frontier head — so a resumed run re-expands it
                // and reaches the uninterrupted run's exact counts
                // (its already-interned successors just dedup).
                result.transitionsFired -= k;
                for (std::size_t j = 0; j < k; ++j)
                    --result.ruleFires[batchRule[j]];
                work.insert(work.begin() +
                                static_cast<std::ptrdiff_t>(workHead),
                            id);
                if (compact)
                    pending.push_front(cur.data());
                if (ckptActive)
                    write_snapshot();
                result.status = VerifStatus::LimitExceeded;
                result.statesExplored = store.size();
                result.seconds = elapsed();
                result.memoryBytes = estimate_memory();
                note_store();
                return result;
            }
            const std::uint32_t r = batchRule[k];
            VState &next = batchBuf[k];
            ++result.transitionsFired;
            ++result.ruleFires[r];
            // The BFS parent is in hand — the delta tier encodes
            // `next` as a diff against `cur` with zero extra reads.
            const auto [nid, inserted] =
                store.intern(next.data(), id, cur.data());
            if (!inserted)
                continue;
            if (tracing) {
                parentIds.push_back(id);
                parentRules.push_back(r);
            }
            if (on_state)
                on_state(next);
            if (const char *inv = fail_invariants(next)) {
                result.status = VerifStatus::InvariantViolated;
                result.violatedInvariant = inv;
                result.badState = ts.describe(next);
                if (tracing)
                    result.trace = build_trace(nid);
                result.statesExplored = store.size();
                result.seconds = elapsed();
                result.memoryBytes = estimate_memory();
                note_store();
                if (ckptActive)
                    removeSnapshot(ckptPath);
                return result;
            }
            work.push_back(nid);
            if (compact)
                pending.push_back(next.data());
        }

        if (detect_deadlock && !any_enabled) {
            result.status = VerifStatus::Deadlock;
            result.badState = ts.describe(cur);
            result.statesExplored = store.size();
            result.seconds = elapsed();
            result.memoryBytes = estimate_memory();
            note_store();
            if (ckptActive)
                removeSnapshot(ckptPath);
            return result;
        }
    }

    result.statesExplored = store.size();
    result.seconds = elapsed();
    result.memoryBytes = estimate_memory();
    note_store();
    // A finished fixpoint has nothing left to resume; only
    // interrupted and bound-exceeded runs keep their snapshot.
    if (ckptActive && result.status == VerifStatus::Verified)
        removeSnapshot(ckptPath);
    return result;
}

} // namespace neo
