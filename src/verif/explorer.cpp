#include "explorer.hpp"

#include <chrono>
#include <deque>
#include <unordered_map>

namespace neo
{

namespace
{

/** FNV-1a over the state bytes. */
struct VStateHash
{
    std::size_t
    operator()(const VState &s) const
    {
        std::size_t h = 1469598103934665603ULL;
        for (std::uint8_t b : s) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        return h;
    }
};

} // namespace

const char *
verifStatusName(VerifStatus s)
{
    switch (s) {
      case VerifStatus::Verified:
        return "VERIFIED";
      case VerifStatus::InvariantViolated:
        return "INVARIANT VIOLATED";
      case VerifStatus::Deadlock:
        return "DEADLOCK";
      case VerifStatus::LimitExceeded:
        return "EXCEEDED BOUNDS";
    }
    return "?";
}

ExploreResult
explore(const TransitionSystem &ts, const ExploreLimits &limits,
        bool detect_deadlock, bool keep_trace,
        const std::function<void(const VState &)> &on_state)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    ExploreResult result;
    result.ruleFires.assign(ts.rules().size(), 0);

    // Visited set maps each canonical state to its id; parent edges
    // (state id -> (parent id, rule index)) reconstruct traces.
    std::unordered_map<VState, std::uint64_t, VStateHash> visited;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> parent;
    std::vector<VState> stateById; // only kept when tracing

    const auto &canon = ts.canonicalizer();
    const auto &rules = ts.rules();

    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    auto estimate_memory = [&]() {
        const std::uint64_t per_state =
            ts.numVars() + 48 /* hash-map node overhead */ +
            (keep_trace ? ts.numVars() + 12 : 0);
        return visited.size() * per_state;
    };

    auto fail_invariants = [&](const VState &s) -> const char * {
        for (const auto &inv : ts.invariants()) {
            if (!inv.check(s))
                return inv.name.c_str();
        }
        return nullptr;
    };

    auto build_trace = [&](std::uint64_t id) {
        std::vector<std::string> names;
        while (id != 0) {
            const auto [pid, rule] = parent[id];
            names.push_back(rules[rule].name);
            id = pid;
        }
        std::reverse(names.begin(), names.end());
        return names;
    };

    std::deque<std::pair<std::uint64_t, VState>> work;

    VState init = ts.initialState();
    if (canon)
        canon(init);
    visited.emplace(init, 0);
    parent.emplace_back(0, 0);
    if (keep_trace)
        stateById.push_back(init);
    if (on_state)
        on_state(init);
    work.emplace_back(0, init);

    if (const char *inv = fail_invariants(init)) {
        result.status = VerifStatus::InvariantViolated;
        result.violatedInvariant = inv;
        result.badState = ts.describe(init);
        result.statesExplored = 1;
        result.seconds = elapsed();
        return result;
    }

    // BFS; each work item carries its state so stateById is only
    // needed for trace rendering.
    while (!work.empty()) {
        if (visited.size() >= limits.maxStates ||
            elapsed() > limits.maxSeconds) {
            result.status = VerifStatus::LimitExceeded;
            break;
        }
        const std::uint64_t id = work.front().first;
        VState s = std::move(work.front().second);
        work.pop_front();

        bool any_enabled = false;
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!rules[r].guard(s))
                continue;
            any_enabled = true;
            VState next = s;
            rules[r].effect(next);
            ++result.transitionsFired;
            ++result.ruleFires[r];
            if (canon)
                canon(next);
            auto [it, inserted] =
                visited.emplace(next, visited.size());
            if (!inserted)
                continue;
            const std::uint64_t nid = it->second;
            parent.emplace_back(id, static_cast<std::uint32_t>(r));
            if (keep_trace)
                stateById.push_back(next);
            if (on_state)
                on_state(next);
            if (const char *inv = fail_invariants(next)) {
                result.status = VerifStatus::InvariantViolated;
                result.violatedInvariant = inv;
                result.badState = ts.describe(next);
                if (keep_trace)
                    result.trace = build_trace(nid);
                result.statesExplored = visited.size();
                result.seconds = elapsed();
                result.memoryBytes = estimate_memory();
                return result;
            }
            work.emplace_back(nid, std::move(next));
        }

        if (detect_deadlock && !any_enabled) {
            result.status = VerifStatus::Deadlock;
            result.badState = ts.describe(s);
            result.statesExplored = visited.size();
            result.seconds = elapsed();
            result.memoryBytes = estimate_memory();
            return result;
        }
    }

    result.statesExplored = visited.size();
    result.seconds = elapsed();
    result.memoryBytes = estimate_memory();
    return result;
}

} // namespace neo
