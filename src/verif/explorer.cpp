#include "explorer.hpp"

#include <chrono>
#include <deque>
#include <unordered_map>

#include "verif/checkpoint.hpp"
#include "verif/parallel_explorer.hpp"

namespace neo
{

const char *
verifStatusName(VerifStatus s)
{
    switch (s) {
      case VerifStatus::Verified:
        return "VERIFIED";
      case VerifStatus::InvariantViolated:
        return "INVARIANT VIOLATED";
      case VerifStatus::Deadlock:
        return "DEADLOCK";
      case VerifStatus::LimitExceeded:
        return "EXCEEDED BOUNDS";
      case VerifStatus::Interrupted:
        return "INTERRUPTED (resumable)";
    }
    return "?";
}

ExploreResult
explore(const TransitionSystem &ts, const ExploreLimits &limits,
        bool detect_deadlock, bool keep_trace,
        const std::function<void(const VState &)> &on_state)
{
    if (limits.threads > 1)
        return exploreParallel(ts, limits, detect_deadlock, keep_trace,
                               on_state);

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    ExploreResult result;
    result.ruleFires.assign(ts.rules().size(), 0);

    // Visited set maps each canonical state to its id; parent edges
    // (state id -> (parent id, rule index)) reconstruct traces and
    // are only kept when tracing.
    std::unordered_map<VState, std::uint64_t, VStateHash> visited;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> parent;
    // Runtime copy of keep_trace: memory-pressure degradation (below)
    // sheds the predecessor links and clears it mid-run.
    bool tracing = keep_trace;

    const auto &canon = ts.canonicalizer();
    const auto &rules = ts.rules();

    const CheckpointConfig *ckpt = limits.checkpoint;
    const bool ckptActive = ckpt != nullptr && !ckpt->dir.empty();
    const std::string ckptPath =
        ckptActive ? exploreSnapshotPath(*ckpt) : std::string();
    const std::uint64_t fingerprint =
        ckptActive ? modelFingerprint(ts) : 0;
    // Wall-clock already spent by the resumed run; maxSeconds bounds
    // the cumulative time across resumes, like a real compute budget.
    double baseSeconds = 0.0;

    auto elapsed = [&]() {
        return baseSeconds +
               std::chrono::duration<double>(Clock::now() - t0).count();
    };

    std::deque<std::pair<std::uint64_t, VState>> work;

    auto estimate_memory = [&]() -> std::uint64_t {
        // Per visited state: the vector header + payload bytes of the
        // map key, the id value, and hash-node overhead.
        const std::uint64_t per_visited =
            sizeof(VState) + ts.numVars() + 8 + 32;
        // The predecessor map costs one (parent id, rule) link per
        // state when traces are kept.
        const std::uint64_t per_trace =
            tracing
                ? sizeof(std::pair<std::uint64_t, std::uint32_t>)
                : 0;
        // Frontier entries each carry a full state copy.
        const std::uint64_t per_frontier =
            sizeof(std::pair<std::uint64_t, VState>) + ts.numVars();
        // Serializing a snapshot buffers the whole image once more;
        // the limit must cover that transient or the checkpoint that
        // is meant to save the run OOMs it instead.
        const std::uint64_t per_ckpt_state =
            ckptActive ? ts.numVars() + (tracing ? 16 : 0) : 0;
        const std::uint64_t per_ckpt_frontier =
            ckptActive ? ts.numVars() + 12 : 0;
        return visited.size() * (per_visited + per_trace +
                                 per_ckpt_state) +
               work.size() * (per_frontier + per_ckpt_frontier);
    };

    auto fail_invariants = [&](const VState &s) -> const char * {
        for (const auto &inv : ts.invariants()) {
            if (!inv.check(s))
                return inv.name.c_str();
        }
        return nullptr;
    };

    auto build_trace = [&](std::uint64_t id) {
        std::vector<std::string> names;
        while (id != 0) {
            const auto [pid, rule] = parent[id];
            names.push_back(rules[rule].name);
            id = pid;
        }
        std::reverse(names.begin(), names.end());
        return names;
    };

    // BFS depth of every visited state, derivable from the parent
    // links because a parent's id always precedes its children's.
    auto compute_depths = [&]() {
        std::vector<std::uint32_t> depth(parent.size(), 0);
        for (std::size_t i = 1; i < parent.size(); ++i)
            depth[i] = depth[parent[i].first] + 1;
        return depth;
    };

    auto write_snapshot = [&]() {
        ExploreSnapshot snap;
        snap.elapsedSeconds = elapsed();
        snap.transitionsFired = result.transitionsFired;
        snap.ruleFires = result.ruleFires;
        snap.states.assign(visited.size(), VState{});
        for (const auto &[state, id] : visited)
            snap.states[id] = state;
        std::vector<std::uint32_t> depth;
        if (tracing) {
            snap.hasLinks = true;
            depth = compute_depths();
            snap.links.resize(parent.size());
            for (std::size_t i = 0; i < parent.size(); ++i)
                snap.links[i] = ExploreSnapshot::Link{
                    parent[i].first, parent[i].second, depth[i]};
        }
        snap.frontier.reserve(work.size());
        for (const auto &[id, state] : work)
            snap.frontier.push_back(ExploreSnapshot::FrontierItem{
                id, tracing ? depth[id] : 0, state});
        const std::vector<std::uint8_t> payload =
            encodeExploreSnapshot(snap, ts.numVars());
        std::string err;
        if (!writeSnapshotFile(ckptPath, SnapshotKind::Explore,
                               fingerprint, payload, err)) {
            neo_warn("checkpoint not written: ", err);
            return;
        }
        ++result.checkpointsWritten;
        result.lastSnapshotBytes = payload.size();
    };

    bool fresh = true;
    if (ckptActive && ckpt->resume && snapshotExists(ckptPath)) {
        std::vector<std::uint8_t> payload;
        std::string err;
        if (!readSnapshotFile(ckptPath, SnapshotKind::Explore,
                              fingerprint, payload, err))
            neo_fatal("cannot resume: ", err);
        ExploreSnapshot snap;
        if (!decodeExploreSnapshot(payload, ts.numVars(),
                                   rules.size(), snap, err))
            neo_fatal("cannot resume: ", ckptPath, ": ", err);
        baseSeconds = snap.elapsedSeconds;
        result.transitionsFired = snap.transitionsFired;
        result.ruleFires = snap.ruleFires;
        visited.reserve(snap.states.size());
        for (std::size_t i = 0; i < snap.states.size(); ++i)
            visited.emplace(snap.states[i], i);
        if (tracing && snap.hasLinks) {
            parent.reserve(snap.links.size());
            for (const auto &l : snap.links)
                parent.emplace_back(
                    l.parent, static_cast<std::uint32_t>(l.rule));
        } else if (tracing) {
            // The snapshot shed its links (memory-pressure degrade);
            // older predecessors are unrecoverable, so the resumed
            // run keeps exact counts but cannot build traces.
            tracing = false;
            result.degradedTrace = true;
        }
        for (const auto &fi : snap.frontier)
            work.emplace_back(fi.id, fi.state);
        if (on_state) {
            for (const auto &s : snap.states)
                on_state(s);
        }
        result.resumed = true;
        result.restoredStates = snap.states.size();
        fresh = false;
    }

    if (fresh) {
        VState init = ts.initialState();
        if (canon)
            canon(init);
        visited.emplace(init, 0);
        if (tracing)
            parent.emplace_back(0, 0);
        if (on_state)
            on_state(init);
        work.emplace_back(0, init);

        if (const char *inv = fail_invariants(init)) {
            result.status = VerifStatus::InvariantViolated;
            result.violatedInvariant = inv;
            result.badState = ts.describe(init);
            result.statesExplored = 1;
            result.seconds = elapsed();
            return result;
        }
    }

    double lastCkptSeconds = elapsed();
    bool nearLimitSnapshotDone = false;

    // BFS; each work item carries its state so stateById is only
    // needed for trace rendering.
    while (!work.empty()) {
        if (ckptActive && interruptRequested()) {
            write_snapshot();
            result.status = VerifStatus::Interrupted;
            break;
        }
        if (visited.size() >= limits.maxStates ||
            elapsed() > limits.maxSeconds) {
            if (ckptActive)
                write_snapshot();
            result.status = VerifStatus::LimitExceeded;
            break;
        }
        if (limits.maxMemoryBytes != 0) {
            std::uint64_t mem = estimate_memory();
            if (mem > limits.maxMemoryBytes && ckptActive && tracing) {
                // Memory pressure: snapshot what we have, then shed
                // the predecessor links (the single largest optional
                // structure) and keep exploring without traces.
                write_snapshot();
                parent.clear();
                parent.shrink_to_fit();
                tracing = false;
                result.degradedTrace = true;
                mem = estimate_memory();
            }
            if (mem > limits.maxMemoryBytes) {
                if (ckptActive)
                    write_snapshot();
                result.status = VerifStatus::LimitExceeded;
                break;
            }
            if (ckptActive && !nearLimitSnapshotDone &&
                mem * 10 > limits.maxMemoryBytes * 9) {
                // Nearing the budget: secure progress now in case the
                // next growth step lands on a real OOM kill.
                write_snapshot();
                nearLimitSnapshotDone = true;
            }
        }
        if (ckptActive && ckpt->everySeconds > 0.0 &&
            elapsed() - lastCkptSeconds >= ckpt->everySeconds) {
            write_snapshot();
            lastCkptSeconds = elapsed();
        }
        const std::uint64_t id = work.front().first;
        VState s = std::move(work.front().second);
        work.pop_front();

        bool any_enabled = false;
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!rules[r].guard(s))
                continue;
            any_enabled = true;
            VState next = s;
            rules[r].effect(next);
            ++result.transitionsFired;
            ++result.ruleFires[r];
            if (canon)
                canon(next);
            auto [it, inserted] =
                visited.emplace(next, visited.size());
            if (!inserted)
                continue;
            const std::uint64_t nid = it->second;
            if (tracing)
                parent.emplace_back(id, static_cast<std::uint32_t>(r));
            if (on_state)
                on_state(next);
            if (const char *inv = fail_invariants(next)) {
                result.status = VerifStatus::InvariantViolated;
                result.violatedInvariant = inv;
                result.badState = ts.describe(next);
                if (tracing)
                    result.trace = build_trace(nid);
                result.statesExplored = visited.size();
                result.seconds = elapsed();
                result.memoryBytes = estimate_memory();
                if (ckptActive)
                    removeSnapshot(ckptPath);
                return result;
            }
            work.emplace_back(nid, std::move(next));
        }

        if (detect_deadlock && !any_enabled) {
            result.status = VerifStatus::Deadlock;
            result.badState = ts.describe(s);
            result.statesExplored = visited.size();
            result.seconds = elapsed();
            result.memoryBytes = estimate_memory();
            if (ckptActive)
                removeSnapshot(ckptPath);
            return result;
        }
    }

    result.statesExplored = visited.size();
    result.seconds = elapsed();
    result.memoryBytes = estimate_memory();
    // A finished fixpoint has nothing left to resume; only
    // interrupted and bound-exceeded runs keep their snapshot.
    if (ckptActive && result.status == VerifStatus::Verified)
        removeSnapshot(ckptPath);
    return result;
}

} // namespace neo
