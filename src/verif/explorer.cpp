#include "explorer.hpp"

#include <chrono>
#include <deque>
#include <unordered_map>

#include "verif/parallel_explorer.hpp"

namespace neo
{

const char *
verifStatusName(VerifStatus s)
{
    switch (s) {
      case VerifStatus::Verified:
        return "VERIFIED";
      case VerifStatus::InvariantViolated:
        return "INVARIANT VIOLATED";
      case VerifStatus::Deadlock:
        return "DEADLOCK";
      case VerifStatus::LimitExceeded:
        return "EXCEEDED BOUNDS";
    }
    return "?";
}

ExploreResult
explore(const TransitionSystem &ts, const ExploreLimits &limits,
        bool detect_deadlock, bool keep_trace,
        const std::function<void(const VState &)> &on_state)
{
    if (limits.threads > 1)
        return exploreParallel(ts, limits, detect_deadlock, keep_trace,
                               on_state);

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    ExploreResult result;
    result.ruleFires.assign(ts.rules().size(), 0);

    // Visited set maps each canonical state to its id; parent edges
    // (state id -> (parent id, rule index)) reconstruct traces and
    // are only kept when tracing.
    std::unordered_map<VState, std::uint64_t, VStateHash> visited;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> parent;

    const auto &canon = ts.canonicalizer();
    const auto &rules = ts.rules();

    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    std::deque<std::pair<std::uint64_t, VState>> work;

    auto estimate_memory = [&]() -> std::uint64_t {
        // Per visited state: the vector header + payload bytes of the
        // map key, the id value, and hash-node overhead.
        const std::uint64_t per_visited =
            sizeof(VState) + ts.numVars() + 8 + 32;
        // The predecessor map costs one (parent id, rule) link per
        // state when traces are kept.
        const std::uint64_t per_trace =
            keep_trace
                ? sizeof(std::pair<std::uint64_t, std::uint32_t>)
                : 0;
        // Frontier entries each carry a full state copy.
        const std::uint64_t per_frontier =
            sizeof(std::pair<std::uint64_t, VState>) + ts.numVars();
        return visited.size() * (per_visited + per_trace) +
               work.size() * per_frontier;
    };

    auto fail_invariants = [&](const VState &s) -> const char * {
        for (const auto &inv : ts.invariants()) {
            if (!inv.check(s))
                return inv.name.c_str();
        }
        return nullptr;
    };

    auto build_trace = [&](std::uint64_t id) {
        std::vector<std::string> names;
        while (id != 0) {
            const auto [pid, rule] = parent[id];
            names.push_back(rules[rule].name);
            id = pid;
        }
        std::reverse(names.begin(), names.end());
        return names;
    };

    VState init = ts.initialState();
    if (canon)
        canon(init);
    visited.emplace(init, 0);
    if (keep_trace)
        parent.emplace_back(0, 0);
    if (on_state)
        on_state(init);
    work.emplace_back(0, init);

    if (const char *inv = fail_invariants(init)) {
        result.status = VerifStatus::InvariantViolated;
        result.violatedInvariant = inv;
        result.badState = ts.describe(init);
        result.statesExplored = 1;
        result.seconds = elapsed();
        return result;
    }

    // BFS; each work item carries its state so stateById is only
    // needed for trace rendering.
    while (!work.empty()) {
        if (visited.size() >= limits.maxStates ||
            elapsed() > limits.maxSeconds ||
            (limits.maxMemoryBytes != 0 &&
             estimate_memory() > limits.maxMemoryBytes)) {
            result.status = VerifStatus::LimitExceeded;
            break;
        }
        const std::uint64_t id = work.front().first;
        VState s = std::move(work.front().second);
        work.pop_front();

        bool any_enabled = false;
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!rules[r].guard(s))
                continue;
            any_enabled = true;
            VState next = s;
            rules[r].effect(next);
            ++result.transitionsFired;
            ++result.ruleFires[r];
            if (canon)
                canon(next);
            auto [it, inserted] =
                visited.emplace(next, visited.size());
            if (!inserted)
                continue;
            const std::uint64_t nid = it->second;
            if (keep_trace)
                parent.emplace_back(id, static_cast<std::uint32_t>(r));
            if (on_state)
                on_state(next);
            if (const char *inv = fail_invariants(next)) {
                result.status = VerifStatus::InvariantViolated;
                result.violatedInvariant = inv;
                result.badState = ts.describe(next);
                if (keep_trace)
                    result.trace = build_trace(nid);
                result.statesExplored = visited.size();
                result.seconds = elapsed();
                result.memoryBytes = estimate_memory();
                return result;
            }
            work.emplace_back(nid, std::move(next));
        }

        if (detect_deadlock && !any_enabled) {
            result.status = VerifStatus::Deadlock;
            result.badState = ts.describe(s);
            result.statesExplored = visited.size();
            result.seconds = elapsed();
            result.memoryBytes = estimate_memory();
            return result;
        }
    }

    result.statesExplored = visited.size();
    result.seconds = elapsed();
    result.memoryBytes = estimate_memory();
    return result;
}

} // namespace neo
