/**
 * @file
 * Explicit-state reachability with invariant checking.
 *
 * BFS over the transition system's state graph with a canonicalizing
 * symmetry reduction (identical Neo leaves are interchangeable, §2.1),
 * counterexample trace reconstruction, and the time/state/memory
 * bounds the paper's §4 methodology study needs (Cubicle was run with
 * a 2-day / 50 GB bound; we scale the bounds to this machine and
 * report EXCEEDED the same way).
 */

#ifndef NEO_VERIF_EXPLORER_HPP
#define NEO_VERIF_EXPLORER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "verif/state_store.hpp"
#include "verif/transition_system.hpp"

namespace neo
{

struct CheckpointConfig; // checkpoint.hpp

/** Default state bound. ExploreLimits::maxStates values below this
 *  count as "the caller told us the expected scale" and pre-size the
 *  visited tables and work queues accordingly. */
inline constexpr std::uint64_t kDefaultMaxStates = 20'000'000;

/** Parallel frontier implementation. Ring is the production path
 *  (bounded lock-free MPMC rings + per-worker spill deques,
 *  mpmc_ring.hpp); Mutex keeps the pre-ring mutex-guarded vector
 *  queue alive as the A/B baseline BM_CheckerParallelScaling and the
 *  CI ring-vs-mutex artifact compare against. Both reach the same
 *  fixpoint (the differential suites run the contract; the frontier
 *  only changes expansion order, which was already unordered). */
enum class FrontierKind : std::uint8_t
{
    Ring = 0,
    Mutex = 1,
};

struct ExploreLimits
{
    std::uint64_t maxStates = kDefaultMaxStates;
    double maxSeconds = 120.0;
    /** Live-memory bound over the visited set, trace structures,
     *  frontier and (when checkpointing) the snapshot write buffer
     *  (the paper's 50 GB analogue); 0 = unbounded. */
    std::uint64_t maxMemoryBytes = 0;
    /** Worker threads. 1 runs the sequential BFS below; >1 runs the
     *  sharded parallel explorer (parallel_explorer.hpp), which
     *  reaches the same fixpoint with the same state/transition
     *  counts but may report a different (equally valid)
     *  counterexample trace. */
    unsigned threads = 1;
    /** Crash-safe checkpointing (checkpoint.hpp); nullptr disables.
     *  With a config, the run writes periodic CRC-guarded snapshots,
     *  drains to a final snapshot on SIGINT/SIGTERM (returning
     *  Interrupted), degrades gracefully under memory pressure, and
     *  can resume an earlier snapshot to the identical fixpoint. */
    const CheckpointConfig *checkpoint = nullptr;
    /** State-store capacity tier (plain/delta/compact) and spill
     *  configuration (state_store.hpp). With a spill dir set, the
     *  memory-pressure ladder becomes: snapshot, shed cold store
     *  regions to disk, shed trace links, and only then EXCEEDED. */
    StoreTierOptions store = {};
    /** Parallel frontier implementation (ignored when threads <= 1). */
    FrontierKind frontier = FrontierKind::Ring;
    /** Dependency-indexed successor generation (transition_system.hpp
     *  RuleDepIndex): carry the parent's enabled-rule bitset with
     *  each frontier item, re-evaluate only guards whose read-set
     *  intersects the fired rule's write-set (gated on canonicalizer
     *  identity), skip invariants the firing cannot have changed, and
     *  fire flat effects in place. Counts stay bit-identical either
     *  way — `--no-rule-index` keeps this old path alive as the
     *  differential baseline. */
    bool ruleIndex = true;
};

/** Hash functor over state bytes, delegating to stateHash()
 *  (state_store.hpp) so `unordered_*<VState, …>` containers agree
 *  with the StateStore fingerprints and shard selection. */
struct VStateHash
{
    std::size_t
    operator()(const VState &s) const
    {
        return stateHash(s.data(), s.size());
    }
};

/** Visited-table pre-size hint: states to reserve up-front when the
 *  caller set an explicit maxStates bound (capped so a huge bound on
 *  a small model does not balloon the footprint); 0 = grow lazily. */
std::uint64_t explorePresizeHint(const ExploreLimits &limits);

enum class VerifStatus
{
    Verified,          ///< fixpoint reached, all invariants hold
    InvariantViolated, ///< a reachable state breaks an invariant
    Deadlock,          ///< a non-final state with no enabled rule
    LimitExceeded,     ///< state/time bound hit before the fixpoint
    Interrupted,       ///< stopped by SIGINT/SIGTERM; snapshot saved,
                       ///< resumable (exit code 5 in neoverify)
};

const char *verifStatusName(VerifStatus s);

struct ExploreResult
{
    VerifStatus status = VerifStatus::Verified;
    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsFired = 0;
    double seconds = 0.0;
    /** Rough live-memory footprint of the visited set + frontier. */
    std::uint64_t memoryBytes = 0;
    std::string violatedInvariant;
    /** Rule names from the initial state to the violation. */
    std::vector<std::string> trace;
    /** Human-readable violating state. */
    std::string badState;
    /** Per-rule firing counts (indexed like ts.rules()); a zero for a
     *  feature-enabled rule means dead logic in the model. */
    std::vector<std::uint64_t> ruleFires;
    /** Invariant predicate evaluations (a state checked against k
     *  invariants before the first failure counts k). Deterministic
     *  for the sequential engine — part of the golden fixtures — and
     *  equal to statesExplored * |invariants| for any Verified run,
     *  which the parallel differential suite asserts too. */
    std::uint64_t invariantChecks = 0;
    /** The run was restored from a snapshot before exploring. */
    bool resumed = false;
    /** States restored from the snapshot (when resumed). */
    std::uint64_t restoredStates = 0;
    /** Predecessor links were shed under memory pressure; counts stay
     *  exact but no counterexample trace can be reconstructed. */
    bool degradedTrace = false;
    /** Snapshots written during this run (periodic + final). */
    std::uint64_t checkpointsWritten = 0;
    /** Serialized size of the most recent snapshot, bytes. */
    std::uint64_t lastSnapshotBytes = 0;
    /** The run used hash compaction: statesExplored counts DISTINCT
     *  FINGERPRINTS, and a Verified verdict is only sound up to
     *  omissionProbability. Callers must surface both. */
    bool compactHashes = false;
    /** Stern–Dill omission probability for this run's state count
     *  and fingerprint width (0 outside compact mode). */
    double omissionProbability = 0.0;
    /** Store regions shed to the mmap cold tier (LRU evictions plus
     *  memory-pressure sheds); 0 without --spill-dir. */
    std::uint64_t spillSheds = 0;
    /** Guard predicates actually evaluated (full scans + delta
     *  re-evaluations). Unlike invariantChecks this counts PHYSICAL
     *  evaluations, so index-on vs index-off runs differ — that gap
     *  is the point (see guardEvalsSkipped). */
    std::uint64_t guardEvals = 0;
    /** Guard evaluations the dependency index proved unnecessary
     *  (bits copied from the parent instead of re-evaluated). */
    std::uint64_t guardEvalsSkipped = 0;
    /** Firings applied in place on the expansion scratch (flat
     *  effect + undo log) instead of into a fresh state copy. */
    std::uint64_t inPlaceFirings = 0;
    /** Successors that were already their own canonical
     *  representative, making the bitset delta sound (and, with a
     *  CanonicalCheck, skipping the canonicalizer call outright). */
    std::uint64_t canonIdentityHits = 0;
};

/**
 * Run reachability: BFS when limits.threads == 1, the sharded
 * parallel explorer otherwise.
 *
 * @param ts the model
 * @param limits bounds; exceeding them yields LimitExceeded
 * @param detect_deadlock report states with no outgoing transitions
 * @param keep_trace store predecessors for counterexamples (costs
 *        memory; disable for capacity experiments)
 * @param on_state called once per newly discovered canonical state;
 *        with threads > 1 calls are serialized under a mutex but
 *        arrive in a nondeterministic order
 */
ExploreResult explore(const TransitionSystem &ts,
                      const ExploreLimits &limits,
                      bool detect_deadlock = false,
                      bool keep_trace = true,
                      const std::function<void(const VState &)> &
                          on_state = {});

} // namespace neo

#endif // NEO_VERIF_EXPLORER_HPP
