#include "flat_closed.hpp"

#include <algorithm>
#include <sstream>

#include "leaf_canon.hpp"

namespace neo::verif
{

Perm
cacheStPerm(std::uint8_t c)
{
    // Eviction transients (*I_A) relinquished their permission when
    // the Put was issued: their effective permission is I even though
    // they still answer demands from the stale copy.
    switch (c) {
      case C_S:
      case C_SMD:
        return Perm::S;
      case C_E:
        return Perm::E;
      case C_M:
        return Perm::M;
      case C_O:
      case C_OMD:
        return Perm::O;
      default:
        return Perm::I;
    }
}

namespace
{

/** Variable offsets of one leaf block. */
struct LeafLayout
{
    std::size_t c;    ///< cache state
    std::size_t rq;   ///< leaf -> dir request channel
    std::size_t fw;   ///< dir -> leaf demand channel
    std::size_t rs;   ///< data channel into the leaf
    std::size_t ak;   ///< leaf -> dir completion channel
    std::size_t sh;   ///< dir's sharer bit for this leaf
    std::size_t ow;   ///< dir's owner bit for this leaf
    std::size_t rqst; ///< this leaf is the transaction requester
    std::size_t tg;   ///< this leaf is the pending Fwd data target
};

constexpr std::size_t leafBlockVars = 9;

} // namespace

TransitionSystem
buildClosedModel(std::size_t n, const VerifFeatures &features,
                 ModelShape &shape)
{
    neo_assert(n >= 1 && n <= 8, "closed model supports 1..8 leaves");
    TransitionSystem ts;
    const VerifFeatures f = features;

    // ---- shared (directory) variables ----
    const std::size_t busy = ts.addVar("busy", DB_Idle);
    const std::size_t acks = ts.addVar("acks", 0);
    const std::size_t grantPend = ts.addVar("grantPend", 0);
    const std::size_t fwdPend = ts.addVar("fwdPend", 0);
    const std::size_t hasData = ts.addVar("hasData", 1);

    shape.sharedVars = ts.numVars();
    shape.saturatedSharedVars = {acks};
    shape.numLeaves = n;
    shape.leafBlockSize = leafBlockVars;

    // ---- per-leaf variables ----
    std::vector<LeafLayout> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::ostringstream p;
        p << "l" << i << ".";
        L[i].c = ts.addVar(p.str() + "c", C_I);
        L[i].rq = ts.addVar(p.str() + "rq", RQ_None);
        L[i].fw = ts.addVar(p.str() + "fw", FW_None);
        L[i].rs = ts.addVar(p.str() + "rs", RS_None);
        L[i].ak = ts.addVar(p.str() + "ak", AK_None);
        L[i].sh = ts.addVar(p.str() + "sh", 0);
        L[i].ow = ts.addVar(p.str() + "ow", 0);
        L[i].rqst = ts.addVar(p.str() + "rqst", 0);
        L[i].tg = ts.addVar(p.str() + "tg", 0);
    }

    // Canonical form: sort the leaf blocks lexicographically (leaves
    // are identical and interchangeable — Neo's symmetry). The exact
    // sortedness predicate feeds the explorers' dependency-index
    // identity gate (leaf_canon.hpp).
    const std::size_t shared_count = shape.sharedVars;
    ts.setCanonicalizer(
        makeLeafSortCanonicalizer(shared_count, n, leafBlockVars),
        makeLeafSortedCheck(shared_count, n, leafBlockVars));

    auto owner_of = [L, n](const VState &s) -> int {
        for (std::size_t j = 0; j < n; ++j)
            if (s[L[j].ow])
                return static_cast<int>(j);
        return -1;
    };

    // ---- leaf rules ----
    for (std::size_t i = 0; i < n; ++i) {
        const LeafLayout &me = L[i];

        ts.addRule(
            "load_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.c] == C_I && s[me.rq] == RQ_None;
            },
            [me](VState &s) {
                s[me.c] = C_ISD;
                s[me.rq] = RQ_GetS;
            });

        ts.addRule(
            "store_I_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.c] == C_I && s[me.rq] == RQ_None;
            },
            [me](VState &s) {
                s[me.c] = C_IMD;
                s[me.rq] = RQ_GetM;
            });

        ts.addRule(
            "store_S_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.c] == C_S && s[me.rq] == RQ_None;
            },
            [me](VState &s) {
                s[me.c] = C_SMD;
                s[me.rq] = RQ_GetM;
            });

        if (f.exclusiveState) {
            ts.addRule(
                "store_E_" + std::to_string(i), ActionKind::Internal,
                [me](const VState &s) { return s[me.c] == C_E; },
                [me](VState &s) { s[me.c] = C_M; });
        }
        if (f.ownedState) {
            ts.addRule(
                "store_O_" + std::to_string(i), ActionKind::Internal,
                [me](const VState &s) {
                    return s[me.c] == C_O && s[me.rq] == RQ_None;
                },
                [me](VState &s) {
                    s[me.c] = C_OMD;
                    s[me.rq] = RQ_GetM;
                });
        }

        if (f.inclusiveEvictions) {
            struct EvictCase
            {
                std::uint8_t from, to, put;
                bool enabled;
            };
            const EvictCase cases[] = {
                {C_S, C_SIA, RQ_PutS, true},
                {C_E, C_EIA, RQ_PutE, f.exclusiveState},
                {C_M, C_MIA, RQ_PutM, true},
                {C_O, C_OIA, RQ_PutO, f.ownedState},
            };
            for (const auto &ec : cases) {
                if (!ec.enabled)
                    continue;
                ts.addRule(
                    "evict_" + std::string(permName(cacheStPerm(ec.from))) +
                        "_" + std::to_string(i),
                    ActionKind::Internal,
                    [me, ec](const VState &s) {
                        return s[me.c] == ec.from &&
                               s[me.rq] == RQ_None;
                    },
                    [me, ec](VState &s) {
                        s[me.c] = ec.to;
                        s[me.rq] = ec.put;
                    });
            }
        }

        // Inv: ack from every state that can legally see one.
        ts.addRule(
            "recv_inv_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                if (s[me.fw] != FW_Inv || s[me.ak] != AK_None)
                    return false;
                switch (s[me.c]) {
                  case C_S:
                  case C_E:
                  case C_M:
                  case C_O:
                  case C_SMD:
                  case C_OMD:
                  case C_SIA:
                  case C_EIA:
                  case C_MIA:
                  case C_OIA:
                    return true;
                  default:
                    return false;
                }
            },
            [me](VState &s) {
                s[me.fw] = FW_None;
                bool dirty = false;
                switch (s[me.c]) {
                  case C_M:
                  case C_O:
                    dirty = true;
                    s[me.c] = C_I;
                    break;
                  case C_S:
                  case C_E:
                    s[me.c] = C_I;
                    break;
                  case C_SMD:
                    s[me.c] = C_IMD;
                    break;
                  case C_OMD:
                    dirty = true;
                    s[me.c] = C_IMD;
                    break;
                  case C_MIA:
                  case C_OIA:
                    dirty = true;
                    s[me.c] = C_IIA;
                    break;
                  case C_SIA:
                  case C_EIA:
                    s[me.c] = C_IIA;
                    break;
                  default:
                    break;
                }
                s[me.ak] = dirty ? AK_InvAckD : AK_InvAck;
            });

        // Fwd_GetS: supply the target sibling.
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const LeafLayout &tgt = L[j];
            ts.addRule(
                "recv_fwdS_" + std::to_string(i) + "_to_" +
                    std::to_string(j),
                ActionKind::Internal,
                [me, tgt](const VState &s) {
                    if (s[me.fw] != FW_FwdGetS || !s[tgt.tg] ||
                        s[tgt.rs] != RS_None)
                        return false;
                    switch (s[me.c]) {
                      case C_M:
                      case C_E:
                      case C_O:
                      case C_MIA:
                      case C_EIA:
                      case C_OIA:
                        return true;
                      default:
                        return false;
                    }
                },
                [me, tgt, f](VState &s) {
                    s[me.fw] = FW_None;
                    s[tgt.tg] = 0;
                    s[tgt.rs] = RS_DataS;
                    switch (s[me.c]) {
                      case C_M:
                      case C_E:
                        s[me.c] = f.ownedState ? C_O : C_S;
                        break;
                      case C_MIA:
                        s[me.c] = C_SIA;
                        break;
                      case C_EIA:
                        if (!f.ownedState)
                            s[me.c] = C_SIA;
                        break;
                      default:
                        break; // O / OIA stay owners
                    }
                });

            ts.addRule(
                "recv_fwdM_" + std::to_string(i) + "_to_" +
                    std::to_string(j),
                ActionKind::Internal,
                [me, tgt](const VState &s) {
                    if (s[me.fw] != FW_FwdGetM || !s[tgt.tg] ||
                        s[tgt.rs] != RS_None)
                        return false;
                    switch (s[me.c]) {
                      case C_M:
                      case C_E:
                      case C_O:
                      case C_MIA:
                      case C_EIA:
                      case C_OIA:
                        return true;
                      default:
                        return false;
                    }
                },
                [me, tgt](VState &s) {
                    s[me.fw] = FW_None;
                    s[tgt.tg] = 0;
                    s[tgt.rs] = RS_DataM;
                    switch (s[me.c]) {
                      case C_M:
                      case C_E:
                      case C_O:
                        s[me.c] = C_I;
                        break;
                      default:
                        s[me.c] = C_IIA;
                        break;
                    }
                });
        }

        if (f.inclusiveEvictions) {
            ts.addRule(
                "recv_putack_" + std::to_string(i),
                ActionKind::Internal,
                [me](const VState &s) {
                    if (s[me.fw] != FW_PutAck)
                        return false;
                    switch (s[me.c]) {
                      case C_SIA:
                      case C_EIA:
                      case C_MIA:
                      case C_OIA:
                      case C_IIA:
                        return true;
                      default:
                        return false;
                    }
                },
                [me](VState &s) {
                    s[me.fw] = FW_None;
                    s[me.c] = C_I;
                });
        }

        ts.addRule(
            "recv_dataS_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.rs] == RS_DataS && s[me.c] == C_ISD &&
                       s[me.ak] == AK_None;
            },
            [me](VState &s) {
                s[me.rs] = RS_None;
                s[me.c] = C_S;
                s[me.ak] = AK_Unblock;
            });

        if (f.exclusiveState) {
            ts.addRule(
                "recv_dataE_" + std::to_string(i), ActionKind::Internal,
                [me](const VState &s) {
                    return s[me.rs] == RS_DataE && s[me.c] == C_ISD &&
                           s[me.ak] == AK_None;
                },
                [me](VState &s) {
                    s[me.rs] = RS_None;
                    s[me.c] = C_E;
                    s[me.ak] = AK_Unblock;
                });
        }

        ts.addRule(
            "recv_dataM_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.rs] == RS_DataM && s[me.ak] == AK_None &&
                       (s[me.c] == C_IMD || s[me.c] == C_SMD ||
                        s[me.c] == C_OMD);
            },
            [me](VState &s) {
                s[me.rs] = RS_None;
                s[me.c] = C_M;
                s[me.ak] = AK_UnblockD;
            });
    }

    // ---- directory rules ----
    for (std::size_t i = 0; i < n; ++i) {
        const LeafLayout &me = L[i];

        // GetS: forward to the owner or grant from the root's copy.
        ts.addRule(
            "d_getS_" + std::to_string(i), ActionKind::Internal,
            [me, L, n, busy, owner_of](const VState &s) {
                if (s[busy] != DB_Idle || s[me.rq] != RQ_GetS ||
                    s[me.rs] != RS_None)
                    return false;
                const int o = owner_of(s);
                if (o >= 0 && s[L[o].fw] != FW_None)
                    return false;
                return true;
            },
            [me, L, n, busy, hasData, owner_of, f](VState &s) {
                s[me.rq] = RQ_None;
                s[busy] = DB_Read;
                s[me.rqst] = 1;
                const int o = owner_of(s);
                if (o >= 0) {
                    s[L[o].fw] = FW_FwdGetS;
                    s[me.tg] = 1;
                    s[me.sh] = 1;
                    if (!f.ownedState) {
                        s[L[o].ow] = 0;
                        s[hasData] = 0; // refreshed by the Unblock
                    }
                } else {
                    bool sole = true;
                    for (std::size_t j = 0; j < n; ++j)
                        if (s[L[j].sh])
                            sole = false;
                    s[me.sh] = 1;
                    if (sole && f.exclusiveState) {
                        s[me.rs] = RS_DataE;
                        s[me.ow] = 1;
                    } else {
                        s[me.rs] = RS_DataS;
                    }
                }
            });

        // GetM: invalidate other sharers, route data, grant after acks.
        ts.addRule(
            "d_getM_" + std::to_string(i), ActionKind::Internal,
            [me, L, n, busy](const VState &s) {
                if (s[busy] != DB_Idle || s[me.rq] != RQ_GetM ||
                    s[me.rs] != RS_None)
                    return false;
                for (std::size_t j = 0; j < n; ++j) {
                    if (L[j].fw == me.fw)
                        continue; // the requester needs no demand
                    if ((s[L[j].sh] || s[L[j].ow]) &&
                        s[L[j].fw] != FW_None)
                        return false;
                }
                return true;
            },
            [me, L, n, busy, acks, grantPend, fwdPend, hasData,
             owner_of](VState &s) {
                s[me.rq] = RQ_None;
                s[busy] = DB_Write;
                s[me.rqst] = 1;
                const int o = owner_of(s);
                for (std::size_t j = 0; j < n; ++j) {
                    if (L[j].c == me.c)
                        continue; // the requester keeps its copy
                    if (static_cast<int>(j) == o)
                        continue; // the owner gets the Fwd instead
                    if (s[L[j].sh]) {
                        s[L[j].fw] = FW_Inv;
                        s[L[j].sh] = 0;
                        ++s[acks];
                    }
                }
                if (o >= 0 && L[o].c != me.c) {
                    // Single-writer safety: the owner's Fwd may only
                    // go out after the sharers have acked.
                    s[me.tg] = 1;
                    if (s[acks] == 0) {
                        s[L[o].fw] = FW_FwdGetM;
                        s[L[o].ow] = 0;
                        s[L[o].sh] = 0;
                    } else {
                        s[fwdPend] = 1;
                    }
                } else {
                    s[grantPend] = 1;
                }
                s[me.sh] = 1;
                s[me.ow] = 1;
                s[hasData] = 0;
            });

        // Completion: the requester's Unblock retires the transaction
        // (all invalidation acks must already be in).
        ts.addRule(
            "d_unblock_" + std::to_string(i), ActionKind::Internal,
            [me, busy, acks, grantPend, fwdPend](const VState &s) {
                return (s[me.ak] == AK_Unblock ||
                        s[me.ak] == AK_UnblockD) &&
                       s[me.rqst] && s[acks] == 0 && !s[grantPend] &&
                       !s[fwdPend] &&
                       (s[busy] == DB_Read || s[busy] == DB_Write);
            },
            [me, busy, hasData, owner_of, L, n](VState &s) {
                s[me.ak] = AK_None;
                s[me.rqst] = 0;
                s[busy] = DB_Idle;
                if (owner_of(s) < 0)
                    s[hasData] = 1;
            });

        ts.addRule(
            "d_invack_" + std::to_string(i), ActionKind::Internal,
            [me, acks](const VState &s) {
                return (s[me.ak] == AK_InvAck ||
                        s[me.ak] == AK_InvAckD) &&
                       s[acks] > 0;
            },
            [me, acks](VState &s) {
                s[me.ak] = AK_None;
                --s[acks];
            });

        if (f.inclusiveEvictions) {
            ts.addRule(
                "d_put_" + std::to_string(i), ActionKind::Internal,
                [me, busy](const VState &s) {
                    return s[busy] == DB_Idle &&
                           (s[me.rq] == RQ_PutS ||
                            s[me.rq] == RQ_PutE ||
                            s[me.rq] == RQ_PutM ||
                            s[me.rq] == RQ_PutO) &&
                           s[me.fw] == FW_None;
                },
                [me, hasData](VState &s) {
                    const bool owner_put =
                        s[me.ow] &&
                        (s[me.rq] == RQ_PutM || s[me.rq] == RQ_PutE ||
                         s[me.rq] == RQ_PutO);
                    s[me.rq] = RQ_None;
                    s[me.sh] = 0;
                    s[me.ow] = 0;
                    if (owner_put)
                        s[hasData] = 1;
                    s[me.fw] = FW_PutAck;
                });
        }
    }

    // Deferred owner-forward: dispatched once the sharer acks are in.
    ts.addRule(
        "d_fwdM_dispatch", ActionKind::Internal,
        [busy, acks, fwdPend, L, n](const VState &s) {
            if (s[busy] != DB_Write || s[acks] != 0 || !s[fwdPend])
                return false;
            for (std::size_t j = 0; j < n; ++j) {
                if (s[L[j].ow] && !s[L[j].rqst])
                    return s[L[j].fw] == FW_None;
            }
            return false;
        },
        [fwdPend, L, n](VState &s) {
            for (std::size_t j = 0; j < n; ++j) {
                if (s[L[j].ow] && !s[L[j].rqst]) {
                    s[L[j].fw] = FW_FwdGetM;
                    s[L[j].ow] = 0;
                    s[L[j].sh] = 0;
                    break;
                }
            }
            s[fwdPend] = 0;
        });

    // Grant-after-acks for writes served from the root's copy.
    ts.addRule(
        "d_grantM", ActionKind::Internal,
        [busy, acks, grantPend, L, n](const VState &s) {
            if (s[busy] != DB_Write || s[acks] != 0 || !s[grantPend])
                return false;
            for (std::size_t j = 0; j < n; ++j)
                if (s[L[j].rqst])
                    return s[L[j].rs] == RS_None;
            return false;
        },
        [grantPend, L, n](VState &s) {
            for (std::size_t j = 0; j < n; ++j) {
                if (s[L[j].rqst]) {
                    s[L[j].rs] = RS_DataM;
                    break;
                }
            }
            s[grantPend] = 0;
        });

    // Inclusive recall: the root evicts the block, pulling every copy
    // home first (models directory eviction pressure).
    if (f.inclusiveEvictions) {
        ts.addRule(
            "d_recall", ActionKind::Internal,
            [busy, L, n](const VState &s) {
                if (s[busy] != DB_Idle)
                    return false;
                bool holder = false;
                for (std::size_t j = 0; j < n; ++j) {
                    if (s[L[j].sh] || s[L[j].ow]) {
                        holder = true;
                        if (s[L[j].fw] != FW_None)
                            return false;
                    }
                }
                return holder;
            },
            [busy, acks, L, n](VState &s) {
                s[busy] = DB_Recall;
                for (std::size_t j = 0; j < n; ++j) {
                    if (s[L[j].sh] || s[L[j].ow]) {
                        s[L[j].fw] = FW_Inv;
                        s[L[j].sh] = 0;
                        s[L[j].ow] = 0;
                        ++s[acks];
                    }
                }
            });

        ts.addRule(
            "d_recall_done", ActionKind::Internal,
            [busy, acks](const VState &s) {
                return s[busy] == DB_Recall && s[acks] == 0;
            },
            [busy, hasData](VState &s) {
                s[busy] = DB_Idle;
                s[hasData] = 1;
            });
    }

    // ---- Neo safety: the closed system's summary must never be bad.
    // Root Permission is M by construction, so safety reduces to the
    // leaves' pairwise MOESI compatibility (§2.4 requirement 2).
    // The declared read-set (each leaf's cache state, nothing else)
    // lets the dependency index skip re-checking after firings that
    // only move channel or directory bookkeeping.
    {
        std::vector<std::uint16_t> rd;
        for (std::size_t i = 0; i < n; ++i)
            rd.push_back(static_cast<std::uint16_t>(L[i].c));
        ts.addInvariant(
            "NeoSafety_leafCompat",
            [L, n](const VState &s) {
                for (std::size_t i = 0; i < n; ++i) {
                    const Perm pi = cacheStPerm(s[L[i].c]);
                    for (std::size_t j = i + 1; j < n; ++j) {
                        if (!permCompatible(
                                pi, cacheStPerm(s[L[j].c])))
                            return false;
                    }
                }
                return true;
            },
            std::move(rd));
    }

    // Directory bookkeeping soundness: a leaf holding any permission
    // must be tracked (metadata inclusion). Reads each leaf's cache
    // state, tracking bits and forward channel.
    {
        std::vector<std::uint16_t> rd;
        for (std::size_t i = 0; i < n; ++i) {
            rd.push_back(static_cast<std::uint16_t>(L[i].c));
            rd.push_back(static_cast<std::uint16_t>(L[i].sh));
            rd.push_back(static_cast<std::uint16_t>(L[i].ow));
            rd.push_back(static_cast<std::uint16_t>(L[i].rqst));
            rd.push_back(static_cast<std::uint16_t>(L[i].fw));
        }
        ts.addInvariant(
            "DirTracksHolders",
            [L, n](const VState &s) {
                for (std::size_t i = 0; i < n; ++i) {
                    const Perm pi = cacheStPerm(s[L[i].c]);
                    if (pi != Perm::I && !s[L[i].sh] &&
                        !s[L[i].ow] && !s[L[i].rqst] &&
                        s[L[i].fw] == FW_None) {
                        // Mid-Put states and leaves with a demand in
                        // flight are legitimately untracked.
                        const auto c = s[L[i].c];
                        if (c != C_SIA && c != C_EIA &&
                            c != C_MIA && c != C_OIA)
                            return false;
                    }
                }
                return true;
            },
            std::move(rd));
    }

    ts.setSummarizer([L, n](const VState &s) {
        std::vector<Perm> sums;
        sums.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            sums.push_back(cacheStPerm(s[L[i].c]));
        return composeSum(Perm::M, sums);
    });

    return ts;
}

ModelFactory
closedModelFactory(const VerifFeatures &features)
{
    return [features](std::size_t n, ModelShape &shape) {
        return buildClosedModel(n, features, shape);
    };
}

} // namespace neo::verif
