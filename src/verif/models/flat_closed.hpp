/**
 * @file
 * The flat Closed Neo System model: a root directory composed with N
 * identical leaves (Antecedent 1 of §2.5 requires verifying Neo
 * safety of exactly this system).
 *
 * Standard protocol-verification abstraction: one cache block, no
 * data values, single-slot channels per virtual network per leaf
 * (request, demand, response, completion). The feature flags grow the
 * model along the paper's §4.2 ladder.
 */

#ifndef NEO_VERIF_MODELS_FLAT_CLOSED_HPP
#define NEO_VERIF_MODELS_FLAT_CLOSED_HPP

#include "verif/models/verif_features.hpp"
#include "verif/parametric.hpp"
#include "verif/transition_system.hpp"

namespace neo::verif
{

/**
 * Build the closed system with @p n leaves.
 *
 * @param shape out-parameter describing shared/leaf variable layout
 *        (consumed by the parametric engine).
 */
TransitionSystem buildClosedModel(std::size_t n,
                                  const VerifFeatures &features,
                                  ModelShape &shape);

/** ModelFactory adapter for verifyParametric. */
ModelFactory closedModelFactory(const VerifFeatures &features);

/** Map a model cache state to its coherence permission. */
Perm cacheStPerm(std::uint8_t c);

} // namespace neo::verif

#endif // NEO_VERIF_MODELS_FLAT_CLOSED_HPP
