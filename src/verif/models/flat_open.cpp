#include "flat_open.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "leaf_canon.hpp"
#include "verif/models/flat_closed.hpp"

namespace neo::verif
{

const char *
compositionMethodName(CompositionMethod m)
{
    switch (m) {
      case CompositionMethod::None:
        return "safety-only";
      case CompositionMethod::Original:
        return "original(alternating)";
      case CompositionMethod::Modified:
        return "modified(embedded)";
    }
    return "?";
}

namespace
{

/** The statically matched spec-leaf behaviors (see header). */
enum SpecBehavior : std::uint8_t
{
    SB_Stutter = 0, ///< leaf stutters on Omega-internal actions
    SB_InInv,       ///< buffer an incoming Inv
    SB_InFwdS,
    SB_InFwdM,
    SB_InPutAck,
    SB_InDataS,
    SB_InDataE,
    SB_InDataM,
    SB_OutGetS,     ///< issue GetS (I -> IS_D)
    SB_OutGetM,     ///< issue GetM (I/S/O -> *M_D)
    SB_PopDataS,    ///< consume data, perm -> S, owe Unblock
    SB_PopDataE,
    SB_PopDataM,
    SB_OutUnblock,  ///< send the owed Unblock
    SB_OutInvAck,   ///< answer the buffered Inv, perm -> I
    SB_OutDataSExt, ///< answer the buffered Fwd_GetS
    SB_OutDataMExt, ///< answer the buffered Fwd_GetM, perm -> I
    SB_OutPutS,     ///< evict: S -> SI_A + PutS
    SB_OutPutE,
    SB_OutPutM,
    SB_OutPutO,
    SB_PopPutAck,   ///< consume the PutAck, perm -> I
    SB_SilentEM,    ///< silent E -> M upgrade
    SB_NoMatch,     ///< no leaf transition exists (must fail)
    numSpecBehaviors
};

struct LeafLayout
{
    std::size_t c, rq, fw, rs, ak, sh, ow, rqst, tg;
};

constexpr std::size_t leafBlockVars = 9;

/** Everything the builder's lambdas need to share. */
struct Ctx
{
    VerifFeatures f;
    CompositionMethod method = CompositionMethod::None;
    std::size_t n = 0;
    // shared vars
    std::size_t busy, acks, grantPend, fwdPend, hasData, dirDirty;
    std::size_t dirPerm;
    std::size_t pOut, pIn, pData, relayUp, subInv, evicting, extData;
    // spec vars (composition only)
    std::size_t sc, sfw, srs, sub, lcf, turn, lastMatch;
    std::vector<LeafLayout> L;

    int
    ownerOf(const VState &s) const
    {
        for (std::size_t j = 0; j < n; ++j)
            if (s[L[j].ow])
                return static_cast<int>(j);
        return -1;
    }

    int
    requesterOf(const VState &s) const
    {
        for (std::size_t j = 0; j < n; ++j)
            if (s[L[j].rqst])
                return static_cast<int>(j);
        return -1;
    }
};

/** Spec-leaf guard for a behavior. */
bool
specGuard(const Ctx &cx, SpecBehavior b, const VState &s)
{
    const auto c = s[cx.sc];
    switch (b) {
      case SB_Stutter:
        return true;
      case SB_InInv:
        return s[cx.sfw] == FW_None;
      case SB_InFwdS:
        return s[cx.sfw] == FW_None;
      case SB_InFwdM:
        return s[cx.sfw] == FW_None;
      case SB_InPutAck:
        return s[cx.sfw] == FW_None;
      case SB_InDataS:
        return s[cx.srs] == RS_None && c == C_ISD;
      case SB_InDataE:
        return s[cx.srs] == RS_None && c == C_ISD;
      case SB_InDataM:
        return s[cx.srs] == RS_None &&
               (c == C_IMD || c == C_SMD || c == C_OMD);
      case SB_OutGetS:
        return c == C_I;
      case SB_OutGetM:
        return c == C_I || c == C_S || c == C_O;
      case SB_PopDataS:
        return s[cx.srs] == RS_DataS && c == C_ISD && !s[cx.sub];
      case SB_PopDataE:
        return s[cx.srs] == RS_DataE && c == C_ISD && !s[cx.sub];
      case SB_PopDataM:
        return s[cx.srs] == RS_DataM && !s[cx.sub] &&
               (c == C_IMD || c == C_SMD || c == C_OMD);
      case SB_OutUnblock:
        return s[cx.sub] == 1;
      case SB_OutInvAck:
        return s[cx.sfw] == FW_Inv &&
               (c == C_S || c == C_E || c == C_M || c == C_O ||
                c == C_SMD || c == C_OMD || c == C_SIA ||
                c == C_EIA || c == C_MIA || c == C_OIA);
      case SB_OutDataSExt:
        return s[cx.sfw] == FW_FwdGetS &&
               (c == C_E || c == C_M || c == C_O || c == C_MIA ||
                c == C_EIA || c == C_OIA);
      case SB_OutDataMExt:
        return s[cx.sfw] == FW_FwdGetM &&
               (c == C_E || c == C_M || c == C_O || c == C_MIA ||
                c == C_EIA || c == C_OIA);
      case SB_OutPutS:
        return c == C_S;
      case SB_OutPutE:
        return c == C_E;
      case SB_OutPutM:
        return c == C_M;
      case SB_OutPutO:
        return c == C_O;
      case SB_PopPutAck:
        return s[cx.sfw] == FW_PutAck &&
               (c == C_SIA || c == C_EIA || c == C_MIA ||
                c == C_OIA || c == C_IIA);
      case SB_SilentEM:
        return c == C_E;
      case SB_NoMatch:
        return false;
      default:
        return false;
    }
}

/** Spec-leaf effect for a behavior (guard known to hold). */
void
specEffect(const Ctx &cx, SpecBehavior b, VState &s)
{
    auto &c = s[cx.sc];
    switch (b) {
      case SB_Stutter:
        break;
      case SB_InInv:
        s[cx.sfw] = FW_Inv;
        break;
      case SB_InFwdS:
        s[cx.sfw] = FW_FwdGetS;
        break;
      case SB_InFwdM:
        s[cx.sfw] = FW_FwdGetM;
        break;
      case SB_InPutAck:
        s[cx.sfw] = FW_PutAck;
        break;
      case SB_InDataS:
        s[cx.srs] = RS_DataS;
        break;
      case SB_InDataE:
        s[cx.srs] = RS_DataE;
        break;
      case SB_InDataM:
        s[cx.srs] = RS_DataM;
        break;
      case SB_OutGetS:
        c = C_ISD;
        break;
      case SB_OutGetM:
        c = (c == C_I) ? C_IMD : (c == C_S ? C_SMD : C_OMD);
        break;
      case SB_PopDataS:
        s[cx.srs] = RS_None;
        c = C_S;
        s[cx.sub] = 1;
        break;
      case SB_PopDataE:
        s[cx.srs] = RS_None;
        c = C_E;
        s[cx.sub] = 1;
        break;
      case SB_PopDataM:
        s[cx.srs] = RS_None;
        c = C_M;
        s[cx.sub] = 1;
        break;
      case SB_OutUnblock:
        s[cx.sub] = 0;
        break;
      case SB_OutInvAck:
        s[cx.sfw] = FW_None;
        switch (c) {
          case C_SMD:
          case C_OMD:
            c = C_IMD;
            break;
          case C_SIA:
          case C_EIA:
          case C_MIA:
          case C_OIA:
            c = C_IIA;
            break;
          default:
            c = C_I;
            break;
        }
        break;
      case SB_OutDataSExt:
        s[cx.sfw] = FW_None;
        switch (c) {
          case C_E:
          case C_M:
          case C_O:
            c = cx.f.ownedState ? C_O : C_S;
            break;
          case C_MIA:
            c = C_SIA;
            break;
          case C_EIA:
            if (!cx.f.ownedState)
                c = C_SIA;
            break;
          default:
            break; // OIA stays
        }
        break;
      case SB_OutDataMExt:
        s[cx.sfw] = FW_None;
        switch (c) {
          case C_E:
          case C_M:
          case C_O:
            c = C_I;
            break;
          default:
            c = C_IIA;
            break;
        }
        break;
      case SB_OutPutS:
        c = C_SIA;
        break;
      case SB_OutPutE:
        c = C_EIA;
        break;
      case SB_OutPutM:
        c = C_MIA;
        break;
      case SB_OutPutO:
        c = C_OIA;
        break;
      case SB_PopPutAck:
        s[cx.sfw] = FW_None;
        c = C_I;
        break;
      case SB_SilentEM:
        c = C_M;
        break;
      default:
        break;
    }
}

/**
 * Wraps rule registration with the composition machinery: Modified
 * embeds the matched spec transition; Original alternates turns.
 */
class OpenBuilder
{
  public:
    OpenBuilder(TransitionSystem &ts, Ctx &cx) : ts_(ts), cx_(cx) {}

    void
    add(const std::string &name, ActionKind kind,
        TransitionSystem::Guard guard, TransitionSystem::Effect effect,
        SpecBehavior match)
    {
        const Ctx &cx = cx_;
        switch (cx_.method) {
          case CompositionMethod::None:
            ts_.addRule(name, kind, std::move(guard),
                        std::move(effect));
            break;
          case CompositionMethod::Modified:
            // §4.1.3: the Omega transition body performs the Omega
            // updates, conditionally applies the matched leaf updates,
            // and records L_could_fire.
            ts_.addRule(
                name, kind, std::move(guard),
                [cx, effect = std::move(effect), match](VState &s) {
                    effect(s);
                    const bool could = specGuard(cx, match, s);
                    if (could)
                        specEffect(cx, match, s);
                    s[cx.lcf] = could ? 1 : 0;
                });
            break;
          case CompositionMethod::Original:
            // §4.1.1: strictly alternate Omega / leaf transitions;
            // the spec rules are registered once at finalize().
            ts_.addRule(
                name, kind,
                [cx, guard = std::move(guard)](const VState &s) {
                    return s[cx.turn] == 0 && guard(s);
                },
                [cx, effect = std::move(effect), match](VState &s) {
                    effect(s);
                    s[cx.turn] = 1;
                    s[cx.lastMatch] = match;
                });
            break;
        }
    }

    /** Register the alternating spec rules (Original method only). */
    void
    finalize()
    {
        if (cx_.method != CompositionMethod::Original)
            return;
        const Ctx &cx = cx_;
        for (std::uint8_t b = 0; b < numSpecBehaviors; ++b) {
            const auto behavior = static_cast<SpecBehavior>(b);
            ts_.addRule(
                std::string("spec_") + std::to_string(b),
                ActionKind::Internal,
                [cx, behavior](const VState &s) {
                    return s[cx.turn] == 1 &&
                           s[cx.lastMatch] == behavior &&
                           specGuard(cx, behavior, s);
                },
                [cx, behavior](VState &s) {
                    specEffect(cx, behavior, s);
                    s[cx.turn] = 0;
                });
        }
    }

  private:
    TransitionSystem &ts_;
    Ctx &cx_;
};

} // namespace

TransitionSystem
buildOpenModel(std::size_t n, const VerifFeatures &features,
               CompositionMethod method, ModelShape &shape)
{
    neo_assert(n >= 1 && n <= 8, "open model supports 1..8 leaves");
    TransitionSystem ts;
    Ctx cx;
    cx.f = features;
    cx.method = method;
    cx.n = n;
    const VerifFeatures f = features;

    // ---- shared variables ----
    cx.busy = ts.addVar("busy", DB_Idle);
    cx.acks = ts.addVar("acks", 0);
    cx.grantPend = ts.addVar("grantPend", 0);
    cx.fwdPend = ts.addVar("fwdPend", 0);
    cx.hasData = ts.addVar("hasData", 0);
    cx.dirDirty = ts.addVar("dirDirty", 0);
    cx.dirPerm = ts.addVar("dirPerm",
                           static_cast<std::uint8_t>(Perm::I));
    cx.pOut = ts.addVar("pOut", RQ_None);
    cx.pIn = ts.addVar("pIn", FW_None);
    cx.pData = ts.addVar("pData", RS_None);
    cx.relayUp = ts.addVar("relayUp", 0);
    cx.subInv = ts.addVar("subInv", 0);
    cx.evicting = ts.addVar("evicting", 0);
    cx.extData = ts.addVar("extData", 0);
    if (method != CompositionMethod::None) {
        cx.sc = ts.addVar("spec.c", C_I);
        cx.sfw = ts.addVar("spec.fw", FW_None);
        cx.srs = ts.addVar("spec.rs", RS_None);
        cx.sub = ts.addVar("spec.ub", 0);
        cx.lcf = ts.addVar("L_could_fire", 1);
        if (method == CompositionMethod::Original) {
            cx.turn = ts.addVar("turn", 0);
            cx.lastMatch = ts.addVar("lastMatch", SB_Stutter);
        }
    }

    shape.sharedVars = ts.numVars();
    shape.saturatedSharedVars = {cx.acks};
    shape.numLeaves = n;
    shape.leafBlockSize = leafBlockVars;

    cx.L.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::ostringstream p;
        p << "l" << i << ".";
        cx.L[i].c = ts.addVar(p.str() + "c", C_I);
        cx.L[i].rq = ts.addVar(p.str() + "rq", RQ_None);
        cx.L[i].fw = ts.addVar(p.str() + "fw", FW_None);
        cx.L[i].rs = ts.addVar(p.str() + "rs", RS_None);
        cx.L[i].ak = ts.addVar(p.str() + "ak", AK_None);
        cx.L[i].sh = ts.addVar(p.str() + "sh", 0);
        cx.L[i].ow = ts.addVar(p.str() + "ow", 0);
        cx.L[i].rqst = ts.addVar(p.str() + "rqst", 0);
        cx.L[i].tg = ts.addVar(p.str() + "tg", 0);
    }

    const std::size_t shared_count = shape.sharedVars;
    ts.setCanonicalizer(
        makeLeafSortCanonicalizer(shared_count, n, leafBlockVars),
        makeLeafSortedCheck(shared_count, n, leafBlockVars));

    OpenBuilder B(ts, cx);
    const std::vector<LeafLayout> &L = cx.L;

    // ================= leaf rules (identical to the closed model,
    // all internal to Omega => matched by stuttering) ===============
    for (std::size_t i = 0; i < n; ++i) {
        const LeafLayout &me = L[i];

        B.add("load_" + std::to_string(i), ActionKind::Internal,
              [me](const VState &s) {
                  return s[me.c] == C_I && s[me.rq] == RQ_None;
              },
              [me](VState &s) {
                  s[me.c] = C_ISD;
                  s[me.rq] = RQ_GetS;
              },
              SB_Stutter);

        B.add("store_I_" + std::to_string(i), ActionKind::Internal,
              [me](const VState &s) {
                  return s[me.c] == C_I && s[me.rq] == RQ_None;
              },
              [me](VState &s) {
                  s[me.c] = C_IMD;
                  s[me.rq] = RQ_GetM;
              },
              SB_Stutter);

        B.add("store_S_" + std::to_string(i), ActionKind::Internal,
              [me](const VState &s) {
                  return s[me.c] == C_S && s[me.rq] == RQ_None;
              },
              [me](VState &s) {
                  s[me.c] = C_SMD;
                  s[me.rq] = RQ_GetM;
              },
              SB_Stutter);

        if (f.exclusiveState) {
            B.add("store_E_" + std::to_string(i), ActionKind::Internal,
                  [me](const VState &s) { return s[me.c] == C_E; },
                  [me](VState &s) { s[me.c] = C_M; }, SB_Stutter);
        }
        if (f.ownedState) {
            B.add("store_O_" + std::to_string(i), ActionKind::Internal,
                  [me](const VState &s) {
                      return s[me.c] == C_O && s[me.rq] == RQ_None;
                  },
                  [me](VState &s) {
                      s[me.c] = C_OMD;
                      s[me.rq] = RQ_GetM;
                  },
                  SB_Stutter);
        }

        if (f.inclusiveEvictions) {
            struct EvictCase
            {
                std::uint8_t from, to, put;
                bool enabled;
            };
            const EvictCase cases[] = {
                {C_S, C_SIA, RQ_PutS, true},
                {C_E, C_EIA, RQ_PutE, f.exclusiveState},
                {C_M, C_MIA, RQ_PutM, true},
                {C_O, C_OIA, RQ_PutO, f.ownedState},
            };
            for (const auto &ec : cases) {
                if (!ec.enabled)
                    continue;
                B.add("evict_" +
                          std::string(permName(cacheStPerm(ec.from))) +
                          "_" + std::to_string(i),
                      ActionKind::Internal,
                      [me, ec](const VState &s) {
                          return s[me.c] == ec.from &&
                                 s[me.rq] == RQ_None;
                      },
                      [me, ec](VState &s) {
                          s[me.c] = ec.to;
                          s[me.rq] = ec.put;
                      },
                      SB_Stutter);
            }
        }

        B.add("recv_inv_" + std::to_string(i), ActionKind::Internal,
              [me](const VState &s) {
                  if (s[me.fw] != FW_Inv || s[me.ak] != AK_None)
                      return false;
                  switch (s[me.c]) {
                    case C_S:
                    case C_E:
                    case C_M:
                    case C_O:
                    case C_SMD:
                    case C_OMD:
                    case C_SIA:
                    case C_EIA:
                    case C_MIA:
                    case C_OIA:
                      return true;
                    default:
                      return false;
                  }
              },
              [me](VState &s) {
                  s[me.fw] = FW_None;
                  bool dirty = false;
                  switch (s[me.c]) {
                    case C_M:
                    case C_O:
                      dirty = true;
                      s[me.c] = C_I;
                      break;
                    case C_S:
                    case C_E:
                      s[me.c] = C_I;
                      break;
                    case C_SMD:
                      s[me.c] = C_IMD;
                      break;
                    case C_OMD:
                      dirty = true;
                      s[me.c] = C_IMD;
                      break;
                    case C_MIA:
                    case C_OIA:
                      dirty = true;
                      s[me.c] = C_IIA;
                      break;
                    case C_SIA:
                    case C_EIA:
                      s[me.c] = C_IIA;
                      break;
                    default:
                      break;
                  }
                  s[me.ak] = dirty ? AK_InvAckD : AK_InvAck;
              },
              SB_Stutter);

        // Sibling-to-sibling data forwards (internal).
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const LeafLayout &tgt = L[j];
            B.add("recv_fwdS_" + std::to_string(i) + "_to_" +
                      std::to_string(j),
                  ActionKind::Internal,
                  [me, tgt](const VState &s) {
                      if (s[me.fw] != FW_FwdGetS || !s[tgt.tg] ||
                          s[tgt.rs] != RS_None)
                          return false;
                      switch (s[me.c]) {
                        case C_M:
                        case C_E:
                        case C_O:
                        case C_MIA:
                        case C_EIA:
                        case C_OIA:
                          return true;
                        default:
                          return false;
                      }
                  },
                  [me, tgt, f](VState &s) {
                      s[me.fw] = FW_None;
                      s[tgt.tg] = 0;
                      s[tgt.rs] = RS_DataS;
                      switch (s[me.c]) {
                        case C_M:
                        case C_E:
                          s[me.c] = f.ownedState ? C_O : C_S;
                          break;
                        case C_MIA:
                          s[me.c] = C_SIA;
                          break;
                        case C_EIA:
                          if (!f.ownedState)
                              s[me.c] = C_SIA;
                          break;
                        default:
                          break;
                      }
                  },
                  SB_Stutter);

            B.add("recv_fwdM_" + std::to_string(i) + "_to_" +
                      std::to_string(j),
                  ActionKind::Internal,
                  [me, tgt](const VState &s) {
                      if (s[me.fw] != FW_FwdGetM || !s[tgt.tg] ||
                          s[tgt.rs] != RS_None)
                          return false;
                      switch (s[me.c]) {
                        case C_M:
                        case C_E:
                        case C_O:
                        case C_MIA:
                        case C_EIA:
                        case C_OIA:
                          return true;
                        default:
                          return false;
                      }
                  },
                  [me, tgt](VState &s) {
                      s[me.fw] = FW_None;
                      s[tgt.tg] = 0;
                      s[tgt.rs] = RS_DataM;
                      switch (s[me.c]) {
                        case C_M:
                        case C_E:
                        case C_O:
                          s[me.c] = C_I;
                          break;
                        default:
                          s[me.c] = C_IIA;
                          break;
                      }
                  },
                  SB_Stutter);
        }

        // Owner answers an external demand by sending the data UP to
        // the directory, which relays it outward (Fig. 4 times 5-6).
        B.add("recv_fwdS_up_" + std::to_string(i),
              ActionKind::Internal,
              [me, cx](const VState &s) {
                  if (s[me.fw] != FW_FwdGetS || s[cx.extData])
                      return false;
                  bool any_tg = false;
                  for (std::size_t j = 0; j < cx.n; ++j)
                      if (s[cx.L[j].tg])
                          any_tg = true;
                  if (any_tg)
                      return false; // a sibling fwd, not an up fwd
                  switch (s[me.c]) {
                    case C_M:
                    case C_E:
                    case C_O:
                    case C_MIA:
                    case C_EIA:
                    case C_OIA:
                      return true;
                    default:
                      return false;
                  }
              },
              [me, cx, f](VState &s) {
                  s[me.fw] = FW_None;
                  s[cx.extData] = 1;
                  switch (s[me.c]) {
                    case C_M:
                      s[cx.dirDirty] = 1;
                      s[me.c] = f.ownedState ? C_O : C_S;
                      break;
                    case C_E:
                      s[me.c] = f.ownedState ? C_O : C_S;
                      break;
                    case C_O:
                      break;
                    case C_MIA:
                      s[cx.dirDirty] = 1;
                      s[me.c] = C_SIA;
                      break;
                    case C_EIA:
                      if (!f.ownedState)
                          s[me.c] = C_SIA;
                      break;
                    default:
                      break;
                  }
              },
              SB_Stutter);

        B.add("recv_fwdM_up_" + std::to_string(i),
              ActionKind::Internal,
              [me, cx](const VState &s) {
                  if (s[me.fw] != FW_FwdGetM || s[cx.extData])
                      return false;
                  bool any_tg = false;
                  for (std::size_t j = 0; j < cx.n; ++j)
                      if (s[cx.L[j].tg])
                          any_tg = true;
                  if (any_tg)
                      return false;
                  switch (s[me.c]) {
                    case C_M:
                    case C_E:
                    case C_O:
                    case C_MIA:
                    case C_EIA:
                    case C_OIA:
                      return true;
                    default:
                      return false;
                  }
              },
              [me, cx](VState &s) {
                  s[me.fw] = FW_None;
                  s[cx.extData] = 1;
                  switch (s[me.c]) {
                    case C_M:
                    case C_O:
                      s[cx.dirDirty] = 1;
                      s[me.c] = C_I;
                      break;
                    case C_E:
                      s[me.c] = C_I;
                      break;
                    case C_MIA:
                    case C_OIA:
                      s[cx.dirDirty] = 1;
                      s[me.c] = C_IIA;
                      break;
                    default:
                      s[me.c] = C_IIA;
                      break;
                  }
              },
              SB_Stutter);

        if (f.inclusiveEvictions) {
            B.add("recv_putack_" + std::to_string(i),
                  ActionKind::Internal,
                  [me](const VState &s) {
                      if (s[me.fw] != FW_PutAck)
                          return false;
                      switch (s[me.c]) {
                        case C_SIA:
                        case C_EIA:
                        case C_MIA:
                        case C_OIA:
                        case C_IIA:
                          return true;
                        default:
                          return false;
                      }
                  },
                  [me](VState &s) {
                      s[me.fw] = FW_None;
                      s[me.c] = C_I;
                  },
                  SB_Stutter);
        }

        B.add("recv_dataS_" + std::to_string(i), ActionKind::Internal,
              [me](const VState &s) {
                  return s[me.rs] == RS_DataS && s[me.c] == C_ISD &&
                         s[me.ak] == AK_None;
              },
              [me](VState &s) {
                  s[me.rs] = RS_None;
                  s[me.c] = C_S;
                  s[me.ak] = AK_Unblock;
              },
              SB_Stutter);

        if (f.exclusiveState) {
            B.add("recv_dataE_" + std::to_string(i),
                  ActionKind::Internal,
                  [me](const VState &s) {
                      return s[me.rs] == RS_DataE &&
                             s[me.c] == C_ISD && s[me.ak] == AK_None;
                  },
                  [me](VState &s) {
                      s[me.rs] = RS_None;
                      s[me.c] = C_E;
                      s[me.ak] = AK_Unblock;
                  },
                  SB_Stutter);
        }

        B.add("recv_dataM_" + std::to_string(i), ActionKind::Internal,
              [me](const VState &s) {
                  return s[me.rs] == RS_DataM && s[me.ak] == AK_None &&
                         (s[me.c] == C_IMD || s[me.c] == C_SMD ||
                          s[me.c] == C_OMD);
              },
              [me](VState &s) {
                  s[me.rs] = RS_None;
                  s[me.c] = C_M;
                  s[me.ak] = AK_UnblockD;
              },
              SB_Stutter);
    }

    // ================= directory rules ===============

    auto fwd_channels_free = [L, n = cx.n](const VState &s,
                                           std::size_t except) {
        for (std::size_t j = 0; j < n; ++j) {
            if (j == except)
                continue;
            if ((s[L[j].sh] || s[L[j].ow]) && s[L[j].fw] != FW_None)
                return false;
        }
        return true;
    };

    for (std::size_t i = 0; i < n; ++i) {
        const LeafLayout &me = L[i];

        // --- local read: Permission suffices.
        B.add("d_getS_local_" + std::to_string(i),
              ActionKind::Internal,
              [me, cx](const VState &s) {
                  if (s[cx.busy] != DB_Idle || s[me.rq] != RQ_GetS ||
                      s[me.rs] != RS_None ||
                      s[cx.dirPerm] ==
                          static_cast<std::uint8_t>(Perm::I))
                      return false;
                  const int o = cx.ownerOf(s);
                  if (o >= 0)
                      return s[cx.L[o].fw] == FW_None;
                  return s[cx.hasData] == 1;
              },
              [me, cx, f](VState &s) {
                  s[me.rq] = RQ_None;
                  s[cx.busy] = DB_Read;
                  s[me.rqst] = 1;
                  const int o = cx.ownerOf(s);
                  if (o >= 0) {
                      s[cx.L[o].fw] = FW_FwdGetS;
                      s[me.tg] = 1;
                      s[me.sh] = 1;
                      if (!f.ownedState) {
                          s[cx.L[o].ow] = 0;
                          s[cx.hasData] = 0;
                      }
                  } else {
                      bool sole = true;
                      for (std::size_t j = 0; j < cx.n; ++j)
                          if (s[cx.L[j].sh])
                              sole = false;
                      s[me.sh] = 1;
                      const auto dp = static_cast<Perm>(s[cx.dirPerm]);
                      if (sole && f.exclusiveState &&
                          permRank(dp) >= permRank(Perm::E)) {
                          s[me.rs] = RS_DataE;
                          s[me.ow] = 1;
                      } else {
                          s[me.rs] = RS_DataS;
                      }
                  }
              },
              SB_Stutter);

        // --- read relay: Permission insufficient (output GetS).
        B.add("d_getS_fetch_" + std::to_string(i), ActionKind::Output,
              [me, cx](const VState &s) {
                  return s[cx.busy] == DB_Idle &&
                         s[me.rq] == RQ_GetS &&
                         s[cx.dirPerm] ==
                             static_cast<std::uint8_t>(Perm::I) &&
                         s[cx.pOut] == RQ_None;
              },
              [me, cx](VState &s) {
                  s[me.rq] = RQ_None;
                  s[cx.busy] = DB_FetchR;
                  s[me.rqst] = 1;
                  s[cx.relayUp] = 1;
                  s[cx.pOut] = RQ_GetS;
              },
              SB_OutGetS);

        // --- local write: E/M Permission. Split by the pre-state
        // Permission so the matched leaf transition is static: from E
        // the directory silently upgrades (leaf analog: E -> M); from
        // M the Permission is unchanged (leaf stutters).
        for (const Perm from : {Perm::E, Perm::M}) {
            if (from == Perm::E && !f.exclusiveState)
                continue;
            B.add("d_getM_local_" + std::string(permName(from)) + "_" +
                      std::to_string(i),
                  ActionKind::Internal,
                  [me, cx, fwd_channels_free, from, i](const VState &s) {
                      if (s[cx.busy] != DB_Idle ||
                          s[me.rq] != RQ_GetM || s[me.rs] != RS_None ||
                          s[cx.dirPerm] !=
                              static_cast<std::uint8_t>(from))
                          return false;
                      return fwd_channels_free(s, i);
                  },
                  [me, cx, i](VState &s) {
                      s[me.rq] = RQ_None;
                      s[cx.busy] = DB_Write;
                      s[me.rqst] = 1;
                      const int o = cx.ownerOf(s);
                      for (std::size_t j = 0; j < cx.n; ++j) {
                          if (j == i || static_cast<int>(j) == o)
                              continue;
                          if (s[cx.L[j].sh]) {
                              s[cx.L[j].fw] = FW_Inv;
                              s[cx.L[j].sh] = 0;
                              ++s[cx.acks];
                          }
                      }
                      if (o >= 0 && o != static_cast<int>(i)) {
                          // The owner's Fwd may only go out after the
                          // sharer acks (single-writer safety).
                          s[me.tg] = 1;
                          if (s[cx.acks] == 0) {
                              s[cx.L[o].fw] = FW_FwdGetM;
                              s[cx.L[o].ow] = 0;
                              s[cx.L[o].sh] = 0;
                          } else {
                              s[cx.fwdPend] = 1;
                          }
                      } else {
                          s[cx.grantPend] = 1;
                      }
                      s[me.sh] = 1;
                      s[me.ow] = 1;
                      s[cx.hasData] = 0;
                      // silent E->M at the directory level
                      s[cx.dirPerm] =
                          static_cast<std::uint8_t>(Perm::M);
                  },
                  from == Perm::E ? SB_SilentEM : SB_Stutter);
        }

        // --- write relay: Permission I/S/O (output GetM).
        B.add("d_getM_fetch_" + std::to_string(i), ActionKind::Output,
              [me, cx](const VState &s) {
                  const auto dp = static_cast<Perm>(s[cx.dirPerm]);
                  return s[cx.busy] == DB_Idle &&
                         s[me.rq] == RQ_GetM &&
                         (dp == Perm::I || dp == Perm::S ||
                          dp == Perm::O) &&
                         s[cx.pOut] == RQ_None;
              },
              [me, cx](VState &s) {
                  s[me.rq] = RQ_None;
                  s[cx.busy] = DB_FetchW;
                  s[me.rqst] = 1;
                  s[cx.relayUp] = 1;
                  s[cx.pOut] = RQ_GetM;
              },
              SB_OutGetM);

        // --- completion of local transactions.
        B.add("d_unblock_" + std::to_string(i), ActionKind::Internal,
              [me, cx](const VState &s) {
                  return (s[me.ak] == AK_Unblock ||
                          s[me.ak] == AK_UnblockD) &&
                         s[me.rqst] && s[cx.acks] == 0 &&
                         !s[cx.grantPend] && !s[cx.fwdPend] &&
                         (s[cx.busy] == DB_Read ||
                          s[cx.busy] == DB_Write);
              },
              [me, cx](VState &s) {
                  if (s[me.ak] == AK_UnblockD)
                      s[cx.dirDirty] = 1;
                  s[me.ak] = AK_None;
                  s[me.rqst] = 0;
                  s[cx.busy] = DB_Idle;
                  if (cx.ownerOf(s) < 0)
                      s[cx.hasData] = 1;
              },
              SB_Stutter);

        // --- completion of relayed transactions (output Unblock).
        B.add("d_unblock_up_" + std::to_string(i), ActionKind::Output,
              [me, cx](const VState &s) {
                  return (s[me.ak] == AK_Unblock ||
                          s[me.ak] == AK_UnblockD) &&
                         s[me.rqst] && s[cx.acks] == 0 &&
                         !s[cx.grantPend] && !s[cx.fwdPend] &&
                         s[cx.relayUp] &&
                         (s[cx.busy] == DB_FetchR ||
                          s[cx.busy] == DB_FetchW);
              },
              [me, cx](VState &s) {
                  if (s[me.ak] == AK_UnblockD)
                      s[cx.dirDirty] = 1;
                  s[me.ak] = AK_None;
                  s[me.rqst] = 0;
                  s[cx.relayUp] = 0;
                  s[cx.busy] = DB_Idle;
                  if (cx.ownerOf(s) < 0)
                      s[cx.hasData] = 1;
              },
              SB_OutUnblock);

        B.add("d_invack_" + std::to_string(i), ActionKind::Internal,
              [me, cx](const VState &s) {
                  return (s[me.ak] == AK_InvAck ||
                          s[me.ak] == AK_InvAckD) &&
                         s[cx.acks] > 0;
              },
              [me, cx](VState &s) {
                  if (s[me.ak] == AK_InvAckD) {
                      s[cx.dirDirty] = 1;
                      s[cx.hasData] = 1;
                  }
                  s[me.ak] = AK_None;
                  --s[cx.acks];
              },
              SB_Stutter);

        if (f.inclusiveEvictions) {
            B.add("d_put_" + std::to_string(i), ActionKind::Internal,
                  [me, cx](const VState &s) {
                      return s[cx.busy] == DB_Idle &&
                             (s[me.rq] == RQ_PutS ||
                              s[me.rq] == RQ_PutE ||
                              s[me.rq] == RQ_PutM ||
                              s[me.rq] == RQ_PutO) &&
                             s[me.fw] == FW_None;
                  },
                  [me, cx](VState &s) {
                      const bool owner_put =
                          s[me.ow] && (s[me.rq] == RQ_PutM ||
                                       s[me.rq] == RQ_PutE ||
                                       s[me.rq] == RQ_PutO);
                      if (owner_put) {
                          s[cx.hasData] = 1;
                          if (s[me.rq] == RQ_PutM ||
                              s[me.rq] == RQ_PutO)
                              s[cx.dirDirty] = 1;
                      }
                      s[me.rq] = RQ_None;
                      s[me.sh] = 0;
                      s[me.ow] = 0;
                      s[me.fw] = FW_PutAck;
                  },
                  SB_Stutter);
        }
    }

    // --- deferred owner-forward once the sharer acks are in.
    B.add("d_fwdM_dispatch", ActionKind::Internal,
          [cx](const VState &s) {
              if ((s[cx.busy] != DB_Write &&
                   s[cx.busy] != DB_FetchW) ||
                  s[cx.acks] != 0 || !s[cx.fwdPend])
                  return false;
              for (std::size_t j = 0; j < cx.n; ++j) {
                  if (s[cx.L[j].ow] && !s[cx.L[j].rqst])
                      return s[cx.L[j].fw] == FW_None;
              }
              return false;
          },
          [cx](VState &s) {
              for (std::size_t j = 0; j < cx.n; ++j) {
                  if (s[cx.L[j].ow] && !s[cx.L[j].rqst]) {
                      s[cx.L[j].fw] = FW_FwdGetM;
                      s[cx.L[j].ow] = 0;
                      s[cx.L[j].sh] = 0;
                      break;
                  }
              }
              s[cx.fwdPend] = 0;
          },
          SB_Stutter);

    // --- grant-after-acks for local writes.
    B.add("d_grantM", ActionKind::Internal,
          [cx](const VState &s) {
              if (s[cx.busy] != DB_Write && s[cx.busy] != DB_FetchW)
                  return false;
              if (s[cx.acks] != 0 || !s[cx.grantPend])
                  return false;
              const int r = cx.requesterOf(s);
              return r >= 0 && s[cx.L[r].rs] == RS_None;
          },
          [cx](VState &s) {
              const int r = cx.requesterOf(s);
              s[cx.L[r].rs] = RS_DataM;
              s[cx.grantPend] = 0;
          },
          SB_Stutter);

    // ================= parent environment (input actions) ==========

    // A blocking parent grants only when it is not demanding anything
    // of this subtree (its transactions are serialized per block).
    auto parent_may_grant = [cx](const VState &s) {
        return s[cx.pData] == RS_None && s[cx.pIn] == FW_None &&
               !s[cx.subInv];
    };

    B.add("env_grant_S", ActionKind::Input,
          [cx, parent_may_grant](const VState &s) {
              return s[cx.pOut] == RQ_GetS && parent_may_grant(s);
          },
          [cx](VState &s) {
              s[cx.pOut] = RQ_None;
              s[cx.pData] = RS_DataS;
          },
          SB_InDataS);

    if (f.exclusiveState) {
        B.add("env_grant_E", ActionKind::Input,
              [cx, parent_may_grant](const VState &s) {
                  return s[cx.pOut] == RQ_GetS && parent_may_grant(s);
              },
              [cx](VState &s) {
                  s[cx.pOut] = RQ_None;
                  s[cx.pData] = RS_DataE;
              },
              SB_InDataE);
    }

    B.add("env_grant_M", ActionKind::Input,
          [cx, parent_may_grant](const VState &s) {
              return s[cx.pOut] == RQ_GetM && parent_may_grant(s);
          },
          [cx](VState &s) {
              s[cx.pOut] = RQ_None;
              s[cx.pData] = RS_DataM;
          },
          SB_InDataM);

    // The parent is blocking: it has at most one demand outstanding
    // against this subtree (pIn slot + no demand mid-service), and
    // once it granted our relayed request it is blocked on our
    // Unblock, so no demand can arrive in that window.
    auto parent_may_demand = [cx](const VState &s) {
        if (s[cx.pIn] != FW_None || s[cx.subInv])
            return false;
        if (s[cx.busy] == DB_ExtInv || s[cx.busy] == DB_ExtRead ||
            s[cx.busy] == DB_ExtWrite)
            return false;
        if ((s[cx.busy] == DB_FetchR || s[cx.busy] == DB_FetchW) &&
            s[cx.pOut] == RQ_None) {
            return false; // grant issued; parent awaits our Unblock
        }
        return true;
    };

    // The parent's view of our Permission: live dirPerm normally, the
    // stale pre-Put view while our writeback is in flight.
    auto parent_view = [cx](const VState &s) -> Perm {
        if (s[cx.busy] == DB_EvictWB && s[cx.evicting] > 0)
            return static_cast<Perm>(s[cx.evicting] - 1);
        return static_cast<Perm>(s[cx.dirPerm]);
    };

    B.add("env_inv", ActionKind::Input,
          [cx, parent_may_demand, parent_view](const VState &s) {
              return parent_may_demand(s) &&
                     parent_view(s) != Perm::I;
          },
          [cx](VState &s) { s[cx.pIn] = FW_Inv; }, SB_InInv);

    B.add("env_fwdS", ActionKind::Input,
          [cx, parent_may_demand, parent_view](const VState &s) {
              const Perm dp = parent_view(s);
              return parent_may_demand(s) &&
                     (dp == Perm::E || dp == Perm::M || dp == Perm::O);
          },
          [cx](VState &s) { s[cx.pIn] = FW_FwdGetS; }, SB_InFwdS);

    B.add("env_fwdM", ActionKind::Input,
          [cx, parent_may_demand, parent_view](const VState &s) {
              const Perm dp = parent_view(s);
              return parent_may_demand(s) &&
                     (dp == Perm::E || dp == Perm::M || dp == Perm::O);
          },
          [cx](VState &s) { s[cx.pIn] = FW_FwdGetM; }, SB_InFwdM);

    if (f.inclusiveEvictions) {
        B.add("env_putack", ActionKind::Input,
              [cx](const VState &s) {
                  return (s[cx.pOut] == RQ_PutS ||
                          s[cx.pOut] == RQ_PutE ||
                          s[cx.pOut] == RQ_PutM ||
                          s[cx.pOut] == RQ_PutO) &&
                         s[cx.pIn] == FW_None;
              },
              [cx](VState &s) {
                  s[cx.pOut] = RQ_None;
                  s[cx.pIn] = FW_PutAck;
              },
              SB_InPutAck);
    }

    // ================= parent-facing directory rules ===============

    // --- grant arrives for a relayed read.
    B.add("d_pdata_S", ActionKind::Internal,
          [cx](const VState &s) {
              if (s[cx.busy] != DB_FetchR || s[cx.pData] != RS_DataS)
                  return false;
              const int r = cx.requesterOf(s);
              return r >= 0 && s[cx.L[r].rs] == RS_None;
          },
          [cx](VState &s) {
              s[cx.pData] = RS_None;
              s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::S);
              s[cx.hasData] = 1;
              const int r = cx.requesterOf(s);
              s[cx.L[r].rs] = RS_DataS;
              s[cx.L[r].sh] = 1;
          },
          SB_PopDataS);

    if (f.exclusiveState) {
        B.add("d_pdata_E", ActionKind::Internal,
              [cx](const VState &s) {
                  if (s[cx.busy] != DB_FetchR ||
                      s[cx.pData] != RS_DataE)
                      return false;
                  const int r = cx.requesterOf(s);
                  return r >= 0 && s[cx.L[r].rs] == RS_None;
              },
              [cx](VState &s) {
                  s[cx.pData] = RS_None;
                  s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::E);
                  s[cx.hasData] = 1;
                  const int r = cx.requesterOf(s);
                  s[cx.L[r].rs] = RS_DataE;
                  s[cx.L[r].sh] = 1;
                  s[cx.L[r].ow] = 1;
              },
              SB_PopDataE);
    }

    // --- grant arrives for a relayed write: run the local phase.
    B.add("d_pdata_M", ActionKind::Internal,
          [cx, fwd_channels_free](const VState &s) {
              if (s[cx.busy] != DB_FetchW || s[cx.pData] != RS_DataM)
                  return false;
              const int r = cx.requesterOf(s);
              if (r < 0)
                  return false;
              return fwd_channels_free(s,
                                       static_cast<std::size_t>(r));
          },
          [cx](VState &s) {
              s[cx.pData] = RS_None;
              s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::M);
              const int r = cx.requesterOf(s);
              const int o = cx.ownerOf(s);
              for (std::size_t j = 0; j < cx.n; ++j) {
                  if (static_cast<int>(j) == r ||
                      static_cast<int>(j) == o)
                      continue;
                  if (s[cx.L[j].sh]) {
                      s[cx.L[j].fw] = FW_Inv;
                      s[cx.L[j].sh] = 0;
                      ++s[cx.acks];
                  }
              }
              if (o >= 0 && o != r) {
                  s[cx.L[r].tg] = 1;
                  if (s[cx.acks] == 0) {
                      s[cx.L[o].fw] = FW_FwdGetM;
                      s[cx.L[o].ow] = 0;
                      s[cx.L[o].sh] = 0;
                  } else {
                      s[cx.fwdPend] = 1;
                  }
              } else {
                  s[cx.grantPend] = 1;
              }
              s[cx.L[r].sh] = 1;
              s[cx.L[r].ow] = 1;
              s[cx.hasData] = 0;
          },
          SB_PopDataM);

    // --- parent Inv while idle: recursive invalidation.
    B.add("d_inv_idle", ActionKind::Internal,
          [cx, fwd_channels_free](const VState &s) {
              return s[cx.busy] == DB_Idle && s[cx.pIn] == FW_Inv &&
                     fwd_channels_free(s, cx.n);
          },
          [cx](VState &s) {
              s[cx.pIn] = FW_None;
              s[cx.busy] = DB_ExtInv;
              for (std::size_t j = 0; j < cx.n; ++j) {
                  if (s[cx.L[j].sh] || s[cx.L[j].ow]) {
                      s[cx.L[j].fw] = FW_Inv;
                      s[cx.L[j].sh] = 0;
                      s[cx.L[j].ow] = 0;
                      ++s[cx.acks];
                  }
              }
          },
          SB_Stutter);

    // --- InvAck up once the subtree is clean (output InvAck).
    B.add("d_extinv_done", ActionKind::Output,
          [cx](const VState &s) {
              return s[cx.busy] == DB_ExtInv && s[cx.acks] == 0;
          },
          [cx](VState &s) {
              s[cx.busy] = DB_Idle;
              s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::I);
              s[cx.hasData] = 0;
              s[cx.dirDirty] = 0;
          },
          SB_OutInvAck);

    // --- parent Inv during a fetch: must not wait (deadlock).
    B.add("d_inv_during_fetch", ActionKind::Internal,
          [cx, fwd_channels_free](const VState &s) {
              return (s[cx.busy] == DB_FetchR ||
                      s[cx.busy] == DB_FetchW) &&
                     s[cx.pIn] == FW_Inv && !s[cx.subInv] &&
                     s[cx.acks] == 0 && fwd_channels_free(s, cx.n);
          },
          [cx](VState &s) {
              s[cx.pIn] = FW_None;
              s[cx.subInv] = 1;
              for (std::size_t j = 0; j < cx.n; ++j) {
                  if (s[cx.L[j].sh] || s[cx.L[j].ow]) {
                      s[cx.L[j].fw] = FW_Inv;
                      s[cx.L[j].sh] = 0;
                      s[cx.L[j].ow] = 0;
                      ++s[cx.acks];
                  }
              }
          },
          SB_Stutter);

    B.add("d_subinv_done", ActionKind::Output,
          [cx](const VState &s) {
              return s[cx.subInv] == 1 && s[cx.acks] == 0;
          },
          [cx](VState &s) {
              s[cx.subInv] = 0;
              s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::I);
              s[cx.hasData] = 0;
              s[cx.dirDirty] = 0;
          },
          SB_OutInvAck);

    // --- parent Fwd_GetS: gather the data, then reply externally.
    B.add("d_fwdS_start", ActionKind::Internal,
          [cx](const VState &s) {
              const auto dp = static_cast<Perm>(s[cx.dirPerm]);
              if (s[cx.busy] != DB_Idle || s[cx.pIn] != FW_FwdGetS ||
                  !(dp == Perm::E || dp == Perm::M || dp == Perm::O))
                  return false;
              const int o = cx.ownerOf(s);
              if (o >= 0)
                  return s[cx.L[o].fw] == FW_None;
              return s[cx.hasData] == 1;
          },
          [cx](VState &s) {
              s[cx.pIn] = FW_None;
              s[cx.busy] = DB_ExtRead;
              const int o = cx.ownerOf(s);
              if (o >= 0) {
                  s[cx.L[o].fw] = FW_FwdGetS; // answered via _up rule
                  if (!cx.f.ownedState)
                      s[cx.L[o].ow] = 0;
              } else {
                  s[cx.extData] = 1;
              }
          },
          SB_Stutter);

    B.add("d_extread_done", ActionKind::Output,
          [cx](const VState &s) {
              return s[cx.busy] == DB_ExtRead && s[cx.extData] == 1;
          },
          [cx, f](VState &s) {
              s[cx.busy] = DB_Idle;
              s[cx.extData] = 0;
              s[cx.hasData] = 1;
              if (f.ownedState) {
                  s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::O);
              } else {
                  s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::S);
                  s[cx.dirDirty] = 0; // dirtiness passed across
              }
          },
          f.nonSiblingFwd ? SB_NoMatch : SB_OutDataSExt);

    // --- parent Fwd_GetM: invalidate, gather, reply externally.
    B.add("d_fwdM_start", ActionKind::Internal,
          [cx, fwd_channels_free](const VState &s) {
              const auto dp = static_cast<Perm>(s[cx.dirPerm]);
              if (s[cx.busy] != DB_Idle || s[cx.pIn] != FW_FwdGetM ||
                  !(dp == Perm::E || dp == Perm::M || dp == Perm::O))
                  return false;
              const int o = cx.ownerOf(s);
              if (o < 0 && s[cx.hasData] != 1)
                  return false;
              return fwd_channels_free(s, cx.n);
          },
          [cx](VState &s) {
              s[cx.pIn] = FW_None;
              s[cx.busy] = DB_ExtWrite;
              const int o = cx.ownerOf(s);
              for (std::size_t j = 0; j < cx.n; ++j) {
                  if (static_cast<int>(j) == o)
                      continue;
                  if (s[cx.L[j].sh]) {
                      s[cx.L[j].fw] = FW_Inv;
                      s[cx.L[j].sh] = 0;
                      ++s[cx.acks];
                  }
              }
              if (o >= 0) {
                  s[cx.L[o].fw] = FW_FwdGetM;
                  s[cx.L[o].ow] = 0;
                  s[cx.L[o].sh] = 0;
              } else {
                  s[cx.extData] = 1;
              }
          },
          SB_Stutter);

    B.add("d_extwrite_done", ActionKind::Output,
          [cx](const VState &s) {
              return s[cx.busy] == DB_ExtWrite && s[cx.acks] == 0 &&
                     s[cx.extData] == 1;
          },
          [cx](VState &s) {
              s[cx.busy] = DB_Idle;
              s[cx.extData] = 0;
              s[cx.dirPerm] = static_cast<std::uint8_t>(Perm::I);
              s[cx.hasData] = 0;
              s[cx.dirDirty] = 0;
          },
          f.nonSiblingFwd ? SB_NoMatch : SB_OutDataMExt);

    // --- directory eviction (inclusive): recall, write back, drop.
    if (f.inclusiveEvictions) {
        B.add("d_evict_recall", ActionKind::Internal,
              [cx, fwd_channels_free](const VState &s) {
                  return s[cx.busy] == DB_Idle &&
                         s[cx.dirPerm] !=
                             static_cast<std::uint8_t>(Perm::I) &&
                         s[cx.pOut] == RQ_None && s[cx.pIn] == FW_None &&
                         fwd_channels_free(s, cx.n);
              },
              [cx](VState &s) {
                  s[cx.busy] = DB_Recall;
                  s[cx.evicting] = 1;
                  for (std::size_t j = 0; j < cx.n; ++j) {
                      if (s[cx.L[j].sh] || s[cx.L[j].ow]) {
                          s[cx.L[j].fw] = FW_Inv;
                          s[cx.L[j].sh] = 0;
                          s[cx.L[j].ow] = 0;
                          ++s[cx.acks];
                      }
                  }
              },
              SB_Stutter);

        struct PutCase
        {
            Perm perm;
            std::uint8_t put;
            SpecBehavior match;
            bool enabled;
        };
        const PutCase put_cases[] = {
            {Perm::S, RQ_PutS, SB_OutPutS, true},
            {Perm::E, RQ_PutE, SB_OutPutE, f.exclusiveState},
            {Perm::M, RQ_PutM, SB_OutPutM, true},
            {Perm::O, RQ_PutO, SB_OutPutO, f.ownedState},
        };
        for (const auto &pc : put_cases) {
            if (!pc.enabled)
                continue;
            B.add(std::string("d_evict_put") + permName(pc.perm),
                  ActionKind::Output,
                  [cx, pc](const VState &s) {
                      return s[cx.busy] == DB_Recall &&
                             s[cx.evicting] == 1 && s[cx.acks] == 0 &&
                             s[cx.dirPerm] ==
                                 static_cast<std::uint8_t>(pc.perm) &&
                             s[cx.pOut] == RQ_None;
                  },
                  [cx, pc](VState &s) {
                      s[cx.busy] = DB_EvictWB;
                      s[cx.pOut] = pc.put;
                      // Permission is relinquished when the Put leaves
                      // (matching the leaf's S -> SI_A etc.); the
                      // parent's stale view is kept for env gating.
                      s[cx.evicting] =
                          1 + static_cast<std::uint8_t>(pc.perm);
                      s[cx.dirPerm] =
                          static_cast<std::uint8_t>(Perm::I);
                  },
                  pc.match);
        }

        B.add("d_evict_ack", ActionKind::Internal,
              [cx](const VState &s) {
                  return s[cx.busy] == DB_EvictWB &&
                         s[cx.pIn] == FW_PutAck;
              },
              [cx](VState &s) {
                  s[cx.pIn] = FW_None;
                  s[cx.busy] = DB_Idle;
                  s[cx.evicting] = 0;
                  s[cx.hasData] = 0;
                  s[cx.dirDirty] = 0;
              },
              SB_PopPutAck);

        // Races against the in-flight writeback (the EvictWB cases);
        // `evicting` carries the parent's stale view of our
        // Permission (1 + the perm the Put relinquished).
        B.add("d_evictwb_inv", ActionKind::Output,
              [cx](const VState &s) {
                  return s[cx.busy] == DB_EvictWB &&
                         s[cx.pIn] == FW_Inv;
              },
              [cx](VState &s) {
                  s[cx.pIn] = FW_None;
                  s[cx.evicting] =
                      1 + static_cast<std::uint8_t>(Perm::I);
                  s[cx.dirDirty] = 0;
              },
              SB_OutInvAck);

        B.add("d_evictwb_fwdS", ActionKind::Output,
              [cx](const VState &s) {
                  return s[cx.busy] == DB_EvictWB &&
                         s[cx.pIn] == FW_FwdGetS;
              },
              [cx](VState &s) {
                  s[cx.pIn] = FW_None;
                  s[cx.evicting] =
                      1 + static_cast<std::uint8_t>(Perm::S);
              },
              f.nonSiblingFwd ? SB_NoMatch : SB_OutDataSExt);

        B.add("d_evictwb_fwdM", ActionKind::Output,
              [cx](const VState &s) {
                  return s[cx.busy] == DB_EvictWB &&
                         s[cx.pIn] == FW_FwdGetM;
              },
              [cx](VState &s) {
                  s[cx.pIn] = FW_None;
                  s[cx.evicting] =
                      1 + static_cast<std::uint8_t>(Perm::I);
              },
              f.nonSiblingFwd ? SB_NoMatch : SB_OutDataMExt);
    }

    B.finalize();

    // ================= invariants ===============

    // Neo safety (§2.4): the subtree summary must never be bad — the
    // permission principle plus pairwise compatibility.
    ts.addInvariant("NeoSafety_sum", [cx](const VState &s) {
        std::vector<Perm> sums;
        sums.reserve(cx.n);
        for (std::size_t i = 0; i < cx.n; ++i)
            sums.push_back(cacheStPerm(s[cx.L[i].c]));
        return composeSum(static_cast<Perm>(s[cx.dirPerm]), sums) !=
               Perm::Bad;
    });

    if (method == CompositionMethod::Modified) {
        // §4.1.3 expression (3): L_could_fire, plus the permission
        // equality from expression (1).
        ts.addInvariant("SafeComposition_LcouldFire",
                        [cx](const VState &s) {
                            return s[cx.lcf] == 1;
                        });
        ts.addInvariant("SafeComposition_permMatch",
                        [cx](const VState &s) {
                            return cacheStPerm(s[cx.sc]) ==
                                   static_cast<Perm>(s[cx.dirPerm]);
                        });
    } else if (method == CompositionMethod::Original) {
        // §4.1.1 expression (2): after each Omega transition, the
        // disjunction of every leaf guard must hold.
        ts.addInvariant(
            "SafeComposition_guardDisjunction",
            [cx](const VState &s) {
                if (s[cx.turn] != 1)
                    return true;
                for (std::uint8_t b = 0; b < numSpecBehaviors; ++b) {
                    if (b == SB_NoMatch)
                        continue;
                    if (s[cx.lastMatch] == b &&
                        specGuard(cx, static_cast<SpecBehavior>(b), s))
                        return true;
                }
                return false;
            });
        ts.addInvariant("SafeComposition_permMatch",
                        [cx](const VState &s) {
                            if (s[cx.turn] != 0)
                                return true;
                            return cacheStPerm(s[cx.sc]) ==
                                   static_cast<Perm>(s[cx.dirPerm]);
                        });
    }

    ts.setSummarizer([cx](const VState &s) {
        return static_cast<Perm>(s[cx.dirPerm]);
    });

    return ts;
}

ModelFactory
openModelFactory(const VerifFeatures &features, CompositionMethod method)
{
    return [features, method](std::size_t n, ModelShape &shape) {
        return buildOpenModel(n, features, method, shape);
    };
}

} // namespace neo::verif
