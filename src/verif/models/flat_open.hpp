/**
 * @file
 * The flat Open Neo System model and the Safe Composition Invariant.
 *
 * An Open Neo System is an internal directory composed with N leaves;
 * unlike the closed system it has an environment: a parent that can
 * grant, invalidate and forward (input actions) and that receives the
 * directory's relays, acks and data (output actions). The directory
 * carries the Neo `Permission` variable of §2.4/§3.2.
 *
 * Antecedent 2 of §2.5 requires proving that this system IMPLEMENTS a
 * leaf: every execution summarizes like some leaf execution. Both of
 * the paper's verification methodologies are implemented:
 *
 *  - CompositionMethod::Original (§4.1.1): the model checker strictly
 *    alternates between an Ω transition and a spec-leaf transition; a
 *    `lastMatch` variable carries the statically matched leaf rule;
 *    invariant (2) is the full disjunction of every leaf guard. This
 *    is the formulation that exhausted >200 GB on the MSI baseline.
 *
 *  - CompositionMethod::Modified (§4.1.3): the matched leaf
 *    transition is embedded in the body of each Ω rule; a single
 *    L_could_fire bit replaces the disjunction. This is the
 *    methodology that made NeoMESI verifiable.
 *
 * Under VerifFeatures::nonSiblingFwd the directory's external data
 * reply goes to a non-sibling — an output action no leaf possesses —
 * so the composition check must FAIL (§4.2.1), which the bench
 * demonstrates mechanically.
 */

#ifndef NEO_VERIF_MODELS_FLAT_OPEN_HPP
#define NEO_VERIF_MODELS_FLAT_OPEN_HPP

#include "verif/models/verif_features.hpp"
#include "verif/parametric.hpp"
#include "verif/transition_system.hpp"

namespace neo::verif
{

enum class CompositionMethod
{
    None,     ///< check Neo safety only (Antecedent 1)
    Original, ///< alternating product, guard-disjunction invariant
    Modified, ///< embedded leaf, L_could_fire invariant
};

const char *compositionMethodName(CompositionMethod m);

TransitionSystem buildOpenModel(std::size_t n,
                                const VerifFeatures &features,
                                CompositionMethod method,
                                ModelShape &shape);

/** ModelFactory adapter for verifyParametric. */
ModelFactory openModelFactory(const VerifFeatures &features,
                              CompositionMethod method);

} // namespace neo::verif

#endif // NEO_VERIF_MODELS_FLAT_OPEN_HPP
