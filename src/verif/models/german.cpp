#include "german.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace neo::verif
{

namespace
{

// Client cache states.
enum GermanSt : std::uint8_t { G_I = 0, G_S, G_E };

// Channel-1 (request) contents.
enum GermanReq : std::uint8_t { GR_None = 0, GR_ReqS, GR_ReqE };

// Channel-2 (grant/invalidate) contents.
enum GermanGnt : std::uint8_t
{
    GG_None = 0,
    GG_GntS,
    GG_GntE,
    GG_Inv
};

// Channel-3 (invalidate-ack) contents.
enum GermanAck : std::uint8_t { GA_None = 0, GA_InvAck };

constexpr std::size_t leafBlockVars = 7;

} // namespace

TransitionSystem
buildGermanModel(std::size_t n, ModelShape &shape)
{
    neo_assert(n >= 1 && n <= 12, "german model supports 1..12 clients");
    TransitionSystem ts;

    // Home (directory) state.
    const auto exGntd = ts.addVar("exGntd", 0); // exclusive granted
    const auto curCmd = ts.addVar("curCmd", GR_None);
    const auto curPtrValid = ts.addVar("curPtrValid", 0);

    shape.sharedVars = ts.numVars();
    shape.numLeaves = n;
    shape.leafBlockSize = leafBlockVars;

    struct LV
    {
        std::size_t st, ch1, ch2, ch3, shrSet, invSet, curPtr;
    };
    std::vector<LV> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::string p = "c" + std::to_string(i) + ".";
        L[i].st = ts.addVar(p + "st", G_I);
        L[i].ch1 = ts.addVar(p + "ch1", GR_None);
        L[i].ch2 = ts.addVar(p + "ch2", GG_None);
        L[i].ch3 = ts.addVar(p + "ch3", GA_None);
        L[i].shrSet = ts.addVar(p + "shr", 0);
        L[i].invSet = ts.addVar(p + "inv", 0);
        // curPtr folded into the leaf block for symmetry.
        L[i].curPtr = ts.addVar(p + "cur", 0);
    }

    const std::size_t shared_count = shape.sharedVars;
    ts.setCanonicalizer([shared_count, n](VState &s) {
        std::vector<std::array<std::uint8_t, leafBlockVars>> b(n);
        for (std::size_t i = 0; i < n; ++i) {
            std::copy_n(s.begin() + shared_count + i * leafBlockVars,
                        leafBlockVars, b[i].begin());
        }
        std::sort(b.begin(), b.end());
        for (std::size_t i = 0; i < n; ++i) {
            std::copy_n(b[i].begin(), leafBlockVars,
                        s.begin() + shared_count + i * leafBlockVars);
        }
    });

    for (std::size_t i = 0; i < n; ++i) {
        const LV me = L[i];

        // Client requests.
        ts.addRule(
            "sendReqS_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.st] == G_I && s[me.ch1] == GR_None;
            },
            [me](VState &s) { s[me.ch1] = GR_ReqS; });
        ts.addRule(
            "sendReqE_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return (s[me.st] == G_I || s[me.st] == G_S) &&
                       s[me.ch1] == GR_None;
            },
            [me](VState &s) { s[me.ch1] = GR_ReqE; });

        // Home picks a request when idle.
        ts.addRule(
            "recvReq_" + std::to_string(i), ActionKind::Internal,
            [me, curCmd](const VState &s) {
                return s[curCmd] == GR_None && s[me.ch1] != GR_None;
            },
            [me, curCmd, curPtrValid, L, n](VState &s) {
                s[curCmd] = s[me.ch1];
                s[me.ch1] = GR_None;
                for (std::size_t j = 0; j < n; ++j) {
                    s[L[j].curPtr] = 0;
                    // Snapshot the sharer set: only these clients are
                    // invalidated for THIS command (real German's
                    // InvSet; without it stale acks poison Exgntd).
                    s[L[j].invSet] = s[L[j].shrSet];
                }
                s[me.curPtr] = 1;
                s[curPtrValid] = 1;
            });

        // Home sends invalidates to sharers when needed.
        ts.addRule(
            "sendInv_" + std::to_string(i), ActionKind::Internal,
            [me, curCmd, exGntd](const VState &s) {
                if (s[me.ch2] != GG_None || !s[me.invSet])
                    return false;
                return s[curCmd] == GR_ReqE ||
                       (s[curCmd] == GR_ReqS && s[exGntd] == 1);
            },
            [me](VState &s) {
                s[me.ch2] = GG_Inv;
                s[me.invSet] = 0;
            });

        // Client acknowledges the invalidate.
        ts.addRule(
            "recvInv_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) {
                return s[me.ch2] == GG_Inv && s[me.ch3] == GA_None;
            },
            [me](VState &s) {
                s[me.ch2] = GG_None;
                s[me.st] = G_I;
                s[me.ch3] = GA_InvAck;
            });

        // Home collects the ack.
        ts.addRule(
            "recvInvAck_" + std::to_string(i), ActionKind::Internal,
            [me, curCmd](const VState &s) {
                return s[me.ch3] == GA_InvAck && s[curCmd] != GR_None;
            },
            [me, exGntd](VState &s) {
                s[me.ch3] = GA_None;
                s[me.shrSet] = 0;
                s[exGntd] = 0;
            });

        // Home grants.
        ts.addRule(
            "sendGntS_" + std::to_string(i), ActionKind::Internal,
            [me, curCmd, exGntd](const VState &s) {
                return s[curCmd] == GR_ReqS && s[me.curPtr] &&
                       s[exGntd] == 0 && s[me.ch2] == GG_None;
            },
            [me, curCmd, curPtrValid](VState &s) {
                s[me.ch2] = GG_GntS;
                s[me.shrSet] = 1;
                s[curCmd] = GR_None;
                s[curPtrValid] = 0;
            });
        ts.addRule(
            "sendGntE_" + std::to_string(i), ActionKind::Internal,
            [me, curCmd, exGntd, L, n](const VState &s) {
                if (s[curCmd] != GR_ReqE || !s[me.curPtr] ||
                    s[exGntd] != 0 || s[me.ch2] != GG_None)
                    return false;
                for (std::size_t j = 0; j < n; ++j)
                    if (s[L[j].shrSet])
                        return false;
                return true;
            },
            [me, curCmd, curPtrValid, exGntd](VState &s) {
                s[me.ch2] = GG_GntE;
                s[me.shrSet] = 1;
                s[exGntd] = 1;
                s[curCmd] = GR_None;
                s[curPtrValid] = 0;
            });

        // Client receives grants.
        ts.addRule(
            "recvGntS_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) { return s[me.ch2] == GG_GntS; },
            [me](VState &s) {
                s[me.ch2] = GG_None;
                s[me.st] = G_S;
            });
        ts.addRule(
            "recvGntE_" + std::to_string(i), ActionKind::Internal,
            [me](const VState &s) { return s[me.ch2] == GG_GntE; },
            [me](VState &s) {
                s[me.ch2] = GG_None;
                s[me.st] = G_E;
            });
    }

    // The canonical German control property.
    ts.addInvariant("CtrlProp", [L, n](const VState &s) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                if (s[L[i].st] == G_E && s[L[j].st] != G_I)
                    return false;
            }
        }
        return true;
    });

    ts.setSummarizer([L, n](const VState &s) {
        std::vector<Perm> sums;
        for (std::size_t i = 0; i < n; ++i) {
            sums.push_back(s[L[i].st] == G_E
                               ? Perm::E
                               : (s[L[i].st] == G_S ? Perm::S
                                                    : Perm::I));
        }
        return composeSum(Perm::M, sums);
    });

    return ts;
}

ModelFactory
germanModelFactory()
{
    return [](std::size_t n, ModelShape &shape) {
        return buildGermanModel(n, shape);
    };
}

} // namespace neo::verif
