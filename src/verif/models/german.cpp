#include "german.hpp"

#include <string>

#include "leaf_canon.hpp"

namespace neo::verif
{

namespace
{

// Client cache states.
enum GermanSt : std::uint8_t { G_I = 0, G_S, G_E };

// Channel-1 (request) contents.
enum GermanReq : std::uint8_t { GR_None = 0, GR_ReqS, GR_ReqE };

// Channel-2 (grant/invalidate) contents.
enum GermanGnt : std::uint8_t
{
    GG_None = 0,
    GG_GntS,
    GG_GntE,
    GG_Inv
};

// Channel-3 (invalidate-ack) contents.
enum GermanAck : std::uint8_t { GA_None = 0, GA_InvAck };

constexpr std::size_t leafBlockVars = 7;

} // namespace

TransitionSystem
buildGermanModel(std::size_t n, ModelShape &shape)
{
    neo_assert(n >= 1 && n <= 12, "german model supports 1..12 clients");
    TransitionSystem ts;

    // Home (directory) state.
    const auto exGntd = ts.addVar("exGntd", 0); // exclusive granted
    const auto curCmd = ts.addVar("curCmd", GR_None);
    const auto curPtrValid = ts.addVar("curPtrValid", 0);

    shape.sharedVars = ts.numVars();
    shape.numLeaves = n;
    shape.leafBlockSize = leafBlockVars;

    struct LV
    {
        std::size_t st, ch1, ch2, ch3, shrSet, invSet, curPtr;
    };
    std::vector<LV> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::string p = "c" + std::to_string(i) + ".";
        L[i].st = ts.addVar(p + "st", G_I);
        L[i].ch1 = ts.addVar(p + "ch1", GR_None);
        L[i].ch2 = ts.addVar(p + "ch2", GG_None);
        L[i].ch3 = ts.addVar(p + "ch3", GA_None);
        L[i].shrSet = ts.addVar(p + "shr", 0);
        L[i].invSet = ts.addVar(p + "inv", 0);
        // curPtr folded into the leaf block for symmetry.
        L[i].curPtr = ts.addVar(p + "cur", 0);
    }

    const std::size_t shared_count = shape.sharedVars;
    ts.setCanonicalizer(
        makeLeafSortCanonicalizer(shared_count, n, leafBlockVars),
        makeLeafSortedCheck(shared_count, n, leafBlockVars));

    // Rules are declared in flat term form (transition_system.hpp)
    // wherever the condition is a pure conjunction and the effect a
    // plain assignment sequence, so the engines' CompiledRules tables
    // fire them without std::function dispatch. Only sendInv keeps a
    // lambda guard: its condition is a genuine disjunction.
    using GOp = GuardTerm::Op;
    auto v16 = [](std::size_t x) {
        return static_cast<std::uint16_t>(x);
    };
    auto geq = [&](std::size_t var, std::uint8_t imm) {
        return GuardTerm{v16(var), GOp::Eq, imm};
    };
    auto gne = [&](std::size_t var, std::uint8_t imm) {
        return GuardTerm{v16(var), GOp::Ne, imm};
    };
    auto gle = [&](std::size_t var, std::uint8_t imm) {
        return GuardTerm{v16(var), GOp::Le, imm};
    };
    auto eset = [&](std::size_t dst, std::uint8_t imm) {
        return EffectTerm{v16(dst), EffectTerm::Op::Set, 0, imm};
    };
    auto ecopy = [&](std::size_t dst, std::size_t src) {
        return EffectTerm{v16(dst), EffectTerm::Op::CopyVar, v16(src),
                          0};
    };

    for (std::size_t i = 0; i < n; ++i) {
        const LV me = L[i];

        // Client requests. I-or-S collapses to st <= G_S (the enum is
        // ordered I < S < E), so sendReqE stays flat too.
        ts.addRule("sendReqS_" + std::to_string(i),
                   ActionKind::Internal,
                   {geq(me.st, G_I), geq(me.ch1, GR_None)},
                   {eset(me.ch1, GR_ReqS)});
        ts.addRule("sendReqE_" + std::to_string(i),
                   ActionKind::Internal,
                   {gle(me.st, G_S), geq(me.ch1, GR_None)},
                   {eset(me.ch1, GR_ReqE)});

        // Home picks a request when idle. The effect sequence mirrors
        // the statement order the lambda form had: latch the command
        // BEFORE clearing the channel (CopyVar reads the current,
        // partially updated state), clear every curPtr and snapshot
        // the sharer set into the invalidate set — only those clients
        // are invalidated for THIS command (real German's InvSet;
        // without it stale acks poison Exgntd) — then point at me.
        {
            std::vector<EffectTerm> eff;
            eff.push_back(ecopy(curCmd, me.ch1));
            eff.push_back(eset(me.ch1, GR_None));
            for (std::size_t j = 0; j < n; ++j) {
                eff.push_back(eset(L[j].curPtr, 0));
                eff.push_back(ecopy(L[j].invSet, L[j].shrSet));
            }
            eff.push_back(eset(me.curPtr, 1));
            eff.push_back(eset(curPtrValid, 1));
            ts.addRule("recvReq_" + std::to_string(i),
                       ActionKind::Internal,
                       {geq(curCmd, GR_None), gne(me.ch1, GR_None)},
                       std::move(eff));
        }

        // Home sends invalidates to sharers when needed. The guard is
        // a disjunction, so it stays a lambda; the effect is flat.
        ts.addRule(
            "sendInv_" + std::to_string(i), ActionKind::Internal,
            TransitionSystem::Guard(
                [me, curCmd, exGntd](const VState &s) {
                    if (s[me.ch2] != GG_None || !s[me.invSet])
                        return false;
                    return s[curCmd] == GR_ReqE ||
                           (s[curCmd] == GR_ReqS && s[exGntd] == 1);
                }),
            {eset(me.ch2, GG_Inv), eset(me.invSet, 0)});
        // The lambda guard reads exactly these four variables; the
        // declaration keeps sendInv out of the dependency index's
        // conservative everything-set (overrideGuard clears it, so
        // mutants that rewrite sendInv stay conservative).
        ts.declareGuardReads("sendInv_" + std::to_string(i),
                             {v16(me.ch2), v16(me.invSet),
                              v16(curCmd), v16(exGntd)});

        // Client acknowledges the invalidate.
        ts.addRule("recvInv_" + std::to_string(i),
                   ActionKind::Internal,
                   {geq(me.ch2, GG_Inv), geq(me.ch3, GA_None)},
                   {eset(me.ch2, GG_None), eset(me.st, G_I),
                    eset(me.ch3, GA_InvAck)});

        // Home collects the ack.
        ts.addRule("recvInvAck_" + std::to_string(i),
                   ActionKind::Internal,
                   {geq(me.ch3, GA_InvAck), gne(curCmd, GR_None)},
                   {eset(me.ch3, GA_None), eset(me.shrSet, 0),
                    eset(exGntd, 0)});

        // Home grants. sendGntE's "no sharers anywhere" quantifier
        // unrolls into one Eq-zero term per leaf (n is fixed at build
        // time), keeping the guard flat.
        ts.addRule("sendGntS_" + std::to_string(i),
                   ActionKind::Internal,
                   {geq(curCmd, GR_ReqS), gne(me.curPtr, 0),
                    geq(exGntd, 0), geq(me.ch2, GG_None)},
                   {eset(me.ch2, GG_GntS), eset(me.shrSet, 1),
                    eset(curCmd, GR_None), eset(curPtrValid, 0)});
        {
            std::vector<GuardTerm> g{
                geq(curCmd, GR_ReqE), gne(me.curPtr, 0),
                geq(exGntd, 0), geq(me.ch2, GG_None)};
            for (std::size_t j = 0; j < n; ++j)
                g.push_back(geq(L[j].shrSet, 0));
            ts.addRule("sendGntE_" + std::to_string(i),
                       ActionKind::Internal, std::move(g),
                       {eset(me.ch2, GG_GntE), eset(me.shrSet, 1),
                        eset(exGntd, 1), eset(curCmd, GR_None),
                        eset(curPtrValid, 0)});
        }

        // Client receives grants.
        ts.addRule("recvGntS_" + std::to_string(i),
                   ActionKind::Internal, {geq(me.ch2, GG_GntS)},
                   {eset(me.ch2, GG_None), eset(me.st, G_S)});
        ts.addRule("recvGntE_" + std::to_string(i),
                   ActionKind::Internal, {geq(me.ch2, GG_GntE)},
                   {eset(me.ch2, GG_None), eset(me.st, G_E)});
    }

    // The canonical German control property. The declared read-set
    // (every client's st — nothing else) lets the dependency index
    // skip re-checking it after firings that only touch channels or
    // directory bookkeeping.
    {
        std::vector<std::uint16_t> stVars;
        for (std::size_t i = 0; i < n; ++i)
            stVars.push_back(v16(L[i].st));
        ts.addInvariant(
            "CtrlProp",
            [L, n](const VState &s) {
                for (std::size_t i = 0; i < n; ++i) {
                    for (std::size_t j = 0; j < n; ++j) {
                        if (i == j)
                            continue;
                        if (s[L[i].st] == G_E && s[L[j].st] != G_I)
                            return false;
                    }
                }
                return true;
            },
            std::move(stVars));
    }

    ts.setSummarizer([L, n](const VState &s) {
        std::vector<Perm> sums;
        for (std::size_t i = 0; i < n; ++i) {
            sums.push_back(s[L[i].st] == G_E
                               ? Perm::E
                               : (s[L[i].st] == G_S ? Perm::S
                                                    : Perm::I));
        }
        return composeSum(Perm::M, sums);
    });

    return ts;
}

ModelFactory
germanModelFactory()
{
    return [](std::size_t n, ModelShape &shape) {
        return buildGermanModel(n, shape);
    };
}

} // namespace neo::verif
