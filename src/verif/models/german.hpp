/**
 * @file
 * The German protocol — the toy coherence protocol Matthews et al.
 * used for NeoGerman, their original Neo case study.
 *
 * German (the classic parametric-verification benchmark the paper
 * cites from the Cubicle distribution) has three stable states, no
 * transient states, no data forwarding, and about a dozen transitions.
 * The paper's §2 argument is that NeoGerman's verifiability "belies
 * the actual verification scalability of the Neo methodology": this
 * model exists so the sec4 bench can show, side by side, how small the
 * toy's state space is compared to NeoMESI's.
 */

#ifndef NEO_VERIF_MODELS_GERMAN_HPP
#define NEO_VERIF_MODELS_GERMAN_HPP

#include "verif/parametric.hpp"
#include "verif/transition_system.hpp"

namespace neo::verif
{

/** Build the German protocol with @p n clients. */
TransitionSystem buildGermanModel(std::size_t n, ModelShape &shape);

/** ModelFactory adapter for verifyParametric. */
ModelFactory germanModelFactory();

} // namespace neo::verif

#endif // NEO_VERIF_MODELS_GERMAN_HPP
