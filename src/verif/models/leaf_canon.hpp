/**
 * @file
 * Shared leaf-block canonicalizer for the bundled models.
 *
 * Every bundled model expresses Neo's leaf symmetry the same way:
 * identical leaves are interchangeable, so the canonical
 * representative sorts the fixed-stride per-leaf variable blocks into
 * lexicographic order (the shared/directory prefix stays put). This
 * header is the one implementation — alloc-free, because the
 * canonicalizer runs once per rule firing and a heap allocation there
 * used to dominate the explorers' hot path — plus the matching exact
 * CanonicalCheck the engines' dependency-index identity gate calls
 * even more often.
 */

#ifndef NEO_VERIF_MODELS_LEAF_CANON_HPP
#define NEO_VERIF_MODELS_LEAF_CANON_HPP

#include <array>
#include <cstring>

#include "verif/transition_system.hpp"

namespace neo::verif
{

/** Stack scratch bound for one leaf block; every bundled model's
 *  block (7–9 vars) fits with slack. */
inline constexpr std::size_t kMaxLeafBlockVars = 32;

/** Canonicalizer: insertion-sort the @p n blocks of @p blockVars
 *  bytes starting at offset @p sharedVars. Insertion sort beats
 *  std::sort at these sizes (n <= 12) and the near-sorted inputs one
 *  firing away from a canonical parent make it mostly one memcmp per
 *  block; memcmp order over uint8_t IS lexicographic block order. */
inline TransitionSystem::Canonicalizer
makeLeafSortCanonicalizer(std::size_t sharedVars, std::size_t n,
                          std::size_t blockVars)
{
    neo_assert(blockVars > 0 && blockVars <= kMaxLeafBlockVars,
               "leaf block too wide for the canonicalizer scratch");
    return [sharedVars, n, blockVars](VState &s) {
        std::uint8_t *base = s.data() + sharedVars;
        std::array<std::uint8_t, kMaxLeafBlockVars> tmp;
        for (std::size_t i = 1; i < n; ++i) {
            std::uint8_t *cur = base + i * blockVars;
            if (std::memcmp(cur - blockVars, cur, blockVars) <= 0)
                continue;
            std::memcpy(tmp.data(), cur, blockVars);
            std::size_t j = i;
            while (j > 0 && std::memcmp(base + (j - 1) * blockVars,
                                        tmp.data(), blockVars) > 0) {
                std::memcpy(base + j * blockVars,
                            base + (j - 1) * blockVars, blockVars);
                --j;
            }
            std::memcpy(base + j * blockVars, tmp.data(), blockVars);
        }
    };
}

/** Exact identity predicate: sorting is a no-op IFF adjacent blocks
 *  are already in non-decreasing order — one alloc-free sweep. */
inline TransitionSystem::CanonicalCheck
makeLeafSortedCheck(std::size_t sharedVars, std::size_t n,
                    std::size_t blockVars)
{
    return [sharedVars, n, blockVars](const VState &s) {
        const std::uint8_t *base = s.data() + sharedVars;
        for (std::size_t i = 1; i < n; ++i) {
            if (std::memcmp(base + (i - 1) * blockVars,
                            base + i * blockVars, blockVars) > 0)
                return false;
        }
        return true;
    };
}

} // namespace neo::verif

#endif // NEO_VERIF_MODELS_LEAF_CANON_HPP
