#include "mutants.hpp"

#include <utility>

#include "verif/models/flat_closed.hpp"
#include "verif/models/german.hpp"
#include "verif/models/verif_features.hpp"

namespace neo::verif
{

namespace
{

/** Fetch a rule that must exist. */
TransitionSystem::Rule &
ruleOf(TransitionSystem &ts, const std::string &name)
{
    auto *r = ts.findRule(name);
    if (!r)
        neo_fatal("mutant references unknown rule: ", name);
    return *r;
}

/**
 * Guard mutation: drop the conjunct over @p var by evaluating the
 * original guard on a copy of the state with @p var forced to @p val
 * (the value that satisfies the dropped conjunct).
 */
void
weakenGuard(TransitionSystem &ts, const std::string &rule,
            std::size_t var, std::uint8_t val)
{
    auto &r = ruleOf(ts, rule);
    auto orig = std::move(r.guard);
    // overrideGuard (not plain assignment) so a rule declared in flat
    // term form sheds its terms — CompiledRules must see the mutation.
    r.overrideGuard([orig, var, val](const VState &s) {
        VState t = s;
        t[var] = val;
        return orig(t);
    });
}

/** Effect mutation: run the original effect, then clear @p vars. */
void
clearAfterEffect(TransitionSystem &ts, const std::string &rule,
                 std::vector<std::size_t> vars)
{
    auto &r = ruleOf(ts, rule);
    auto orig = std::move(r.effect);
    r.overrideEffect([orig, vars](VState &s) {
        orig(s);
        for (const std::size_t v : vars)
            s[v] = 0;
    });
}

/** Effect mutation: run the original effect as if @p vars were 0
 *  (blinding it to them), then restore their old values. */
void
blindEffectTo(TransitionSystem &ts, const std::string &rule,
              std::vector<std::size_t> vars)
{
    auto &r = ruleOf(ts, rule);
    auto orig = std::move(r.effect);
    r.overrideEffect([orig, vars](VState &s) {
        std::vector<std::uint8_t> saved(vars.size());
        for (std::size_t k = 0; k < vars.size(); ++k) {
            saved[k] = s[vars[k]];
            s[vars[k]] = 0;
        }
        orig(s);
        for (std::size_t k = 0; k < vars.size(); ++k)
            s[vars[k]] = saved[k];
    });
}

/** Effect mutation: run the original effect, then restore @p var to
 *  its pre-effect value when it previously held @p when. */
void
keepVarAcrossEffect(TransitionSystem &ts, const std::string &rule,
                    std::size_t var, std::uint8_t when)
{
    auto &r = ruleOf(ts, rule);
    auto orig = std::move(r.effect);
    r.overrideEffect([orig, var, when](VState &s) {
        const std::uint8_t pre = s[var];
        orig(s);
        if (pre == when)
            s[var] = pre;
    });
}

std::string
leafVar(std::size_t i, const char *field)
{
    return "l" + std::to_string(i) + "." + std::string(field);
}

/** Other leaves' indices of one per-leaf variable. */
std::vector<std::size_t>
otherLeafVars(const TransitionSystem &ts, std::size_t n,
              std::size_t me, const char *field)
{
    std::vector<std::size_t> vars;
    for (std::size_t j = 0; j < n; ++j) {
        if (j != me)
            vars.push_back(ts.varIndex(leafVar(j, field)));
    }
    return vars;
}

std::vector<Mutant>
makeRegistry()
{
    std::vector<Mutant> reg;

    // 1. Directory forgets the requester in its sharer list when a
    //    read is served through the owner (metadata-inclusion bug).
    reg.push_back(Mutant{
        "dir_forgets_sharer_on_read",
        "d_getS grants data but drops the requester from the sharer "
        "vector",
        "DirTracksHolders", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::neoMESI(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                clearAfterEffect(
                    ts, "d_getS_" + std::to_string(i),
                    {ts.varIndex(leafVar(i, "sh"))});
            }
            return ts;
        }});

    // 2. Directory wipes its whole sharer vector when it acks one
    //    leaf's eviction (forgets the OTHER sharers on evict-ack).
    reg.push_back(Mutant{
        "dir_forgets_sharers_on_evict_ack",
        "d_put clears every leaf's sharer bit, not just the evictor's",
        "DirTracksHolders", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::inclusiveMSI(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                clearAfterEffect(ts, "d_put_" + std::to_string(i),
                                 otherLeafVars(ts, 2, i, "sh"));
            }
            return ts;
        }});

    // 3/4. The §4.2 non-blocking directory: accepts a second request
    //    while a transaction is still in flight (busy conjunct
    //    dropped from the request-accept guards). A non-blocking
    //    directory abandons its transaction bookkeeping by design, so
    //    the DirTracksHolders bookkeeping invariant is vacuous for
    //    this variant and is dropped — that keeps the reported
    //    violation (the actual SAFETY bug) unique on every path, for
    //    BFS, the parallel explorer and the random walker alike.
    reg.push_back(Mutant{
        "dir_nonblocking_read",
        "d_getS accepts a GetS while the directory is mid-transaction",
        "NeoSafety_leafCompat", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::neoMESI(), shape);
            ts.dropInvariant("DirTracksHolders");
            const std::size_t busy = ts.varIndex("busy");
            for (std::size_t i = 0; i < 2; ++i) {
                weakenGuard(ts, "d_getS_" + std::to_string(i), busy,
                            DB_Idle);
            }
            return ts;
        }});
    reg.push_back(Mutant{
        "dir_nonblocking_write",
        "d_getM accepts a GetM while the directory is mid-transaction",
        "NeoSafety_leafCompat", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::neoMESI(), shape);
            ts.dropInvariant("DirTracksHolders");
            const std::size_t busy = ts.varIndex("busy");
            for (std::size_t i = 0; i < 2; ++i) {
                weakenGuard(ts, "d_getM_" + std::to_string(i), busy,
                            DB_Idle);
            }
            return ts;
        }});

    // 5. The §4.2.2 O-state bug: the owner answers a Fwd_GetM with
    //    dirty data but keeps its own copy (no ownership transfer).
    //    The first violation on every path is the supplier holding M
    //    untracked (the directory already handed ownership away), so
    //    the tag is the bookkeeping invariant, not leaf compat.
    reg.push_back(Mutant{
        "owner_supplies_without_transfer",
        "recv_fwdM supplies DataM but the owner keeps its cache state",
        "DirTracksHolders", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::withOwned(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                for (std::size_t j = 0; j < 2; ++j) {
                    if (i == j)
                        continue;
                    auto &r = ruleOf(ts, "recv_fwdM_" +
                                             std::to_string(i) +
                                             "_to_" +
                                             std::to_string(j));
                    const std::size_t c =
                        ts.varIndex(leafVar(i, "c"));
                    auto orig = std::move(r.effect);
                    r.overrideEffect([orig, c](VState &s) {
                        const std::uint8_t pre = s[c];
                        orig(s);
                        s[c] = pre; // supplier keeps its copy
                    });
                }
            }
            return ts;
        }});

    // 6. A sharer acknowledges an invalidation but keeps its S copy.
    //    The ack step itself leaves an untracked S leaf (the
    //    directory dropped it from the sharer vector when it sent the
    //    Inv), so every path violates DirTracksHolders first.
    reg.push_back(Mutant{
        "sharer_ignores_inv",
        "recv_inv acks the Inv but an S-state leaf stays in S",
        "DirTracksHolders", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::baselineMSI(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                keepVarAcrossEffect(ts,
                                    "recv_inv_" + std::to_string(i),
                                    ts.varIndex(leafVar(i, "c")),
                                    C_S);
            }
            return ts;
        }});

    // 7. Directory grants Exclusive data while another sharer is
    //    live (the sole-sharer check is blinded).
    reg.push_back(Mutant{
        "dir_grants_E_with_sharers",
        "d_getS grants DataE as if the requester were the sole sharer",
        "NeoSafety_leafCompat", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::neoMESI(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                blindEffectTo(ts, "d_getS_" + std::to_string(i),
                              otherLeafVars(ts, 2, i, "sh"));
            }
            return ts;
        }});

    // 8. Directory serves a GetM without invalidating the sharers
    //    (the Inv loop is blinded to the sharer vector).
    reg.push_back(Mutant{
        "dir_skips_invalidation",
        "d_getM grants M data without invalidating live sharers",
        "NeoSafety_leafCompat", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::baselineMSI(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                blindEffectTo(ts, "d_getM_" + std::to_string(i),
                              otherLeafVars(ts, 2, i, "sh"));
            }
            return ts;
        }});

    // 9. Single-writer race: the owner's Fwd_GetM is dispatched
    //    before the sharers' invalidation acks are in.
    reg.push_back(Mutant{
        "dir_early_owner_fwd",
        "d_getM dispatches the owner forward while acks are pending",
        "NeoSafety_leafCompat", 3, 128, 384, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                3, VerifFeatures::withOwned(), shape);
            const std::size_t fwdPend = ts.varIndex("fwdPend");
            std::vector<std::size_t> fw(3), ow(3), sh(3), rqst(3);
            for (std::size_t j = 0; j < 3; ++j) {
                fw[j] = ts.varIndex(leafVar(j, "fw"));
                ow[j] = ts.varIndex(leafVar(j, "ow"));
                sh[j] = ts.varIndex(leafVar(j, "sh"));
                rqst[j] = ts.varIndex(leafVar(j, "rqst"));
            }
            for (std::size_t i = 0; i < 3; ++i) {
                auto &r = ruleOf(ts, "d_getM_" + std::to_string(i));
                auto orig = std::move(r.effect);
                r.overrideEffect([orig, fwdPend, fw, ow, sh,
                                  rqst](VState &s) {
                    orig(s);
                    if (!s[fwdPend])
                        return;
                    for (std::size_t j = 0; j < 3; ++j) {
                        if (s[ow[j]] && !s[rqst[j]] &&
                            s[fw[j]] == FW_None) {
                            s[fw[j]] = FW_FwdGetM;
                            s[ow[j]] = 0;
                            s[sh[j]] = 0;
                            s[fwdPend] = 0;
                            break;
                        }
                    }
                });
            }
            return ts;
        }});

    // 10. A leaf silently upgrades S -> M without a GetM (an added
    //     rogue rule — the pure "action mutation" case).
    reg.push_back(Mutant{
        "leaf_silent_upgrade",
        "added rule: an S-state leaf jumps to M without requesting",
        "NeoSafety_leafCompat", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildClosedModel(
                2, VerifFeatures::baselineMSI(), shape);
            for (std::size_t i = 0; i < 2; ++i) {
                const std::size_t c = ts.varIndex(leafVar(i, "c"));
                ts.addRule(
                    "mut_silent_upgrade_" + std::to_string(i),
                    ActionKind::Internal,
                    [c](const VState &s) { return s[c] == C_S; },
                    [c](VState &s) { s[c] = C_M; });
            }
            return ts;
        }});

    // 11. German home grants Exclusive while a sharer is live (the
    //     grant guard is blinded to the sharer set).
    reg.push_back(Mutant{
        "german_grant_E_with_sharers",
        "sendGntE ignores the sharer vector when granting Exclusive",
        "CtrlProp", 2, 64, 256, 1, [](ModelShape &shape) {
            TransitionSystem ts = buildGermanModel(2, shape);
            for (std::size_t i = 0; i < 2; ++i) {
                for (std::size_t j = 0; j < 2; ++j) {
                    weakenGuard(
                        ts, "sendGntE_" + std::to_string(i),
                        ts.varIndex("c" + std::to_string(j) + ".shr"),
                        0);
                }
            }
            return ts;
        }});

    return reg;
}

} // namespace

const std::vector<Mutant> &
mutantRegistry()
{
    static const std::vector<Mutant> reg = makeRegistry();
    return reg;
}

const Mutant *
findMutant(const std::string &name)
{
    for (const auto &m : mutantRegistry()) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

const std::vector<BundledModel> &
bundledModels()
{
    static const std::vector<BundledModel> models = [] {
        std::vector<BundledModel> v;
        v.push_back({"closed_msi_n2", [](ModelShape &shape) {
                         return buildClosedModel(
                             2, VerifFeatures::baselineMSI(), shape);
                     }});
        v.push_back({"closed_msi_incl_n2", [](ModelShape &shape) {
                         return buildClosedModel(
                             2, VerifFeatures::inclusiveMSI(), shape);
                     }});
        v.push_back({"closed_neomesi_n3", [](ModelShape &shape) {
                         return buildClosedModel(
                             3, VerifFeatures::neoMESI(), shape);
                     }});
        v.push_back({"closed_moesi_n3", [](ModelShape &shape) {
                         return buildClosedModel(
                             3, VerifFeatures::withOwned(), shape);
                     }});
        v.push_back({"german_n3", [](ModelShape &shape) {
                         return buildGermanModel(3, shape);
                     }});
        return v;
    }();
    return models;
}

} // namespace neo::verif
