/**
 * @file
 * The mutation corpus: deliberately broken variants of the bundled
 * protocol models, each tagged with the invariant it must violate.
 *
 * A verifier that has never caught a bug proves nothing (the
 * "detect seeded faults" discipline): every mutant here must be
 * flagged by exhaustive BFS, by the sharded parallel explorer, AND by
 * the random-walk falsifier under its documented seed/budget, while
 * every unmutated bundled model survives the same budgets clean —
 * tests/test_random_walk.cpp enforces exactly that.
 *
 * Mutants are built mechanically: the registry builds the correct
 * model, then surgically rewrites guards or effects of named rules
 * (TransitionSystem::findRule / varIndex). Guard mutations weaken a
 * conjunct by forcing a variable before evaluating the original
 * guard; effect mutations wrap the original effect and then undo or
 * add one update. Every per-leaf rule family is mutated for ALL
 * leaves, so the leaf-sorting symmetry canonicalizer stays sound.
 *
 * The corpus covers the paper's §4.2 reject cases — the non-blocking
 * directory and the O-state owner that supplies data without
 * transferring ownership — plus classic directory-bookkeeping and
 * invalidation bugs.
 */

#ifndef NEO_VERIF_MODELS_MUTANTS_HPP
#define NEO_VERIF_MODELS_MUTANTS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verif/parametric.hpp"
#include "verif/transition_system.hpp"

namespace neo::verif
{

struct Mutant
{
    /** Registry key (neoverify --mutant NAME). */
    std::string name;
    /** What is broken, in protocol terms. */
    std::string description;
    /** Invariant this mutant must violate (checker tag). */
    std::string violates;
    /** Instance size the falsification budget is documented for. */
    std::size_t n = 2;
    /** Documented falsification budget: the walker must find the
     *  violation within this many walks x depth at this seed. */
    std::uint64_t budgetWalks = 64;
    std::uint64_t budgetDepth = 256;
    std::uint64_t budgetSeed = 1;
    /** Build the broken model. */
    std::function<TransitionSystem(ModelShape &)> build;
};

/** A correct bundled model, for the no-false-alarm half of the
 *  differential suite. */
struct BundledModel
{
    std::string name;
    std::function<TransitionSystem(ModelShape &)> build;
};

/** All registered mutants (>= 8; stable order and names — the golden
 *  regression tests key on them). */
const std::vector<Mutant> &mutantRegistry();

/** Lookup by name; nullptr when absent. */
const Mutant *findMutant(const std::string &name);

/** The unmutated models the corpus derives from. */
const std::vector<BundledModel> &bundledModels();

} // namespace neo::verif

#endif // NEO_VERIF_MODELS_MUTANTS_HPP
