#include "verif_features.hpp"

#include <sstream>

namespace neo::verif
{

std::string
VerifFeatures::describe() const
{
    std::ostringstream os;
    os << (exclusiveState ? (ownedState ? "MOESI" : "MESI") : "MSI");
    if (inclusiveEvictions)
        os << "+inclusive";
    if (nonSiblingFwd)
        os << "+non-sibling";
    return os.str();
}

VerifFeatures
VerifFeatures::baselineMSI()
{
    return VerifFeatures{};
}

VerifFeatures
VerifFeatures::inclusiveMSI()
{
    VerifFeatures f;
    f.inclusiveEvictions = true;
    return f;
}

VerifFeatures
VerifFeatures::neoMESI()
{
    VerifFeatures f;
    f.inclusiveEvictions = true;
    f.exclusiveState = true;
    return f;
}

VerifFeatures
VerifFeatures::withOwned()
{
    VerifFeatures f = neoMESI();
    f.ownedState = true;
    return f;
}

} // namespace neo::verif
