/**
 * @file
 * Shared vocabulary for the verification protocol models: the feature
 * axis of §4.2 and the small-domain encodings of cache states and
 * message channels used by the flat Closed/Open Neo System models.
 *
 * The models are the standard single-block abstraction used for
 * protocol verification (one address, no data values, single-slot
 * channels per virtual network per node) — the same abstraction level
 * as the Murphi/Cubicle models the paper's methodology targets.
 */

#ifndef NEO_VERIF_MODELS_VERIF_FEATURES_HPP
#define NEO_VERIF_MODELS_VERIF_FEATURES_HPP

#include <cstdint>
#include <string>

namespace neo::verif
{

/** Protocol features along the paper's iterative ladder (§4.2). */
struct VerifFeatures
{
    /** E state (MESI instead of MSI). */
    bool exclusiveState = false;
    /** O state (MOESI; §4.2.2 found this exceeds the tools). */
    bool ownedState = false;
    /** Fully inclusive hierarchy: replacements + explicit eviction
     *  notifications (PutS/PutE/PutM) and directory recalls. */
    bool inclusiveEvictions = false;
    /** Non-sibling data forwarding (prohibited by the theory,
     *  §4.2.1); only meaningful for the Open system's composition
     *  check, where it must FAIL the Safe Composition Invariant. */
    bool nonSiblingFwd = false;

    std::string describe() const;

    static VerifFeatures baselineMSI();
    /** Baseline + inclusive evictions. */
    static VerifFeatures inclusiveMSI();
    /** Inclusive + E — the verified NeoMESI feature set. */
    static VerifFeatures neoMESI();
    /** NeoMESI + O — the set §4.2.2 could not verify in bounds. */
    static VerifFeatures withOwned();
};

/** Leaf cache states (stable + transients). */
enum CacheSt : std::uint8_t
{
    C_I = 0,
    C_S,
    C_E,
    C_M,
    C_O,
    C_ISD, ///< GetS outstanding
    C_IMD, ///< GetM outstanding from I
    C_SMD, ///< GetM outstanding from S
    C_OMD, ///< GetM outstanding from O
    C_SIA, ///< PutS outstanding
    C_EIA,
    C_MIA,
    C_OIA,
    C_IIA, ///< Put raced with Inv/Fwd
    numCacheSt
};

/** Leaf -> directory request channel. */
enum ReqMsg : std::uint8_t
{
    RQ_None = 0,
    RQ_GetS,
    RQ_GetM,
    RQ_PutS,
    RQ_PutE,
    RQ_PutM,
    RQ_PutO,
    numReqMsg
};

/** Directory -> leaf demand channel. */
enum FwdMsg : std::uint8_t
{
    FW_None = 0,
    FW_Inv,
    FW_FwdGetS,
    FW_FwdGetM,
    FW_PutAck,
    numFwdMsg
};

/** Data channel into a leaf. */
enum RespMsg : std::uint8_t
{
    RS_None = 0,
    RS_DataS,
    RS_DataE,
    RS_DataM,
    numRespMsg
};

/** Leaf -> directory completion/ack channel. */
enum AckMsg : std::uint8_t
{
    AK_None = 0,
    AK_InvAck,
    AK_InvAckD, ///< ack carrying a dirty block
    AK_Unblock,
    AK_UnblockD,
    numAckMsg
};

/** Directory transaction phase. */
enum DirBusy : std::uint8_t
{
    DB_Idle = 0,
    DB_Read,    ///< serving a GetS
    DB_Write,   ///< serving a GetM (collecting acks, then grant)
    DB_Recall,  ///< inclusive eviction: recalling every copy
    DB_FetchR,  ///< (open) GetS relayed to the parent
    DB_FetchW,  ///< (open) GetM relayed to the parent
    DB_ExtRead, ///< (open) serving a parent Fwd_GetS
    DB_ExtWrite,///< (open) serving a parent Fwd_GetM
    DB_ExtInv,  ///< (open) serving a parent Inv
    DB_EvictWB, ///< (open) writeback sent, awaiting PutAck
    numDirBusy
};

} // namespace neo::verif

#endif // NEO_VERIF_MODELS_VERIF_FEATURES_HPP
