/**
 * @file
 * Bounded lock-free MPMC ring buffer + spill-backed frontier queue.
 *
 * The parallel explorer's per-worker frontier used to be a
 * mutex-guarded vector; with the visited set already lock-free on the
 * read side (state_store.hpp), the push/pop mutex pair was the
 * dominant synchronization cost on BM_CheckerParallelScaling. The
 * replacement is the classic Vyukov bounded MPMC queue: each cell
 * carries an atomic sequence number, producers and consumers claim
 * positions with a CAS on the enqueue/dequeue counters, and the
 * per-cell sequence handshake orders the payload access so no cell is
 * read before its writer's release store or rewritten before its
 * reader's release store.
 *
 * Happens-before contract (replacing the old intern -> mutex-push ->
 * mutex-pop chain): a producer writes the payload, then
 * release-stores the cell sequence; the consumer acquire-loads that
 * sequence before touching the payload. For the explorer this is what
 * publishes an interned state id: the id's arena bytes are written
 * under the owning shard's mutex BEFORE the push, the push's release
 * store sequences-after the unlock, and the popper's acquire load
 * therefore sees the fully-written arena record — copyTo() stays
 * lock-free exactly as under the mutex queue.
 *
 * Boundedness never deadlocks the work-stealing loop: SpillFrontier
 * wraps a ring with a mutex-guarded overflow deque. push() falls back
 * to the deque when the ring is full (counted in spillPushes()), so a
 * producer can always publish; pop() prefers the ring and drains the
 * spill only when the ring is empty. Thieves pop the same MPMC ring,
 * so "steal" and "pop" are the same operation.
 *
 * forEachQuiescent()/forEach() iterate live elements WITHOUT claiming
 * them and are only legal while every producer and consumer is parked
 * (the checkpoint pause-rendezvous): quiescence means every cell in
 * [deqPos, enqPos) has a fully-published payload and nobody is
 * concurrently recycling cells.
 */

#ifndef NEO_VERIF_MPMC_RING_HPP
#define NEO_VERIF_MPMC_RING_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

namespace neo
{

template <typename T>
class MpmcRing
{
  public:
    /** @param capacity element slots, rounded up to a power of two
     *  (minimum 4) so positions fold with a mask. */
    explicit MpmcRing(std::size_t capacity)
    {
        std::size_t cap = 4;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
        enqPos_.store(0, std::memory_order_relaxed);
        deqPos_.store(0, std::memory_order_relaxed);
    }

    MpmcRing(const MpmcRing &) = delete;
    MpmcRing &operator=(const MpmcRing &) = delete;

    /** @return false when the ring is full (caller spills). */
    bool
    tryPush(T v)
    {
        Cell *cell;
        std::size_t pos = enqPos_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::intptr_t>(seq) -
                             static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                // The cell is free for exactly this position; claim
                // it. A weak CAS failure reloads pos and retries.
                if (enqPos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // full: the cell still holds lap pos-cap
            } else {
                pos = enqPos_.load(std::memory_order_relaxed);
            }
        }
        cell->val = std::move(v);
        cell->seq.store(pos + 1, std::memory_order_release);
        return true;
    }

    /** @return false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        Cell *cell;
        std::size_t pos = deqPos_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::intptr_t>(seq) -
                             static_cast<std::intptr_t>(pos + 1);
            if (dif == 0) {
                if (deqPos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty: the producer has not published
            } else {
                pos = deqPos_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->val);
        // Recycle the cell for the producer one lap ahead.
        cell->seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    std::size_t capacity() const { return mask_ + 1; }

    /** Racy size estimate (monitoring only). */
    std::size_t
    sizeApprox() const
    {
        const std::size_t e = enqPos_.load(std::memory_order_relaxed);
        const std::size_t d = deqPos_.load(std::memory_order_relaxed);
        return e >= d ? e - d : 0;
    }

    /** Fixed allocation charged against the memory budget. */
    std::uint64_t
    memoryBytes() const
    {
        return static_cast<std::uint64_t>(capacity()) * sizeof(Cell);
    }

    /** Visit every queued element oldest-first without consuming it.
     *  Legal ONLY while all producers/consumers are quiescent (the
     *  checkpoint rendezvous): then every position in [deq, enq) is a
     *  fully-published cell. */
    template <typename Fn>
    void
    forEachQuiescent(Fn &&fn) const
    {
        const std::size_t e = enqPos_.load(std::memory_order_acquire);
        for (std::size_t pos =
                 deqPos_.load(std::memory_order_acquire);
             pos != e; ++pos)
            fn(cells_[pos & mask_].val);
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq;
        T val;
    };

    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    /** On separate cache lines: producers hammer enqPos_, consumers
     *  deqPos_; sharing a line would put the counters' CAS traffic
     *  back on one contended line like the old mutex. */
    alignas(64) std::atomic<std::size_t> enqPos_;
    alignas(64) std::atomic<std::size_t> deqPos_;
};

/**
 * A never-full frontier: a bounded MPMC ring with a mutex-guarded
 * overflow deque. The ring absorbs the steady-state traffic
 * lock-free; the deque only sees the bursts that outrun consumers, so
 * boundedness can never wedge a producer that still holds work.
 */
template <typename T>
class SpillFrontier
{
  public:
    explicit SpillFrontier(std::size_t ringCapacity)
        : ring_(ringCapacity)
    {
    }

    /** Pre-sizing hook (interface parity with the mutex queue); the
     *  ring is fixed-size and the deque grows on demand. */
    void reserve(std::size_t) {}

    /** Never fails: full ring -> spill deque. */
    void
    push(T v)
    {
        if (ring_.tryPush(std::move(v)))
            return;
        std::lock_guard<std::mutex> g(mu_);
        spill_.push_back(std::move(v));
        ++spillPushes_;
    }

    /** Ring first (lock-free fast path), then the spill deque
     *  oldest-first. */
    bool
    pop(T &out)
    {
        if (ring_.tryPop(out))
            return true;
        std::lock_guard<std::mutex> g(mu_);
        if (spill_.empty())
            return false;
        out = std::move(spill_.front());
        spill_.pop_front();
        return true;
    }

    /** Thieves pop the same MPMC ring — no separate steal end. */
    bool steal(T &out) { return pop(out); }

    /** Quiescent-only iteration over ring + spill (checkpoint
     *  serialization; see MpmcRing::forEachQuiescent). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        ring_.forEachQuiescent(fn);
        std::lock_guard<std::mutex> g(mu_);
        for (const T &v : spill_)
            fn(v);
    }

    /** Pushes that overflowed into the spill deque (cumulative). */
    std::uint64_t
    spillPushes() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return spillPushes_;
    }

    std::size_t
    spillDepth() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return spill_.size();
    }

    /** Standing footprint: the ring's fixed cell array (the spill
     *  deque's elements are charged per-item by the engine). */
    std::uint64_t memoryBytes() const { return ring_.memoryBytes(); }

  private:
    MpmcRing<T> ring_;
    mutable std::mutex mu_;
    std::deque<T> spill_;
    std::uint64_t spillPushes_ = 0;
};

} // namespace neo

#endif // NEO_VERIF_MPMC_RING_HPP
