#include "parallel_explorer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "verif/checkpoint.hpp"
#include "verif/mpmc_ring.hpp"
#include "verif/state_store.hpp"

namespace neo
{

namespace
{

/** Shard count; a power of two so the hash folds with a mask. */
constexpr std::size_t kShardCount = 64;

/** Vector block + bookkeeping slack charged per work queue in the
 *  memory estimate, so N queues' standing overhead counts against
 *  maxMemoryBytes even when nearly empty. */
constexpr std::uint64_t kQueueSlackBytes = 4096;

/** Per-worker MPMC ring capacity (cells). Sized so steady-state
 *  frontier traffic stays inside the lock-free ring; bursts beyond it
 *  overflow into the worker's mutex-guarded spill deque instead of
 *  blocking the producer (mpmc_ring.hpp). */
constexpr std::size_t kRingCapacity = 8192;

/**
 * One slice of the visited set: states whose canonical hash folds to
 * this shard, arena-interned with shard-local ids. The predecessor
 * links (trace rebuilding; keep_trace only) are parallel flat arrays
 * indexed by that local id — what used to be a per-state Record node
 * behind an unordered_map.
 */
struct Shard
{
    std::mutex mu;
    std::unique_ptr<StateStore> store;
    std::vector<std::uint64_t> parents; ///< packed (shard, index)
    std::vector<std::uint32_t> ruleOf;
    std::vector<std::uint32_t> depthOf;
};

/** A frontier entry is the packed id + BFS depth; the state bytes
 *  stay in the owning shard's arena and are re-read at expansion
 *  time (see the store's lock-free copyTo() contract) — EXCEPT under
 *  hash compaction, where the arena has no bytes and the item must
 *  carry the full state until it is expanded. */
struct WorkItem
{
    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    VState state; ///< populated only in compact mode
    /** The state's enabled-rule bitset, carried inline (4 words =
     *  256 rules; systems with more rules skip the dependency index
     *  rather than heap-allocating per frontier item). Valid only
     *  when bitsOk — a successor whose canonicalization permuted the
     *  state, a resumed item, or the seed all full-scan instead. */
    std::array<std::uint64_t, 4> bits{};
    std::uint8_t bitsOk = 0;
};

/** Mutex-guarded queue over a flat vector. The owner consumes from
 *  the front (oldest first, keeping expansion approximately
 *  breadth-first, hence short counterexamples); thieves take from the
 *  back so they don't contend with the owner's end. This is the
 *  pre-ring frontier, kept alive as FrontierKind::Mutex — the A/B
 *  baseline the ring-vs-mutex bench artifact compares against. */
class WorkQueue
{
  public:
    void
    reserve(std::size_t n)
    {
        q_.reserve(n);
    }

    /** Standing footprint beyond kQueueSlackBytes (none: the vector's
     *  live items are charged per-frontier-item by the engine). */
    std::uint64_t memoryBytes() const { return 0; }

    void
    push(WorkItem w)
    {
        std::lock_guard<std::mutex> g(mu_);
        q_.push_back(w);
    }

    bool
    pop(WorkItem &out)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (head_ == q_.size())
            return false;
        out = q_[head_++];
        if (head_ >= 4096 && head_ * 2 >= q_.size()) {
            q_.erase(q_.begin(),
                     q_.begin() + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
        return true;
    }

    bool
    steal(WorkItem &out)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (head_ == q_.size())
            return false;
        out = q_.back();
        q_.pop_back();
        return true;
    }

    /** Visit every queued item (checkpoint serialization; called only
     *  while all workers are paused, so contention-free). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        std::lock_guard<std::mutex> g(mu_);
        for (std::size_t i = head_; i < q_.size(); ++i)
            fn(q_[i]);
    }

  private:
    std::mutex mu_;
    std::vector<WorkItem> q_;
    std::size_t head_ = 0;
};

/** The production frontier: a bounded lock-free MPMC ring with a
 *  spill deque for overflow (default-constructible so the queue array
 *  builds like WorkQueue's). Owner pops and thieves steal from the
 *  same ring — the ring is FIFO, so expansion order stays
 *  approximately breadth-first. */
struct RingQueue : SpillFrontier<WorkItem>
{
    RingQueue() : SpillFrontier<WorkItem>(kRingCapacity) {}
};

inline std::uint64_t
packId(std::size_t shard, std::uint32_t local)
{
    return (static_cast<std::uint64_t>(shard) << 32) | local;
}

/**
 * The engine body, templated over the frontier queue so the ring and
 * mutex frontiers compile to separate specializations with zero
 * dispatch inside the worker loop (exploreParallel() below selects
 * one from ExploreLimits::frontier).
 */
template <class Queue>
ExploreResult
exploreParallelImpl(const TransitionSystem &ts,
                    const ExploreLimits &limits, bool detect_deadlock,
                    bool keep_trace,
                    const std::function<void(const VState &)> &on_state)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const unsigned nthreads = limits.threads > 1 ? limits.threads : 2;
    const std::size_t numVars = ts.numVars();

    ExploreResult result;
    const auto &rules = ts.rules();
    const auto &canon = ts.canonicalizer();
    const auto &invs = ts.invariants();
    // Flat guard/effect tables (transition_system.hpp): rule firing
    // below goes through this instead of the per-rule std::function
    // objects, eliminating virtual dispatch on the hot path. Built
    // once here, shared read-only by every worker.
    const CompiledRules comp(ts);
    // Read/write dependency index: frontier items carry their
    // enabled-rule bitset so a worker re-evaluates only the guards
    // the parent's firing could have changed (sound only on
    // canonicalizer-identity successors; see WorkItem::bits for the
    // 256-rule inline-storage gate).
    const auto &canonCheck = ts.canonicalCheck();
    const RuleDepIndex depIdx(ts);
    const std::size_t R = rules.size();
    const bool useIndex = limits.ruleIndex && R <= 256;
    const std::size_t W = depIdx.ruleWords();

    const CheckpointConfig *ckpt = limits.checkpoint;
    const bool ckptActive = ckpt != nullptr && !ckpt->dir.empty();
    const std::string ckptPath =
        ckptActive ? exploreSnapshotPath(*ckpt) : std::string();
    if (ckptActive)
        reapStaleCheckpointTmps(ckpt->dir);
    const std::uint64_t fingerprint =
        ckptActive ? modelFingerprint(ts) : 0;
    double baseSeconds = 0.0;

    const std::uint64_t presize = explorePresizeHint(limits);
    // Per-shard tier options: the spill hot budget is a PROCESS
    // budget, so each of the 64 shard stores gets its slice.
    StoreTierOptions shardOpts = limits.store;
    if (!shardOpts.spillDir.empty()) {
        const std::uint64_t totalHot = shardOpts.hotBytes != 0
                                           ? shardOpts.hotBytes
                                           : (256ULL << 20);
        shardOpts.hotBytes =
            std::max<std::uint64_t>(totalHot / kShardCount, 1 << 16);
    }
    const bool compact =
        shardOpts.tier == StoreTier::Compact;
    std::vector<Shard> shards(kShardCount);
    for (auto &sh : shards)
        sh.store = std::make_unique<StateStore>(
            numVars, presize / kShardCount, nullptr, shardOpts);
    std::vector<Queue> queues(nthreads);
    if (presize != 0) {
        for (auto &q : queues)
            q.reserve(static_cast<std::size_t>(presize / nthreads));
    }
    // Standing queue footprint (ring cell arrays + slack), fixed for
    // the run, charged once in the memory estimate below.
    std::uint64_t queueFixedBytes = 0;
    for (const auto &q : queues)
        queueFixedBytes += kQueueSlackBytes + q.memoryBytes();

    std::atomic<std::uint64_t> statesTotal{0};
    std::atomic<std::uint64_t> transitionsTotal{0};
    std::atomic<std::uint64_t> invChecksTotal{0};
    std::atomic<std::uint64_t> guardEvalsTotal{0};
    std::atomic<std::uint64_t> guardSkippedTotal{0};
    std::atomic<std::uint64_t> identityHitsTotal{0};
    std::vector<std::atomic<std::uint64_t>> ruleFires(rules.size());
    /** Aggregate arena + table footprint across shards, maintained by
     *  delta under each shard's mutex so the memory-bound check reads
     *  one atomic instead of locking 64 shards. */
    std::atomic<std::uint64_t> storeBytes{0};
    /** Queued + currently-expanding items; 0 means the fixpoint. */
    std::atomic<std::uint64_t> inFlight{0};
    std::atomic<bool> stop{false};
    /** Runtime keep_trace; cleared when memory pressure sheds the
     *  predecessor links mid-run. */
    std::atomic<bool> traceOn{keep_trace};
    bool degradedTrace = false; // mutated only at safe points

    // Checkpoint rendezvous: worker 0 (the coordinator) raises
    // pauseRequested; every other live worker parks at the top of its
    // loop, which guarantees no expansion is in progress — every
    // in-flight item sits in some queue, so shards + queues + the
    // counters form a consistent cut to serialize.
    std::atomic<bool> pauseRequested{false};
    std::atomic<unsigned> pausedCount{0};
    std::atomic<unsigned> alive{0};

    // Terminal outcome. A violation or deadlock beats a bound; among
    // violations discovered by different workers the smallest
    // (depth, invariant index, state bytes) wins, so the report is
    // deterministic once the racing workers have drained.
    std::mutex termMu;
    VerifStatus termStatus = VerifStatus::Verified;
    std::uint32_t vioDepth = 0;
    std::size_t vioInv = 0;
    std::uint64_t vioId = 0;
    VState vioState;
    VState deadState;

    std::mutex cbMu; // serializes the caller's on_state callback

    auto elapsed = [&]() {
        return baseSeconds +
               std::chrono::duration<double>(Clock::now() - t0).count();
    };

    // Same accounting as the sequential explorer: the measured arena
    // + table aggregate, the flat predecessor arrays, the frontier,
    // the standing shard/queue structures and — when checkpointing —
    // the snapshot serialization buffer, so the bound holds on the
    // robust path too.
    auto estimate_memory = [&]() -> std::uint64_t {
        const bool tracing = traceOn.load(std::memory_order_relaxed);
        const std::uint64_t per_trace = tracing ? 16 : 0;
        const std::uint64_t per_frontier =
            sizeof(WorkItem) + (compact ? numVars : 0);
        const std::uint64_t per_ckpt_state =
            ckptActive ? (compact ? shardOpts.compactBits / 8
                                  : numVars) +
                             (tracing ? 16 : 0)
                       : 0;
        const std::uint64_t per_ckpt_frontier =
            ckptActive ? numVars + 12 : 0;
        const std::uint64_t structural =
            kShardCount * (sizeof(Shard) + sizeof(StateStore)) +
            queueFixedBytes;
        return storeBytes.load(std::memory_order_relaxed) +
               statesTotal.load(std::memory_order_relaxed) *
                   (per_trace + per_ckpt_state) +
               inFlight.load(std::memory_order_relaxed) *
                   (per_frontier + per_ckpt_frontier) +
               structural;
    };

    // Memory-pressure rung 1 (lossless): shed every shard store's
    // cold mmap regions to disk and re-measure. Serialized by shedMu
    // so racing workers don't stampede the 64 shard locks; the
    // re-check under the lock turns followers into no-ops. @return
    // true when the estimate is back under the budget.
    std::mutex shedMu;
    auto try_shed = [&]() -> bool {
        if (limits.store.spillDir.empty())
            return false;
        std::lock_guard<std::mutex> sg(shedMu);
        if (estimate_memory() <= limits.maxMemoryBytes)
            return true; // another worker already shed
        std::uint64_t total = 0;
        for (auto &sh : shards) {
            std::lock_guard<std::mutex> g(sh.mu);
            sh.store->shedCold();
            total += sh.store->memoryBytes();
        }
        storeBytes.store(total, std::memory_order_relaxed);
        return estimate_memory() <= limits.maxMemoryBytes;
    };

    // Stamp the tier-dependent result fields; every return path
    // funnels through this so compact verdicts always carry their
    // omission probability and spill runs their shed count.
    auto note_store = [&]() {
        std::uint64_t visited = 0;
        std::uint64_t sheds = 0;
        for (const Shard &s : shards) {
            visited += s.store->size();
            sheds += s.store->spillSheds();
        }
        result.spillSheds = sheds;
        if (compact) {
            result.compactHashes = true;
            result.omissionProbability = compactOmissionProbability(
                visited, shardOpts.compactBits);
        }
    };

    // With @p affInv (a row from depIdx.affectedInvariants) the sweep
    // physically evaluates only the invariants the parent's firing
    // could have changed — sound because the parent passed every
    // invariant (bad states are never expanded) and an identity
    // successor leaves the others' reads untouched. Skipped
    // invariants still count toward invChecksTotal: the counter means
    // LOGICAL evaluations, so it stays bit-identical to the
    // no-index run (and to the sequential engine's golden fixtures).
    auto failing_invariant =
        [&](const VState &s, const std::uint64_t *affInv = nullptr)
        -> int {
        std::uint64_t n = 0;
        int bad = -1;
        for (std::size_t i = 0; i < invs.size(); ++i) {
            ++n;
            if (affInv != nullptr &&
                (affInv[i >> 6] & (1ULL << (i & 63))) == 0)
                continue;
            if (!invs[i].check(s)) {
                bad = static_cast<int>(i);
                break;
            }
        }
        invChecksTotal.fetch_add(n, std::memory_order_relaxed);
        return bad;
    };

    auto report_violation = [&](int inv, const VState &s,
                                std::uint64_t id, std::uint32_t depth) {
        const std::size_t invIdx = static_cast<std::size_t>(inv);
        std::lock_guard<std::mutex> g(termMu);
        const bool better =
            termStatus != VerifStatus::InvariantViolated ||
            std::tie(depth, invIdx, s) <
                std::tie(vioDepth, vioInv, vioState);
        if (better) {
            termStatus = VerifStatus::InvariantViolated;
            vioDepth = depth;
            vioInv = invIdx;
            vioId = id;
            vioState = s;
        }
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_deadlock = [&](const VState &s) {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified ||
            termStatus == VerifStatus::LimitExceeded) {
            termStatus = VerifStatus::Deadlock;
            deadState = s;
        }
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_limit = [&]() {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified)
            termStatus = VerifStatus::LimitExceeded;
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_interrupted = [&]() {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified)
            termStatus = VerifStatus::Interrupted;
        stop.store(true, std::memory_order_relaxed);
    };

    // Serialize the paused run into the canonical explore-snapshot
    // layout: states shard-major in local-insertion order, packed ids
    // remapped onto dense indices, streamed straight out of the
    // arenas. Caller guarantees quiescence; the per-shard lock/unlock
    // while sizing the prefix table establishes the happens-before
    // edge with every past writer of that shard.
    auto write_snapshot = [&]() {
        const bool tracing = traceOn.load(std::memory_order_relaxed);
        ExploreSnapshotMeta meta;
        meta.elapsedSeconds = elapsed();
        meta.transitionsFired =
            transitionsTotal.load(std::memory_order_relaxed);
        meta.ruleFires.resize(rules.size());
        for (std::size_t r = 0; r < rules.size(); ++r)
            meta.ruleFires[r] =
                ruleFires[r].load(std::memory_order_relaxed);
        meta.hasLinks = tracing;

        std::array<std::uint64_t, kShardCount> prefix{};
        std::uint64_t total = 0;
        for (std::size_t sh = 0; sh < kShardCount; ++sh) {
            prefix[sh] = total;
            std::lock_guard<std::mutex> g(shards[sh].mu);
            total += shards[sh].store->size();
        }
        meta.numStates = total;
        auto dense = [&](std::uint64_t packed) {
            return prefix[packed >> 32] + (packed & 0xffffffffULL);
        };
        auto shardOf = [&](std::uint64_t denseId) {
            std::size_t sh = kShardCount - 1;
            while (prefix[sh] > denseId)
                --sh;
            return sh;
        };

        auto linkAt = [&](std::uint64_t i) {
            const std::size_t sh = shardOf(i);
            const auto local =
                static_cast<std::size_t>(i - prefix[sh]);
            const std::uint32_t depth = shards[sh].depthOf[local];
            return ExploreSnapshot::Link{
                depth == 0 ? 0 : dense(shards[sh].parents[local]),
                shards[sh].ruleOf[local], depth};
        };

        std::vector<std::uint8_t> payload;
        if (compact) {
            // Compact frontier items carry their own bytes (the
            // arenas have none); copy them out while forEach holds
            // each queue's lock.
            std::vector<ExploreSnapshot::FrontierItem> frontier;
            for (auto &q : queues) {
                q.forEach([&](const WorkItem &w) {
                    ExploreSnapshot::FrontierItem fi;
                    fi.id = dense(w.id);
                    fi.depth = w.depth;
                    fi.state = w.state;
                    frontier.push_back(std::move(fi));
                });
            }
            payload = encodeCompactExploreSnapshotStreamed(
                meta, numVars, shardOpts.compactBits,
                [&](std::uint64_t i) {
                    const std::size_t sh = shardOf(i);
                    return shards[sh].store->hashAt(
                        static_cast<std::uint32_t>(i - prefix[sh]));
                },
                linkAt, frontier.size(),
                [&](std::uint64_t n) {
                    const auto &fi =
                        frontier[static_cast<std::size_t>(n)];
                    return std::tuple<std::uint64_t, std::uint32_t,
                                      const std::uint8_t *>{
                        fi.id, fi.depth, fi.state.data()};
                });
        } else {
            std::vector<std::pair<std::uint64_t, std::uint32_t>>
                frontier;
            for (auto &q : queues) {
                q.forEach([&](const WorkItem &w) {
                    frontier.emplace_back(dense(w.id), w.depth);
                });
            }
            VState scratch;
            payload = encodeExploreSnapshotStreamed(
                meta, numVars,
                [&](std::uint64_t i) -> const std::uint8_t * {
                    const std::size_t sh = shardOf(i);
                    shards[sh].store->copyTo(
                        static_cast<std::uint32_t>(i - prefix[sh]),
                        scratch);
                    return scratch.data();
                },
                linkAt, frontier.size(),
                [&](std::uint64_t n) {
                    return frontier[static_cast<std::size_t>(n)];
                });
        }
        std::string err;
        if (!writeSnapshotFile(ckptPath, SnapshotKind::Explore,
                               fingerprint, payload, err,
                               compact ? kSnapshotVersionCompact
                                       : kSnapshotVersionFull)) {
            neo_warn("checkpoint not written: ", err);
            return;
        }
        ++result.checkpointsWritten;
        result.lastSnapshotBytes = payload.size();
    };

    bool fresh = true;
    if (ckptActive && ckpt->resume && snapshotExists(ckptPath)) {
        std::vector<std::uint8_t> payload;
        std::string err;
        unsigned version = kSnapshotVersionFull;
        if (!readSnapshotFile(ckptPath, SnapshotKind::Explore,
                              fingerprint, payload, err, &version))
            neo_fatal("cannot resume: ", err);
        if (version == kSnapshotVersionCompact && !compact)
            neo_fatal("cannot resume: ", ckptPath,
                      ": snapshot was written by --compact-hashes "
                      "(visited states are fingerprints only); "
                      "resume with --compact-hashes");
        ExploreSnapshotMeta meta;
        // Pass 1 (onState): shard-major reinsertion; the shard of a
        // state is a pure hash, so each lands where the writer had
        // it, and file order preserves the per-shard local indices.
        // Pass 2 (onLink): predecessor links, parents remapped to
        // packed ids (a parent's dense index may live in a later
        // shard, hence the separate pass — the codec streams links
        // only after every state).
        std::vector<std::uint64_t> denseToPacked;
        bool tracing = false;
        std::uint64_t nq = 0;
        VState scratch;
        auto beginStates = [&](std::uint64_t nStates) {
            tracing = keep_trace && meta.hasLinks;
            denseToPacked.resize(static_cast<std::size_t>(nStates));
            for (auto &sh : shards)
                sh.store->reserve(nStates / kShardCount);
        };
        auto onLink = [&](std::uint64_t id,
                          const ExploreSnapshot::Link &l) {
            if (!tracing)
                return;
            const std::size_t sh =
                denseToPacked[static_cast<std::size_t>(id)] >> 32;
            shards[sh].parents.push_back(
                denseToPacked[static_cast<std::size_t>(l.parent)]);
            shards[sh].ruleOf.push_back(l.rule);
            shards[sh].depthOf.push_back(l.depth);
        };
        auto onFrontier = [&](std::uint64_t id, std::uint32_t depth,
                              const std::uint8_t *state) {
            WorkItem w;
            w.id = denseToPacked[static_cast<std::size_t>(id)];
            w.depth = depth;
            if (compact)
                w.state.assign(state, state + numVars);
            queues[nq++ % nthreads].push(std::move(w));
        };
        bool okDecode;
        if (version == kSnapshotVersionCompact) {
            unsigned hashBits = 0;
            okDecode = decodeCompactExploreSnapshotStreamed(
                payload, numVars, rules.size(), meta, hashBits,
                beginStates,
                [&](std::uint64_t id, std::uint64_t lo,
                    std::uint64_t hi) {
                    // Shard selection must match the worker loop's
                    // (low hash bits), so the fingerprint re-lands
                    // in the shard that owned it.
                    const std::size_t sh = lo & (kShardCount - 1);
                    const std::uint32_t local =
                        shards[sh].store->insertHash(lo, hi).first;
                    denseToPacked[static_cast<std::size_t>(id)] =
                        packId(sh, local);
                },
                onLink, onFrontier, err);
            if (okDecode && hashBits != shardOpts.compactBits)
                neo_fatal("cannot resume: ", ckptPath, ": snapshot "
                          "uses ",
                          hashBits, "-bit fingerprints, this run ",
                          shardOpts.compactBits, "-bit");
        } else {
            okDecode = decodeExploreSnapshotStreamed(
                payload, numVars, rules.size(), meta, beginStates,
                [&](std::uint64_t id, const std::uint8_t *state) {
                    const std::uint64_t h = stateHash(state, numVars);
                    const std::size_t sh = h & (kShardCount - 1);
                    const std::uint32_t local =
                        shards[sh]
                            .store->internHashed(state, h)
                            .first;
                    denseToPacked[static_cast<std::size_t>(id)] =
                        packId(sh, local);
                    if (on_state) {
                        scratch.assign(state, state + numVars);
                        on_state(scratch);
                    }
                },
                onLink, onFrontier, err);
        }
        if (!okDecode)
            neo_fatal("cannot resume: ", ckptPath, ": ", err);
        baseSeconds = meta.elapsedSeconds;
        transitionsTotal.store(meta.transitionsFired,
                               std::memory_order_relaxed);
        for (std::size_t r = 0; r < rules.size(); ++r)
            ruleFires[r].store(meta.ruleFires[r],
                               std::memory_order_relaxed);
        if (keep_trace && !meta.hasLinks) {
            traceOn.store(false, std::memory_order_relaxed);
            degradedTrace = true;
        }
        statesTotal.store(meta.numStates, std::memory_order_relaxed);
        inFlight.store(nq, std::memory_order_relaxed);
        result.resumed = true;
        result.restoredStates = meta.numStates;
        fresh = false;
    }

    if (fresh) {
        // Seed with the canonical initial state (mirrors the
        // sequential explorer's pre-loop block, including the early
        // violation exit).
        VState init = ts.initialState();
        if (canon)
            canon(init);
        std::uint64_t initId;
        {
            const std::uint64_t h = stateHash(init.data(), numVars);
            const std::size_t sh = h & (kShardCount - 1);
            shards[sh].store->internHashed(init.data(), h);
            if (keep_trace) {
                shards[sh].parents.push_back(0);
                shards[sh].ruleOf.push_back(0);
                shards[sh].depthOf.push_back(0);
            }
            initId = packId(sh, 0);
        }
        statesTotal.store(1, std::memory_order_relaxed);
        if (on_state)
            on_state(init);
        if (const int inv = failing_invariant(init); inv >= 0) {
            result.ruleFires.assign(rules.size(), 0);
            result.status = VerifStatus::InvariantViolated;
            result.violatedInvariant =
                invs[static_cast<std::size_t>(inv)].name;
            result.badState = ts.describe(init);
            result.statesExplored = 1;
            result.invariantChecks =
                invChecksTotal.load(std::memory_order_relaxed);
            note_store();
            result.seconds = elapsed();
            return result;
        }
        WorkItem seed{initId, 0, {}};
        if (compact)
            seed.state = init;
        queues[0].push(std::move(seed));
        inFlight.store(1, std::memory_order_relaxed);
    }

    // Baseline footprint (presized tables + whatever resume/seeding
    // interned); workers maintain it by delta from here on.
    {
        std::uint64_t bytes = 0;
        for (const auto &sh : shards)
            bytes += sh.store->memoryBytes();
        storeBytes.store(bytes, std::memory_order_relaxed);
    }

    // maxStates token budget: interning a FRESH state consumes a
    // token, so the bound holds exactly even when a worker interns a
    // whole successor batch at once — the run stops at maxStates, not
    // maxStates + batch size. Reservations are all-or-nothing (no
    // partial takes, so the balance never dips to zero while work is
    // still admissible), and a batch that reserved more than it
    // inserted (duplicates) returns the surplus. The invariant
    //   statesTotal + tokens + (tokens held by in-lock batches)
    //     == maxStates
    // is what lets an exhausted taker distinguish "genuinely at the
    // bound" (statesTotal == maxStates) from "transiently held":
    // holders reserve and return entirely inside one shard critical
    // section and never block on a second lock, so waiting for them
    // always terminates.
    std::atomic<std::int64_t> tokens{
        limits.maxStates > statesTotal.load(std::memory_order_relaxed)
            ? static_cast<std::int64_t>(
                  limits.maxStates -
                  statesTotal.load(std::memory_order_relaxed))
            : 0};
    auto takeTokens = [&](std::int64_t want) -> bool {
        std::int64_t cur = tokens.load(std::memory_order_relaxed);
        while (cur >= want) {
            if (tokens.compare_exchange_weak(
                    cur, cur - want, std::memory_order_relaxed))
                return true;
        }
        return false;
    };
    auto returnTokens = [&](std::int64_t n) {
        if (n > 0)
            tokens.fetch_add(n, std::memory_order_relaxed);
    };

    // Coordinator-only state (worker 0 is the only writer).
    double lastCkptSeconds = elapsed();
    bool nearLimitSnapshotDone = false;

    // Decide/execute a checkpoint rendezvous; runs on worker 0 at the
    // top of its loop, i.e. while it holds no work item itself.
    auto coordinate = [&]() {
        const bool wantInterrupt = interruptRequested();
        const bool wantPeriodic =
            ckpt->everySeconds > 0.0 &&
            elapsed() - lastCkptSeconds >= ckpt->everySeconds;
        const bool memBound = limits.maxMemoryBytes != 0;
        std::uint64_t mem = memBound ? estimate_memory() : 0;
        // Ladder rung 1 (lossless, no snapshot needed): shed cold
        // store regions to disk before escalating to a rendezvous.
        if (memBound && mem > limits.maxMemoryBytes && try_shed())
            mem = estimate_memory();
        const bool wantMemory =
            memBound && (mem > limits.maxMemoryBytes ||
                         (!nearLimitSnapshotDone &&
                          mem * 10 > limits.maxMemoryBytes * 9));
        if (!wantInterrupt && !wantPeriodic && !wantMemory)
            return;

        pauseRequested.store(true, std::memory_order_release);
        while (pausedCount.load(std::memory_order_acquire) + 1 <
               alive.load(std::memory_order_acquire)) {
            if (stop.load(std::memory_order_relaxed)) {
                pauseRequested.store(false,
                                     std::memory_order_release);
                return; // a violation/limit beat us; nothing to save
            }
            std::this_thread::yield();
        }

        write_snapshot();
        lastCkptSeconds = elapsed();
        if (memBound)
            nearLimitSnapshotDone = true;

        if (wantInterrupt) {
            report_interrupted();
        } else if (memBound) {
            mem = estimate_memory();
            // Rung 1 again post-snapshot (the snapshot buffer may
            // have paged regions back in), then the lossy rung.
            if (mem > limits.maxMemoryBytes && try_shed())
                mem = estimate_memory();
            if (mem > limits.maxMemoryBytes &&
                traceOn.load(std::memory_order_relaxed)) {
                // Shed the predecessor links — exact counts survive,
                // traces don't — and keep exploring.
                for (auto &sh : shards) {
                    std::lock_guard<std::mutex> g(sh.mu);
                    sh.parents.clear();
                    sh.parents.shrink_to_fit();
                    sh.ruleOf.clear();
                    sh.ruleOf.shrink_to_fit();
                    sh.depthOf.clear();
                    sh.depthOf.shrink_to_fit();
                }
                traceOn.store(false, std::memory_order_relaxed);
                degradedTrace = true;
                mem = estimate_memory();
            }
            if (mem > limits.maxMemoryBytes)
                report_limit();
        }
        pauseRequested.store(false, std::memory_order_release);
    };

    auto worker = [&](unsigned wid) {
        alive.fetch_add(1, std::memory_order_acq_rel);
        WorkItem item;
        // Reusable expansion scratch. Each dequeued state is expanded
        // in two phases: GENERATE fires every enabled rule through the
        // flat tables into batchBuf (buffers recycled across
        // expansions, no per-firing allocation), then PROCESS groups
        // the successors by owning shard and interns each group under
        // ONE lock acquisition instead of one per successor.
        VState cur;
        std::vector<VState> batchBuf;
        std::vector<std::uint32_t> batchRule;
        std::vector<std::uint64_t> batchHash;
        std::vector<std::uint8_t> batchIdent; // canon-identity flags
        std::vector<std::uint32_t> order; // batch indices, shard-sorted
        std::vector<const std::uint8_t *> ptrs;
        std::vector<std::uint64_t> hashes;
        std::vector<std::pair<std::uint32_t, bool>> ids;
        std::vector<WorkItem> pushList;
        // Index-path scratch: the popped item's bitset and the
        // pre-canonicalization probe buffer, plus worker-local
        // counters flushed to the atomics once at exit.
        std::array<std::uint64_t, 4> curBits{};
        VState preBuf;
        std::uint64_t guardEvalsL = 0;
        std::uint64_t guardSkippedL = 0;
        std::uint64_t identityHitsL = 0;
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                break;
            if (wid == 0 && ckptActive)
                coordinate();
            if (pauseRequested.load(std::memory_order_acquire) &&
                wid != 0) {
                pausedCount.fetch_add(1, std::memory_order_acq_rel);
                while (pauseRequested.load(
                           std::memory_order_acquire) &&
                       !stop.load(std::memory_order_relaxed))
                    std::this_thread::yield();
                pausedCount.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            bool got = queues[wid].pop(item);
            for (unsigned k = 1; !got && k < nthreads; ++k)
                got = queues[(wid + k) % nthreads].steal(item);
            if (!got) {
                if (inFlight.load(std::memory_order_acquire) == 0)
                    break;
                std::this_thread::yield();
                continue;
            }
            // Cooperative bound check, once per expansion like the
            // sequential loop's check per pop. With checkpointing on,
            // the memory bound is the coordinator's job (it must
            // snapshot and degrade before declaring defeat).
            if (statesTotal.load(std::memory_order_relaxed) >=
                    limits.maxStates ||
                elapsed() > limits.maxSeconds ||
                (!ckptActive && limits.maxMemoryBytes != 0 &&
                 estimate_memory() > limits.maxMemoryBytes &&
                 !try_shed())) {
                report_limit();
                inFlight.fetch_sub(1, std::memory_order_release);
                break;
            }
            // The popped id was published through the frontier (the
            // push's release store / the queue mutex) after its bytes
            // were interned under the owning shard's mutex, so this
            // lock-free arena read is happens-after the write (see
            // mpmc_ring.hpp's happens-before contract). Compact
            // stores hold fingerprints only; the bytes ride in the
            // work item instead.
            if (compact)
                cur = std::move(item.state);
            else
                shards[item.id >> 32].store->copyTo(
                    static_cast<std::uint32_t>(item.id &
                                               0xffffffffULL),
                    cur);

            // GENERATE: fire every enabled rule into the batch. With
            // the index, a valid parent bitset replaces the full
            // guard scan (set bits fire in ascending rule order, the
            // same order as the scan); otherwise the scan rebuilds
            // the bitset as it goes.
            bool any_enabled = false;
            bool stopped = false;
            std::size_t batchN = 0;
            bool curBitsOk = useIndex && item.bitsOk != 0;
            if (curBitsOk)
                curBits = item.bits;
            auto fire = [&](std::size_t r) {
                if (batchN == batchBuf.size()) {
                    batchBuf.emplace_back();
                    batchRule.push_back(0);
                    batchHash.push_back(0);
                    batchIdent.push_back(0);
                }
                VState &nx = batchBuf[batchN];
                nx = cur;
                comp.effect(r, nx);
                // Canonicalizer-identity gate (see the sequential
                // engine): the child-bitset delta and the invariant
                // skip are only sound when nx IS its canonical
                // representative. The model's CanonicalCheck decides
                // cheaply; without one, canonicalize a copy and
                // compare.
                bool identical = true;
                if (canon) {
                    if (!useIndex) {
                        canon(nx);
                    } else if (canonCheck) {
                        identical = canonCheck(nx);
                        if (identical)
                            ++identityHitsL;
                        else
                            canon(nx);
                    } else {
                        preBuf = nx;
                        canon(nx);
                        identical = nx == preBuf;
                        if (identical)
                            ++identityHitsL;
                    }
                }
                batchIdent[batchN] = identical ? 1 : 0;
                batchRule[batchN] = static_cast<std::uint32_t>(r);
                batchHash[batchN] = stateHash(nx.data(), numVars);
                transitionsTotal.fetch_add(1,
                                           std::memory_order_relaxed);
                ruleFires[r].fetch_add(1, std::memory_order_relaxed);
                ++batchN;
            };
            if (curBitsOk) {
                for (std::size_t word = 0;
                     word < W && !stopped; ++word) {
                    std::uint64_t m = curBits[word];
                    while (m != 0) {
                        if (stop.load(std::memory_order_relaxed)) {
                            stopped = true;
                            break;
                        }
                        const int b = __builtin_ctzll(m);
                        m &= m - 1;
                        any_enabled = true;
                        fire(word * 64 +
                             static_cast<std::size_t>(b));
                    }
                }
            } else {
                if (useIndex)
                    curBits.fill(0);
                guardEvalsL += R;
                for (std::size_t r = 0; r < R; ++r) {
                    if (stop.load(std::memory_order_relaxed)) {
                        stopped = true;
                        break;
                    }
                    if (!comp.guard(r, cur))
                        continue;
                    any_enabled = true;
                    if (useIndex)
                        curBits[r >> 6] |= 1ULL << (r & 63);
                    fire(r);
                }
                // A scan cut short by stop leaves the bitset
                // incomplete; children pushed below must rescan.
                curBitsOk = useIndex && !stopped;
            }
            if (detect_deadlock && !any_enabled && !stopped)
                report_deadlock(cur);

            // PROCESS: shard-group the successors (stable sort keeps
            // rule order within a group, so trace links and local ids
            // stay aligned), then one canonicalize+intern pass per
            // group under its shard lock, publishing to the frontier
            // once at the end.
            order.resize(batchN);
            for (std::size_t i = 0; i < batchN; ++i)
                order[i] = static_cast<std::uint32_t>(i);
            std::stable_sort(
                order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                    return (batchHash[a] & (kShardCount - 1)) <
                           (batchHash[b] & (kShardCount - 1));
                });
            pushList.clear();
            bool limitHit = false;
            std::size_t gi = 0;
            while (gi < batchN && !limitHit) {
                const std::size_t sh =
                    batchHash[order[gi]] & (kShardCount - 1);
                std::size_t ge = gi;
                while (ge < batchN &&
                       (batchHash[order[ge]] & (kShardCount - 1)) ==
                           sh)
                    ++ge;
                const std::size_t groupSize = ge - gi;
                ptrs.resize(groupSize);
                hashes.resize(groupSize);
                ids.resize(groupSize);
                for (std::size_t k = 0; k < groupSize; ++k) {
                    const std::uint32_t bi = order[gi + k];
                    ptrs[k] = batchBuf[bi].data();
                    hashes[k] = batchHash[bi];
                }
                // The BFS parent is only a valid delta base when it
                // lives in this shard (delta records reference a
                // local arena id); cross-shard groups fall back to
                // the store's own last-interned base.
                const bool sameShard = (item.id >> 32) == sh;
                const std::uint32_t baseId =
                    sameShard ? static_cast<std::uint32_t>(
                                    item.id & 0xffffffffULL)
                              : StateStore::kNoId;
                const std::uint8_t *baseBytes =
                    sameShard && !compact ? cur.data() : nullptr;
                std::size_t processed = groupSize;
                std::int64_t freshCount = 0;
                std::uint64_t grewBy;
                {
                    std::lock_guard<std::mutex> g(shards[sh].mu);
                    StateStore &store = *shards[sh].store;
                    const std::uint64_t before = store.memoryBytes();
                    const bool tracing =
                        traceOn.load(std::memory_order_relaxed);
                    if (takeTokens(static_cast<std::int64_t>(
                            groupSize))) {
                        // Fast path: the whole group is admitted up
                        // front, so intern it blind (no lookups) and
                        // return the tokens duplicates didn't use.
                        store.internBatchHashed(
                            ptrs.data(), hashes.data(), groupSize,
                            baseId, baseBytes, ids.data());
                        for (std::size_t k = 0; k < groupSize; ++k) {
                            if (!ids[k].second)
                                continue;
                            ++freshCount;
                            if (tracing) {
                                shards[sh].parents.push_back(item.id);
                                shards[sh].ruleOf.push_back(
                                    batchRule[order[gi + k]]);
                                shards[sh].depthOf.push_back(
                                    item.depth + 1);
                            }
                        }
                        returnTokens(
                            static_cast<std::int64_t>(groupSize) -
                            freshCount);
                    } else {
                        // Near the bound: probe first so duplicates
                        // never consume tokens, and admit fresh
                        // states one token at a time until the budget
                        // is truly dry.
                        for (std::size_t k = 0; k < groupSize; ++k) {
                            const std::uint32_t found =
                                store.lookupHashed(ptrs[k],
                                                   hashes[k]);
                            if (found != StateStore::kNoId) {
                                ids[k] = {found, false};
                                continue;
                            }
                            bool admitted = false;
                            for (;;) {
                                if (takeTokens(1)) {
                                    admitted = true;
                                    break;
                                }
                                if (statesTotal.load(
                                        std::memory_order_relaxed) >=
                                    limits.maxStates)
                                    break; // dry, not just held
                                std::this_thread::yield();
                            }
                            if (!admitted) {
                                processed = k;
                                limitHit = true;
                                break;
                            }
                            ids[k] = store.internHashed(
                                ptrs[k], hashes[k], baseId,
                                baseBytes);
                            if (ids[k].second) {
                                // Publish immediately, NOT via the
                                // deferred freshCount flush: the next
                                // spin in this very loop must be able
                                // to observe this admission, or a
                                // worker holding the last token as an
                                // unflushed count would wait on
                                // itself forever.
                                statesTotal.fetch_add(
                                    1, std::memory_order_relaxed);
                                if (tracing) {
                                    shards[sh].parents.push_back(
                                        item.id);
                                    shards[sh].ruleOf.push_back(
                                        batchRule[order[gi + k]]);
                                    shards[sh].depthOf.push_back(
                                        item.depth + 1);
                                }
                            } else {
                                // An in-batch duplicate the probe
                                // missed is impossible (the probe
                                // sees earlier interns), but a dup
                                // would hand its token back here.
                                returnTokens(1);
                            }
                        }
                    }
                    // Fast-path flush, inside the critical section so
                    // the budget invariant (tokens consumed <=>
                    // statesTotal advanced) is restored before the
                    // lock drops. A fast-path holder never spins, so
                    // deferring its flush cannot deadlock a slow-path
                    // spinner — it only makes the spinner wait for
                    // this store pass to finish.
                    if (freshCount != 0)
                        statesTotal.fetch_add(
                            static_cast<std::uint64_t>(freshCount),
                            std::memory_order_relaxed);
                    grewBy = store.memoryBytes() - before;
                }
                if (grewBy != 0)
                    storeBytes.fetch_add(grewBy,
                                         std::memory_order_relaxed);
                for (std::size_t k = 0; k < processed; ++k) {
                    if (!ids[k].second)
                        continue;
                    const std::uint32_t bi = order[gi + k];
                    const VState &nx = batchBuf[bi];
                    const std::uint64_t nid = packId(sh, ids[k].first);
                    if (on_state) {
                        std::lock_guard<std::mutex> g(cbMu);
                        on_state(nx);
                    }
                    const bool ident =
                        useIndex && batchIdent[bi] != 0;
                    if (const int inv = failing_invariant(
                            nx, ident ? depIdx.affectedInvariants(
                                            batchRule[bi])
                                      : nullptr);
                        inv >= 0) {
                        report_violation(inv, nx, nid,
                                         item.depth + 1);
                        continue; // bad states are not expanded
                    }
                    WorkItem w{nid, item.depth + 1, {}};
                    if (ident && curBitsOk) {
                        // Identity successor with a valid parent
                        // bitset: copy it and re-evaluate only the
                        // guards the fired rule's writes can reach.
                        w.bits = curBits;
                        const std::uint64_t *aff =
                            depIdx.affectedRules(batchRule[bi]);
                        std::uint64_t nAff = 0;
                        for (std::size_t word = 0; word < W;
                             ++word) {
                            std::uint64_t m = aff[word];
                            while (m != 0) {
                                const int b = __builtin_ctzll(m);
                                m &= m - 1;
                                const std::size_t q =
                                    word * 64 +
                                    static_cast<std::size_t>(b);
                                const std::uint64_t mask =
                                    1ULL << (q & 63);
                                if (comp.guard(q, nx))
                                    w.bits[q >> 6] |= mask;
                                else
                                    w.bits[q >> 6] &= ~mask;
                                ++nAff;
                            }
                        }
                        guardEvalsL += nAff;
                        guardSkippedL += R - nAff;
                        w.bitsOk = 1;
                    }
                    if (compact)
                        w.state = nx;
                    pushList.push_back(std::move(w));
                }
                gi = ge;
            }
            if (limitHit) {
                // Interned successors above are already counted and
                // checked; nothing new gets expanded past the bound.
                report_limit();
                inFlight.fetch_sub(1, std::memory_order_release);
                break;
            }
            // Publish once: count the new work in before any of it
            // becomes poppable so in-flight never transiently reads
            // zero while items exist.
            if (!pushList.empty()) {
                inFlight.fetch_add(pushList.size(),
                                   std::memory_order_relaxed);
                for (auto &w : pushList)
                    queues[wid].push(std::move(w));
            }
            inFlight.fetch_sub(1, std::memory_order_release);
        }
        guardEvalsTotal.fetch_add(guardEvalsL,
                                  std::memory_order_relaxed);
        guardSkippedTotal.fetch_add(guardSkippedL,
                                    std::memory_order_relaxed);
        identityHitsTotal.fetch_add(identityHitsL,
                                    std::memory_order_relaxed);
        alive.fetch_sub(1, std::memory_order_acq_rel);
    };

    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned w = 0; w < nthreads; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();

    // Interrupt racing the fixpoint: if the signal arrived but a
    // worker had already drained the frontier, the run completed —
    // termStatus stays whatever the workers decided.
    if (ckptActive && interruptRequested() &&
        termStatus == VerifStatus::Interrupted &&
        result.checkpointsWritten == 0) {
        // The coordinator marked us interrupted but never wrote (all
        // other workers exited first); flush one final snapshot now
        // that every thread has joined.
        write_snapshot();
    }

    result.ruleFires.assign(rules.size(), 0);
    for (std::size_t r = 0; r < rules.size(); ++r)
        result.ruleFires[r] =
            ruleFires[r].load(std::memory_order_relaxed);
    result.transitionsFired =
        transitionsTotal.load(std::memory_order_relaxed);
    result.invariantChecks =
        invChecksTotal.load(std::memory_order_relaxed);
    result.guardEvals =
        guardEvalsTotal.load(std::memory_order_relaxed);
    result.guardEvalsSkipped =
        guardSkippedTotal.load(std::memory_order_relaxed);
    result.canonIdentityHits =
        identityHitsTotal.load(std::memory_order_relaxed);
    // Parallel workers keep the batch-copy fire path (the shard-
    // grouped intern reads every successor's bytes after the whole
    // batch is generated), so inPlaceFirings stays 0 here.
    std::uint64_t visited = 0;
    for (const Shard &s : shards)
        visited += s.store->size();
    result.statesExplored = visited;
    result.memoryBytes = estimate_memory();
    result.degradedTrace = degradedTrace;
    note_store();

    result.status = termStatus;
    if (termStatus == VerifStatus::InvariantViolated) {
        result.violatedInvariant = invs[vioInv].name;
        result.badState = ts.describe(vioState);
        if (keep_trace && !degradedTrace) {
            std::vector<std::string> names;
            std::uint64_t id = vioId;
            for (;;) {
                const Shard &sh = shards[id >> 32];
                const auto local =
                    static_cast<std::size_t>(id & 0xffffffffULL);
                if (sh.depthOf[local] == 0)
                    break;
                names.push_back(rules[sh.ruleOf[local]].name);
                id = sh.parents[local];
            }
            std::reverse(names.begin(), names.end());
            result.trace = std::move(names);
        }
    } else if (termStatus == VerifStatus::Deadlock) {
        result.badState = ts.describe(deadState);
    }

    // Completed runs (verified or with a definitive verdict) leave no
    // stale snapshot behind; interrupted and bound-exceeded runs keep
    // theirs for --resume.
    if (ckptActive && (termStatus == VerifStatus::Verified ||
                       termStatus == VerifStatus::InvariantViolated ||
                       termStatus == VerifStatus::Deadlock))
        removeSnapshot(ckptPath);

    result.seconds = elapsed();
    return result;
}

} // namespace

ExploreResult
exploreParallel(const TransitionSystem &ts, const ExploreLimits &limits,
                bool detect_deadlock, bool keep_trace,
                const std::function<void(const VState &)> &on_state)
{
    if (limits.frontier == FrontierKind::Mutex)
        return exploreParallelImpl<WorkQueue>(
            ts, limits, detect_deadlock, keep_trace, on_state);
    return exploreParallelImpl<RingQueue>(
        ts, limits, detect_deadlock, keep_trace, on_state);
}

} // namespace neo
