#include "parallel_explorer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "verif/checkpoint.hpp"

namespace neo
{

namespace
{

/** Shard count; a power of two so the hash folds with a mask. */
constexpr std::size_t kShardCount = 64;

/** Deque block + bookkeeping slack charged per work queue in the
 *  memory estimate, so N queues' standing overhead counts against
 *  maxMemoryBytes even when nearly empty. */
constexpr std::uint64_t kQueueSlackBytes = 4096;

/** Predecessor link for one discovered state (trace rebuilding). */
struct Record
{
    std::uint64_t parent; ///< packed (shard, index) of the parent
    std::uint32_t rule;
    std::uint32_t depth;
};

/** One slice of the visited set: states whose canonical hash folds to
 *  this shard, each mapped to its shard-local index. */
struct Shard
{
    std::mutex mu;
    std::unordered_map<VState, std::uint32_t, VStateHash> ids;
    std::vector<Record> recs; ///< indexed like ids' values; keep_trace only
};

struct WorkItem
{
    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    VState state;
};

/** Mutex-guarded deque. The owner consumes from the front (oldest
 *  first, keeping expansion approximately breadth-first, hence short
 *  counterexamples); thieves take from the back so they don't contend
 *  with the owner's end. */
class WorkQueue
{
  public:
    void
    push(WorkItem &&w)
    {
        std::lock_guard<std::mutex> g(mu_);
        q_.push_back(std::move(w));
    }

    bool
    pop(WorkItem &out)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    bool
    steal(WorkItem &out)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (q_.empty())
            return false;
        out = std::move(q_.back());
        q_.pop_back();
        return true;
    }

    /** Visit every queued item (checkpoint serialization; called only
     *  while all workers are paused, so contention-free). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        std::lock_guard<std::mutex> g(mu_);
        for (const WorkItem &w : q_)
            fn(w);
    }

  private:
    std::mutex mu_;
    std::deque<WorkItem> q_;
};

inline std::uint64_t
packId(std::size_t shard, std::uint32_t local)
{
    return (static_cast<std::uint64_t>(shard) << 32) | local;
}

} // namespace

ExploreResult
exploreParallel(const TransitionSystem &ts, const ExploreLimits &limits,
                bool detect_deadlock, bool keep_trace,
                const std::function<void(const VState &)> &on_state)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const unsigned nthreads = limits.threads > 1 ? limits.threads : 2;

    ExploreResult result;
    const auto &rules = ts.rules();
    const auto &canon = ts.canonicalizer();
    const auto &invs = ts.invariants();

    const CheckpointConfig *ckpt = limits.checkpoint;
    const bool ckptActive = ckpt != nullptr && !ckpt->dir.empty();
    const std::string ckptPath =
        ckptActive ? exploreSnapshotPath(*ckpt) : std::string();
    const std::uint64_t fingerprint =
        ckptActive ? modelFingerprint(ts) : 0;
    double baseSeconds = 0.0;

    std::vector<Shard> shards(kShardCount);
    std::vector<WorkQueue> queues(nthreads);

    std::atomic<std::uint64_t> statesTotal{0};
    std::atomic<std::uint64_t> transitionsTotal{0};
    std::vector<std::atomic<std::uint64_t>> ruleFires(rules.size());
    /** Queued + currently-expanding items; 0 means the fixpoint. */
    std::atomic<std::uint64_t> inFlight{0};
    std::atomic<bool> stop{false};
    /** Runtime keep_trace; cleared when memory pressure sheds the
     *  predecessor records mid-run. */
    std::atomic<bool> traceOn{keep_trace};
    bool degradedTrace = false; // mutated only at safe points

    // Checkpoint rendezvous: worker 0 (the coordinator) raises
    // pauseRequested; every other live worker parks at the top of its
    // loop, which guarantees no expansion is in progress — every
    // in-flight item sits in some queue, so shards + queues + the
    // counters form a consistent cut to serialize.
    std::atomic<bool> pauseRequested{false};
    std::atomic<unsigned> pausedCount{0};
    std::atomic<unsigned> alive{0};

    // Terminal outcome. A violation or deadlock beats a bound; among
    // violations discovered by different workers the smallest
    // (depth, invariant index, state bytes) wins, so the report is
    // deterministic once the racing workers have drained.
    std::mutex termMu;
    VerifStatus termStatus = VerifStatus::Verified;
    std::uint32_t vioDepth = 0;
    std::size_t vioInv = 0;
    std::uint64_t vioId = 0;
    VState vioState;
    VState deadState;

    std::mutex cbMu; // serializes the caller's on_state callback

    auto elapsed = [&]() {
        return baseSeconds +
               std::chrono::duration<double>(Clock::now() - t0).count();
    };

    // Same accounting as the sequential explorer, with the shard
    // Record standing in for its predecessor pair, plus the standing
    // shard/queue structures and — when checkpointing — the snapshot
    // serialization buffer, so the bound holds on the robust path too.
    auto estimate_memory = [&]() -> std::uint64_t {
        const bool tracing = traceOn.load(std::memory_order_relaxed);
        const std::uint64_t per_visited =
            sizeof(VState) + ts.numVars() + 8 + 32;
        const std::uint64_t per_trace =
            tracing ? sizeof(Record) : 0;
        const std::uint64_t per_frontier =
            sizeof(WorkItem) + ts.numVars();
        const std::uint64_t per_ckpt_state =
            ckptActive ? ts.numVars() + (tracing ? 16 : 0) : 0;
        const std::uint64_t per_ckpt_frontier =
            ckptActive ? ts.numVars() + 12 : 0;
        const std::uint64_t structural =
            kShardCount * sizeof(Shard) +
            static_cast<std::uint64_t>(nthreads) * kQueueSlackBytes;
        return statesTotal.load(std::memory_order_relaxed) *
                   (per_visited + per_trace + per_ckpt_state) +
               inFlight.load(std::memory_order_relaxed) *
                   (per_frontier + per_ckpt_frontier) +
               structural;
    };

    auto failing_invariant = [&](const VState &s) -> int {
        for (std::size_t i = 0; i < invs.size(); ++i) {
            if (!invs[i].check(s))
                return static_cast<int>(i);
        }
        return -1;
    };

    auto report_violation = [&](int inv, const VState &s,
                                std::uint64_t id, std::uint32_t depth) {
        const std::size_t invIdx = static_cast<std::size_t>(inv);
        std::lock_guard<std::mutex> g(termMu);
        const bool better =
            termStatus != VerifStatus::InvariantViolated ||
            std::tie(depth, invIdx, s) <
                std::tie(vioDepth, vioInv, vioState);
        if (better) {
            termStatus = VerifStatus::InvariantViolated;
            vioDepth = depth;
            vioInv = invIdx;
            vioId = id;
            vioState = s;
        }
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_deadlock = [&](const VState &s) {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified ||
            termStatus == VerifStatus::LimitExceeded) {
            termStatus = VerifStatus::Deadlock;
            deadState = s;
        }
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_limit = [&]() {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified)
            termStatus = VerifStatus::LimitExceeded;
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_interrupted = [&]() {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified)
            termStatus = VerifStatus::Interrupted;
        stop.store(true, std::memory_order_relaxed);
    };

    // Serialize the paused run into the canonical explore-snapshot
    // layout: states shard-major in local-insertion order, packed ids
    // remapped onto dense indices. Caller guarantees quiescence.
    auto write_snapshot = [&]() {
        const bool tracing = traceOn.load(std::memory_order_relaxed);
        ExploreSnapshot snap;
        snap.elapsedSeconds = elapsed();
        snap.transitionsFired =
            transitionsTotal.load(std::memory_order_relaxed);
        snap.ruleFires.resize(rules.size());
        for (std::size_t r = 0; r < rules.size(); ++r)
            snap.ruleFires[r] =
                ruleFires[r].load(std::memory_order_relaxed);

        std::array<std::uint64_t, kShardCount> prefix{};
        std::uint64_t total = 0;
        for (std::size_t sh = 0; sh < kShardCount; ++sh) {
            prefix[sh] = total;
            std::lock_guard<std::mutex> g(shards[sh].mu);
            total += shards[sh].ids.size();
        }
        auto dense = [&](std::uint64_t packed) {
            return prefix[packed >> 32] + (packed & 0xffffffffULL);
        };

        snap.states.assign(static_cast<std::size_t>(total), VState{});
        snap.hasLinks = tracing;
        if (tracing)
            snap.links.assign(static_cast<std::size_t>(total),
                              ExploreSnapshot::Link{});
        for (std::size_t sh = 0; sh < kShardCount; ++sh) {
            std::lock_guard<std::mutex> g(shards[sh].mu);
            for (const auto &[state, local] : shards[sh].ids)
                snap.states[prefix[sh] + local] = state;
            if (tracing) {
                for (std::uint32_t local = 0;
                     local < shards[sh].recs.size(); ++local) {
                    const Record &rec = shards[sh].recs[local];
                    snap.links[prefix[sh] + local] =
                        ExploreSnapshot::Link{
                            rec.depth == 0 ? 0 : dense(rec.parent),
                            rec.rule, rec.depth};
                }
            }
        }
        for (auto &q : queues) {
            q.forEach([&](const WorkItem &w) {
                snap.frontier.push_back(ExploreSnapshot::FrontierItem{
                    dense(w.id), w.depth, w.state});
            });
        }
        const std::vector<std::uint8_t> payload =
            encodeExploreSnapshot(snap, ts.numVars());
        std::string err;
        if (!writeSnapshotFile(ckptPath, SnapshotKind::Explore,
                               fingerprint, payload, err)) {
            neo_warn("checkpoint not written: ", err);
            return;
        }
        ++result.checkpointsWritten;
        result.lastSnapshotBytes = payload.size();
    };

    bool fresh = true;
    if (ckptActive && ckpt->resume && snapshotExists(ckptPath)) {
        std::vector<std::uint8_t> payload;
        std::string err;
        if (!readSnapshotFile(ckptPath, SnapshotKind::Explore,
                              fingerprint, payload, err))
            neo_fatal("cannot resume: ", err);
        ExploreSnapshot snap;
        if (!decodeExploreSnapshot(payload, ts.numVars(),
                                   rules.size(), snap, err))
            neo_fatal("cannot resume: ", ckptPath, ": ", err);
        baseSeconds = snap.elapsedSeconds;
        transitionsTotal.store(snap.transitionsFired,
                               std::memory_order_relaxed);
        for (std::size_t r = 0; r < rules.size(); ++r)
            ruleFires[r].store(snap.ruleFires[r],
                               std::memory_order_relaxed);

        const bool tracing = keep_trace && snap.hasLinks;
        if (keep_trace && !snap.hasLinks) {
            traceOn.store(false, std::memory_order_relaxed);
            degradedTrace = true;
        }
        // Pass 1: shard-major reinsertion; the shard of a state is a
        // pure hash, so each lands where the writer had it, and file
        // order preserves the per-shard local indices.
        std::vector<std::uint64_t> denseToPacked(snap.states.size());
        for (std::size_t i = 0; i < snap.states.size(); ++i) {
            const std::size_t sh =
                VStateHash{}(snap.states[i]) & (kShardCount - 1);
            const auto local =
                static_cast<std::uint32_t>(shards[sh].ids.size());
            shards[sh].ids.emplace(snap.states[i], local);
            denseToPacked[i] = packId(sh, local);
        }
        // Pass 2: predecessor records, parents remapped to packed ids
        // (a parent's dense index may live in a later shard, hence
        // the separate pass).
        if (tracing) {
            for (std::size_t i = 0; i < snap.states.size(); ++i) {
                const auto &l = snap.links[i];
                const std::size_t sh = denseToPacked[i] >> 32;
                shards[sh].recs.push_back(Record{
                    denseToPacked[l.parent], l.rule, l.depth});
            }
        }
        std::uint64_t nq = 0;
        for (const auto &fi : snap.frontier) {
            queues[nq++ % nthreads].push(
                WorkItem{denseToPacked[fi.id], fi.depth, fi.state});
        }
        statesTotal.store(snap.states.size(),
                          std::memory_order_relaxed);
        inFlight.store(snap.frontier.size(),
                       std::memory_order_relaxed);
        if (on_state) {
            for (const auto &s : snap.states)
                on_state(s);
        }
        result.resumed = true;
        result.restoredStates = snap.states.size();
        fresh = false;
    }

    if (fresh) {
        // Seed with the canonical initial state (mirrors the
        // sequential explorer's pre-loop block, including the early
        // violation exit).
        VState init = ts.initialState();
        if (canon)
            canon(init);
        std::uint64_t initId;
        {
            const std::size_t sh =
                VStateHash{}(init) & (kShardCount - 1);
            shards[sh].ids.emplace(init, 0);
            if (keep_trace)
                shards[sh].recs.push_back(Record{0, 0, 0});
            initId = packId(sh, 0);
        }
        statesTotal.store(1, std::memory_order_relaxed);
        if (on_state)
            on_state(init);
        if (const int inv = failing_invariant(init); inv >= 0) {
            result.ruleFires.assign(rules.size(), 0);
            result.status = VerifStatus::InvariantViolated;
            result.violatedInvariant =
                invs[static_cast<std::size_t>(inv)].name;
            result.badState = ts.describe(init);
            result.statesExplored = 1;
            result.seconds = elapsed();
            return result;
        }
        queues[0].push(WorkItem{initId, 0, init});
        inFlight.store(1, std::memory_order_relaxed);
    }

    // Coordinator-only state (worker 0 is the only writer).
    double lastCkptSeconds = elapsed();
    bool nearLimitSnapshotDone = false;

    // Decide/execute a checkpoint rendezvous; runs on worker 0 at the
    // top of its loop, i.e. while it holds no work item itself.
    auto coordinate = [&]() {
        const bool wantInterrupt = interruptRequested();
        const bool wantPeriodic =
            ckpt->everySeconds > 0.0 &&
            elapsed() - lastCkptSeconds >= ckpt->everySeconds;
        const bool memBound = limits.maxMemoryBytes != 0;
        std::uint64_t mem = memBound ? estimate_memory() : 0;
        const bool wantMemory =
            memBound && (mem > limits.maxMemoryBytes ||
                         (!nearLimitSnapshotDone &&
                          mem * 10 > limits.maxMemoryBytes * 9));
        if (!wantInterrupt && !wantPeriodic && !wantMemory)
            return;

        pauseRequested.store(true, std::memory_order_release);
        while (pausedCount.load(std::memory_order_acquire) + 1 <
               alive.load(std::memory_order_acquire)) {
            if (stop.load(std::memory_order_relaxed)) {
                pauseRequested.store(false,
                                     std::memory_order_release);
                return; // a violation/limit beat us; nothing to save
            }
            std::this_thread::yield();
        }

        write_snapshot();
        lastCkptSeconds = elapsed();
        if (memBound)
            nearLimitSnapshotDone = true;

        if (wantInterrupt) {
            report_interrupted();
        } else if (memBound) {
            mem = estimate_memory();
            if (mem > limits.maxMemoryBytes &&
                traceOn.load(std::memory_order_relaxed)) {
                // Shed the predecessor records — exact counts
                // survive, traces don't — and keep exploring.
                for (auto &sh : shards) {
                    std::lock_guard<std::mutex> g(sh.mu);
                    sh.recs.clear();
                    sh.recs.shrink_to_fit();
                }
                traceOn.store(false, std::memory_order_relaxed);
                degradedTrace = true;
                mem = estimate_memory();
            }
            if (mem > limits.maxMemoryBytes)
                report_limit();
        }
        pauseRequested.store(false, std::memory_order_release);
    };

    auto worker = [&](unsigned wid) {
        alive.fetch_add(1, std::memory_order_acq_rel);
        WorkItem item;
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                break;
            if (wid == 0 && ckptActive)
                coordinate();
            if (pauseRequested.load(std::memory_order_acquire) &&
                wid != 0) {
                pausedCount.fetch_add(1, std::memory_order_acq_rel);
                while (pauseRequested.load(
                           std::memory_order_acquire) &&
                       !stop.load(std::memory_order_relaxed))
                    std::this_thread::yield();
                pausedCount.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            bool got = queues[wid].pop(item);
            for (unsigned k = 1; !got && k < nthreads; ++k)
                got = queues[(wid + k) % nthreads].steal(item);
            if (!got) {
                if (inFlight.load(std::memory_order_acquire) == 0)
                    break;
                std::this_thread::yield();
                continue;
            }
            // Cooperative bound check, once per expansion like the
            // sequential loop's check per pop. With checkpointing on,
            // the memory bound is the coordinator's job (it must
            // snapshot and degrade before declaring defeat).
            if (statesTotal.load(std::memory_order_relaxed) >=
                    limits.maxStates ||
                elapsed() > limits.maxSeconds ||
                (!ckptActive && limits.maxMemoryBytes != 0 &&
                 estimate_memory() > limits.maxMemoryBytes)) {
                report_limit();
                inFlight.fetch_sub(1, std::memory_order_release);
                break;
            }
            bool any_enabled = false;
            for (std::size_t r = 0; r < rules.size(); ++r) {
                if (stop.load(std::memory_order_relaxed))
                    break;
                if (!rules[r].guard(item.state))
                    continue;
                any_enabled = true;
                VState next = item.state;
                rules[r].effect(next);
                transitionsTotal.fetch_add(1, std::memory_order_relaxed);
                ruleFires[r].fetch_add(1, std::memory_order_relaxed);
                if (canon)
                    canon(next);
                const std::size_t sh =
                    VStateHash{}(next) & (kShardCount - 1);
                std::uint32_t local;
                bool inserted;
                {
                    std::lock_guard<std::mutex> g(shards[sh].mu);
                    auto [it, ins] = shards[sh].ids.emplace(
                        next, static_cast<std::uint32_t>(
                                  shards[sh].ids.size()));
                    inserted = ins;
                    local = it->second;
                    if (ins &&
                        traceOn.load(std::memory_order_relaxed))
                        shards[sh].recs.push_back(
                            Record{item.id,
                                   static_cast<std::uint32_t>(r),
                                   item.depth + 1});
                }
                if (!inserted)
                    continue;
                statesTotal.fetch_add(1, std::memory_order_relaxed);
                const std::uint64_t nid = packId(sh, local);
                if (on_state) {
                    std::lock_guard<std::mutex> g(cbMu);
                    on_state(next);
                }
                if (const int inv = failing_invariant(next); inv >= 0) {
                    report_violation(inv, next, nid, item.depth + 1);
                    continue; // bad states are not expanded
                }
                inFlight.fetch_add(1, std::memory_order_relaxed);
                queues[wid].push(
                    WorkItem{nid, item.depth + 1, std::move(next)});
            }
            if (detect_deadlock && !any_enabled)
                report_deadlock(item.state);
            inFlight.fetch_sub(1, std::memory_order_release);
        }
        alive.fetch_sub(1, std::memory_order_acq_rel);
    };

    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned w = 0; w < nthreads; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();

    // Interrupt racing the fixpoint: if the signal arrived but a
    // worker had already drained the frontier, the run completed —
    // termStatus stays whatever the workers decided.
    if (ckptActive && interruptRequested() &&
        termStatus == VerifStatus::Interrupted &&
        result.checkpointsWritten == 0) {
        // The coordinator marked us interrupted but never wrote (all
        // other workers exited first); flush one final snapshot now
        // that every thread has joined.
        write_snapshot();
    }

    result.ruleFires.assign(rules.size(), 0);
    for (std::size_t r = 0; r < rules.size(); ++r)
        result.ruleFires[r] =
            ruleFires[r].load(std::memory_order_relaxed);
    result.transitionsFired =
        transitionsTotal.load(std::memory_order_relaxed);
    std::uint64_t visited = 0;
    for (const Shard &s : shards)
        visited += s.ids.size();
    result.statesExplored = visited;
    result.memoryBytes = estimate_memory();
    result.degradedTrace = degradedTrace;

    result.status = termStatus;
    if (termStatus == VerifStatus::InvariantViolated) {
        result.violatedInvariant = invs[vioInv].name;
        result.badState = ts.describe(vioState);
        if (keep_trace && !degradedTrace) {
            std::vector<std::string> names;
            std::uint64_t id = vioId;
            for (;;) {
                const Record &rec =
                    shards[id >> 32].recs[id & 0xffffffffULL];
                if (rec.depth == 0)
                    break;
                names.push_back(rules[rec.rule].name);
                id = rec.parent;
            }
            std::reverse(names.begin(), names.end());
            result.trace = std::move(names);
        }
    } else if (termStatus == VerifStatus::Deadlock) {
        result.badState = ts.describe(deadState);
    }

    // Completed runs (verified or with a definitive verdict) leave no
    // stale snapshot behind; interrupted and bound-exceeded runs keep
    // theirs for --resume.
    if (ckptActive && (termStatus == VerifStatus::Verified ||
                       termStatus == VerifStatus::InvariantViolated ||
                       termStatus == VerifStatus::Deadlock))
        removeSnapshot(ckptPath);

    result.seconds = elapsed();
    return result;
}

} // namespace neo
