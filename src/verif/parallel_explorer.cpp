#include "parallel_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>

namespace neo
{

namespace
{

/** Shard count; a power of two so the hash folds with a mask. */
constexpr std::size_t kShardCount = 64;

/** Predecessor link for one discovered state (trace rebuilding). */
struct Record
{
    std::uint64_t parent; ///< packed (shard, index) of the parent
    std::uint32_t rule;
    std::uint32_t depth;
};

/** One slice of the visited set: states whose canonical hash folds to
 *  this shard, each mapped to its shard-local index. */
struct Shard
{
    std::mutex mu;
    std::unordered_map<VState, std::uint32_t, VStateHash> ids;
    std::vector<Record> recs; ///< indexed like ids' values; keep_trace only
};

struct WorkItem
{
    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    VState state;
};

/** Mutex-guarded deque. The owner consumes from the front (oldest
 *  first, keeping expansion approximately breadth-first, hence short
 *  counterexamples); thieves take from the back so they don't contend
 *  with the owner's end. */
class WorkQueue
{
  public:
    void
    push(WorkItem &&w)
    {
        std::lock_guard<std::mutex> g(mu_);
        q_.push_back(std::move(w));
    }

    bool
    pop(WorkItem &out)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    bool
    steal(WorkItem &out)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (q_.empty())
            return false;
        out = std::move(q_.back());
        q_.pop_back();
        return true;
    }

  private:
    std::mutex mu_;
    std::deque<WorkItem> q_;
};

inline std::uint64_t
packId(std::size_t shard, std::uint32_t local)
{
    return (static_cast<std::uint64_t>(shard) << 32) | local;
}

} // namespace

ExploreResult
exploreParallel(const TransitionSystem &ts, const ExploreLimits &limits,
                bool detect_deadlock, bool keep_trace,
                const std::function<void(const VState &)> &on_state)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const unsigned nthreads = limits.threads > 1 ? limits.threads : 2;

    ExploreResult result;
    const auto &rules = ts.rules();
    const auto &canon = ts.canonicalizer();
    const auto &invs = ts.invariants();

    std::vector<Shard> shards(kShardCount);
    std::vector<WorkQueue> queues(nthreads);

    std::atomic<std::uint64_t> statesTotal{0};
    std::atomic<std::uint64_t> transitionsTotal{0};
    std::vector<std::atomic<std::uint64_t>> ruleFires(rules.size());
    /** Queued + currently-expanding items; 0 means the fixpoint. */
    std::atomic<std::uint64_t> inFlight{0};
    std::atomic<bool> stop{false};

    // Terminal outcome. A violation or deadlock beats a bound; among
    // violations discovered by different workers the smallest
    // (depth, invariant index, state bytes) wins, so the report is
    // deterministic once the racing workers have drained.
    std::mutex termMu;
    VerifStatus termStatus = VerifStatus::Verified;
    std::uint32_t vioDepth = 0;
    std::size_t vioInv = 0;
    std::uint64_t vioId = 0;
    VState vioState;
    VState deadState;

    std::mutex cbMu; // serializes the caller's on_state callback

    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    // Same accounting as the sequential explorer, with the shard
    // Record standing in for its predecessor pair.
    auto estimate_memory = [&]() -> std::uint64_t {
        const std::uint64_t per_visited =
            sizeof(VState) + ts.numVars() + 8 + 32;
        const std::uint64_t per_trace =
            keep_trace ? sizeof(Record) : 0;
        const std::uint64_t per_frontier =
            sizeof(WorkItem) + ts.numVars();
        return statesTotal.load(std::memory_order_relaxed) *
                   (per_visited + per_trace) +
               inFlight.load(std::memory_order_relaxed) * per_frontier;
    };

    auto failing_invariant = [&](const VState &s) -> int {
        for (std::size_t i = 0; i < invs.size(); ++i) {
            if (!invs[i].check(s))
                return static_cast<int>(i);
        }
        return -1;
    };

    auto report_violation = [&](int inv, const VState &s,
                                std::uint64_t id, std::uint32_t depth) {
        const std::size_t invIdx = static_cast<std::size_t>(inv);
        std::lock_guard<std::mutex> g(termMu);
        const bool better =
            termStatus != VerifStatus::InvariantViolated ||
            std::tie(depth, invIdx, s) <
                std::tie(vioDepth, vioInv, vioState);
        if (better) {
            termStatus = VerifStatus::InvariantViolated;
            vioDepth = depth;
            vioInv = invIdx;
            vioId = id;
            vioState = s;
        }
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_deadlock = [&](const VState &s) {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified ||
            termStatus == VerifStatus::LimitExceeded) {
            termStatus = VerifStatus::Deadlock;
            deadState = s;
        }
        stop.store(true, std::memory_order_relaxed);
    };

    auto report_limit = [&]() {
        std::lock_guard<std::mutex> g(termMu);
        if (termStatus == VerifStatus::Verified)
            termStatus = VerifStatus::LimitExceeded;
        stop.store(true, std::memory_order_relaxed);
    };

    // Seed with the canonical initial state (mirrors the sequential
    // explorer's pre-loop block, including the early violation exit).
    VState init = ts.initialState();
    if (canon)
        canon(init);
    std::uint64_t initId;
    {
        const std::size_t sh = VStateHash{}(init) & (kShardCount - 1);
        shards[sh].ids.emplace(init, 0);
        if (keep_trace)
            shards[sh].recs.push_back(Record{0, 0, 0});
        initId = packId(sh, 0);
    }
    statesTotal.store(1, std::memory_order_relaxed);
    if (on_state)
        on_state(init);
    if (const int inv = failing_invariant(init); inv >= 0) {
        result.ruleFires.assign(rules.size(), 0);
        result.status = VerifStatus::InvariantViolated;
        result.violatedInvariant = invs[static_cast<std::size_t>(inv)].name;
        result.badState = ts.describe(init);
        result.statesExplored = 1;
        result.seconds = elapsed();
        return result;
    }
    queues[0].push(WorkItem{initId, 0, init});
    inFlight.store(1, std::memory_order_relaxed);

    auto worker = [&](unsigned wid) {
        WorkItem item;
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                return;
            bool got = queues[wid].pop(item);
            for (unsigned k = 1; !got && k < nthreads; ++k)
                got = queues[(wid + k) % nthreads].steal(item);
            if (!got) {
                if (inFlight.load(std::memory_order_acquire) == 0)
                    return;
                std::this_thread::yield();
                continue;
            }
            // Cooperative bound check, once per expansion like the
            // sequential loop's check per pop.
            if (statesTotal.load(std::memory_order_relaxed) >=
                    limits.maxStates ||
                elapsed() > limits.maxSeconds ||
                (limits.maxMemoryBytes != 0 &&
                 estimate_memory() > limits.maxMemoryBytes)) {
                report_limit();
                inFlight.fetch_sub(1, std::memory_order_release);
                return;
            }
            bool any_enabled = false;
            for (std::size_t r = 0; r < rules.size(); ++r) {
                if (stop.load(std::memory_order_relaxed))
                    break;
                if (!rules[r].guard(item.state))
                    continue;
                any_enabled = true;
                VState next = item.state;
                rules[r].effect(next);
                transitionsTotal.fetch_add(1, std::memory_order_relaxed);
                ruleFires[r].fetch_add(1, std::memory_order_relaxed);
                if (canon)
                    canon(next);
                const std::size_t sh =
                    VStateHash{}(next) & (kShardCount - 1);
                std::uint32_t local;
                bool inserted;
                {
                    std::lock_guard<std::mutex> g(shards[sh].mu);
                    auto [it, ins] = shards[sh].ids.emplace(
                        next, static_cast<std::uint32_t>(
                                  shards[sh].ids.size()));
                    inserted = ins;
                    local = it->second;
                    if (ins && keep_trace)
                        shards[sh].recs.push_back(
                            Record{item.id,
                                   static_cast<std::uint32_t>(r),
                                   item.depth + 1});
                }
                if (!inserted)
                    continue;
                statesTotal.fetch_add(1, std::memory_order_relaxed);
                const std::uint64_t nid = packId(sh, local);
                if (on_state) {
                    std::lock_guard<std::mutex> g(cbMu);
                    on_state(next);
                }
                if (const int inv = failing_invariant(next); inv >= 0) {
                    report_violation(inv, next, nid, item.depth + 1);
                    continue; // bad states are not expanded
                }
                inFlight.fetch_add(1, std::memory_order_relaxed);
                queues[wid].push(
                    WorkItem{nid, item.depth + 1, std::move(next)});
            }
            if (detect_deadlock && !any_enabled)
                report_deadlock(item.state);
            inFlight.fetch_sub(1, std::memory_order_release);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned w = 0; w < nthreads; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();

    result.ruleFires.assign(rules.size(), 0);
    for (std::size_t r = 0; r < rules.size(); ++r)
        result.ruleFires[r] =
            ruleFires[r].load(std::memory_order_relaxed);
    result.transitionsFired =
        transitionsTotal.load(std::memory_order_relaxed);
    std::uint64_t visited = 0;
    for (const Shard &s : shards)
        visited += s.ids.size();
    result.statesExplored = visited;
    result.memoryBytes = estimate_memory();

    result.status = termStatus;
    if (termStatus == VerifStatus::InvariantViolated) {
        result.violatedInvariant = invs[vioInv].name;
        result.badState = ts.describe(vioState);
        if (keep_trace) {
            std::vector<std::string> names;
            std::uint64_t id = vioId;
            for (;;) {
                const Record &rec =
                    shards[id >> 32].recs[id & 0xffffffffULL];
                if (rec.depth == 0)
                    break;
                names.push_back(rules[rec.rule].name);
                id = rec.parent;
            }
            std::reverse(names.begin(), names.end());
            result.trace = std::move(names);
        }
    } else if (termStatus == VerifStatus::Deadlock) {
        result.badState = ts.describe(deadState);
    }

    result.seconds = elapsed();
    return result;
}

} // namespace neo
