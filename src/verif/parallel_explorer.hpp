/**
 * @file
 * Sharded parallel explicit-state reachability.
 *
 * N worker threads expand the frontier concurrently against a visited
 * set split into 64 shards by canonical-state hash; each shard is an
 * independently locked hash table, so insertions from different
 * workers rarely contend. Every worker owns a work deque and steals
 * from its neighbours when empty (PReach-style distributed
 * exploration, collapsed onto one address space).
 *
 * Equivalence contract with the sequential explorer (locked in by
 * tests/test_parallel_explorer.cpp): at a fixpoint, the set of
 * visited canonical states is identical — each state is inserted into
 * exactly one shard and expanded exactly once — so statesExplored,
 * transitionsFired, ruleFires and the final status are equal for any
 * thread count. What is NOT bit-identical across thread counts: the
 * discovery order of states (on_state callback order), the
 * counterexample trace (any predecessor-chain of the first violation
 * discovered is reported; parallel expansion order is only
 * approximately breadth-first), and timing-dependent LimitExceeded
 * cut points.
 */

#ifndef NEO_VERIF_PARALLEL_EXPLORER_HPP
#define NEO_VERIF_PARALLEL_EXPLORER_HPP

#include "verif/explorer.hpp"

namespace neo
{

/**
 * Run parallel reachability with limits.threads workers.
 *
 * Called through explore() when limits.threads > 1; callable directly
 * for tests. Parameters match explore(); on_state is serialized under
 * a mutex.
 */
ExploreResult exploreParallel(const TransitionSystem &ts,
                              const ExploreLimits &limits,
                              bool detect_deadlock = false,
                              bool keep_trace = true,
                              const std::function<void(const VState &)> &
                                  on_state = {});

} // namespace neo

#endif // NEO_VERIF_PARALLEL_EXPLORER_HPP
