/**
 * @file
 * Sharded parallel explicit-state reachability.
 *
 * N worker threads expand the frontier concurrently against a visited
 * set split into 64 shards by canonical-state hash; each shard is an
 * independently locked hash table, so insertions from different
 * workers rarely contend. Every worker owns a bounded lock-free MPMC
 * ring (mpmc_ring.hpp) as its frontier — overflow spills into a
 * mutex-guarded deque so boundedness never deadlocks work-stealing —
 * and steals from its neighbours' rings when empty (PReach-style
 * distributed exploration, collapsed onto one address space). Each
 * dequeued state is expanded in a batch: all enabled rules fire
 * through the precompiled flat guard/effect tables (CompiledRules,
 * transition_system.hpp) into per-worker scratch, the successors are
 * interned shard-group-at-a-time under one lock acquisition per
 * group, and the surviving work is published to the ring once. The
 * pre-ring mutex-vector frontier survives as FrontierKind::Mutex
 * (explorer.hpp), the A/B baseline the scaling bench compares
 * against. DESIGN.md module 19 carries the full happens-before
 * argument.
 *
 * Equivalence contract with the sequential explorer (locked in by
 * tests/test_parallel_explorer.cpp): at a fixpoint, the set of
 * visited canonical states is identical — each state is inserted into
 * exactly one shard and expanded exactly once — so statesExplored,
 * transitionsFired, ruleFires, invariantChecks and the final status
 * are equal for any thread count and either frontier kind. What is
 * NOT bit-identical across thread counts: the discovery order of
 * states (on_state callback order), the counterexample trace (any
 * predecessor-chain of the first violation discovered is reported;
 * parallel expansion order is only approximately breadth-first), and
 * timing-dependent LimitExceeded cut points — though the maxStates
 * bound itself is exact: a token budget admits fresh states one
 * insertion at a time, so the run stops at maxStates even mid-batch.
 */

#ifndef NEO_VERIF_PARALLEL_EXPLORER_HPP
#define NEO_VERIF_PARALLEL_EXPLORER_HPP

#include "verif/explorer.hpp"

namespace neo
{

/**
 * Run parallel reachability with limits.threads workers.
 *
 * Called through explore() when limits.threads > 1; callable directly
 * for tests. Parameters match explore(); on_state is serialized under
 * a mutex.
 */
ExploreResult exploreParallel(const TransitionSystem &ts,
                              const ExploreLimits &limits,
                              bool detect_deadlock = false,
                              bool keep_trace = true,
                              const std::function<void(const VState &)> &
                                  on_state = {});

} // namespace neo

#endif // NEO_VERIF_PARALLEL_EXPLORER_HPP
