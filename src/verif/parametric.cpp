#include "parametric.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

namespace neo
{

namespace
{

/**
 * Project a concrete state onto its size-<=2 views (Abdulla et al.'s
 * view abstraction): the shared variables (ack counters saturated)
 * extended with every sub-multiset of at most two leaf blocks. The
 * number of views is bounded independently of N, so the view sets of
 * successive instance sizes can converge.
 */
void
collectViews(const VState &s, const ModelShape &shape,
             unsigned saturation,
             std::set<std::vector<std::uint8_t>> &out)
{
    std::vector<std::uint8_t> shared(
        s.begin(), s.begin() + static_cast<long>(shape.sharedVars));
    for (std::size_t idx : shape.saturatedSharedVars) {
        shared[idx] = static_cast<std::uint8_t>(
            std::min<unsigned>(shared[idx], saturation));
    }
    // Distinct leaf blocks with multiplicity.
    std::map<std::vector<std::uint8_t>, unsigned> counts;
    for (std::size_t l = 0; l < shape.numLeaves; ++l) {
        const auto base = shape.sharedVars + l * shape.leafBlockSize;
        std::vector<std::uint8_t> block(
            s.begin() + static_cast<long>(base),
            s.begin() + static_cast<long>(base + shape.leafBlockSize));
        ++counts[block];
    }
    auto emit = [&](const std::vector<std::uint8_t> *a,
                    const std::vector<std::uint8_t> *b) {
        std::vector<std::uint8_t> view = shared;
        if (a != nullptr)
            view.insert(view.end(), a->begin(), a->end());
        if (b != nullptr)
            view.insert(view.end(), b->begin(), b->end());
        out.insert(std::move(view));
    };
    emit(nullptr, nullptr);
    for (auto it = counts.begin(); it != counts.end(); ++it) {
        emit(&it->first, nullptr);
        if (it->second >= 2)
            emit(&it->first, &it->first);
        for (auto jt = std::next(it); jt != counts.end(); ++jt)
            emit(&it->first, &jt->first);
    }
}

} // namespace

ParametricResult
verifyParametric(const ModelFactory &factory, std::size_t from,
                 std::size_t to, const ExploreLimits &limits,
                 unsigned saturation)
{
    neo_assert(from >= 1 && from <= to, "bad parametric sweep range");
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    ParametricResult result;
    std::set<std::vector<std::uint8_t>> prevAbstract;
    const auto finish = [&]() -> ParametricResult & {
        result.seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        return result;
    };

    for (std::size_t n = from; n <= to; ++n) {
        ModelShape shape;
        TransitionSystem ts = factory(n, shape);
        neo_assert(shape.numLeaves == n, "factory mis-reported shape");

        // The callback is serialized by the explorer even in the
        // parallel mode, and the view set is order-insensitive.
        std::set<std::vector<std::uint8_t>> abstractSet;
        const ExploreResult er =
            explore(ts, limits, false, true,
                    [&](const VState &s) {
                        collectViews(s, shape, saturation,
                                     abstractSet);
                    });

        result.perInstance.push_back(er);
        result.instanceSizes.push_back(n);
        result.abstractSetSizes.push_back(abstractSet.size());

        if (er.status != VerifStatus::Verified) {
            result.status = er.status;
            std::ostringstream os;
            os << "instance N=" << n << ": "
               << verifStatusName(er.status);
            if (!er.violatedInvariant.empty())
                os << " (" << er.violatedInvariant << ")";
            result.detail = os.str();
            return finish();
        }

        if (n > from && abstractSet == prevAbstract) {
            result.converged = true;
            result.cutoff = n - 1;
            std::ostringstream os;
            os << "abstract reach set converged at cutoff N=" << n - 1
               << " (" << abstractSet.size()
               << " views); invariants hold for all N";
            result.detail = os.str();
            return finish();
        }
        prevAbstract = std::move(abstractSet);
    }

    result.detail = "no convergence within the sweep";
    return finish();
}

} // namespace neo
