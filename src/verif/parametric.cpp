#include "parametric.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "verif/checkpoint.hpp"

namespace neo
{

namespace
{

/**
 * Project a concrete state onto its size-<=2 views (Abdulla et al.'s
 * view abstraction): the shared variables (ack counters saturated)
 * extended with every sub-multiset of at most two leaf blocks. The
 * number of views is bounded independently of N, so the view sets of
 * successive instance sizes can converge.
 */
void
collectViews(const VState &s, const ModelShape &shape,
             unsigned saturation,
             std::set<std::vector<std::uint8_t>> &out)
{
    std::vector<std::uint8_t> shared(
        s.begin(), s.begin() + static_cast<long>(shape.sharedVars));
    for (std::size_t idx : shape.saturatedSharedVars) {
        shared[idx] = static_cast<std::uint8_t>(
            std::min<unsigned>(shared[idx], saturation));
    }
    // Distinct leaf blocks with multiplicity.
    std::map<std::vector<std::uint8_t>, unsigned> counts;
    for (std::size_t l = 0; l < shape.numLeaves; ++l) {
        const auto base = shape.sharedVars + l * shape.leafBlockSize;
        std::vector<std::uint8_t> block(
            s.begin() + static_cast<long>(base),
            s.begin() + static_cast<long>(base + shape.leafBlockSize));
        ++counts[block];
    }
    auto emit = [&](const std::vector<std::uint8_t> *a,
                    const std::vector<std::uint8_t> *b) {
        std::vector<std::uint8_t> view = shared;
        if (a != nullptr)
            view.insert(view.end(), a->begin(), a->end());
        if (b != nullptr)
            view.insert(view.end(), b->begin(), b->end());
        out.insert(std::move(view));
    };
    emit(nullptr, nullptr);
    for (auto it = counts.begin(); it != counts.end(); ++it) {
        emit(&it->first, nullptr);
        if (it->second >= 2)
            emit(&it->first, &it->first);
        for (auto jt = std::next(it); jt != counts.end(); ++jt)
            emit(&it->first, &jt->first);
    }
}

} // namespace

ParametricResult
verifyParametric(const ModelFactory &factory, std::size_t from,
                 std::size_t to, const ExploreLimits &limits,
                 unsigned saturation)
{
    neo_assert(from >= 1 && from <= to, "bad parametric sweep range");
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    ParametricResult result;
    std::set<std::vector<std::uint8_t>> prevAbstract;
    double baseSeconds = 0.0;
    const auto finish = [&]() -> ParametricResult & {
        result.seconds =
            baseSeconds +
            std::chrono::duration<double>(Clock::now() - t0).count();
        return result;
    };
    auto elapsed = [&]() {
        return baseSeconds +
               std::chrono::duration<double>(Clock::now() - t0).count();
    };

    const CheckpointConfig *ckpt = limits.checkpoint;
    const bool ckptActive = ckpt != nullptr && !ckpt->dir.empty();
    const std::string sweepPath =
        ckptActive ? sweepSnapshotPath(*ckpt) : std::string();
    if (ckptActive)
        reapStaleCheckpointTmps(ckpt->dir);
    // The sweep snapshot is stamped with the SMALLEST instance's
    // fingerprint: it identifies the factory (a different protocol or
    // feature set changes rules/invariants and hence the fingerprint)
    // without depending on how far the sweep got.
    std::uint64_t fingerprint = 0;
    if (ckptActive) {
        ModelShape shape;
        fingerprint = modelFingerprint(factory(from, shape));
    }

    // Serialize sweep progress: every completed (hence Verified)
    // instance's counters plus the last instance's abstract view set,
    // which the convergence test needs on resume.
    auto write_sweep_snapshot = [&]() {
        SnapshotWriter w;
        w.putU32(saturation);
        w.putU64(from);
        w.putU64(to);
        w.putF64(elapsed());
        w.putU64(result.perInstance.size());
        for (std::size_t i = 0; i < result.perInstance.size(); ++i) {
            const ExploreResult &er = result.perInstance[i];
            w.putU64(result.instanceSizes[i]);
            w.putU64(result.abstractSetSizes[i]);
            w.putU64(er.statesExplored);
            w.putU64(er.transitionsFired);
            w.putU64(er.memoryBytes);
            w.putF64(er.seconds);
            w.putU64(er.ruleFires.size());
            for (const std::uint64_t f : er.ruleFires)
                w.putU64(f);
        }
        w.putU64(prevAbstract.size());
        for (const auto &view : prevAbstract) {
            w.putU64(view.size());
            w.putBytes(view.data(), view.size());
        }
        std::string err;
        if (!writeSnapshotFile(sweepPath, SnapshotKind::Sweep,
                               fingerprint, w.take(), err))
            neo_warn("sweep checkpoint not written: ", err);
    };

    std::size_t startN = from;
    if (ckptActive && ckpt->resume && snapshotExists(sweepPath)) {
        std::vector<std::uint8_t> payload;
        std::string err;
        if (!readSnapshotFile(sweepPath, SnapshotKind::Sweep,
                              fingerprint, payload, err))
            neo_fatal("cannot resume: ", err);
        SnapshotReader r(payload);
        const std::uint32_t sat = r.getU32();
        const std::uint64_t sFrom = r.getU64();
        r.getU64(); // recorded `to`; the resumed bound is the CLI's
        baseSeconds = r.getF64();
        const std::uint64_t nInst = r.getU64();
        for (std::uint64_t i = 0; r.ok() && i < nInst; ++i) {
            ExploreResult er;
            er.status = VerifStatus::Verified;
            result.instanceSizes.push_back(
                static_cast<std::size_t>(r.getU64()));
            result.abstractSetSizes.push_back(
                static_cast<std::size_t>(r.getU64()));
            er.statesExplored = r.getU64();
            er.transitionsFired = r.getU64();
            er.memoryBytes = r.getU64();
            er.seconds = r.getF64();
            er.ruleFires.resize(
                static_cast<std::size_t>(r.getU64()));
            for (auto &f : er.ruleFires)
                f = r.getU64();
            result.perInstance.push_back(std::move(er));
        }
        const std::uint64_t nViews = r.getU64();
        for (std::uint64_t i = 0; r.ok() && i < nViews; ++i) {
            std::vector<std::uint8_t> view(
                static_cast<std::size_t>(r.getU64()));
            r.getBytes(view.data(), view.size());
            prevAbstract.insert(std::move(view));
        }
        if (!r.atEnd())
            neo_fatal("cannot resume: ", sweepPath,
                      ": malformed sweep snapshot");
        if (sat != saturation || sFrom != from)
            neo_fatal("cannot resume: snapshot sweep starts at N=",
                      sFrom, " with saturation ", sat,
                      "; rerun with the same values");
        startN = from + result.perInstance.size();
        result.resumed = true;
        result.restoredInstances = result.perInstance.size();
    }

    for (std::size_t n = startN; n <= to; ++n) {
        if (ckptActive && interruptRequested()) {
            // Signal landed between instances: everything completed
            // so far is already consistent, persist and bow out.
            write_sweep_snapshot();
            result.status = VerifStatus::Interrupted;
            std::ostringstream os;
            os << "interrupted before instance N=" << n
               << "; resume with --resume";
            result.detail = os.str();
            return finish();
        }

        ModelShape shape;
        TransitionSystem ts = factory(n, shape);
        neo_assert(shape.numLeaves == n, "factory mis-reported shape");

        // Per-instance inner checkpointing: resume the instance-level
        // explore snapshot only if it belongs to THIS instance — a
        // crash between "instance finished" and "sweep snapshot
        // updated" can leave a stale explore.ckpt from a previous N,
        // whose fingerprint will not match.
        ExploreLimits instLimits = limits;
        CheckpointConfig inner;
        if (ckptActive) {
            inner = *ckpt;
            const std::string explorePath = exploreSnapshotPath(inner);
            if (snapshotExists(explorePath)) {
                const bool ours = peekSnapshotFingerprint(explorePath)
                                  == modelFingerprint(ts);
                if (ours) {
                    inner.resume = ckpt->resume;
                } else {
                    removeSnapshot(explorePath);
                    inner.resume = false;
                }
            } else {
                inner.resume = false;
            }
            instLimits.checkpoint = &inner;
        }

        // The callback is serialized by the explorer even in the
        // parallel mode, and the view set is order-insensitive (and
        // rebuilt idempotently on resume: the explorer re-invokes
        // on_state for every restored state).
        std::set<std::vector<std::uint8_t>> abstractSet;
        const ExploreResult er =
            explore(ts, instLimits, false, true,
                    [&](const VState &s) {
                        collectViews(s, shape, saturation,
                                     abstractSet);
                    });

        if (er.status == VerifStatus::Interrupted) {
            // The inner explorer saved its own snapshot; persist the
            // sweep index so --resume lands back inside instance N.
            result.status = VerifStatus::Interrupted;
            if (er.resumed)
                result.resumed = true;
            write_sweep_snapshot();
            std::ostringstream os;
            os << "interrupted at instance N=" << n
               << " (" << er.statesExplored
               << " states checkpointed); resume with --resume";
            result.detail = os.str();
            return finish();
        }

        result.perInstance.push_back(er);
        result.instanceSizes.push_back(n);
        result.abstractSetSizes.push_back(abstractSet.size());
        if (er.resumed)
            result.resumed = true;

        if (er.status != VerifStatus::Verified) {
            result.status = er.status;
            std::ostringstream os;
            os << "instance N=" << n << ": "
               << verifStatusName(er.status);
            if (!er.violatedInvariant.empty())
                os << " (" << er.violatedInvariant << ")";
            result.detail = os.str();
            if (ckptActive) {
                if (er.status == VerifStatus::LimitExceeded) {
                    // Resumable with raised limits: the inner
                    // explorer kept its snapshot; keep the sweep's
                    // index pointing at this instance too.
                    result.perInstance.pop_back();
                    result.instanceSizes.pop_back();
                    result.abstractSetSizes.pop_back();
                    write_sweep_snapshot();
                    result.perInstance.push_back(er);
                    result.instanceSizes.push_back(n);
                    result.abstractSetSizes.push_back(
                        abstractSet.size());
                } else {
                    // Definitive verdict; nothing left to resume.
                    removeSnapshot(sweepPath);
                }
            }
            return finish();
        }

        if (n > from && abstractSet == prevAbstract) {
            result.converged = true;
            result.cutoff = n - 1;
            std::ostringstream os;
            os << "abstract reach set converged at cutoff N=" << n - 1
               << " (" << abstractSet.size()
               << " views); invariants hold for all N";
            result.detail = os.str();
            if (ckptActive)
                removeSnapshot(sweepPath);
            return finish();
        }
        prevAbstract = std::move(abstractSet);

        // Instance N is in the books: advance the sweep snapshot
        // (the instance-level explore snapshot was deleted by the
        // explorer when it reached the fixpoint).
        if (ckptActive)
            write_sweep_snapshot();
    }

    result.detail = "no convergence within the sweep";
    if (ckptActive)
        removeSnapshot(sweepPath);
    return finish();
}

} // namespace neo
