/**
 * @file
 * Push-button parametric verification via saturation (view)
 * abstraction with cutoff convergence.
 *
 * Cubicle proves properties for every instance size N with SMT-based
 * backward reachability over array-based systems. We substitute a
 * technique with the same push-button character for systems of
 * identical, symmetric leaves (exactly Neo's leaf assumption):
 *
 *  1. model-check each concrete instance N = from .. to (all
 *     invariants, full reachability);
 *  2. project each reachable set through a saturation abstraction
 *     that keeps the shared (directory) variables exact and counts
 *     leaves per leaf-local configuration, saturating at a small
 *     bound ("0, 1, many");
 *  3. when the abstract reachable sets of two consecutive sizes
 *     coincide, adding further leaves only replicates existing
 *     leaf configurations — the cutoff has been reached and the
 *     invariants hold for all larger N.
 *
 * This mirrors the view-abstraction cutoff method (Abdulla et al.,
 * "Parameterized verification through view abstraction") specialized
 * to our models.
 */

#ifndef NEO_VERIF_PARAMETRIC_HPP
#define NEO_VERIF_PARAMETRIC_HPP

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "verif/explorer.hpp"

namespace neo
{

/**
 * How a model exposes its structure to the abstraction: the first
 * sharedVars variables are global; the rest is numLeaves consecutive
 * blocks of leafBlockSize variables, one per identical leaf.
 */
struct ModelShape
{
    std::size_t sharedVars = 0;
    std::size_t numLeaves = 0;
    std::size_t leafBlockSize = 0;
    /** Shared variables whose value range grows with N (ack
     *  counters): the abstraction saturates them like leaf counts. */
    std::vector<std::size_t> saturatedSharedVars;
};

/** Factory producing the model instantiated with N leaves. */
using ModelFactory =
    std::function<TransitionSystem(std::size_t n, ModelShape &shape)>;

struct ParametricResult
{
    /** Overall outcome across the sweep. */
    VerifStatus status = VerifStatus::Verified;
    /** True when the abstract reach sets converged within the sweep. */
    bool converged = false;
    /** Smallest N whose abstraction equals N+1's (the cutoff). */
    std::size_t cutoff = 0;
    std::vector<ExploreResult> perInstance;
    std::vector<std::size_t> instanceSizes;
    std::vector<std::size_t> abstractSetSizes;
    /** Wall-clock for the whole sweep (all instances), cumulative
     *  across resumes. */
    double seconds = 0.0;
    std::string detail;
    /** The sweep restored completed instances from a snapshot. */
    bool resumed = false;
    /** Instances restored from the snapshot (when resumed). */
    std::size_t restoredInstances = 0;
};

/**
 * Run the parametric sweep.
 *
 * With limits.threads > 1 each instance's reachability runs on the
 * sharded parallel explorer internally (the view set is collected
 * through the serialized on_state callback, so the abstraction —
 * being a set — is independent of discovery order and identical to
 * the sequential sweep's).
 *
 * @param factory builds the N-leaf instance
 * @param from smallest instance (>= 1)
 * @param to largest instance to try before giving up on convergence
 * @param saturation count bound per leaf configuration (default 2 =
 *        "zero, one, many")
 */
ParametricResult
verifyParametric(const ModelFactory &factory, std::size_t from,
                 std::size_t to, const ExploreLimits &limits,
                 unsigned saturation = 2);

} // namespace neo

#endif // NEO_VERIF_PARAMETRIC_HPP
