#include "random_walk.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>

#include "sim/random.hpp"

namespace neo
{

namespace
{

/** Golden-ratio stride between per-walk seeds; Random's SplitMix64
 *  seeding decorrelates even adjacent seeds, the stride just keeps the
 *  raw inputs distinct for any K. */
constexpr std::uint64_t kWalkSeedStride = 0x9e3779b97f4a7c15ULL;

/** One walk's outcome, kept only when it violates. */
struct WalkViolation
{
    std::uint64_t walk = 0;
    std::size_t invariant = 0;
    std::vector<std::uint32_t> trace;
    VState state;
};

} // namespace

ReplayResult
replayTrace(const TransitionSystem &ts,
            const std::vector<std::uint32_t> &trace)
{
    ReplayResult r;
    const auto &rules = ts.rules();
    const auto &canon = ts.canonicalizer();

    VState s = ts.initialState();
    if (canon)
        canon(s);
    for (const std::uint32_t idx : trace) {
        if (idx >= rules.size() || !rules[idx].guard(s)) {
            r.finalState = std::move(s);
            return r; // invalid: a step could not fire
        }
        rules[idx].effect(s);
        if (canon)
            canon(s);
        ++r.stepsApplied;
    }
    r.valid = true;
    for (const auto &inv : ts.invariants()) {
        if (!inv.check(s)) {
            r.violatedInvariant = inv.name;
            break;
        }
    }
    r.finalState = std::move(s);
    return r;
}

WalkResult
RandomWalkExplorer::run() const
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    WalkResult result;
    const auto &rules = ts_.rules();
    const auto &invs = ts_.invariants();
    const auto &canon = ts_.canonicalizer();

    VState init = ts_.initialState();
    if (canon)
        canon(init);

    // The initial state itself may already violate (degenerate mutant).
    for (const auto &inv : invs) {
        if (!inv.check(init)) {
            result.status = VerifStatus::InvariantViolated;
            result.violatedInvariant = inv.name;
            result.badState = ts_.describe(init);
            result.seconds =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            return result;
        }
    }

    // Lowest violating walk index seen so far; walks above it are
    // skipped (they cannot win), walks below it always complete, so
    // the final minimum — and hence the reported counterexample — is
    // independent of the thread count and equal to what a sequential
    // 0..K-1 sweep stopping at its first violation would report.
    std::atomic<std::uint64_t> bestWalk{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> nextWalk{0};
    std::atomic<std::uint64_t> stepsTotal{0};
    std::atomic<std::uint64_t> walksRun{0};
    std::atomic<std::uint64_t> deadEnds{0};

    std::mutex vioMu;
    std::vector<WalkViolation> violations;

    auto run_walk = [&](std::uint64_t w) {
        Random rng(opt_.seed + w * kWalkSeedStride);
        VState s = init;
        std::vector<std::uint32_t> fired;
        fired.reserve(static_cast<std::size_t>(opt_.depth));
        std::vector<std::uint32_t> enabled;
        enabled.reserve(rules.size());

        for (std::uint64_t step = 0; step < opt_.depth; ++step) {
            enabled.clear();
            for (std::size_t r = 0; r < rules.size(); ++r) {
                if (rules[r].guard(s))
                    enabled.push_back(static_cast<std::uint32_t>(r));
            }
            if (enabled.empty()) {
                deadEnds.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            const std::uint32_t pick = enabled[static_cast<std::size_t>(
                rng.below(enabled.size()))];
            rules[pick].effect(s);
            if (canon)
                canon(s);
            fired.push_back(pick);
            stepsTotal.fetch_add(1, std::memory_order_relaxed);
            for (std::size_t i = 0; i < invs.size(); ++i) {
                if (!invs[i].check(s)) {
                    std::lock_guard<std::mutex> g(vioMu);
                    violations.push_back(
                        WalkViolation{w, i, fired, s});
                    // Lower bestWalk monotonically.
                    std::uint64_t cur = bestWalk.load();
                    while (w < cur &&
                           !bestWalk.compare_exchange_weak(cur, w)) {
                    }
                    return;
                }
            }
        }
    };

    const unsigned nthreads = opt_.threads > 0 ? opt_.threads : 1;
    auto worker = [&]() {
        for (;;) {
            const std::uint64_t w =
                nextWalk.fetch_add(1, std::memory_order_relaxed);
            if (w >= opt_.walks)
                return;
            if (w > bestWalk.load(std::memory_order_relaxed))
                continue; // cannot beat the current best violation
            run_walk(w);
            walksRun.fetch_add(1, std::memory_order_relaxed);
        }
    };

    if (nthreads == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }

    result.stepsTaken = stepsTotal.load();
    result.walksRun = walksRun.load();
    result.deadEnds = deadEnds.load();

    const std::uint64_t best = bestWalk.load();
    if (best != std::numeric_limits<std::uint64_t>::max()) {
        const WalkViolation *win = nullptr;
        for (const auto &v : violations) {
            if (v.walk == best)
                win = &v;
        }
        result.status = VerifStatus::InvariantViolated;
        result.walkIndex = win->walk;
        result.violatedInvariant = invs[win->invariant].name;
        result.trace = win->trace;
        result.badState = ts_.describe(win->state);
        result.traceNames.reserve(win->trace.size());
        for (const std::uint32_t r : win->trace)
            result.traceNames.push_back(rules[r].name);
    }

    result.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
}

WalkResult
walkExplore(const TransitionSystem &ts, const WalkOptions &opt)
{
    return RandomWalkExplorer(ts, opt).run();
}

} // namespace neo
