#include "random_walk.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>

#include "sim/random.hpp"
#include "verif/checkpoint.hpp"

namespace neo
{

namespace
{

/** Golden-ratio stride between per-walk seeds; Random's SplitMix64
 *  seeding decorrelates even adjacent seeds, the stride just keeps the
 *  raw inputs distinct for any K. */
constexpr std::uint64_t kWalkSeedStride = 0x9e3779b97f4a7c15ULL;

/** One walk's outcome, kept only when it violates. */
struct WalkViolation
{
    std::uint64_t walk = 0;
    std::size_t invariant = 0;
    std::vector<std::uint32_t> trace;
    VState state;
};

} // namespace

ReplayResult
replayTrace(const TransitionSystem &ts,
            const std::vector<std::uint32_t> &trace)
{
    ReplayResult r;
    const auto &rules = ts.rules();
    const auto &canon = ts.canonicalizer();

    VState s = ts.initialState();
    if (canon)
        canon(s);
    for (const std::uint32_t idx : trace) {
        if (idx >= rules.size() || !rules[idx].guard(s)) {
            r.finalState = std::move(s);
            return r; // invalid: a step could not fire
        }
        rules[idx].effect(s);
        if (canon)
            canon(s);
        ++r.stepsApplied;
    }
    r.valid = true;
    for (const auto &inv : ts.invariants()) {
        if (!inv.check(s)) {
            r.violatedInvariant = inv.name;
            break;
        }
    }
    r.finalState = std::move(s);
    return r;
}

WalkResult
RandomWalkExplorer::run() const
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    WalkResult result;
    const auto &rules = ts_.rules();
    const auto &invs = ts_.invariants();
    const auto &canon = ts_.canonicalizer();
    const auto &canonCheck = ts_.canonicalCheck();
    // Flat guard/effect tables for the walk loop (replayTrace stays
    // on rules[] — it is not hot). Built before the workers spawn;
    // immutable, so shared read-only across them.
    const CompiledRules comp(ts_);
    // Read/write dependency index (transition_system.hpp): lets a walk
    // keep its enabled-rule bitset across steps instead of rescanning
    // all R guards per step. Shared read-only across workers.
    const RuleDepIndex depIdx(ts_);
    const bool useIndex = opt_.ruleIndex;
    const std::size_t R = rules.size();
    const std::size_t W = depIdx.ruleWords();

    if (opt_.store.tier != StoreTier::Plain ||
        !opt_.store.spillDir.empty())
        neo_warn("random walk keeps no visited set; --store-tier/"
                 "--compact-hashes/--spill-dir have no effect here");

    const CheckpointConfig *ckpt = opt_.checkpoint;
    const bool ckptActive = ckpt != nullptr && !ckpt->dir.empty();
    const std::string ckptPath =
        ckptActive ? walkSnapshotPath(*ckpt) : std::string();
    if (ckptActive)
        reapStaleCheckpointTmps(ckpt->dir);
    const std::uint64_t fingerprint =
        ckptActive ? modelFingerprint(ts_) : 0;
    double baseSeconds = 0.0;

    auto elapsed = [&]() {
        return baseSeconds +
               std::chrono::duration<double>(Clock::now() - t0).count();
    };

    VState init = ts_.initialState();
    if (canon)
        canon(init);

    // The initial state itself may already violate (degenerate mutant).
    for (const auto &inv : invs) {
        if (!inv.check(init)) {
            result.status = VerifStatus::InvariantViolated;
            result.violatedInvariant = inv.name;
            result.badState = ts_.describe(init);
            result.seconds = elapsed();
            if (ckptActive)
                removeSnapshot(ckptPath);
            return result;
        }
    }

    // Lowest violating walk index seen so far; walks above it are
    // skipped (they cannot win), walks below it always complete, so
    // the final minimum — and hence the reported counterexample — is
    // independent of the thread count and equal to what a sequential
    // 0..K-1 sweep stopping at its first violation would report.
    std::atomic<std::uint64_t> bestWalk{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> nextWalk{0};
    // Whether any worker bailed out on an interrupt with walk budget
    // still unclaimed (distinguishes "signal raced the finish line"
    // from a genuinely partial run).
    std::atomic<bool> interrupted{false};

    // Walk-granular progress, updated only when a walk COMPLETES
    // (violation, dead end, or full depth). A walk in flight at a
    // snapshot simply reruns on resume; since walk w's RNG stream is a
    // pure function of (seed, w), the rerun contributes identically,
    // so resumed totals match an uninterrupted run exactly.
    // The completion bitmap grows lazily to the highest finished walk
    // index (and is trimmed of trailing zeros when serialized), so a
    // huge --walks budget costs memory/disk proportional to the work
    // actually done, not the budget.
    std::mutex progMu;
    std::vector<std::uint8_t> done;
    std::uint64_t stepsTotal = 0;
    std::uint64_t walksRunN = 0;
    std::uint64_t deadEndsN = 0;
    // Rule-index counters; deliberately NOT checkpointed (the snapshot
    // format predates them and they are diagnostics, not verdicts — a
    // resumed run reports the counters of the walks IT ran).
    std::uint64_t guardEvalsN = 0;
    std::uint64_t guardSkippedN = 0;
    std::uint64_t identityHitsN = 0;
    std::vector<WalkViolation> violations;
    double lastCkptSeconds = 0.0;

    // Serialize progress; caller holds progMu.
    auto snapshot_payload = [&]() {
        SnapshotWriter w;
        w.putU64(opt_.seed);
        w.putU64(opt_.depth);
        w.putU64(opt_.walks);
        w.putF64(elapsed());
        w.putU64(stepsTotal);
        w.putU64(walksRunN);
        w.putU64(deadEndsN);
        std::size_t nDone = done.size();
        while (nDone > 0 && done[nDone - 1] == 0)
            --nDone;
        w.putU64(nDone);
        w.putBytes(done.data(), nDone);
        w.putU64(violations.size());
        for (const WalkViolation &v : violations) {
            w.putU64(v.walk);
            w.putU32(static_cast<std::uint32_t>(v.invariant));
            w.putU64(v.trace.size());
            for (const std::uint32_t r : v.trace)
                w.putU32(r);
            w.putState(v.state);
        }
        return w.take();
    };

    auto write_snapshot_locked = [&]() {
        std::string err;
        const std::vector<std::uint8_t> payload = snapshot_payload();
        if (!writeSnapshotFile(ckptPath, SnapshotKind::Walk,
                               fingerprint, payload, err)) {
            neo_warn("checkpoint not written: ", err);
            return;
        }
        ++result.checkpointsWritten;
        result.lastSnapshotBytes = payload.size();
    };

    if (ckptActive && ckpt->resume && snapshotExists(ckptPath)) {
        std::vector<std::uint8_t> payload;
        std::string err;
        if (!readSnapshotFile(ckptPath, SnapshotKind::Walk,
                              fingerprint, payload, err))
            neo_fatal("cannot resume: ", err);
        SnapshotReader r(payload);
        const std::uint64_t seed = r.getU64();
        const std::uint64_t depth = r.getU64();
        r.getU64(); // walk budget of the interrupted run; the resumed
                    // budget comes from the CLI (it may be extended)
        baseSeconds = r.getF64();
        stepsTotal = r.getU64();
        walksRunN = r.getU64();
        deadEndsN = r.getU64();
        const std::uint64_t nDone = r.getU64();
        std::vector<std::uint8_t> savedDone(
            static_cast<std::size_t>(nDone), 0);
        r.getBytes(savedDone.data(), savedDone.size());
        const std::uint64_t nVio = r.getU64();
        for (std::uint64_t i = 0; r.ok() && i < nVio; ++i) {
            WalkViolation v;
            v.walk = r.getU64();
            v.invariant = r.getU32();
            const std::uint64_t len = r.getU64();
            v.trace.resize(static_cast<std::size_t>(len));
            for (auto &step : v.trace)
                step = r.getU32();
            r.getState(ts_.numVars(), v.state);
            if (v.invariant >= invs.size())
                neo_fatal("cannot resume: ", ckptPath,
                          ": invariant index out of range");
            for (const std::uint32_t step : v.trace) {
                if (step >= rules.size())
                    neo_fatal("cannot resume: ", ckptPath,
                              ": rule index out of range");
            }
            violations.push_back(std::move(v));
        }
        if (!r.atEnd())
            neo_fatal("cannot resume: ", ckptPath,
                      ": malformed walk snapshot");
        if (seed != opt_.seed || depth != opt_.depth)
            neo_fatal("cannot resume: snapshot was taken with --seed ",
                      seed, " --depth ", depth,
                      "; rerun with the same values");
        done = std::move(savedDone);
        for (std::size_t w = 0; w < done.size() && w < opt_.walks;
             ++w)
            result.restoredWalks += done[w];
        for (const WalkViolation &v : violations) {
            std::uint64_t cur = bestWalk.load();
            while (v.walk < cur &&
                   !bestWalk.compare_exchange_weak(cur, v.walk)) {
            }
        }
        result.resumed = true;
    }

    // Returns the walk's outcome so the caller can commit it to the
    // progress block in one locked step; Abandoned = interrupt
    // mid-walk, nothing recorded.
    enum class WalkOutcome
    {
        Completed,
        DeadEnd,
        Violated,
        Abandoned
    };

    struct WalkCounters
    {
        std::uint64_t guardEvals = 0;
        std::uint64_t guardEvalsSkipped = 0;
        std::uint64_t canonIdentityHits = 0;
    };

    auto run_walk = [&](std::uint64_t w, std::uint64_t &steps,
                        WalkViolation &vio, WalkCounters &cnt) {
        Random rng(opt_.seed + w * kWalkSeedStride);
        VState s = init;
        std::vector<std::uint32_t> fired;
        fired.reserve(static_cast<std::size_t>(opt_.depth));
        std::vector<std::uint32_t> enabled;
        enabled.reserve(rules.size());
        // Enabled-rule bitset carried across steps; valid only while
        // every firing since the last full scan was a canonicalizer
        // identity (a permuted representative invalidates it).
        std::vector<std::uint64_t> bits(W, 0);
        bool bitsOk = false;
        VState canonBuf;

        for (std::uint64_t step = 0; step < opt_.depth; ++step) {
            if (ckptActive && (step & 0xfff) == 0 &&
                interruptRequested())
                return WalkOutcome::Abandoned;
            enabled.clear();
            if (!useIndex) {
                cnt.guardEvals += R;
                for (std::size_t r = 0; r < R; ++r) {
                    if (comp.guard(r, s))
                        enabled.push_back(
                            static_cast<std::uint32_t>(r));
                }
            } else {
                if (!bitsOk) {
                    cnt.guardEvals += R;
                    std::fill(bits.begin(), bits.end(), 0);
                    for (std::size_t r = 0; r < R; ++r) {
                        if (comp.guard(r, s))
                            bits[r >> 6] |= 1ULL << (r & 63);
                    }
                    bitsOk = true;
                }
                // Ascending set-bit order == the old linear scan, so
                // rng.below() sees the identical enabled list and the
                // determinism contract (same picks, same trace) holds
                // index-on and index-off.
                for (std::size_t word = 0; word < W; ++word) {
                    std::uint64_t m = bits[word];
                    while (m != 0) {
                        const int b = __builtin_ctzll(m);
                        m &= m - 1;
                        enabled.push_back(static_cast<std::uint32_t>(
                            word * 64 + static_cast<std::size_t>(b)));
                    }
                }
            }
            if (enabled.empty()) {
                steps = step;
                return WalkOutcome::DeadEnd;
            }
            const std::uint32_t pick = enabled[static_cast<std::size_t>(
                rng.below(enabled.size()))];
            comp.effect(pick, s);
            // identical == canon(s) is a no-op, which makes the bitset
            // delta below sound. Without a canonicalizer every step
            // trivially qualifies (but is not counted as a "hit").
            bool identical = true;
            if (canon) {
                if (!useIndex) {
                    canon(s);
                } else if (canonCheck) {
                    identical = canonCheck(s);
                    if (identical)
                        ++cnt.canonIdentityHits;
                    else
                        canon(s);
                } else {
                    canonBuf = s;
                    canon(s);
                    identical = s == canonBuf;
                    if (identical)
                        ++cnt.canonIdentityHits;
                }
            }
            fired.push_back(pick);
            // Invariant sweep. On an identity step only the invariants
            // whose read-set the fired rule wrote can have changed; the
            // rest still hold from the previous step, so the first
            // FAILING invariant index — the one recorded — is the same
            // either way.
            const bool invDelta = useIndex && identical;
            const std::uint64_t *affInv =
                invDelta ? depIdx.affectedInvariants(pick) : nullptr;
            for (std::size_t i = 0; i < invs.size(); ++i) {
                if (invDelta &&
                    (affInv[i >> 6] & (1ULL << (i & 63))) == 0)
                    continue;
                if (!invs[i].check(s)) {
                    steps = step + 1;
                    vio = WalkViolation{w, i, std::move(fired),
                                        std::move(s)};
                    return WalkOutcome::Violated;
                }
            }
            if (useIndex) {
                if (identical) {
                    // Re-evaluate only the guards the firing could
                    // have invalidated or enabled.
                    const std::uint64_t *aff =
                        depIdx.affectedRules(pick);
                    std::uint64_t n = 0;
                    for (std::size_t word = 0; word < W; ++word) {
                        std::uint64_t m = aff[word];
                        while (m != 0) {
                            const int b = __builtin_ctzll(m);
                            m &= m - 1;
                            const std::size_t q =
                                word * 64 + static_cast<std::size_t>(b);
                            const std::uint64_t mask = 1ULL
                                                       << (q & 63);
                            if (comp.guard(q, s))
                                bits[q >> 6] |= mask;
                            else
                                bits[q >> 6] &= ~mask;
                            ++n;
                        }
                    }
                    cnt.guardEvals += n;
                    cnt.guardEvalsSkipped += R - n;
                } else {
                    bitsOk = false;
                }
            }
        }
        steps = opt_.depth;
        return WalkOutcome::Completed;
    };

    const unsigned nthreads = opt_.threads > 0 ? opt_.threads : 1;
    auto worker = [&]() {
        for (;;) {
            const std::uint64_t w =
                nextWalk.fetch_add(1, std::memory_order_relaxed);
            if (w >= opt_.walks)
                return;
            if (ckptActive && interruptRequested()) {
                interrupted.store(true, std::memory_order_relaxed);
                return;
            }
            bool alreadyDone;
            {
                // Must lock: the bitmap reallocates as it grows.
                std::lock_guard<std::mutex> g(progMu);
                alreadyDone = w < done.size() && done[w] != 0;
            }
            if (alreadyDone)
                continue; // restored from the snapshot
            if (w > bestWalk.load(std::memory_order_relaxed))
                continue; // cannot beat the current best violation
            std::uint64_t steps = 0;
            WalkViolation vio;
            WalkCounters cnt;
            const WalkOutcome out = run_walk(w, steps, vio, cnt);
            if (out == WalkOutcome::Abandoned) {
                interrupted.store(true, std::memory_order_relaxed);
                return;
            }
            std::lock_guard<std::mutex> g(progMu);
            if (w >= done.size())
                done.resize(static_cast<std::size_t>(w) + 1, 0);
            done[w] = 1;
            stepsTotal += steps;
            guardEvalsN += cnt.guardEvals;
            guardSkippedN += cnt.guardEvalsSkipped;
            identityHitsN += cnt.canonIdentityHits;
            ++walksRunN;
            if (out == WalkOutcome::DeadEnd)
                ++deadEndsN;
            if (out == WalkOutcome::Violated) {
                violations.push_back(std::move(vio));
                std::uint64_t cur = bestWalk.load();
                while (w < cur &&
                       !bestWalk.compare_exchange_weak(cur, w)) {
                }
            }
            if (ckptActive && ckpt->everySeconds > 0.0 &&
                elapsed() - lastCkptSeconds >= ckpt->everySeconds) {
                write_snapshot_locked();
                lastCkptSeconds = elapsed();
            }
        }
    };

    if (nthreads == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }

    result.stepsTaken = stepsTotal;
    result.walksRun = walksRunN;
    result.deadEnds = deadEndsN;
    result.guardEvals = guardEvalsN;
    result.guardEvalsSkipped = guardSkippedN;
    result.canonIdentityHits = identityHitsN;

    if (interrupted.load(std::memory_order_relaxed)) {
        // Partial run: flush a final snapshot (walks completed so far
        // plus any violations, which the resumed run will report once
        // every lower-numbered walk has had its say) and surface the
        // resumable status instead of a premature verdict.
        write_snapshot_locked(); // single-threaded now; lock not needed
        result.status = VerifStatus::Interrupted;
        result.seconds = elapsed();
        return result;
    }

    const std::uint64_t best = bestWalk.load();
    if (best != std::numeric_limits<std::uint64_t>::max()) {
        const WalkViolation *win = nullptr;
        for (const auto &v : violations) {
            if (v.walk == best)
                win = &v;
        }
        result.status = VerifStatus::InvariantViolated;
        result.walkIndex = win->walk;
        result.violatedInvariant = invs[win->invariant].name;
        result.trace = win->trace;
        result.badState = ts_.describe(win->state);
        result.traceNames.reserve(win->trace.size());
        for (const std::uint32_t r : win->trace)
            result.traceNames.push_back(rules[r].name);
    }

    // The budget ran to its verdict; nothing is left to resume.
    if (ckptActive)
        removeSnapshot(ckptPath);

    result.seconds = elapsed();
    return result;
}

WalkResult
walkExplore(const TransitionSystem &ts, const WalkOptions &opt)
{
    return RandomWalkExplorer(ts, opt).run();
}

} // namespace neo
