/**
 * @file
 * Random-walk falsification over a TransitionSystem.
 *
 * The third exploration mode next to the sequential BFS and the
 * sharded parallel explorer: instead of exhausting the reachable set,
 * run K independent seeded walks of bounded depth, checking every
 * invariant after every rule firing. Walks scale to instances far too
 * large to exhaust — they cannot prove safety, only falsify it, which
 * is exactly what the mutation corpus (models/mutants.hpp) needs to
 * demonstrate that the verification oracle catches real protocol bugs
 * (the "detect seeded faults" discipline of RealityCheck-style
 * verifier validation).
 *
 * Determinism contract: walk i draws from Random(seed + i * C), so the
 * whole run is reproducible from one seed, and the reported violation
 * is the one found by the LOWEST-numbered violating walk — identical
 * for every thread count (threads only change wall-clock and the
 * total-steps counters, never the counterexample).
 */

#ifndef NEO_VERIF_RANDOM_WALK_HPP
#define NEO_VERIF_RANDOM_WALK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "verif/explorer.hpp"
#include "verif/transition_system.hpp"

namespace neo
{

struct WalkOptions
{
    /** Independent walks (K). */
    std::uint64_t walks = 64;
    /** Rule firings per walk before it is abandoned (D). */
    std::uint64_t depth = 256;
    /** Master seed; walk i uses a stream derived from (seed, i). */
    std::uint64_t seed = 1;
    /** Worker threads over the walk indices; the reported violation
     *  is thread-count independent (lowest violating walk wins). */
    unsigned threads = 1;
    /** Crash-safe checkpointing (checkpoint.hpp); nullptr disables.
     *  Walks are the checkpoint unit: a snapshot records which walk
     *  indices completed (plus their counters and any violations), so
     *  a resumed run reruns only the walks that were in flight — the
     *  per-walk RNG streams are pure functions of (seed, index), which
     *  makes the resumed totals identical to an uninterrupted run. */
    const CheckpointConfig *checkpoint = nullptr;
    /** State-store capacity tier, accepted for CLI uniformity. Walks
     *  keep NO visited set (their memory is O(depth), not O(states)),
     *  so a non-default tier changes nothing; the walker warns once
     *  and ignores it rather than silently implying capacity help. */
    StoreTierOptions store = {};
    /** Dependency-indexed stepping (transition_system.hpp
     *  RuleDepIndex): keep the enabled-rule bitset across steps and
     *  re-evaluate only guards the fired rule could have changed,
     *  falling back to a full rescan whenever canonicalization
     *  actually permuted the state. Picks, traces and verdicts are
     *  bit-identical either way (`--no-rule-index` is the
     *  differential baseline). */
    bool ruleIndex = true;
};

struct WalkResult
{
    /** Verified here means "survived the walk budget", NOT proved. */
    VerifStatus status = VerifStatus::Verified;
    std::string violatedInvariant;
    /** Rule indices (into ts.rules()) from the initial state to the
     *  violating state; replayable via replayTrace(). */
    std::vector<std::uint32_t> trace;
    /** The same trace as rule names, for reporting. */
    std::vector<std::string> traceNames;
    /** Human-readable violating state. */
    std::string badState;
    /** Index of the violating walk (meaningful on violation). */
    std::uint64_t walkIndex = 0;
    /** Walks actually run to completion or violation. */
    std::uint64_t walksRun = 0;
    /** Total rule firings across all walks (states visited, counting
     *  revisits — walks keep no visited set). */
    std::uint64_t stepsTaken = 0;
    /** Walks that ran out of enabled rules before the depth bound. */
    std::uint64_t deadEnds = 0;
    double seconds = 0.0;
    /** The run restored a snapshot before walking. */
    bool resumed = false;
    /** Completed walks restored from the snapshot (when resumed). */
    std::uint64_t restoredWalks = 0;
    /** Snapshots written during this run (periodic + final). */
    std::uint64_t checkpointsWritten = 0;
    /** Serialized size of the most recent snapshot, bytes. */
    std::uint64_t lastSnapshotBytes = 0;
    /** Guard predicates physically evaluated (see ExploreResult). */
    std::uint64_t guardEvals = 0;
    /** Guard evaluations the dependency index skipped. */
    std::uint64_t guardEvalsSkipped = 0;
    /** Steps whose post-effect state was already canonical. */
    std::uint64_t canonIdentityHits = 0;
};

/** Outcome of replaying a rule-index trace from the initial state. */
struct ReplayResult
{
    /** Every step's guard held at the point it fired. */
    bool valid = false;
    /** First invariant failing in the final state ("" if none). */
    std::string violatedInvariant;
    /** State after the last replayed step. */
    VState finalState;
    /** Steps applied before an invalid guard stopped the replay. */
    std::size_t stepsApplied = 0;
};

/**
 * Deterministically replay @p trace through @p ts (canonicalizing
 * after each step exactly like the explorers), firing each rule only
 * if its guard holds. Used by the shrinker's validation oracle and by
 * the falsification tests to prove counterexamples are real.
 */
ReplayResult replayTrace(const TransitionSystem &ts,
                         const std::vector<std::uint32_t> &trace);

/**
 * K-walk random falsifier.
 */
class RandomWalkExplorer
{
  public:
    RandomWalkExplorer(const TransitionSystem &ts, WalkOptions opt)
        : ts_(ts), opt_(opt)
    {
    }

    /** Run the budget; returns the lowest-walk violation, if any. */
    WalkResult run() const;

  private:
    const TransitionSystem &ts_;
    WalkOptions opt_;
};

/** Convenience wrapper. */
WalkResult walkExplore(const TransitionSystem &ts,
                       const WalkOptions &opt);

} // namespace neo

#endif // NEO_VERIF_RANDOM_WALK_HPP
