#include "chaos_proxy.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sim/io_retry.hpp"
#include "sim/logging.hpp"
#include "verif/service/wire.hpp"

namespace neo
{

namespace
{

double
monoNow()
{
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** splitmix64: tiny, seedable, good enough for a fault schedule. */
std::uint64_t
mix64(std::uint64_t &s)
{
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

enum class Fault
{
    Drop,
    Dup,
    Trunc,
    Sever,
    Delay
};

const char *
faultName(Fault f)
{
    switch (f) {
    case Fault::Drop:
        return "drop";
    case Fault::Dup:
        return "dup";
    case Fault::Trunc:
        return "trunc";
    case Fault::Sever:
        return "sever";
    case Fault::Delay:
        return "delay";
    }
    return "?";
}

/** Cap on buffered bytes per direction: past this the proxy stops
 *  reading the source, pushing backpressure through itself. */
constexpr std::size_t kDirBufferCap = 4u << 20;

} // namespace

bool
ChaosSpec::parse(const std::string &text, ChaosSpec &out,
                 std::string &err)
{
    out = ChaosSpec();
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string kv = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (kv.empty()) {
            err = "empty spec segment (doubled comma?)";
            return false;
        }
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
            err = kv + ": expected key=value";
            return false;
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        char *end = nullptr;
        const double num = std::strtod(val.c_str(), &end);
        if (val.empty() || end == nullptr || *end != '\0' ||
            num < 0) {
            err = kv + ": bad value";
            return false;
        }
        if (key == "seed")
            out.seed = static_cast<std::uint64_t>(num);
        else if (key == "every")
            out.everyBytes = static_cast<std::uint64_t>(num);
        else if (key == "drop")
            out.weightDrop = static_cast<std::uint32_t>(num);
        else if (key == "dup")
            out.weightDup = static_cast<std::uint32_t>(num);
        else if (key == "trunc")
            out.weightTrunc = static_cast<std::uint32_t>(num);
        else if (key == "sever")
            out.weightSever = static_cast<std::uint32_t>(num);
        else if (key == "delay")
            out.weightDelay = static_cast<std::uint32_t>(num);
        else if (key == "delayms")
            out.delayMs = num;
        else if (key == "span")
            out.spanBytes = static_cast<std::uint32_t>(num);
        else if (key == "skip")
            out.skipConnections = static_cast<std::uint32_t>(num);
        else {
            err = key + ": unknown chaos key";
            return false;
        }
    }
    if (out.everyBytes == 0)
        out.everyBytes = 1;
    if (out.spanBytes == 0)
        out.spanBytes = 1;
    return true;
}

std::string
ChaosSpec::summary() const
{
    std::string s = "seed=" + std::to_string(seed) +
                    " every=" + std::to_string(everyBytes) +
                    " drop=" + std::to_string(weightDrop) +
                    " dup=" + std::to_string(weightDup) +
                    " trunc=" + std::to_string(weightTrunc) +
                    " sever=" + std::to_string(weightSever) +
                    " delay=" + std::to_string(weightDelay) +
                    " delayms=" + std::to_string(delayMs) +
                    " span=" + std::to_string(spanBytes) +
                    " skip=" + std::to_string(skipConnections);
    return s;
}

struct ChaosProxy::Impl
{
    /** One forwarding direction of one connection. The fault
     *  schedule advances on *input* byte offsets, so chunk sizes
     *  from the kernel never shift which byte a fault lands on. */
    struct Dir
    {
        std::uint64_t rng = 0;
        std::uint64_t offset = 0;    // input bytes consumed
        std::uint64_t nextFault = 0; // input offset of next event
        std::uint64_t dropLeft = 0;  // bytes still to discard
        std::uint64_t dupLeft = 0;   // bytes still to double
        /** Input offset the stream is cut at (sever/trunc); bytes
         *  before it still flush, everything after is discarded and
         *  the connection closes once the buffer drains. */
        std::uint64_t cutAt = ~0ull;
        bool srcEof = false;         // source half closed cleanly
        double holdUntil = 0.0;      // delay fault: no flush until
        std::vector<std::uint8_t> buf; // processed, awaiting flush
        std::size_t bufPos = 0;

        bool
        drained() const
        {
            return bufPos >= buf.size();
        }
        bool
        finished() const
        {
            return drained() && (srcEof || offset >= cutAt);
        }
    };

    struct Conn
    {
        std::uint64_t index = 0;
        int client = -1;   // accepted side
        int upstream = -1; // dialed side
        bool chaos = true; // false for skipped connections
        Dir up;            // client -> upstream
        Dir down;          // upstream -> client
        bool dead = false;
    };

    ChaosSpec spec;
    std::string upstreamAddr;
    int listenFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::uint64_t accepted = 0;
    std::vector<std::unique_ptr<Conn>> conns;
    bool stopRequested = false;

    mutable std::mutex mu;
    std::uint64_t faults = 0;
    std::string log;
    std::FILE *echo = nullptr;

    std::uint64_t
    sampleGap(Dir &d) const
    {
        // Uniform in [1, 2*every]: mean `every`, never zero.
        return 1 + mix64(d.rng) % (2 * spec.everyBytes);
    }

    void
    seedDir(Conn &c, Dir &d, unsigned dirIndex)
    {
        d.rng = spec.seed ^
                ((c.index * 2 + dirIndex + 1) *
                 0x9e3779b97f4a7c15ull);
        d.nextFault = sampleGap(d);
    }

    void
    note(const Conn &c, const char *dir, std::uint64_t off, Fault f,
         std::uint64_t span)
    {
        std::lock_guard<std::mutex> lk(mu);
        ++faults;
        std::string line = "conn=" + std::to_string(c.index) +
                           " dir=" + dir +
                           " off=" + std::to_string(off) +
                           " fault=" + faultName(f);
        if (span > 0)
            line += " span=" + std::to_string(span);
        log += line + "\n";
        if (echo != nullptr) {
            std::fprintf(echo, "chaos: %s\n", line.c_str());
            std::fflush(echo);
        }
    }

    Fault
    pickFault(Dir &d) const
    {
        std::uint32_t r = static_cast<std::uint32_t>(
            mix64(d.rng) % spec.totalWeight());
        if (r < spec.weightDrop)
            return Fault::Drop;
        r -= spec.weightDrop;
        if (r < spec.weightDup)
            return Fault::Dup;
        r -= spec.weightDup;
        if (r < spec.weightTrunc)
            return Fault::Trunc;
        r -= spec.weightTrunc;
        if (r < spec.weightSever)
            return Fault::Sever;
        return Fault::Delay;
    }

    /** Run @p data through the fault schedule, appending survivors
     *  to d.buf. Bytes past a cut point (sever/trunc) are discarded
     *  here; the already-buffered prefix still flushes, and the
     *  connection closes once it has (Dir::finished). */
    void
    process(Conn &c, Dir &d, const char *dirName,
            const std::uint8_t *data, std::size_t n)
    {
        if (!c.chaos || spec.totalWeight() == 0) {
            d.buf.insert(d.buf.end(), data, data + n);
            return;
        }
        std::size_t i = 0;
        while (i < n) {
            if (d.offset >= d.cutAt) {
                d.offset += n - i; // cut: discard the remainder
                break;
            }
            // Finish any active drop/dup span first; events never
            // overlap because the next gap is sampled past the span.
            if (d.dropLeft > 0) {
                const std::size_t take = static_cast<std::size_t>(
                    std::min<std::uint64_t>(d.dropLeft, n - i));
                d.dropLeft -= take;
                d.offset += take;
                i += take;
                continue;
            }
            if (d.dupLeft > 0) {
                const std::size_t take = static_cast<std::size_t>(
                    std::min<std::uint64_t>(d.dupLeft, n - i));
                d.buf.insert(d.buf.end(), data + i, data + i + take);
                d.buf.insert(d.buf.end(), data + i, data + i + take);
                d.dupLeft -= take;
                d.offset += take;
                i += take;
                continue;
            }
            if (d.offset < d.nextFault) {
                std::uint64_t gap = d.nextFault - d.offset;
                gap = std::min(gap, d.cutAt - d.offset);
                const std::size_t take = static_cast<std::size_t>(
                    std::min<std::uint64_t>(gap, n - i));
                d.buf.insert(d.buf.end(), data + i, data + i + take);
                d.offset += take;
                i += take;
                continue;
            }
            // A fault event lands exactly here.
            const Fault f = pickFault(d);
            const std::uint64_t span =
                1 + mix64(d.rng) % spec.spanBytes;
            note(c, dirName, d.offset, f,
                 f == Fault::Sever || f == Fault::Delay ? 0 : span);
            switch (f) {
            case Fault::Drop:
                d.dropLeft = span;
                break;
            case Fault::Dup:
                d.dupLeft = span;
                break;
            case Fault::Trunc:
                // Forward `span` more bytes, then cut mid-frame.
                d.cutAt = d.offset + span;
                break;
            case Fault::Sever:
                d.cutAt = d.offset; // cut right here
                break;
            case Fault::Delay:
                d.holdUntil = monoNow() + spec.delayMs / 1000.0;
                break;
            }
            d.nextFault = d.offset + span + sampleGap(d);
        }
    }

    void
    closeConn(Conn &c)
    {
        if (c.client >= 0)
            ::close(c.client);
        if (c.upstream >= 0)
            ::close(c.upstream);
        c.client = -1;
        c.upstream = -1;
        c.dead = true;
    }

    /** Flush d.buf toward @p dst; false on write failure. */
    bool
    flushDir(Dir &d, int dst, double now)
    {
        if (d.holdUntil > now)
            return true;
        while (d.bufPos < d.buf.size()) {
            const ssize_t w =
                writeRetry(dst, d.buf.data() + d.bufPos,
                           d.buf.size() - d.bufPos);
            if (w > 0) {
                d.bufPos += static_cast<std::size_t>(w);
                continue;
            }
            if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return true;
            return false;
        }
        d.buf.clear();
        d.bufPos = 0;
        return true;
    }
};

ChaosProxy::ChaosProxy() = default;

ChaosProxy::~ChaosProxy() { stop(); }

bool
ChaosProxy::start(const std::string &listenAddr,
                  const std::string &upstreamAddr,
                  const ChaosSpec &spec, std::string &err)
{
    neo_assert(impl_ == nullptr, "chaos proxy already started");
    // The forwarding loop writes to peers the schedule itself kills;
    // hosts that are not neoverify (the test binaries embed the
    // proxy in-process) must not die of the resulting SIGPIPE.
    ignoreSigpipe();
    auto impl = std::make_unique<Impl>();
    impl->spec = spec;
    impl->upstreamAddr = upstreamAddr;
    impl->echo = echo_;
    impl->listenFd = listenTcp(listenAddr, err, &bound_);
    if (impl->listenFd < 0)
        return false;
    int pipeFds[2];
    if (::pipe(pipeFds) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        ::close(impl->listenFd);
        return false;
    }
    impl->wakeRead = pipeFds[0];
    impl->wakeWrite = pipeFds[1];
    setNonBlocking(impl->listenFd);
    setNonBlocking(impl->wakeRead);
    impl_ = std::move(impl);
    thread_ = std::thread([this] { run(); });
    return true;
}

void
ChaosProxy::stop()
{
    if (impl_ == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        impl_->stopRequested = true;
    }
    const std::uint8_t one = 1;
    (void)!::write(impl_->wakeWrite, &one, 1);
    if (thread_.joinable())
        thread_.join();
    ::close(impl_->listenFd);
    ::close(impl_->wakeRead);
    ::close(impl_->wakeWrite);
    for (auto &c : impl_->conns)
        impl_->closeConn(*c);
    finalAccepted_ = impl_->accepted;
    finalFaults_ = impl_->faults;
    finalLog_ = impl_->log;
    impl_.reset();
}

std::uint64_t
ChaosProxy::connectionsAccepted() const
{
    if (impl_ == nullptr)
        return finalAccepted_;
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->accepted;
}

std::uint64_t
ChaosProxy::faultsInjected() const
{
    if (impl_ == nullptr)
        return finalFaults_;
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->faults;
}

std::string
ChaosProxy::scheduleLog() const
{
    if (impl_ == nullptr)
        return finalLog_;
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->log;
}

void
ChaosProxy::run()
{
    Impl &im = *impl_;
    std::vector<pollfd> pfds;
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(im.mu);
            if (im.stopRequested)
                return;
        }
        const double now = monoNow();
        pfds.clear();
        pfds.push_back({im.wakeRead, POLLIN, 0});
        pfds.push_back({im.listenFd, POLLIN, 0});
        double nextHold = 0.0;
        for (auto &cp : im.conns) {
            Impl::Conn &c = *cp;
            if (c.dead)
                continue;
            short cev = 0, uev = 0;
            // Read a side only while the opposite buffer has room.
            if (!c.up.srcEof &&
                c.up.buf.size() - c.up.bufPos < kDirBufferCap)
                cev |= POLLIN;
            if (!c.down.srcEof &&
                c.down.buf.size() - c.down.bufPos < kDirBufferCap)
                uev |= POLLIN;
            if (c.down.bufPos < c.down.buf.size() &&
                c.down.holdUntil <= now)
                cev |= POLLOUT;
            if (c.up.bufPos < c.up.buf.size() &&
                c.up.holdUntil <= now)
                uev |= POLLOUT;
            for (const Impl::Dir *d : {&c.up, &c.down})
                if (d->holdUntil > now &&
                    (nextHold == 0.0 || d->holdUntil < nextHold))
                    nextHold = d->holdUntil;
            pfds.push_back({c.client, cev, 0});
            pfds.push_back({c.upstream, uev, 0});
        }
        int timeoutMs = 200;
        if (nextHold > 0.0)
            timeoutMs = std::max(
                1, static_cast<int>((nextHold - now) * 1000) + 1);
        const int pr =
            ::poll(pfds.data(), pfds.size(), timeoutMs);
        if (pr < 0 && errno != EINTR)
            return;

        if ((pfds[1].revents & POLLIN) != 0) {
            for (;;) {
                const int cfd =
                    ::accept(im.listenFd, nullptr, nullptr);
                if (cfd < 0)
                    break;
                std::string err;
                const int ufd =
                    connectTcp(im.upstreamAddr, err, 5.0);
                if (ufd < 0) {
                    neo_inform("chaos proxy: upstream %s: %s",
                               im.upstreamAddr.c_str(), err.c_str());
                    ::close(cfd);
                    continue;
                }
                setNonBlocking(cfd);
                setNonBlocking(ufd);
                auto conn = std::make_unique<Impl::Conn>();
                std::uint64_t idx;
                {
                    std::lock_guard<std::mutex> lk(im.mu);
                    idx = im.accepted++;
                }
                conn->index = idx;
                conn->client = cfd;
                conn->upstream = ufd;
                conn->chaos = idx >= im.spec.skipConnections;
                im.seedDir(*conn, conn->up, 0);
                im.seedDir(*conn, conn->down, 1);
                im.conns.push_back(std::move(conn));
            }
        }

        // Forward. pfds[2 + 2k] is conns[k].client, [3 + 2k] its
        // upstream — but conns indexing skips dead entries, so walk
        // them in the same order the pfds were built.
        std::size_t pi = 2;
        const double flushNow = monoNow();
        for (auto &cp : im.conns) {
            Impl::Conn &c = *cp;
            if (c.dead)
                continue;
            const short crev = pfds[pi].revents;
            const short urev = pfds[pi + 1].revents;
            pi += 2;
            std::uint8_t chunk[65536];
            bool ok = true;
            // Drain each readable source through the fault schedule.
            // A clean EOF is NOT an immediate close: the processed
            // bytes already sitting in the buffer must still flush
            // (otherwise every short-lived connection tail-truncates
            // on its own, chaos or no chaos).
            auto drain = [&](int src, Impl::Dir &d,
                             const char *name) {
                for (;;) {
                    const ssize_t r = readRetry(src, chunk,
                                                sizeof chunk);
                    if (r > 0) {
                        im.process(c, d, name, chunk,
                                   static_cast<std::size_t>(r));
                        if (r < static_cast<ssize_t>(sizeof chunk))
                            break;
                        continue;
                    }
                    if (r < 0 && (errno == EAGAIN ||
                                  errno == EWOULDBLOCK))
                        break;
                    if (r == 0)
                        d.srcEof = true;
                    else
                        ok = false; // hard error: cut both ways
                    break;
                }
            };
            if ((crev & (POLLIN | POLLHUP | POLLERR)) != 0)
                drain(c.client, c.up, "up");
            if (ok && (urev & (POLLIN | POLLHUP | POLLERR)) != 0)
                drain(c.upstream, c.down, "down");
            if (ok)
                ok = im.flushDir(c.up, c.upstream, flushNow) &&
                     im.flushDir(c.down, c.client, flushNow);
            // A direction that reached its cut point (sever/trunc)
            // or its source's EOF closes the connection — but only
            // after its surviving bytes flushed, so a truncation
            // delivers exactly the schedule's prefix, then dies.
            for (const Impl::Dir *d : {&c.up, &c.down})
                if (ok && d->finished())
                    ok = false;
            if (!ok)
                im.closeConn(c);
        }

        // Reap dead connections so the pfd list stays small.
        im.conns.erase(
            std::remove_if(im.conns.begin(), im.conns.end(),
                           [](const std::unique_ptr<Impl::Conn> &c) {
                               return c->dead;
                           }),
            im.conns.end());
    }
}

} // namespace neo
