/**
 * @file
 * Deterministic network-chaos proxy for the verification service.
 *
 * A seeded in-process TCP forwarder that sits between workers and the
 * coordinator and injects the failure modes a real multi-box pool
 * sees: dropped bytes, delayed flushes, frames truncated mid-write,
 * duplicated byte ranges, and severed connections. The schedule is a
 * pure function of (seed, connection index, direction, byte offset) —
 * chunk boundaries, kernel timing and poll order do not affect which
 * byte gets hit — so a failing test reproduces from its seed alone.
 *
 * This is the network-level sibling of the message-level fault
 * injector from the simulation harness: that one reorders and drops
 * protocol messages to test the coherence protocol; this one mangles
 * raw bytes to test the service's CRC framing, reconnect logic and
 * fixpoint accounting. Corrupted bytes must surface as latched link
 * failures and clean attempt retries, never as a false Verified.
 */

#ifndef NEO_VERIF_SERVICE_CHAOS_PROXY_HPP
#define NEO_VERIF_SERVICE_CHAOS_PROXY_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace neo
{

/**
 * Fault schedule parameters, parsed from a spec string of
 * comma-separated key=value pairs:
 *
 *   seed=42,every=32768,drop=1,dup=1,trunc=1,sever=2,delay=4,
 *   delayms=25,span=64,skip=1
 *
 * `every` is the mean gap in stream bytes between fault events per
 * direction; `drop/dup/trunc/sever/delay` are relative weights for
 * picking the fault at each event (all zero disables injection);
 * `span` bounds the bytes affected by drop/dup/trunc; `delayms` is
 * the hold applied by a delay fault; `skip` exempts the first N
 * accepted connections so a test can let the control plane settle.
 */
struct ChaosSpec
{
    std::uint64_t seed = 1;
    std::uint64_t everyBytes = 1u << 20;
    std::uint32_t weightDrop = 0;
    std::uint32_t weightDup = 0;
    std::uint32_t weightTrunc = 0;
    std::uint32_t weightSever = 0;
    std::uint32_t weightDelay = 0;
    double delayMs = 20.0;
    std::uint32_t spanBytes = 64;
    std::uint32_t skipConnections = 0;

    std::uint32_t totalWeight() const
    {
        return weightDrop + weightDup + weightTrunc + weightSever +
               weightDelay;
    }

    static bool parse(const std::string &text, ChaosSpec &out,
                      std::string &err);
    std::string summary() const;
};

/**
 * The proxy itself: listens on one TCP endpoint, forwards every
 * accepted connection to a fixed upstream, and runs the fault
 * schedule in a background thread. start()/stop() bracket the
 * lifetime; scheduleLog() returns the reproducible record of every
 * injected fault ("conn=3 dir=up off=81920 fault=sever") for test
 * artifacts and debugging.
 */
class ChaosProxy
{
  public:
    ChaosProxy(); // out of line: Impl is incomplete here
    ~ChaosProxy();
    ChaosProxy(const ChaosProxy &) = delete;
    ChaosProxy &operator=(const ChaosProxy &) = delete;

    /** Echo each schedule line to @p f as it happens (CLI mode).
     *  Must be called before start(). */
    void setEcho(std::FILE *f) { echo_ = f; }

    /** Bind @p listenAddr ("host:port", port 0 ok), forward to
     *  @p upstreamAddr, spawn the forwarding thread.
     *  @return false with @p err set on bind failure. */
    bool start(const std::string &listenAddr,
               const std::string &upstreamAddr, const ChaosSpec &spec,
               std::string &err);
    void stop();

    /** Resolved listen address (valid after start()). */
    const std::string &boundAddress() const { return bound_; }

    /** Live while running; the final totals remain readable after
     *  stop() (tests attach the schedule to their failure output). */
    std::uint64_t connectionsAccepted() const;
    std::uint64_t faultsInjected() const;
    std::string scheduleLog() const;

  private:
    struct Impl;
    void run();

    std::unique_ptr<Impl> impl_;
    std::thread thread_;
    std::string bound_;
    std::FILE *echo_ = nullptr;
    std::uint64_t finalAccepted_ = 0;
    std::uint64_t finalFaults_ = 0;
    std::string finalLog_;
};

} // namespace neo

#endif // NEO_VERIF_SERVICE_CHAOS_PROXY_HPP
