#include "coordinator.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <list>
#include <set>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "sim/logging.hpp"
#include "verif/checkpoint.hpp"
#include "verif/explorer.hpp"
#include "verif/service/job_queue.hpp"
#include "verif/service/wire.hpp"
#include "verif/service/worker.hpp"

namespace neo
{

namespace
{

double
nowSec()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

/** Pongs a worker may miss before it counts as hung (multiplied by
 *  the heartbeat interval, floored at a few seconds so fast
 *  heartbeats do not misfire on scheduler hiccups). */
constexpr double kStaleHeartbeats = 8.0;
constexpr double kStaleFloorSeconds = 5.0;
/** Staleness floor while a checkpoint barrier is writing: the worker
 *  services pings during the snapshot *encode*, but the final
 *  write+fsync is one blocking syscall that can legitimately outlast
 *  the run-phase limit on a slow disk — a healthy large job must not
 *  fail every barrier as "unresponsive". */
constexpr double kCkptStaleFloorSeconds = 60.0;
/** Complete pong rounds with a frozen global state count before the
 *  attempt is declared wedged. */
constexpr unsigned kNoProgressRounds = 120;

/** Epochs any non-terminal job may still resume from. A job in retry
 *  backoff is not the running job, but its committed checkpoint must
 *  outlive every other job that runs during the backoff window —
 *  pruning "everything but the current epoch" loses exactly those
 *  files and turns a recoverable kill into a quarantine. */
std::set<std::uint64_t>
liveEpochs(const std::map<std::uint64_t, Job> &jobs)
{
    std::set<std::uint64_t> keep;
    for (const auto &[id, job] : jobs) {
        (void)id;
        if ((job.state == JobState::Pending ||
             job.state == JobState::Running) &&
            job.ckpt.epoch != 0)
            keep.insert(job.ckpt.epoch);
    }
    return keep;
}

/** Delete partition snapshot files whose epoch is not in @p keep. */
void
pruneEpochFiles(const std::string &dir,
                const std::set<std::uint64_t> &keep)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("epoch-", 0) != 0 || name.size() < 11 ||
            name.substr(name.size() - 5) != ".ckpt")
            continue;
        const std::uint64_t epoch =
            std::strtoull(name.c_str() + 6, nullptr, 10);
        if (keep.count(epoch) == 0) {
            std::error_code rmEc;
            fs::remove(entry.path(), rmEc);
        }
    }
}

struct PongData
{
    std::uint32_t seq = 0;
    bool paused = false;
    /** Worker is still scanning resume partitions: its store and
     *  queue are partial, so no stability conclusion may rest on this
     *  pong. */
    bool loading = false;
    bool outEmpty = false;
    std::uint64_t queueLen = 0;
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t invChecks = 0;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;

    bool
    operator==(const PongData &o) const
    {
        return paused == o.paused && loading == o.loading &&
               outEmpty == o.outEmpty && queueLen == o.queueLen &&
               states == o.states && transitions == o.transitions &&
               invChecks == o.invChecks && sent == o.sent &&
               recv == o.recv;
    }
};

struct WorkerProc
{
    pid_t pid = -1;
    Channel ctl;
    bool alive = true;
    bool finalSeen = false;
    PongData pong;
    std::uint64_t finStates = 0;
    std::uint64_t finTransitions = 0;
    std::uint64_t finInvChecks = 0;
    double lastPong = 0.0;
};

enum class Phase
{
    Run,       ///< workers exploring
    Quiesce,   ///< barrier: pause sent, draining in-flight states
    CkptWrite, ///< barrier: partition snapshots being written
    Finishing, ///< fixpoint detected, collecting Final reports
};

struct Attempt
{
    bool active = false;
    std::uint64_t jobId = 0;
    unsigned W = 0;
    std::vector<WorkerProc> workers;
    double start = 0.0;
    Phase phase = Phase::Run;
    std::uint32_t pingSeq = 0;
    std::uint32_t lastRound = 0;
    double lastPing = 0.0;
    double lastCkpt = 0.0;
    /** Stability detector state (previous complete round). */
    std::vector<PongData> prevRound;
    bool havePrev = false;
    std::uint64_t lastSumStates = ~0ULL;
    unsigned frozenRounds = 0;
    /** Barrier bookkeeping. */
    std::uint64_t ckptEpoch = 0;
    unsigned ckptDone = 0;
    bool ckptOk = true;
    /** Completion bookkeeping. */
    unsigned finals = 0;
    unsigned deaths = 0;
    /** The committed manifest AS OF ATTEMPT START. Worker counters
     *  accumulate from attempt start, so every base+delta sum must
     *  use this frozen copy — job.ckpt advances when a barrier
     *  commits mid-attempt, and summing against the moving value
     *  would double-count the deltas already inside it. */
    CkptManifest base;
};

struct ClientConn
{
    Channel ch;
};

class Coordinator
{
  public:
    explicit Coordinator(const ServeOptions &opts)
        : opts_(opts),
          queue_(opts.retryLimit, opts.backoffSeconds)
    {
    }

    int run();

  private:
    // --- attempt lifecycle ---
    void startAttempt(Job &job);
    void stopAttemptWorkers();
    void attemptFailed(const std::string &reason);
    void finishJob(const JobResult &result);
    JobResult pongResult(std::uint8_t statusCode,
                         double now) const;

    // --- supervision ---
    void supervise(double now);
    void reapDead(double now);
    void sendPings(double now);
    void handleRound(double now);
    void handleWorkerFrame(unsigned w, MsgType type,
                           const std::vector<std::uint8_t> &body,
                           double now);

    // --- clients ---
    void acceptClients();
    void handleClientFrame(ClientConn &client, MsgType type,
                           const std::vector<std::uint8_t> &body);
    void notifyWaiters(std::uint64_t jobId);
    std::pair<int, std::string> resultFor(const Job &job) const;
    std::string statusText() const;
    void dropClosedClients();

    static void sendErr(ClientConn &c, const std::string &msg);
    static void sendOk(ClientConn &c, const std::string &msg);

    ServeOptions opts_;
    JobQueue queue_;
    int listenFd_ = -1;
    bool draining_ = false;
    std::uint64_t nextEpoch_ = 1;
    Attempt attempt_;
    std::list<ClientConn> clients_;
    std::vector<std::pair<std::uint64_t, ClientConn *>> waiters_;
};

// ---------------------------------------------------------------
// Attempt lifecycle
// ---------------------------------------------------------------

void
Coordinator::startAttempt(Job &job)
{
    unsigned W = job.nextWorkers != 0 ? job.nextWorkers
                                      : opts_.workers;
    W = std::max(1u, W);

    // Journal-first: the attempt exists durably before any fork, so
    // a coordinator crash from here on replays as a failed attempt.
    queue_.markStarted(job, W);

    std::vector<std::array<int, 2>> ctl(W);
    // peerFd[i][j]: worker i's end of the i<->j mesh link.
    std::vector<std::vector<int>> peerFd(
        W, std::vector<int>(W, -1));
    for (unsigned i = 0; i < W; ++i) {
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, ctl[i].data()) != 0)
            neo_fatal("socketpair: ", std::strerror(errno));
    }
    for (unsigned i = 0; i < W; ++i) {
        for (unsigned j = i + 1; j < W; ++j) {
            int sv[2];
            if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
                neo_fatal("socketpair: ", std::strerror(errno));
            peerFd[i][j] = sv[0];
            peerFd[j][i] = sv[1];
        }
    }

    attempt_ = Attempt();
    attempt_.active = true;
    attempt_.jobId = job.id;
    attempt_.W = W;
    attempt_.base = job.ckpt;
    attempt_.workers.resize(W);

    for (unsigned i = 0; i < W; ++i) {
        const pid_t pid = ::fork();
        if (pid < 0)
            neo_fatal("fork: ", std::strerror(errno));
        if (pid == 0) {
            // Child: drop every inherited fd that is not ours —
            // most critically the journal (a worker must never be
            // able to extend it) and the listening socket.
            ::close(listenFd_);
            if (queue_.journalFd() >= 0)
                ::close(queue_.journalFd());
            for (const auto &c : clients_)
                if (c.ch.fd() >= 0)
                    ::close(c.ch.fd());
            for (unsigned k = 0; k < W; ++k) {
                ::close(ctl[k][0]);
                if (k != i)
                    ::close(ctl[k][1]);
                if (k != i)
                    for (int fd : peerFd[k])
                        if (fd >= 0)
                            ::close(fd);
            }
            WorkerConfig cfg;
            cfg.index = i;
            cfg.count = W;
            cfg.spec = job.spec;
            cfg.partDir = opts_.stateDir;
            cfg.resumeEpoch = job.ckpt.epoch;
            cfg.resumeParts = job.ckpt.parts;
            WorkerEndpoints eps;
            eps.control = ctl[i][1];
            eps.peers = peerFd[i];
            runWorkerProcess(cfg, eps); // never returns
        }
        attempt_.workers[i].pid = pid;
    }

    // Parent: every child-side fd now belongs to the children.
    const double now = nowSec();
    for (unsigned i = 0; i < W; ++i) {
        ::close(ctl[i][1]);
        for (int fd : peerFd[i])
            if (fd >= 0)
                ::close(fd);
        setNonBlocking(ctl[i][0]);
        attempt_.workers[i].ctl = Channel(ctl[i][0]);
        attempt_.workers[i].lastPong = now; // spawn grace
    }
    attempt_.start = now;
    attempt_.lastCkpt = now;
    attempt_.lastPing = now - opts_.heartbeatSeconds; // ping at once

    neo_inform("job ", job.id, " attempt ", job.attempts, ": ", W,
               " worker", W == 1 ? "" : "s",
               job.ckpt.epoch != 0
                   ? " (resuming checkpoint epoch " +
                         std::to_string(job.ckpt.epoch) + ")"
                   : std::string(),
               ": ", job.spec.summary());
}

void
Coordinator::stopAttemptWorkers()
{
    for (auto &w : attempt_.workers) {
        if (w.pid > 0 && w.alive) {
            ::kill(w.pid, SIGKILL);
            int st = 0;
            pid_t rc;
            do {
                rc = ::waitpid(w.pid, &st, 0);
            } while (rc < 0 && errno == EINTR);
            w.alive = false;
        }
        w.ctl.close();
    }
}

void
Coordinator::attemptFailed(const std::string &reason)
{
    const unsigned deaths = attempt_.deaths;
    stopAttemptWorkers();
    Job *job = queue_.find(attempt_.jobId);
    attempt_.active = false;
    if (job == nullptr)
        return;
    // Reshard to survivors: the next attempt redeal's the lost
    // worker's partition from the last committed epoch.
    const std::uint32_t nextW = std::max(
        1u, attempt_.W - std::min(attempt_.W - 1, deaths));
    neo_warn("job ", job->id, " attempt ", job->attempts,
             " failed: ", reason, " (next attempt: ", nextW,
             " workers)");
    queue_.failAttempt(*job, reason, nextW, nowSec());
    if (job->state == JobState::Quarantined)
        notifyWaiters(job->id);
}

JobResult
Coordinator::pongResult(std::uint8_t statusCode,
                        double now) const
{
    // Best-effort counters from the latest pongs (exact at a
    // quiesced/stable round; approximate mid-flight, which only the
    // non-Verified verdicts use).
    JobResult res;
    res.statusCode = statusCode;
    for (const auto &w : attempt_.workers) {
        res.states += w.pong.states;
        res.transitions += w.pong.transitions;
        res.invariantChecks += w.pong.invChecks;
    }
    res.transitions += attempt_.base.transitions;
    res.invariantChecks += attempt_.base.invariantChecks;
    res.seconds = attempt_.base.seconds + (now - attempt_.start);
    return res;
}

void
Coordinator::finishJob(const JobResult &result)
{
    Job *job = queue_.find(attempt_.jobId);
    attempt_.active = false;
    if (job == nullptr)
        return;
    queue_.markDone(*job, result);
    pruneEpochFiles(opts_.stateDir, liveEpochs(queue_.jobs()));
    neo_inform("job ", job->id, " done: ",
               verifStatusName(
                   static_cast<VerifStatus>(result.statusCode)),
               " states=", result.states,
               " transitions=", result.transitions);
    notifyWaiters(job->id);
}

// ---------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------

void
Coordinator::reapDead(double now)
{
    for (;;) {
        int st = 0;
        const pid_t pid = ::waitpid(-1, &st, WNOHANG);
        if (pid <= 0)
            return;
        if (!attempt_.active)
            continue;
        for (unsigned i = 0; i < attempt_.workers.size(); ++i) {
            WorkerProc &w = attempt_.workers[i];
            if (w.pid != pid || !w.alive)
                continue;
            w.alive = false;
            // The socket may still hold a Final or Violation the
            // worker flushed right before exiting; drain it before
            // judging the death.
            w.ctl.readSome();
            MsgType type;
            std::vector<std::uint8_t> body;
            while (attempt_.active && w.ctl.next(type, body))
                handleWorkerFrame(i, type, body, now);
            if (!attempt_.active)
                break;
            if (attempt_.phase == Phase::Finishing && w.finalSeen)
                break; // expected exit after Final
            ++attempt_.deaths;
            std::ostringstream os;
            os << "worker " << i << "/" << attempt_.W;
            if (WIFSIGNALED(st))
                os << " killed by signal " << WTERMSIG(st);
            else
                os << " exited with status " << WEXITSTATUS(st);
            attemptFailed(os.str());
            break;
        }
        if (!attempt_.active)
            continue; // keep reaping the rest of the cohort
    }
}

void
Coordinator::sendPings(double now)
{
    ++attempt_.pingSeq;
    attempt_.lastPing = now;
    const bool pause = attempt_.phase == Phase::Quiesce ||
                       attempt_.phase == Phase::CkptWrite;
    SnapshotWriter w;
    w.putU32(attempt_.pingSeq);
    w.putU8(pause ? 1 : 0);
    const std::vector<std::uint8_t> body = w.take();
    for (auto &wp : attempt_.workers)
        if (wp.alive)
            wp.ctl.queueFrame(MsgType::Ping, body);
}

void
Coordinator::handleRound(double now)
{
    attempt_.lastRound = attempt_.pingSeq;

    std::vector<PongData> round;
    round.reserve(attempt_.workers.size());
    bool drained = true, allQuiesced = true, anyLoading = false;
    std::uint64_t sumStates = 0, sumSent = 0, sumRecv = 0;
    for (const auto &w : attempt_.workers) {
        round.push_back(w.pong);
        drained &= w.pong.outEmpty && w.pong.queueLen == 0;
        allQuiesced &= w.pong.paused && w.pong.outEmpty;
        anyLoading |= w.pong.loading;
        sumStates += w.pong.states;
        sumSent += w.pong.sent;
        sumRecv += w.pong.recv;
    }
    const bool sumsEq = sumSent == sumRecv;
    const bool same = attempt_.havePrev && round == attempt_.prevRound;
    attempt_.prevRound = std::move(round);
    attempt_.havePrev = true;

    if (sumStates != attempt_.lastSumStates) {
        attempt_.lastSumStates = sumStates;
        attempt_.frozenRounds = 0;
    } else {
        ++attempt_.frozenRounds;
    }

    if ((attempt_.phase == Phase::Run ||
         attempt_.phase == Phase::Quiesce) &&
        !anyLoading && drained && sumsEq && same) {
        // Two identical complete rounds with every queue and buffer
        // empty and global sent == received: nothing is running and
        // nothing is in flight — the distributed fixpoint. The
        // paused flag deliberately does not matter: a barrier's
        // pause cannot conjure work into empty queues, and requiring
        // Run-phase rounds starves detection forever when the
        // checkpoint cadence is at most two heartbeats (the barrier
        // kick reclaims the phase before a second unpaused round can
        // complete — the attempt then checkpoints an already-final
        // store on a loop until the no-progress watchdog shoots it).
        // The loading flag DOES matter: a worker scanning resume
        // partitions pongs a frozen partial store, and declaring the
        // fixpoint over it would finish the job with dropped states
        // on exactly the crash-recovery path.
        attempt_.phase = Phase::Finishing;
        for (auto &w : attempt_.workers)
            if (w.alive)
                w.ctl.queueFrame(MsgType::Finish, {});
        return;
    }
    if (attempt_.phase == Phase::Quiesce && !anyLoading &&
        allQuiesced && sumsEq && same) {
        attempt_.ckptEpoch = nextEpoch_++;
        attempt_.ckptDone = 0;
        attempt_.ckptOk = true;
        SnapshotWriter w;
        w.putU64(attempt_.ckptEpoch);
        const std::vector<std::uint8_t> body = w.take();
        for (auto &wp : attempt_.workers) {
            if (!wp.alive)
                continue;
            wp.ctl.queueFrame(MsgType::CkptWrite, body);
            // The staleness clock restarts at the barrier: the write
            // phase has its own (longer) allowance, and it should
            // measure from the barrier kick, not the last pre-
            // barrier pong.
            wp.lastPong = now;
        }
        attempt_.phase = Phase::CkptWrite;
        return;
    }
    if (attempt_.phase != Phase::Finishing &&
        attempt_.frozenRounds > kNoProgressRounds) {
        attemptFailed("no progress: global state count frozen for " +
                      std::to_string(attempt_.frozenRounds) +
                      " rounds");
    }
}

void
Coordinator::handleWorkerFrame(unsigned widx, MsgType type,
                               const std::vector<std::uint8_t> &body,
                               double now)
{
    WorkerProc &w = attempt_.workers[widx];
    SnapshotReader r(body);
    switch (type) {
      case MsgType::Pong: {
          PongData p;
          p.seq = r.getU32();
          p.paused = r.getU8() != 0;
          p.loading = r.getU8() != 0;
          p.outEmpty = r.getU8() != 0;
          p.queueLen = r.getU64();
          p.states = r.getU64();
          p.transitions = r.getU64();
          p.invChecks = r.getU64();
          p.sent = r.getU64();
          p.recv = r.getU64();
          if (!r.ok())
              return;
          w.pong = p;
          w.lastPong = now;
          // Complete round: every worker answered the latest ping.
          if (attempt_.phase == Phase::Run ||
              attempt_.phase == Phase::Quiesce) {
              bool complete = attempt_.pingSeq != attempt_.lastRound;
              for (const auto &wp : attempt_.workers)
                  complete &= wp.alive &&
                              wp.pong.seq == attempt_.pingSeq;
              if (complete)
                  handleRound(now);
          }
          break;
      }
      case MsgType::CkptDone: {
          const std::uint64_t epoch = r.getU64();
          const bool ok = r.getU8() != 0;
          w.lastPong = now; // the snapshot write proves liveness
          if (attempt_.phase != Phase::CkptWrite ||
              epoch != attempt_.ckptEpoch)
              return;
          attempt_.ckptOk &= ok;
          if (++attempt_.ckptDone < attempt_.W)
              return;
          Job *job = queue_.find(attempt_.jobId);
          if (attempt_.ckptOk && job != nullptr) {
              // All partitions durable: commit the consistent cut.
              // The pong counters are from the quiesced stable
              // round, so the manifest is exact.
              CkptManifest m;
              m.epoch = attempt_.ckptEpoch;
              m.parts = attempt_.W;
              for (const auto &wp : attempt_.workers) {
                  m.states += wp.pong.states;
                  m.transitions += wp.pong.transitions;
                  m.invariantChecks += wp.pong.invChecks;
              }
              m.transitions += attempt_.base.transitions;
              m.invariantChecks += attempt_.base.invariantChecks;
              m.seconds =
                  attempt_.base.seconds + (now - attempt_.start);
              queue_.recordCheckpoint(*job, m);
              pruneEpochFiles(opts_.stateDir,
                              liveEpochs(queue_.jobs()));
          } else {
              neo_warn("checkpoint epoch ", attempt_.ckptEpoch,
                       " abandoned (a partition write failed)");
          }
          attempt_.lastCkpt = now;
          attempt_.phase = Phase::Run; // next ping unpauses
          break;
      }
      case MsgType::Final: {
          w.finalSeen = true;
          w.finStates = r.getU64();
          w.finTransitions = r.getU64();
          w.finInvChecks = r.getU64();
          if (++attempt_.finals < attempt_.W)
              return;
          JobResult res;
          res.statusCode = static_cast<std::uint8_t>(
              VerifStatus::Verified);
          for (const auto &wp : attempt_.workers) {
              res.states += wp.finStates;
              res.transitions += wp.finTransitions;
              res.invariantChecks += wp.finInvChecks;
          }
          res.transitions += attempt_.base.transitions;
          res.invariantChecks += attempt_.base.invariantChecks;
          res.seconds = attempt_.base.seconds + (now - attempt_.start);
          stopAttemptWorkers();
          finishJob(res);
          break;
      }
      case MsgType::Violation: {
          const std::string invariant = getString(r);
          const std::string bad = getString(r);
          // The reporter's exact counters: fold them into its pong
          // slot so the verdict is right even when the violation
          // beat the first heartbeat round (peers' counters stay
          // best-effort — the verdict's counts are advisory for
          // anything but Verified).
          w.pong.states = r.getU64();
          w.pong.transitions = r.getU64();
          w.pong.invChecks = r.getU64();
          Job *job = queue_.find(attempt_.jobId);
          stopAttemptWorkers();
          if (job == nullptr) {
              attempt_.active = false;
              return;
          }
          JobResult res = pongResult(
              static_cast<std::uint8_t>(
                  VerifStatus::InvariantViolated),
              now);
          res.violatedInvariant = invariant;
          res.detail = bad;
          finishJob(res);
          break;
      }
      default:
          break;
    }
}

void
Coordinator::supervise(double now)
{
    reapDead(now);
    if (!attempt_.active)
        return;
    Job *job = queue_.find(attempt_.jobId);
    if (job == nullptr) {
        stopAttemptWorkers();
        attempt_.active = false;
        return;
    }

    if (now - attempt_.lastPing >= opts_.heartbeatSeconds)
        sendPings(now);

    double staleLimit =
        std::max(kStaleFloorSeconds,
                 kStaleHeartbeats * opts_.heartbeatSeconds);
    if (attempt_.phase == Phase::CkptWrite)
        staleLimit = std::max(staleLimit, kCkptStaleFloorSeconds);
    for (unsigned i = 0; i < attempt_.workers.size(); ++i) {
        const WorkerProc &w = attempt_.workers[i];
        if (w.alive && now - w.lastPong > staleLimit) {
            attemptFailed("worker " + std::to_string(i) +
                          " unresponsive for " +
                          std::to_string(staleLimit) + "s");
            return;
        }
    }

    if (opts_.jobTimeoutSeconds > 0.0 &&
        now - attempt_.start > opts_.jobTimeoutSeconds) {
        attemptFailed("attempt exceeded the job timeout");
        return;
    }

    // Bound enforcement mirrors the sequential CLI: exceeding a bound
    // is a terminal verdict, not a retryable failure.
    if (attempt_.havePrev) {
        std::uint64_t sumStates = 0;
        for (const auto &w : attempt_.workers)
            sumStates += w.pong.states;
        const double elapsed =
            attempt_.base.seconds + (now - attempt_.start);
        if (sumStates >= job->spec.maxStates ||
            (job->spec.maxSeconds > 0.0 &&
             elapsed > job->spec.maxSeconds)) {
            stopAttemptWorkers();
            JobResult res = pongResult(
                static_cast<std::uint8_t>(
                    VerifStatus::LimitExceeded),
                now);
            res.detail = sumStates >= job->spec.maxStates
                             ? "state bound exceeded"
                             : "time bound exceeded";
            finishJob(res);
            return;
        }
    }

    if (attempt_.phase == Phase::Run &&
        opts_.checkpointEverySeconds > 0.0 &&
        now - attempt_.lastCkpt >= opts_.checkpointEverySeconds)
        attempt_.phase = Phase::Quiesce; // next pings carry pause
}

// ---------------------------------------------------------------
// Clients
// ---------------------------------------------------------------

void
Coordinator::sendErr(ClientConn &c, const std::string &msg)
{
    SnapshotWriter w;
    putString(w, msg);
    c.ch.queueFrame(MsgType::RspErr, w.take());
}

void
Coordinator::sendOk(ClientConn &c, const std::string &msg)
{
    SnapshotWriter w;
    putString(w, msg);
    c.ch.queueFrame(MsgType::RspOk, w.take());
}

void
Coordinator::acceptClients()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN (or a transient error): back to poll
        }
        setNonBlocking(fd);
        clients_.emplace_back();
        clients_.back().ch = Channel(fd);
    }
}

void
Coordinator::notifyWaiters(std::uint64_t jobId)
{
    const Job *job = queue_.find(jobId);
    if (job == nullptr)
        return;
    const auto [code, text] = resultFor(*job);
    for (auto it = waiters_.begin(); it != waiters_.end();) {
        if (it->first != jobId) {
            ++it;
            continue;
        }
        SnapshotWriter w;
        w.putU8(static_cast<std::uint8_t>(code));
        putString(w, text);
        it->second->ch.queueFrame(MsgType::RspResult, w.take());
        it = waiters_.erase(it);
    }
}

std::pair<int, std::string>
Coordinator::resultFor(const Job &job) const
{
    std::ostringstream os;
    os << "job " << job.id << " ";
    switch (job.state) {
      case JobState::Done: {
          const auto status =
              static_cast<VerifStatus>(job.result.statusCode);
          os << verifStatusName(status) << ": states="
             << job.result.states
             << " transitions=" << job.result.transitions
             << " invchecks=" << job.result.invariantChecks
             << " seconds=" << job.result.seconds;
          if (!job.result.violatedInvariant.empty())
              os << " violated=" << job.result.violatedInvariant;
          if (!job.result.detail.empty())
              os << " (" << job.result.detail << ")";
          return {status == VerifStatus::Verified ? kExitClean
                                                  : kExitViolation,
                  os.str()};
      }
      case JobState::Quarantined:
          os << "QUARANTINED: " << job.lastFailure;
          return {kExitQuarantined, os.str()};
      case JobState::Cancelled:
          os << "CANCELLED";
          return {kExitInterrupted, os.str()};
      default:
          os << jobStateName(job.state);
          return {kExitViolation, os.str()};
    }
}

std::string
Coordinator::statusText() const
{
    std::ostringstream os;
    os << "serving " << opts_.sockPath
       << " workers=" << opts_.workers
       << " jobs=" << queue_.jobs().size()
       << (draining_ ? " draining" : "") << "\n";
    for (const auto &[id, job] : queue_.jobs()) {
        os << "job " << id << " " << jobStateName(job.state)
           << " attempt=" << job.attempts << "/"
           << queue_.retryLimit();
        if (job.state == JobState::Running && attempt_.active &&
            attempt_.jobId == id) {
            os << " workers=" << attempt_.W << " pids=";
            for (unsigned i = 0; i < attempt_.workers.size(); ++i)
                os << (i != 0 ? "," : "")
                   << attempt_.workers[i].pid;
            std::uint64_t states = 0;
            for (const auto &w : attempt_.workers)
                states += w.pong.states;
            os << " states=" << states;
        }
        if (job.state == JobState::Done)
            os << " status="
               << verifStatusName(
                      static_cast<VerifStatus>(
                          job.result.statusCode))
               << " states=" << job.result.states
               << " transitions=" << job.result.transitions
               << " invchecks=" << job.result.invariantChecks;
        if (job.ckpt.epoch != 0 && job.state != JobState::Done)
            os << " ckpt-epoch=" << job.ckpt.epoch;
        if (!job.lastFailure.empty())
            os << " last-failure=\"" << job.lastFailure << "\"";
        os << " :: " << job.spec.summary() << "\n";
    }
    return os.str();
}

void
Coordinator::handleClientFrame(ClientConn &client, MsgType type,
                               const std::vector<std::uint8_t> &body)
{
    SnapshotReader r(body);
    switch (type) {
      case MsgType::ReqSubmit: {
          if (draining_) {
              sendErr(client, "coordinator is draining");
              return;
          }
          JobSpec spec;
          if (!JobSpec::decode(r, spec)) {
              sendErr(client, "malformed job spec");
              return;
          }
          // Reject unbuildable specs at the door rather than letting
          // every attempt die in the worker.
          ModelShape shape;
          std::string err;
          buildJobModel(spec, shape, err);
          if (!err.empty()) {
              sendErr(client, err);
              return;
          }
          const std::uint64_t id = queue_.submit(spec);
          SnapshotWriter w;
          w.putU64(id);
          client.ch.queueFrame(MsgType::RspSubmit, w.take());
          neo_inform("job ", id, " submitted: ", spec.summary());
          break;
      }
      case MsgType::ReqStatus: {
          SnapshotWriter w;
          putString(w, statusText());
          client.ch.queueFrame(MsgType::RspStatus, w.take());
          break;
      }
      case MsgType::ReqCancel: {
          const std::uint64_t id = r.getU64();
          Job *job = queue_.find(id);
          if (job == nullptr) {
              sendErr(client, "unknown job");
              return;
          }
          const bool running = job->state == JobState::Running &&
                               attempt_.active &&
                               attempt_.jobId == id;
          if (!queue_.cancel(id)) {
              sendErr(client, "job is not cancellable");
              return;
          }
          if (running) {
              // Journal-first ordering: the CANCEL record is durable
              // before the workers die, so a crash right here
              // replays as cancelled, not as a retryable failure.
              stopAttemptWorkers();
              attempt_.active = false;
              pruneEpochFiles(opts_.stateDir,
                              liveEpochs(queue_.jobs()));
          }
          notifyWaiters(id);
          sendOk(client, "cancelled");
          break;
      }
      case MsgType::ReqDrain: {
          draining_ = true;
          sendOk(client, "draining");
          break;
      }
      case MsgType::ReqWait: {
          const std::uint64_t id = r.getU64();
          Job *job = queue_.find(id);
          if (job == nullptr) {
              sendErr(client, "unknown job");
              return;
          }
          if (job->state == JobState::Pending ||
              job->state == JobState::Running) {
              waiters_.emplace_back(id, &client);
              return;
          }
          const auto [code, text] = resultFor(*job);
          SnapshotWriter w;
          w.putU8(static_cast<std::uint8_t>(code));
          putString(w, text);
          client.ch.queueFrame(MsgType::RspResult, w.take());
          break;
      }
      default:
          sendErr(client, "unexpected request");
    }
}

void
Coordinator::dropClosedClients()
{
    for (auto it = clients_.begin(); it != clients_.end();) {
        if (it->ch.failed() || it->ch.fd() < 0) {
            ClientConn *dead = &*it;
            waiters_.erase(
                std::remove_if(waiters_.begin(), waiters_.end(),
                               [dead](const auto &w) {
                                   return w.second == dead;
                               }),
                waiters_.end());
            it = clients_.erase(it);
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------

int
Coordinator::run()
{
    ignoreSigpipe();
    installInterruptHandlers();

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(opts_.stateDir, ec);
    if (ec) {
        neo_warn("cannot create state dir ", opts_.stateDir, ": ",
                 ec.message());
        return kExitServiceUnavailable;
    }
    // Startup hygiene: tmp files orphaned by a crashed snapshot
    // write are reaped before anything can mistake them for state.
    reapStaleCheckpointTmps(opts_.stateDir);

    std::string err;
    if (!queue_.open(opts_.stateDir + "/journal.neoj", nowSec(),
                     err)) {
        neo_warn("journal: ", err);
        return kExitServiceUnavailable;
    }
    nextEpoch_ = queue_.maxEpochSeen() + 1;
    // Partition files whose epoch no live job can resume from are
    // garbage: torn barriers that never reached their manifest
    // record, and committed epochs of jobs that since finished.
    pruneEpochFiles(opts_.stateDir, liveEpochs(queue_.jobs()));

    listenFd_ = listenUnix(opts_.sockPath, err);
    if (listenFd_ < 0) {
        neo_warn("cannot serve: ", err);
        return kExitServiceUnavailable;
    }
    setNonBlocking(listenFd_);
    draining_ = opts_.drainAndExit;
    neo_inform("serving on ", opts_.sockPath, " (state in ",
               opts_.stateDir, ", ", opts_.workers,
               " workers per job)");

    std::vector<pollfd> pfds;
    std::vector<ClientConn *> pfdClient;
    std::vector<int> pfdWorker;

    while (!interruptRequested()) {
        if (draining_ && !attempt_.active && queue_.allTerminal())
            break;
        const double now = nowSec();
        if (!attempt_.active) {
            Job *job = queue_.runnable(now);
            if (job != nullptr)
                startAttempt(*job);
        }

        pfds.clear();
        pfdClient.clear();
        pfdWorker.clear();
        pfds.push_back({listenFd_, POLLIN, 0});
        pfdClient.push_back(nullptr);
        pfdWorker.push_back(-1);
        for (auto &c : clients_) {
            pfds.push_back(
                {c.ch.fd(),
                 static_cast<short>(
                     POLLIN | (c.ch.wantsWrite() ? POLLOUT : 0)),
                 0});
            pfdClient.push_back(&c);
            pfdWorker.push_back(-1);
        }
        if (attempt_.active) {
            for (unsigned i = 0; i < attempt_.workers.size(); ++i) {
                WorkerProc &w = attempt_.workers[i];
                if (!w.alive || w.ctl.fd() < 0)
                    continue;
                pfds.push_back(
                    {w.ctl.fd(),
                     static_cast<short>(
                         POLLIN |
                         (w.ctl.wantsWrite() ? POLLOUT : 0)),
                     0});
                pfdClient.push_back(nullptr);
                pfdWorker.push_back(static_cast<int>(i));
            }
        }

        const int rc = ::poll(pfds.data(), pfds.size(), 100);
        if (rc < 0 && errno != EINTR) {
            neo_warn("poll: ", std::strerror(errno));
            break;
        }
        const double after = nowSec();

        if (rc > 0 && (pfds[0].revents & POLLIN))
            acceptClients();

        MsgType type;
        std::vector<std::uint8_t> body;
        for (std::size_t k = 1; rc > 0 && k < pfds.size(); ++k) {
            if (pfds[k].revents == 0)
                continue;
            if (pfdClient[k] != nullptr) {
                ClientConn &c = *pfdClient[k];
                if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR))
                    c.ch.readSome();
                if (pfds[k].revents & POLLOUT)
                    c.ch.flush();
                while (!c.ch.failed() && c.ch.next(type, body))
                    handleClientFrame(c, type, body);
            } else if (pfdWorker[k] >= 0 && attempt_.active) {
                WorkerProc &w = attempt_.workers[
                    static_cast<unsigned>(pfdWorker[k])];
                if (w.ctl.fd() != pfds[k].fd)
                    continue; // attempt restarted mid-iteration
                if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR))
                    w.ctl.readSome();
                if (pfds[k].revents & POLLOUT)
                    w.ctl.flush();
                while (attempt_.active && w.ctl.next(type, body))
                    handleWorkerFrame(
                        static_cast<unsigned>(pfdWorker[k]), type,
                        body, after);
            }
        }

        supervise(nowSec());
        dropClosedClients();
    }

    if (attempt_.active) {
        // Deliberate shutdown mid-attempt: kill the cohort and leave
        // the journal's unmatched START to replay as a failed
        // attempt — identical to a crash, which is the point of
        // crash-only design (shutdown IS the crash path).
        neo_inform("shutting down with job ", attempt_.jobId,
                   " in flight; its attempt will replay as failed");
        stopAttemptWorkers();
    }
    ::close(listenFd_);
    ::unlink(opts_.sockPath.c_str());
    return kExitClean;
}

} // namespace

int
runCoordinator(const ServeOptions &opts)
{
    ServeOptions o = opts;
    if (o.stateDir.empty())
        o.stateDir = o.sockPath + ".state";
    if (o.workers == 0)
        o.workers = 1;
    Coordinator coord(o);
    return coord.run();
}

} // namespace neo
