#include "coordinator.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <list>
#include <set>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "sim/logging.hpp"
#include "verif/checkpoint.hpp"
#include "verif/explorer.hpp"
#include "verif/service/job_queue.hpp"
#include "verif/service/wire.hpp"
#include "verif/service/worker.hpp"

namespace neo
{

namespace
{

double
nowSec()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

/** Pongs a worker may miss before it counts as hung (multiplied by
 *  the heartbeat interval, floored at a few seconds so fast
 *  heartbeats do not misfire on scheduler hiccups). */
constexpr double kStaleHeartbeats = 8.0;
constexpr double kStaleFloorSeconds = 5.0;
/** Staleness floor while a checkpoint barrier is writing: the worker
 *  services pings during the snapshot *encode*, but the final
 *  write+fsync is one blocking syscall that can legitimately outlast
 *  the run-phase limit on a slow disk — a healthy large job must not
 *  fail every barrier as "unresponsive". */
constexpr double kCkptStaleFloorSeconds = 60.0;
/** Complete pong rounds with a frozen global state count before the
 *  attempt is declared wedged. */
constexpr unsigned kNoProgressRounds = 120;

/** TCP join barrier: heartbeats (floored) a star attempt may spend
 *  waiting for every worker slot's Hello before it fails for retry —
 *  covers pool agents that died between JoinPool and Assign, and
 *  links a chaos proxy severed during the handshake. */
constexpr double kJoinHeartbeats = 10.0;
constexpr double kJoinFloorSeconds = 10.0;
/** Write-stall deadline on a worker link: an out-buffer that drains
 *  zero bytes for this long means the peer stopped reading (half-open
 *  TCP, wedged proxy) even though the connection looks alive. */
constexpr double kLinkStallHeartbeats = 8.0;
constexpr double kLinkStallFloorSeconds = 10.0;
/** Relay backpressure: once an attempt's workers hold this many
 *  undrained relay bytes, the coordinator stops READING from that
 *  attempt's workers — the senders' batch streams stall at their own
 *  out-buffers instead of ballooning here. Bounded memory, no drops. */
constexpr std::size_t kRelayHighWater = 32u << 20;
/** A client that stops reading its responses is dropped rather than
 *  allowed to grow an unbounded out-buffer. */
constexpr std::size_t kClientHighWater = 16u << 20;
constexpr double kClientStallSeconds = 30.0;
/** An accepted TCP connection must identify itself (request, Hello,
 *  or JoinPool) within this long or it is dropped. */
constexpr double kClassifySeconds = 10.0;

/** Attempt nonce: unpredictable enough that a frame from a previous
 *  attempt (delayed in a proxy, or a pre-retry worker still dialing)
 *  cannot authenticate against the successor attempt. */
std::uint64_t
freshNonce()
{
    static std::uint64_t ctr = 0;
    std::uint64_t x = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    x ^= static_cast<std::uint64_t>(::getpid()) << 32;
    x += ++ctr * 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x != 0 ? x : 1;
}

/** Epochs any non-terminal job may still resume from. A job in retry
 *  backoff is not a running job, but its committed checkpoint must
 *  outlive every other job that runs during the backoff window —
 *  pruning "everything but the current epoch" loses exactly those
 *  files and turns a recoverable kill into a quarantine. */
std::set<std::uint64_t>
liveEpochs(const std::map<std::uint64_t, Job> &jobs)
{
    std::set<std::uint64_t> keep;
    for (const auto &[id, job] : jobs) {
        (void)id;
        if ((job.state == JobState::Pending ||
             job.state == JobState::Running) &&
            job.ckpt.epoch != 0)
            keep.insert(job.ckpt.epoch);
    }
    return keep;
}

/** Delete partition snapshot files whose epoch is not in @p keep. */
void
pruneEpochFiles(const std::string &dir,
                const std::set<std::uint64_t> &keep)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("epoch-", 0) != 0 || name.size() < 11 ||
            name.substr(name.size() - 5) != ".ckpt")
            continue;
        const std::uint64_t epoch =
            std::strtoull(name.c_str() + 6, nullptr, 10);
        if (keep.count(epoch) == 0) {
            std::error_code rmEc;
            fs::remove(entry.path(), rmEc);
        }
    }
}

struct PongData
{
    std::uint32_t seq = 0;
    bool paused = false;
    /** Worker is still scanning resume partitions: its store and
     *  queue are partial, so no stability conclusion may rest on this
     *  pong. */
    bool loading = false;
    bool outEmpty = false;
    std::uint64_t queueLen = 0;
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t invChecks = 0;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;

    bool
    operator==(const PongData &o) const
    {
        return paused == o.paused && loading == o.loading &&
               outEmpty == o.outEmpty && queueLen == o.queueLen &&
               states == o.states && transitions == o.transitions &&
               invChecks == o.invChecks && sent == o.sent &&
               recv == o.recv;
    }
};

struct WorkerProc
{
    /** -1 for remote (pool) workers, which have no local process. */
    pid_t pid = -1;
    Channel ctl;
    bool alive = true;
    /** Mesh workers connect at fork; star workers connect at Hello. */
    bool connected = false;
    bool remote = false;
    bool finalSeen = false;
    PongData pong;
    std::uint64_t finStates = 0;
    std::uint64_t finTransitions = 0;
    std::uint64_t finInvChecks = 0;
    double lastPong = 0.0;
};

enum class Phase
{
    Run,       ///< workers exploring
    Quiesce,   ///< barrier: pause sent, draining in-flight states
    CkptWrite, ///< barrier: partition snapshots being written
    Finishing, ///< fixpoint detected, collecting Final reports
};

struct Attempt
{
    bool active = false;
    std::uint64_t jobId = 0;
    unsigned W = 0;
    /** Star topology over TCP (workers dial back and relay through
     *  the coordinator) vs the local socketpair mesh. */
    bool tcp = false;
    std::uint64_t nonce = 0;
    unsigned joined = 0;
    /** Mesh: true at fork. Star: true once every slot said Hello and
     *  the Start barrier went out — pings and the fixpoint detector
     *  only run on a started attempt. */
    bool started = false;
    /** Relay backpressure engaged: POLLIN dropped on this attempt's
     *  worker links until the destinations drain. */
    bool relayPaused = false;
    std::vector<WorkerProc> workers;
    double start = 0.0;
    Phase phase = Phase::Run;
    std::uint32_t pingSeq = 0;
    std::uint32_t lastRound = 0;
    double lastPing = 0.0;
    double lastCkpt = 0.0;
    double lastProgress = 0.0;
    /** Stability detector state (previous complete round). */
    std::vector<PongData> prevRound;
    bool havePrev = false;
    std::uint64_t lastSumStates = ~0ULL;
    unsigned frozenRounds = 0;
    /** Barrier bookkeeping. */
    std::uint64_t ckptEpoch = 0;
    unsigned ckptDone = 0;
    bool ckptOk = true;
    /** Completion bookkeeping. */
    unsigned finals = 0;
    unsigned deaths = 0;
    /** The committed manifest AS OF ATTEMPT START. Worker counters
     *  accumulate from attempt start, so every base+delta sum must
     *  use this frozen copy — job.ckpt advances when a barrier
     *  commits mid-attempt, and summing against the moving value
     *  would double-count the deltas already inside it. */
    CkptManifest base;
};

struct ClientConn
{
    Channel ch;
};

/** Accepted TCP connection whose first frame has not arrived yet: it
 *  could be a client, a worker's Hello, or a pool agent's JoinPool. */
struct PendingConn
{
    Channel ch;
    double since = 0.0;
};

/** A box offering capacity via neoverify --join, parked until an
 *  attempt claims it with Assign. */
struct PoolWorker
{
    Channel ch;
    bool canResume = false;
    bool assigned = false;
};

class Coordinator
{
  public:
    explicit Coordinator(const ServeOptions &opts)
        : opts_(opts),
          queue_(opts.retryLimit, opts.backoffSeconds)
    {
    }

    int run();

  private:
    // --- attempt lifecycle ---
    void startAttempt(Job &job);
    std::vector<int> collectParentFds() const;
    void stopAttemptWorkers(Attempt &a);
    void attemptFailed(Attempt &a, const std::string &reason);
    void finishJob(Attempt &a, const JobResult &result);
    JobResult pongResult(const Attempt &a, std::uint8_t statusCode,
                         double now) const;
    unsigned activeAttempts() const;
    void sweepAttempts();
    void scheduleJobs(double now);

    // --- supervision ---
    void supervise(double now);
    void superviseAttempt(Attempt &a, double now);
    void reapDead(double now);
    void sendPings(Attempt &a, double now);
    void handleRound(Attempt &a, double now);
    void emitProgress(Attempt &a, double now);
    void pulseWaiters(double now);
    void handleWorkerFrame(Attempt &a, unsigned w, MsgType type,
                           const std::vector<std::uint8_t> &body,
                           double now);

    // --- tcp handshakes ---
    void acceptOn(int fd, bool tcp);
    /** Route a pending connection's first frame; @return true when
     *  the entry was consumed (promoted or rejected+closed). */
    bool classifyPending(std::list<PendingConn>::iterator it,
                         double now);
    void attachHello(Channel &&ch,
                     const std::vector<std::uint8_t> &body,
                     double now);
    void sweepConns(double now);

    // --- clients ---
    void handleClientFrame(ClientConn &client, MsgType type,
                           const std::vector<std::uint8_t> &body);
    void notifyWaiters(std::uint64_t jobId);
    std::pair<int, std::string> resultFor(const Job &job) const;
    std::string statusText() const;
    void dropClosedClients(double now);

    /** All client responses are deferred and queued only after the
     *  end-of-iteration journal commit — an acknowledgement must
     *  never outrun the durability of the transition it reports. */
    void reply(ClientConn &c, MsgType type,
               const std::vector<std::uint8_t> &body);
    void sendErr(ClientConn &c, const std::string &msg);
    void sendOk(ClientConn &c, const std::string &msg);
    void flushReplies();

    ServeOptions opts_;
    JobQueue queue_;
    int listenFd_ = -1;
    int tcpListenFd_ = -1;
    std::string tcpBound_;
    std::string advertise_;
    bool draining_ = false;
    std::uint64_t nextEpoch_ = 1;
    std::map<std::uint64_t, Attempt> attempts_;
    std::list<ClientConn> clients_;
    std::list<PendingConn> pending_;
    std::list<PoolWorker> pool_;
    std::vector<std::pair<std::uint64_t, ClientConn *>> waiters_;
    /** Last backoff-phase progress pulse per waited job (jobs with a
     *  live attempt are rate-limited by Attempt::lastProgress). */
    std::map<std::uint64_t, double> waiterPulse_;
    struct PendingReply
    {
        ClientConn *client;
        MsgType type;
        std::vector<std::uint8_t> body;
    };
    std::vector<PendingReply> replies_;
};

// ---------------------------------------------------------------
// Attempt lifecycle
// ---------------------------------------------------------------

std::vector<int>
Coordinator::collectParentFds() const
{
    // Everything a forked worker must NOT inherit open: most
    // critically the journal (a worker must never be able to extend
    // it) and OTHER attempts' worker links — a surviving open copy of
    // a control socket would keep its EOF from ever firing, so a dead
    // coordinator's workers would outlive it.
    std::vector<int> fds;
    if (listenFd_ >= 0)
        fds.push_back(listenFd_);
    if (tcpListenFd_ >= 0)
        fds.push_back(tcpListenFd_);
    if (queue_.journalFd() >= 0)
        fds.push_back(queue_.journalFd());
    for (const auto &c : clients_)
        if (c.ch.fd() >= 0)
            fds.push_back(c.ch.fd());
    for (const auto &p : pending_)
        if (p.ch.fd() >= 0)
            fds.push_back(p.ch.fd());
    for (const auto &p : pool_)
        if (p.ch.fd() >= 0)
            fds.push_back(p.ch.fd());
    for (const auto &[id, a] : attempts_) {
        (void)id;
        for (const auto &w : a.workers)
            if (w.ctl.fd() >= 0)
                fds.push_back(w.ctl.fd());
    }
    return fds;
}

void
Coordinator::startAttempt(Job &job)
{
    unsigned W = job.nextWorkers != 0 ? job.nextWorkers
                 : job.spec.workers != 0
                     ? job.spec.workers
                     : opts_.workers;
    W = std::max(1u, W);

    // Journal-first: the attempt exists durably before any fork, so
    // a coordinator crash from here on replays as a failed attempt.
    queue_.markStarted(job, W);
    queue_.commit();

    Attempt a;
    a.active = true;
    a.jobId = job.id;
    a.W = W;
    a.base = job.ckpt;
    a.workers.resize(W);
    a.tcp = tcpListenFd_ >= 0;
    const double now = nowSec();
    a.start = now;
    a.lastCkpt = now;
    a.lastProgress = now;

    if (a.tcp) {
        // Star topology: every worker — a pool agent's fork on
        // another box or a local fork — dials advertise_ and
        // authenticates with the attempt nonce. Nothing runs until
        // all W slots have joined (Start barrier).
        a.nonce = freshNonce();
        unsigned idx = 0;
        unsigned fromPool = 0;
        for (auto &pw : pool_) {
            if (idx >= W)
                break;
            if (pw.assigned || pw.ch.failed())
                continue;
            // Resume needs the partition files; only agents that
            // declared shared storage qualify.
            if (job.ckpt.epoch != 0 && !pw.canResume)
                continue;
            SnapshotWriter w;
            w.putU64(job.id);
            w.putU64(a.nonce);
            w.putU32(idx);
            w.putU32(W);
            w.putF64(opts_.heartbeatSeconds);
            w.putU64(job.ckpt.epoch);
            w.putU32(job.ckpt.parts);
            putString(w, opts_.stateDir);
            job.spec.encode(w);
            pw.ch.queueFrame(MsgType::Assign, w.take());
            pw.assigned = true;
            a.workers[idx].remote = true;
            a.workers[idx].lastPong = now;
            ++idx;
            ++fromPool;
        }
        const std::vector<int> parentFds = collectParentFds();
        for (; idx < W; ++idx) {
            const pid_t pid = ::fork();
            if (pid < 0)
                neo_fatal("fork: ", std::strerror(errno));
            if (pid == 0) {
                for (int fd : parentFds)
                    ::close(fd);
                WorkerConfig cfg;
                cfg.index = idx;
                cfg.count = W;
                cfg.spec = job.spec;
                cfg.partDir = opts_.stateDir;
                cfg.resumeEpoch = job.ckpt.epoch;
                cfg.resumeParts = job.ckpt.parts;
                cfg.coordAddr = advertise_;
                cfg.jobId = job.id;
                cfg.nonce = a.nonce;
                cfg.heartbeatSeconds = opts_.heartbeatSeconds;
                runWorkerProcess(cfg, WorkerEndpoints());
            }
            a.workers[idx].pid = pid;
            a.workers[idx].lastPong = now;
        }
        neo_inform("job ", job.id, " attempt ", job.attempts, ": ",
                   W, " worker", W == 1 ? "" : "s", " over TCP (",
                   fromPool, " from the pool)",
                   job.ckpt.epoch != 0
                       ? ", resuming checkpoint epoch " +
                             std::to_string(job.ckpt.epoch)
                       : std::string(),
                   ": ", job.spec.summary());
        attempts_[job.id] = std::move(a);
        return;
    }

    std::vector<std::array<int, 2>> ctl(W);
    // peerFd[i][j]: worker i's end of the i<->j mesh link.
    std::vector<std::vector<int>> peerFd(
        W, std::vector<int>(W, -1));
    for (unsigned i = 0; i < W; ++i) {
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, ctl[i].data()) != 0)
            neo_fatal("socketpair: ", std::strerror(errno));
    }
    for (unsigned i = 0; i < W; ++i) {
        for (unsigned j = i + 1; j < W; ++j) {
            int sv[2];
            if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
                neo_fatal("socketpair: ", std::strerror(errno));
            peerFd[i][j] = sv[0];
            peerFd[j][i] = sv[1];
        }
    }

    const std::vector<int> parentFds = collectParentFds();
    for (unsigned i = 0; i < W; ++i) {
        const pid_t pid = ::fork();
        if (pid < 0)
            neo_fatal("fork: ", std::strerror(errno));
        if (pid == 0) {
            for (int fd : parentFds)
                ::close(fd);
            for (unsigned k = 0; k < W; ++k) {
                ::close(ctl[k][0]);
                if (k != i)
                    ::close(ctl[k][1]);
                if (k != i)
                    for (int fd : peerFd[k])
                        if (fd >= 0)
                            ::close(fd);
            }
            WorkerConfig cfg;
            cfg.index = i;
            cfg.count = W;
            cfg.spec = job.spec;
            cfg.partDir = opts_.stateDir;
            cfg.resumeEpoch = job.ckpt.epoch;
            cfg.resumeParts = job.ckpt.parts;
            WorkerEndpoints eps;
            eps.control = ctl[i][1];
            eps.peers = peerFd[i];
            runWorkerProcess(cfg, eps); // never returns
        }
        a.workers[i].pid = pid;
    }

    // Parent: every child-side fd now belongs to the children.
    for (unsigned i = 0; i < W; ++i) {
        ::close(ctl[i][1]);
        for (int fd : peerFd[i])
            if (fd >= 0)
                ::close(fd);
        setNonBlocking(ctl[i][0]);
        a.workers[i].ctl = Channel(ctl[i][0]);
        a.workers[i].connected = true;
        a.workers[i].lastPong = now; // spawn grace
    }
    a.started = true;
    a.joined = W;
    a.lastPing = now - opts_.heartbeatSeconds; // ping at once

    neo_inform("job ", job.id, " attempt ", job.attempts, ": ", W,
               " worker", W == 1 ? "" : "s",
               job.ckpt.epoch != 0
                   ? " (resuming checkpoint epoch " +
                         std::to_string(job.ckpt.epoch) + ")"
                   : std::string(),
               ": ", job.spec.summary());
    attempts_[job.id] = std::move(a);
}

void
Coordinator::stopAttemptWorkers(Attempt &a)
{
    for (auto &w : a.workers) {
        if (w.pid > 0 && w.alive) {
            ::kill(w.pid, SIGKILL);
            int st = 0;
            pid_t rc;
            do {
                rc = ::waitpid(w.pid, &st, 0);
            } while (rc < 0 && errno == EINTR);
        }
        if (w.remote && w.connected && !w.ctl.failed()) {
            // Best-effort Stop; the close right after guarantees the
            // remote worker exits on EOF even if this never lands.
            w.ctl.queueFrame(MsgType::Stop, {});
            w.ctl.flush();
        }
        w.alive = false;
        w.connected = false;
        w.ctl.close();
    }
}

void
Coordinator::attemptFailed(Attempt &a, const std::string &reason)
{
    const unsigned deaths = a.deaths;
    stopAttemptWorkers(a);
    Job *job = queue_.find(a.jobId);
    a.active = false;
    if (job == nullptr)
        return;
    // Reshard to survivors: the next attempt redeal's the lost
    // worker's partition from the last committed epoch. Pure link
    // failures (deaths == 0) keep the worker count — the workers
    // were fine, the network was not.
    const std::uint32_t nextW =
        std::max(1u, a.W - std::min(a.W - 1, deaths));
    neo_warn("job ", job->id, " attempt ", job->attempts,
             " failed: ", reason, " (next attempt: ", nextW,
             " workers)");
    queue_.failAttempt(*job, reason, nextW, nowSec());
    queue_.commit();
    if (job->state == JobState::Quarantined)
        notifyWaiters(job->id);
}

JobResult
Coordinator::pongResult(const Attempt &a, std::uint8_t statusCode,
                        double now) const
{
    // Best-effort counters from the latest pongs (exact at a
    // quiesced/stable round; approximate mid-flight, which only the
    // non-Verified verdicts use).
    JobResult res;
    res.statusCode = statusCode;
    for (const auto &w : a.workers) {
        res.states += w.pong.states;
        res.transitions += w.pong.transitions;
        res.invariantChecks += w.pong.invChecks;
    }
    res.transitions += a.base.transitions;
    res.invariantChecks += a.base.invariantChecks;
    res.seconds = a.base.seconds + (now - a.start);
    return res;
}

void
Coordinator::finishJob(Attempt &a, const JobResult &result)
{
    Job *job = queue_.find(a.jobId);
    a.active = false;
    if (job == nullptr)
        return;
    queue_.markDone(*job, result);
    // The DONE record must be durable before the notification leaves
    // and before the checkpoint files stop existing.
    queue_.commit();
    pruneEpochFiles(opts_.stateDir, liveEpochs(queue_.jobs()));
    neo_inform("job ", job->id, " done: ",
               verifStatusName(
                   static_cast<VerifStatus>(result.statusCode)),
               " states=", result.states,
               " transitions=", result.transitions);
    notifyWaiters(job->id);
}

unsigned
Coordinator::activeAttempts() const
{
    unsigned n = 0;
    for (const auto &[id, a] : attempts_) {
        (void)id;
        n += a.active ? 1 : 0;
    }
    return n;
}

void
Coordinator::sweepAttempts()
{
    for (auto it = attempts_.begin(); it != attempts_.end();) {
        if (!it->second.active)
            it = attempts_.erase(it);
        else
            ++it;
    }
}

void
Coordinator::scheduleJobs(double now)
{
    // Admission control: fill the concurrency budget FIFO. A job that
    // keeps crash-looping sits in backoff (and eventually quarantine)
    // without consuming a slot, so it cannot starve its neighbours.
    unsigned active = activeAttempts();
    while (active < std::max(1u, opts_.maxJobs)) {
        Job *job = queue_.runnable(now);
        if (job == nullptr)
            return;
        startAttempt(*job);
        ++active;
    }
}

// ---------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------

void
Coordinator::reapDead(double now)
{
    for (;;) {
        int st = 0;
        const pid_t pid = ::waitpid(-1, &st, WNOHANG);
        if (pid <= 0)
            return;
        Attempt *owner = nullptr;
        unsigned widx = 0;
        for (auto &[id, a] : attempts_) {
            (void)id;
            if (!a.active)
                continue;
            for (unsigned i = 0; i < a.workers.size(); ++i) {
                if (a.workers[i].alive && a.workers[i].pid == pid) {
                    owner = &a;
                    widx = i;
                    break;
                }
            }
            if (owner != nullptr)
                break;
        }
        if (owner == nullptr)
            continue; // a failed attempt's child, already judged
        Attempt &a = *owner;
        WorkerProc &w = a.workers[widx];
        w.alive = false;
        // The socket may still hold a Final or Violation the worker
        // flushed right before exiting; drain it before judging the
        // death.
        w.ctl.readSome();
        MsgType type;
        std::vector<std::uint8_t> body;
        while (a.active && w.ctl.next(type, body))
            handleWorkerFrame(a, widx, type, body, now);
        if (!a.active)
            continue;
        if (a.phase == Phase::Finishing && w.finalSeen)
            continue; // expected exit after Final
        // Star links add a relay hop (and tests add a chaos proxy),
        // so a finisher's exit can be reaped while its Final is
        // still in flight on the wire. A clean exit during
        // Finishing with a healthy link defers judgment: the worker
        // becomes pid-less but stays alive/polled — like a remote
        // one — so either the Final lands (expected completion) or
        // the link's EOF/CRC latch or heartbeat staleness fails the
        // attempt anyway. Never a verdict invented from a missing
        // Final.
        if (a.phase == Phase::Finishing && WIFEXITED(st) &&
            WEXITSTATUS(st) == 0 && !w.ctl.failed()) {
            w.alive = true;
            w.pid = -1;
            continue;
        }
        ++a.deaths;
        std::ostringstream os;
        os << "worker " << widx << "/" << a.W;
        if (WIFSIGNALED(st))
            os << " killed by signal " << WTERMSIG(st);
        else
            os << " exited with status " << WEXITSTATUS(st);
        attemptFailed(a, os.str());
    }
}

void
Coordinator::sendPings(Attempt &a, double now)
{
    ++a.pingSeq;
    a.lastPing = now;
    const bool pause = a.phase == Phase::Quiesce ||
                       a.phase == Phase::CkptWrite;
    SnapshotWriter w;
    w.putU32(a.pingSeq);
    w.putU8(pause ? 1 : 0);
    const std::vector<std::uint8_t> body = w.take();
    for (auto &wp : a.workers)
        if (wp.alive && wp.connected)
            wp.ctl.queueFrame(MsgType::Ping, body);
}

void
Coordinator::emitProgress(Attempt &a, double now)
{
    if (opts_.progressEverySeconds <= 0.0 ||
        now - a.lastProgress < opts_.progressEverySeconds)
        return;
    a.lastProgress = now;
    std::uint64_t states = 0, transitions = 0;
    for (const auto &w : a.workers) {
        states += w.pong.states;
        transitions += w.pong.transitions;
    }
    transitions += a.base.transitions;
    SnapshotWriter w;
    w.putU64(a.jobId);
    w.putU8(static_cast<std::uint8_t>(a.phase));
    w.putU64(states);
    w.putU64(transitions);
    w.putF64(a.base.seconds + (now - a.start));
    const std::vector<std::uint8_t> body = w.take();
    for (auto &[id, c] : waiters_)
        if (id == a.jobId)
            reply(*c, MsgType::RspProgress, body);
}

void
Coordinator::pulseWaiters(double now)
{
    // The progress stream is the waiter's liveness signal: a client
    // read deadline must never expire against a healthy queue. Ping
    // rounds only tick for live attempts, so this runs every poll
    // iteration and covers the two starvation windows rounds miss —
    // a job parked in exponential retry backoff (no attempt at all;
    // the gap doubles past any sane --net-timeout) and an attempt
    // whose rounds stall on a dying worker until supervision fires.
    if (opts_.progressEverySeconds <= 0.0 || waiters_.empty())
        return;
    for (auto &[id, c] : waiters_) {
        (void)c;
        Job *job = queue_.find(id);
        if (job == nullptr || (job->state != JobState::Pending &&
                               job->state != JobState::Running)) {
            waiterPulse_.erase(id);
            continue;
        }
        Attempt *live = nullptr;
        for (auto &[aid, a] : attempts_) {
            (void)aid;
            if (a.active && a.jobId == id) {
                live = &a;
                break;
            }
        }
        if (live != nullptr) {
            emitProgress(*live, now); // lastProgress rate-limits
            continue;
        }
        double &at = waiterPulse_[id];
        if (now - at < opts_.progressEverySeconds)
            continue;
        at = now;
        // Between attempts: the last committed checkpoint's counters
        // under the synthetic backoff phase.
        SnapshotWriter w;
        w.putU64(id);
        w.putU8(kProgressPhaseBackoff);
        w.putU64(job->ckpt.states);
        w.putU64(job->ckpt.transitions);
        w.putF64(job->ckpt.seconds);
        const std::vector<std::uint8_t> body = w.take();
        for (auto &[wid, wc] : waiters_)
            if (wid == id)
                reply(*wc, MsgType::RspProgress, body);
    }
}

void
Coordinator::handleRound(Attempt &a, double now)
{
    a.lastRound = a.pingSeq;

    std::vector<PongData> round;
    round.reserve(a.workers.size());
    bool drained = true, allQuiesced = true, anyLoading = false;
    std::uint64_t sumStates = 0, sumSent = 0, sumRecv = 0;
    for (const auto &w : a.workers) {
        round.push_back(w.pong);
        drained &= w.pong.outEmpty && w.pong.queueLen == 0;
        allQuiesced &= w.pong.paused && w.pong.outEmpty;
        anyLoading |= w.pong.loading;
        sumStates += w.pong.states;
        sumSent += w.pong.sent;
        sumRecv += w.pong.recv;
    }
    // In star mode the coordinator's relay is part of the network:
    // bytes queued toward a destination worker are in flight even
    // though both endpoints look drained. Σsent==Σrecv already
    // refuses the fixpoint while any batch is unreceived, so the
    // relay cannot fake stability — this only restates the rule.
    const bool sumsEq = sumSent == sumRecv;
    const bool same = a.havePrev && round == a.prevRound;
    a.prevRound = std::move(round);
    a.havePrev = true;

    if (sumStates != a.lastSumStates) {
        a.lastSumStates = sumStates;
        a.frozenRounds = 0;
    } else {
        ++a.frozenRounds;
    }

    emitProgress(a, now);

    if ((a.phase == Phase::Run || a.phase == Phase::Quiesce) &&
        !anyLoading && drained && sumsEq && same) {
        // Two identical complete rounds with every queue and buffer
        // empty and global sent == received: nothing is running and
        // nothing is in flight — the distributed fixpoint. The
        // paused flag deliberately does not matter: a barrier's
        // pause cannot conjure work into empty queues, and requiring
        // Run-phase rounds starves detection forever when the
        // checkpoint cadence is at most two heartbeats (the barrier
        // kick reclaims the phase before a second unpaused round can
        // complete — the attempt then checkpoints an already-final
        // store on a loop until the no-progress watchdog shoots it).
        // The loading flag DOES matter: a worker scanning resume
        // partitions pongs a frozen partial store, and declaring the
        // fixpoint over it would finish the job with dropped states
        // on exactly the crash-recovery path.
        a.phase = Phase::Finishing;
        for (auto &w : a.workers)
            if (w.alive && w.connected)
                w.ctl.queueFrame(MsgType::Finish, {});
        return;
    }
    if (a.phase == Phase::Quiesce && !anyLoading && allQuiesced &&
        sumsEq && same) {
        a.ckptEpoch = nextEpoch_++;
        a.ckptDone = 0;
        a.ckptOk = true;
        SnapshotWriter w;
        w.putU64(a.ckptEpoch);
        const std::vector<std::uint8_t> body = w.take();
        for (auto &wp : a.workers) {
            if (!wp.alive || !wp.connected)
                continue;
            wp.ctl.queueFrame(MsgType::CkptWrite, body);
            // The staleness clock restarts at the barrier: the write
            // phase has its own (longer) allowance, and it should
            // measure from the barrier kick, not the last pre-
            // barrier pong.
            wp.lastPong = now;
        }
        a.phase = Phase::CkptWrite;
        return;
    }
    if (a.phase != Phase::Finishing &&
        a.frozenRounds > kNoProgressRounds) {
        attemptFailed(a,
                      "no progress: global state count frozen for " +
                          std::to_string(a.frozenRounds) + " rounds");
    }
}

void
Coordinator::handleWorkerFrame(Attempt &a, unsigned widx,
                               MsgType type,
                               const std::vector<std::uint8_t> &body,
                               double now)
{
    WorkerProc &w = a.workers[widx];
    SnapshotReader r(body);
    switch (type) {
      case MsgType::StatesTo: {
          // Star relay: forward the batch to its destination shard
          // verbatim (the body already carries the dest index the
          // receiver re-checks). The only way the batch does not
          // arrive is a link failure, which fails the whole attempt;
          // it can never be silently dropped, so the per-connection
          // Σsent==Σrecv accounting stays exact.
          const std::uint32_t dest = r.getU32();
          if (!r.ok() || dest >= a.W || !a.workers[dest].alive ||
              !a.workers[dest].connected ||
              a.workers[dest].ctl.failed()) {
              attemptFailed(a, "state batch routed to worker " +
                                   std::to_string(dest) +
                                   " which is gone");
              return;
          }
          a.workers[dest].ctl.queueFrame(MsgType::StatesTo, body);
          break;
      }
      case MsgType::Pong: {
          PongData p;
          p.seq = r.getU32();
          p.paused = r.getU8() != 0;
          p.loading = r.getU8() != 0;
          p.outEmpty = r.getU8() != 0;
          p.queueLen = r.getU64();
          p.states = r.getU64();
          p.transitions = r.getU64();
          p.invChecks = r.getU64();
          p.sent = r.getU64();
          p.recv = r.getU64();
          if (!r.ok())
              return;
          w.pong = p;
          w.lastPong = now;
          // Complete round: every worker answered the latest ping.
          if (a.phase == Phase::Run || a.phase == Phase::Quiesce) {
              bool complete = a.pingSeq != a.lastRound;
              for (const auto &wp : a.workers)
                  complete &= wp.alive && wp.pong.seq == a.pingSeq;
              if (complete)
                  handleRound(a, now);
          }
          break;
      }
      case MsgType::CkptDone: {
          const std::uint64_t epoch = r.getU64();
          const bool ok = r.getU8() != 0;
          w.lastPong = now; // the snapshot write proves liveness
          if (a.phase != Phase::CkptWrite || epoch != a.ckptEpoch)
              return;
          a.ckptOk &= ok;
          if (++a.ckptDone < a.W)
              return;
          Job *job = queue_.find(a.jobId);
          if (a.ckptOk && job != nullptr) {
              // All partitions durable: commit the consistent cut.
              // The pong counters are from the quiesced stable
              // round, so the manifest is exact.
              CkptManifest m;
              m.epoch = a.ckptEpoch;
              m.parts = a.W;
              for (const auto &wp : a.workers) {
                  m.states += wp.pong.states;
                  m.transitions += wp.pong.transitions;
                  m.invariantChecks += wp.pong.invChecks;
              }
              m.transitions += a.base.transitions;
              m.invariantChecks += a.base.invariantChecks;
              m.seconds = a.base.seconds + (now - a.start);
              queue_.recordCheckpoint(*job, m);
              // Durable before the files the OLD manifest named can
              // be pruned away.
              queue_.commit();
              pruneEpochFiles(opts_.stateDir,
                              liveEpochs(queue_.jobs()));
          } else {
              neo_warn("checkpoint epoch ", a.ckptEpoch,
                       " abandoned (a partition write failed)");
          }
          a.lastCkpt = now;
          a.phase = Phase::Run; // next ping unpauses
          break;
      }
      case MsgType::Final: {
          w.finalSeen = true;
          w.finStates = r.getU64();
          w.finTransitions = r.getU64();
          w.finInvChecks = r.getU64();
          if (++a.finals < a.W)
              return;
          JobResult res;
          res.statusCode =
              static_cast<std::uint8_t>(VerifStatus::Verified);
          for (const auto &wp : a.workers) {
              res.states += wp.finStates;
              res.transitions += wp.finTransitions;
              res.invariantChecks += wp.finInvChecks;
          }
          res.transitions += a.base.transitions;
          res.invariantChecks += a.base.invariantChecks;
          res.seconds = a.base.seconds + (now - a.start);
          stopAttemptWorkers(a);
          finishJob(a, res);
          break;
      }
      case MsgType::Violation: {
          const std::string invariant = getString(r);
          const std::string bad = getString(r);
          // The reporter's exact counters: fold them into its pong
          // slot so the verdict is right even when the violation
          // beat the first heartbeat round (peers' counters stay
          // best-effort — the verdict's counts are advisory for
          // anything but Verified).
          w.pong.states = r.getU64();
          w.pong.transitions = r.getU64();
          w.pong.invChecks = r.getU64();
          Job *job = queue_.find(a.jobId);
          stopAttemptWorkers(a);
          if (job == nullptr) {
              a.active = false;
              return;
          }
          JobResult res = pongResult(
              a,
              static_cast<std::uint8_t>(
                  VerifStatus::InvariantViolated),
              now);
          res.violatedInvariant = invariant;
          res.detail = bad;
          finishJob(a, res);
          break;
      }
      default:
          break;
    }
}

void
Coordinator::superviseAttempt(Attempt &a, double now)
{
    Job *job = queue_.find(a.jobId);
    if (job == nullptr) {
        stopAttemptWorkers(a);
        a.active = false;
        return;
    }

    // Link supervision runs before liveness: a failed channel IS the
    // verdict for remote workers (there is no pid to reap), and for
    // local ones it beats waiting out the staleness clock.
    for (unsigned i = 0; a.active && i < a.workers.size(); ++i) {
        WorkerProc &w = a.workers[i];
        if (!w.alive || !w.connected)
            continue;
        if (w.ctl.failed()) {
            if (a.phase == Phase::Finishing && w.finalSeen) {
                w.connected = false; // expected close after Final
                w.ctl.close();
                continue;
            }
            attemptFailed(a, "worker " + std::to_string(i) +
                                 " link lost");
            return;
        }
        if (w.ctl.writeStalled(
                now,
                std::max(kLinkStallFloorSeconds,
                         kLinkStallHeartbeats *
                             opts_.heartbeatSeconds))) {
            attemptFailed(a, "worker " + std::to_string(i) +
                                 " stopped reading (write-stalled "
                                 "link)");
            return;
        }
    }
    if (!a.active)
        return;

    if (a.tcp && !a.started) {
        // Join barrier: no pings, no fixpoint — just a deadline.
        if (now - a.start > std::max(kJoinFloorSeconds,
                                     kJoinHeartbeats *
                                         opts_.heartbeatSeconds))
            attemptFailed(a, "only " + std::to_string(a.joined) +
                                 "/" + std::to_string(a.W) +
                                 " workers joined before the "
                                 "deadline");
        return;
    }

    if (now - a.lastPing >= opts_.heartbeatSeconds)
        sendPings(a, now);

    double staleLimit =
        std::max(kStaleFloorSeconds,
                 kStaleHeartbeats * opts_.heartbeatSeconds);
    if (a.phase == Phase::CkptWrite)
        staleLimit = std::max(staleLimit, kCkptStaleFloorSeconds);
    for (unsigned i = 0; i < a.workers.size(); ++i) {
        const WorkerProc &w = a.workers[i];
        if (w.alive && now - w.lastPong > staleLimit) {
            attemptFailed(a, "worker " + std::to_string(i) +
                                 " unresponsive for " +
                                 std::to_string(staleLimit) + "s");
            return;
        }
    }

    if (opts_.jobTimeoutSeconds > 0.0 &&
        now - a.start > opts_.jobTimeoutSeconds) {
        attemptFailed(a, "attempt exceeded the job timeout");
        return;
    }

    // Bound enforcement mirrors the sequential CLI: exceeding a bound
    // is a terminal verdict, not a retryable failure.
    if (a.havePrev) {
        std::uint64_t sumStates = 0;
        for (const auto &w : a.workers)
            sumStates += w.pong.states;
        const double elapsed = a.base.seconds + (now - a.start);
        if (sumStates >= job->spec.maxStates ||
            (job->spec.maxSeconds > 0.0 &&
             elapsed > job->spec.maxSeconds)) {
            stopAttemptWorkers(a);
            JobResult res = pongResult(
                a,
                static_cast<std::uint8_t>(
                    VerifStatus::LimitExceeded),
                now);
            res.detail = sumStates >= job->spec.maxStates
                             ? "state bound exceeded"
                             : "time bound exceeded";
            finishJob(a, res);
            return;
        }
    }

    if (a.phase == Phase::Run &&
        opts_.checkpointEverySeconds > 0.0 &&
        now - a.lastCkpt >= opts_.checkpointEverySeconds)
        a.phase = Phase::Quiesce; // next pings carry pause
}

void
Coordinator::supervise(double now)
{
    reapDead(now);
    for (auto &[id, a] : attempts_) {
        (void)id;
        if (a.active)
            superviseAttempt(a, now);
    }
}

// ---------------------------------------------------------------
// TCP handshakes
// ---------------------------------------------------------------

void
Coordinator::acceptOn(int fd, bool tcp)
{
    for (;;) {
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN (or a transient error): back to poll
        }
        setNonBlocking(conn);
        if (!tcp) {
            // Unix connections are always clients.
            clients_.emplace_back();
            clients_.back().ch = Channel(conn);
        } else {
            // A TCP connection could be a client, a worker saying
            // Hello, or a pool agent — its first frame decides.
            pending_.emplace_back();
            pending_.back().ch = Channel(conn);
            pending_.back().since = nowSec();
        }
    }
}

void
Coordinator::attachHello(Channel &&ch,
                         const std::vector<std::uint8_t> &body,
                         double now)
{
    SnapshotReader r(body);
    const std::uint64_t jobId = r.getU64();
    const std::uint64_t nonce = r.getU64();
    const std::uint32_t index = r.getU32();
    auto it = r.ok() ? attempts_.find(jobId) : attempts_.end();
    if (it == attempts_.end() || !it->second.active ||
        !it->second.tcp || it->second.nonce != nonce ||
        index >= it->second.W ||
        it->second.workers[index].connected ||
        !it->second.workers[index].alive) {
        // Wrong nonce (a stale attempt's worker), duplicate slot, or
        // an attempt that no longer exists: refuse by closing. The
        // dialer exits on the EOF.
        ch.close();
        return;
    }
    Attempt &a = it->second;
    WorkerProc &w = a.workers[index];
    w.ctl = std::move(ch);
    w.connected = true;
    w.lastPong = now;
    if (++a.joined == a.W) {
        a.started = true;
        for (auto &wp : a.workers) {
            wp.ctl.queueFrame(MsgType::Start, {});
            wp.lastPong = now;
        }
        a.lastPing = now - opts_.heartbeatSeconds; // ping at once
        neo_inform("job ", a.jobId, ": all ", a.W,
                   " workers joined, releasing the start barrier");
    }
    // Frames that rode in behind the Hello.
    MsgType type;
    std::vector<std::uint8_t> b;
    while (it->second.active && w.ctl.next(type, b))
        handleWorkerFrame(it->second, index, type, b, now);
}

bool
Coordinator::classifyPending(std::list<PendingConn>::iterator it,
                             double now)
{
    PendingConn &pc = *it;
    MsgType type;
    std::vector<std::uint8_t> body;
    if (!pc.ch.next(type, body)) {
        if (pc.ch.failed() || now - pc.since > kClassifySeconds) {
            pending_.erase(it);
            return true;
        }
        return false;
    }
    switch (type) {
      case MsgType::Hello:
          attachHello(std::move(pc.ch), body, now);
          pending_.erase(it);
          return true;
      case MsgType::JoinPool: {
          SnapshotReader r(body);
          const bool canResume = r.getU8() != 0;
          pool_.emplace_back();
          pool_.back().ch = std::move(pc.ch);
          pool_.back().canResume = r.ok() && canResume;
          pending_.erase(it);
          neo_inform("pool worker joined (", pool_.size(),
                     " idle in the pool)");
          return true;
      }
      case MsgType::ReqSubmit:
      case MsgType::ReqStatus:
      case MsgType::ReqCancel:
      case MsgType::ReqDrain:
      case MsgType::ReqWait: {
          clients_.emplace_back();
          ClientConn &c = clients_.back();
          c.ch = std::move(pc.ch);
          pending_.erase(it);
          handleClientFrame(c, type, body);
          while (!c.ch.failed() && c.ch.next(type, body))
              handleClientFrame(c, type, body);
          return true;
      }
      default:
          // A frame that identifies as none of the three roles is a
          // protocol error: drop the connection.
          pending_.erase(it);
          return true;
    }
}

void
Coordinator::sweepConns(double now)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        auto cur = it++;
        if (cur->ch.failed() || now - cur->since > kClassifySeconds)
            pending_.erase(cur);
    }
    for (auto it = pool_.begin(); it != pool_.end();) {
        auto cur = it++;
        MsgType type;
        std::vector<std::uint8_t> body;
        while (cur->ch.next(type, body)) {
            // Idle pool agents have nothing to say; drain and ignore.
        }
        if (cur->ch.failed() ||
            (cur->assigned && !cur->ch.wantsWrite()))
            pool_.erase(cur);
    }
}

// ---------------------------------------------------------------
// Clients
// ---------------------------------------------------------------

void
Coordinator::reply(ClientConn &c, MsgType type,
                   const std::vector<std::uint8_t> &body)
{
    replies_.push_back({&c, type, body});
}

void
Coordinator::flushReplies()
{
    for (auto &pr : replies_)
        pr.client->ch.queueFrame(pr.type, pr.body);
    replies_.clear();
}

void
Coordinator::sendErr(ClientConn &c, const std::string &msg)
{
    SnapshotWriter w;
    putString(w, msg);
    reply(c, MsgType::RspErr, w.take());
}

void
Coordinator::sendOk(ClientConn &c, const std::string &msg)
{
    SnapshotWriter w;
    putString(w, msg);
    reply(c, MsgType::RspOk, w.take());
}

void
Coordinator::notifyWaiters(std::uint64_t jobId)
{
    const Job *job = queue_.find(jobId);
    if (job == nullptr)
        return;
    const auto [code, text] = resultFor(*job);
    for (auto it = waiters_.begin(); it != waiters_.end();) {
        if (it->first != jobId) {
            ++it;
            continue;
        }
        SnapshotWriter w;
        w.putU8(static_cast<std::uint8_t>(code));
        putString(w, text);
        reply(*it->second, MsgType::RspResult, w.take());
        it = waiters_.erase(it);
    }
}

std::pair<int, std::string>
Coordinator::resultFor(const Job &job) const
{
    std::ostringstream os;
    os << "job " << job.id << " ";
    switch (job.state) {
      case JobState::Done: {
          const auto status =
              static_cast<VerifStatus>(job.result.statusCode);
          os << verifStatusName(status) << ": states="
             << job.result.states
             << " transitions=" << job.result.transitions
             << " invchecks=" << job.result.invariantChecks
             << " seconds=" << job.result.seconds;
          if (!job.result.violatedInvariant.empty())
              os << " violated=" << job.result.violatedInvariant;
          if (!job.result.detail.empty())
              os << " (" << job.result.detail << ")";
          return {status == VerifStatus::Verified ? kExitClean
                                                  : kExitViolation,
                  os.str()};
      }
      case JobState::Quarantined:
          os << "QUARANTINED: " << job.lastFailure;
          return {kExitQuarantined, os.str()};
      case JobState::Cancelled:
          os << "CANCELLED";
          return {kExitInterrupted, os.str()};
      default:
          os << jobStateName(job.state);
          return {kExitViolation, os.str()};
    }
}

std::string
Coordinator::statusText() const
{
    std::ostringstream os;
    os << "serving " << opts_.sockPath;
    if (tcpListenFd_ >= 0)
        os << " listen=" << tcpBound_;
    os << " workers=" << opts_.workers
       << " max-jobs=" << std::max(1u, opts_.maxJobs)
       << " jobs=" << queue_.jobs().size()
       << " pool=" << pool_.size()
       << (draining_ ? " draining" : "") << "\n";
    for (const auto &[id, job] : queue_.jobs()) {
        os << "job " << id << " " << jobStateName(job.state)
           << " attempt=" << job.attempts << "/"
           << queue_.retryLimit();
        const auto ait = attempts_.find(id);
        if (job.state == JobState::Running &&
            ait != attempts_.end() && ait->second.active) {
            const Attempt &a = ait->second;
            os << " workers=" << a.W << " pids=";
            for (unsigned i = 0; i < a.workers.size(); ++i)
                os << (i != 0 ? "," : "") << a.workers[i].pid;
            if (a.tcp && !a.started)
                os << " joined=" << a.joined << "/" << a.W;
            std::uint64_t states = 0;
            for (const auto &w : a.workers)
                states += w.pong.states;
            os << " states=" << states;
        }
        if (job.state == JobState::Done)
            os << " status="
               << verifStatusName(
                      static_cast<VerifStatus>(
                          job.result.statusCode))
               << " states=" << job.result.states
               << " transitions=" << job.result.transitions
               << " invchecks=" << job.result.invariantChecks;
        if (job.ckpt.epoch != 0 && job.state != JobState::Done)
            os << " ckpt-epoch=" << job.ckpt.epoch;
        if (!job.lastFailure.empty())
            os << " last-failure=\"" << job.lastFailure << "\"";
        os << " :: " << job.spec.summary() << "\n";
    }
    return os.str();
}

void
Coordinator::handleClientFrame(ClientConn &client, MsgType type,
                               const std::vector<std::uint8_t> &body)
{
    SnapshotReader r(body);
    switch (type) {
      case MsgType::ReqSubmit: {
          if (draining_) {
              sendErr(client, "coordinator is draining");
              return;
          }
          JobSpec spec;
          if (!JobSpec::decode(r, spec)) {
              sendErr(client, "malformed job spec");
              return;
          }
          // Reject unbuildable specs at the door rather than letting
          // every attempt die in the worker.
          ModelShape shape;
          std::string err;
          buildJobModel(spec, shape, err);
          if (!err.empty()) {
              sendErr(client, err);
              return;
          }
          // The append is deferred into the iteration's group
          // commit; so is this acknowledgement, which therefore
          // cannot reach the client before the record is durable.
          const std::uint64_t id = queue_.submit(spec);
          SnapshotWriter w;
          w.putU64(id);
          reply(client, MsgType::RspSubmit, w.take());
          neo_inform("job ", id, " submitted: ", spec.summary());
          break;
      }
      case MsgType::ReqStatus: {
          SnapshotWriter w;
          putString(w, statusText());
          reply(client, MsgType::RspStatus, w.take());
          break;
      }
      case MsgType::ReqCancel: {
          const std::uint64_t id = r.getU64();
          Job *job = queue_.find(id);
          if (job == nullptr) {
              sendErr(client, "unknown job");
              return;
          }
          if (!queue_.cancel(id)) {
              sendErr(client, "job is not cancellable");
              return;
          }
          // Journal-first ordering: the CANCEL record is durable
          // before the workers die, so a crash right here replays as
          // cancelled, not as a retryable failure.
          queue_.commit();
          const auto ait = attempts_.find(id);
          if (ait != attempts_.end() && ait->second.active) {
              stopAttemptWorkers(ait->second);
              ait->second.active = false;
              pruneEpochFiles(opts_.stateDir,
                              liveEpochs(queue_.jobs()));
          }
          notifyWaiters(id);
          sendOk(client, "cancelled");
          break;
      }
      case MsgType::ReqDrain: {
          draining_ = true;
          sendOk(client, "draining");
          break;
      }
      case MsgType::ReqWait: {
          const std::uint64_t id = r.getU64();
          Job *job = queue_.find(id);
          if (job == nullptr) {
              sendErr(client, "unknown job");
              return;
          }
          if (job->state == JobState::Pending ||
              job->state == JobState::Running) {
              waiters_.emplace_back(id, &client);
              return;
          }
          const auto [code, text] = resultFor(*job);
          SnapshotWriter w;
          w.putU8(static_cast<std::uint8_t>(code));
          putString(w, text);
          reply(client, MsgType::RspResult, w.take());
          break;
      }
      default:
          sendErr(client, "unexpected request");
    }
}

void
Coordinator::dropClosedClients(double now)
{
    for (auto it = clients_.begin(); it != clients_.end();) {
        ClientConn &c = *it;
        // A client that stops reading (or reads too slowly to keep
        // its progress stream bounded) is disconnected — the
        // coordinator's memory must not depend on client behaviour.
        if (!c.ch.failed() &&
            (c.ch.outPending() > kClientHighWater ||
             c.ch.writeStalled(now, kClientStallSeconds)))
            c.ch.close();
        if (c.ch.failed() || c.ch.fd() < 0) {
            ClientConn *dead = &c;
            waiters_.erase(
                std::remove_if(waiters_.begin(), waiters_.end(),
                               [dead](const auto &w) {
                                   return w.second == dead;
                               }),
                waiters_.end());
            it = clients_.erase(it);
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------

int
Coordinator::run()
{
    ignoreSigpipe();
    installInterruptHandlers();

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(opts_.stateDir, ec);
    if (ec) {
        neo_warn("cannot create state dir ", opts_.stateDir, ": ",
                 ec.message());
        return kExitServiceUnavailable;
    }
    // Startup hygiene: tmp files orphaned by a crashed snapshot
    // write are reaped before anything can mistake them for state.
    reapStaleCheckpointTmps(opts_.stateDir);

    std::string err;
    if (!queue_.open(opts_.stateDir + "/journal.neoj", nowSec(),
                     err)) {
        neo_warn("journal: ", err);
        return kExitServiceUnavailable;
    }
    queue_.setGroupCommit(true);
    queue_.setCompactionThreshold(opts_.journalCompactBytes);
    nextEpoch_ = queue_.maxEpochSeen() + 1;
    // Partition files whose epoch no live job can resume from are
    // garbage: torn barriers that never reached their manifest
    // record, and committed epochs of jobs that since finished.
    pruneEpochFiles(opts_.stateDir, liveEpochs(queue_.jobs()));

    listenFd_ = listenUnix(opts_.sockPath, err);
    if (listenFd_ < 0) {
        neo_warn("cannot serve: ", err);
        return kExitServiceUnavailable;
    }
    setNonBlocking(listenFd_);

    if (!opts_.listenAddr.empty()) {
        tcpListenFd_ = listenTcp(opts_.listenAddr, err, &tcpBound_);
        if (tcpListenFd_ < 0) {
            neo_warn("cannot listen on ", opts_.listenAddr, ": ",
                     err);
            ::close(listenFd_);
            ::unlink(opts_.sockPath.c_str());
            return kExitServiceUnavailable;
        }
        setNonBlocking(tcpListenFd_);
        advertise_ = opts_.advertiseAddr.empty() ? tcpBound_
                                                 : opts_.advertiseAddr;
        // Publish the resolved endpoint (port 0 becomes concrete
        // here) where scripts and tests can read it.
        const std::string addrPath = opts_.stateDir + "/tcp-addr";
        if (std::FILE *f = std::fopen(addrPath.c_str(), "w")) {
            std::fputs((tcpBound_ + "\n").c_str(), f);
            std::fclose(f);
        }
        neo_inform("listening on ", tcpBound_, " (workers dial ",
                   advertise_, ")");
    }

    draining_ = opts_.drainAndExit;
    neo_inform("serving on ", opts_.sockPath, " (state in ",
               opts_.stateDir, ", ", opts_.workers,
               " workers per job, ", std::max(1u, opts_.maxJobs),
               " concurrent job",
               std::max(1u, opts_.maxJobs) == 1 ? "" : "s", ")");

    // Tagged poll entries: every pollfd carries what it means, and
    // worker entries re-resolve through the attempt map before use —
    // an attempt restarted mid-iteration must not have its successor
    // fed the predecessor's frames.
    enum class Kind
    {
        UnixListen,
        TcpListen,
        Client,
        Pending,
        Pool,
        Worker
    };
    struct Ref
    {
        Kind kind = Kind::UnixListen;
        ClientConn *client = nullptr;
        std::list<PendingConn>::iterator pend;
        std::list<PoolWorker>::iterator pool;
        std::uint64_t attemptId = 0;
        unsigned widx = 0;
    };
    std::vector<pollfd> pfds;
    std::vector<Ref> refs;

    while (!interruptRequested()) {
        if (draining_ && activeAttempts() == 0 &&
            queue_.allTerminal())
            break;
        const double now = nowSec();
        sweepAttempts();
        scheduleJobs(now);

        pfds.clear();
        refs.clear();
        auto add = [&](int fd, short events, Ref ref) {
            pfds.push_back({fd, events, 0});
            refs.push_back(ref);
        };
        {
            Ref r;
            r.kind = Kind::UnixListen;
            add(listenFd_, POLLIN, r);
        }
        if (tcpListenFd_ >= 0) {
            Ref r;
            r.kind = Kind::TcpListen;
            add(tcpListenFd_, POLLIN, r);
        }
        for (auto &c : clients_) {
            Ref r;
            r.kind = Kind::Client;
            r.client = &c;
            add(c.ch.fd(),
                static_cast<short>(
                    POLLIN | (c.ch.wantsWrite() ? POLLOUT : 0)),
                r);
        }
        for (auto it = pending_.begin(); it != pending_.end();
             ++it) {
            Ref r;
            r.kind = Kind::Pending;
            r.pend = it;
            add(it->ch.fd(), POLLIN, r);
        }
        for (auto it = pool_.begin(); it != pool_.end(); ++it) {
            Ref r;
            r.kind = Kind::Pool;
            r.pool = it;
            add(it->ch.fd(),
                static_cast<short>(
                    POLLIN | (it->ch.wantsWrite() ? POLLOUT : 0)),
                r);
        }
        for (auto &[id, a] : attempts_) {
            if (!a.active)
                continue;
            // Relay backpressure: when this attempt's destinations
            // hold too many undrained relay bytes, stop READING its
            // workers — their batch streams stall at their own out-
            // buffers (bounded, no OOM, no drops). Their pongs stall
            // too, so the staleness clock is restamped; the write-
            // stall detector takes over as the failure signal.
            std::size_t relayBytes = 0;
            for (const auto &w : a.workers)
                relayBytes += w.ctl.outPending();
            a.relayPaused = relayBytes > kRelayHighWater;
            for (unsigned i = 0; i < a.workers.size(); ++i) {
                WorkerProc &w = a.workers[i];
                if (!w.alive || !w.connected || w.ctl.fd() < 0)
                    continue;
                if (a.relayPaused)
                    w.lastPong = now;
                const short events = static_cast<short>(
                    (a.relayPaused ? 0 : POLLIN) |
                    (w.ctl.wantsWrite() ? POLLOUT : 0));
                if (events == 0)
                    continue;
                Ref r;
                r.kind = Kind::Worker;
                r.attemptId = id;
                r.widx = i;
                add(w.ctl.fd(), events, r);
            }
        }

        const int rc = ::poll(pfds.data(), pfds.size(), 100);
        if (rc < 0 && errno != EINTR) {
            neo_warn("poll: ", std::strerror(errno));
            break;
        }
        const double after = nowSec();

        MsgType type;
        std::vector<std::uint8_t> body;
        for (std::size_t k = 0; rc > 0 && k < pfds.size(); ++k) {
            if (pfds[k].revents == 0)
                continue;
            Ref &ref = refs[k];
            switch (ref.kind) {
              case Kind::UnixListen:
                  if (pfds[k].revents & POLLIN)
                      acceptOn(listenFd_, false);
                  break;
              case Kind::TcpListen:
                  if (pfds[k].revents & POLLIN)
                      acceptOn(tcpListenFd_, true);
                  break;
              case Kind::Client: {
                  ClientConn &c = *ref.client;
                  if (pfds[k].revents &
                      (POLLIN | POLLHUP | POLLERR))
                      c.ch.readSome();
                  if (pfds[k].revents & POLLOUT)
                      c.ch.flush();
                  while (!c.ch.failed() && c.ch.next(type, body))
                      handleClientFrame(c, type, body);
                  break;
              }
              case Kind::Pending: {
                  if (pfds[k].revents &
                      (POLLIN | POLLHUP | POLLERR))
                      ref.pend->ch.readSome();
                  while (!classifyPending(ref.pend, after)) {
                      // Not yet classifiable and not consumed: no
                      // more buffered frames, go back to poll.
                      break;
                  }
                  break;
              }
              case Kind::Pool: {
                  if (pfds[k].revents &
                      (POLLIN | POLLHUP | POLLERR))
                      ref.pool->ch.readSome();
                  if (pfds[k].revents & POLLOUT)
                      ref.pool->ch.flush();
                  break; // sweepConns judges failure/drain
              }
              case Kind::Worker: {
                  auto it = attempts_.find(ref.attemptId);
                  if (it == attempts_.end() || !it->second.active)
                      break;
                  {
                      WorkerProc &w = it->second.workers[ref.widx];
                      if (w.ctl.fd() != pfds[k].fd)
                          break; // attempt restarted mid-iteration
                      if (pfds[k].revents &
                          (POLLIN | POLLHUP | POLLERR))
                          w.ctl.readSome();
                      if (pfds[k].revents & POLLOUT)
                          w.ctl.flush();
                  }
                  for (;;) {
                      auto cur = attempts_.find(ref.attemptId);
                      if (cur == attempts_.end() ||
                          !cur->second.active)
                          break;
                      WorkerProc &w =
                          cur->second.workers[ref.widx];
                      if (w.ctl.fd() != pfds[k].fd ||
                          !w.ctl.next(type, body))
                          break;
                      handleWorkerFrame(cur->second, ref.widx,
                                        type, body, after);
                  }
                  break;
              }
            }
        }

        supervise(nowSec());
        pulseWaiters(nowSec());
        sweepConns(nowSec());
        // Group commit, then the acknowledgements that depended on
        // it, then connection cleanup (reply pointers are dead after
        // dropClosedClients).
        queue_.commit();
        flushReplies();
        dropClosedClients(nowSec());
    }

    for (auto &[id, a] : attempts_) {
        (void)id;
        if (!a.active)
            continue;
        // Deliberate shutdown mid-attempt: kill the cohort and leave
        // the journal's unmatched START to replay as a failed
        // attempt — identical to a crash, which is the point of
        // crash-only design (shutdown IS the crash path).
        neo_inform("shutting down with job ", a.jobId,
                   " in flight; its attempt will replay as failed");
        stopAttemptWorkers(a);
    }
    queue_.commit();
    if (tcpListenFd_ >= 0)
        ::close(tcpListenFd_);
    ::close(listenFd_);
    ::unlink(opts_.sockPath.c_str());
    return kExitClean;
}

} // namespace

int
runCoordinator(const ServeOptions &opts)
{
    ServeOptions o = opts;
    if (o.stateDir.empty())
        o.stateDir = o.sockPath + ".state";
    if (o.workers == 0)
        o.workers = 1;
    if (o.maxJobs == 0)
        o.maxJobs = 1;
    Coordinator coord(o);
    return coord.run();
}

} // namespace neo
