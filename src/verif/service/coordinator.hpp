/**
 * @file
 * The verification service coordinator (neoverify --serve).
 *
 * A single-threaded poll() daemon that owns the journaled job queue,
 * forks W sharded workers per attempt, and supervises them:
 *
 *  - Heartbeat pings collect per-worker counters every interval; the
 *    Mattern-style double round (all workers idle, global sent ==
 *    received, and every counter identical across two consecutive
 *    complete rounds) detects the distributed fixpoint, at which
 *    point workers are told to Finish and report exact final counts.
 *
 *  - Coordinated checkpoint barriers: pause all workers, wait for the
 *    in-flight state traffic to drain (the same stability test), have
 *    each worker write its partition snapshot, and only then journal
 *    the checkpoint manifest — the cut is consistent by construction,
 *    which is what makes recovery counts exact.
 *
 *  - Crash recovery: a worker death (SIGKILL included) fails the
 *    attempt; the job backs off exponentially and restarts from the
 *    last committed epoch with the survivors' worker count, each new
 *    worker re-dealing the old partitions by fingerprint. Attempts
 *    that keep failing quarantine the job as poison after the retry
 *    limit.
 *
 *  - Crash-only coordinator: every queue transition hits the journal
 *    before it is acted on, so a SIGKILLed coordinator restarts by
 *    replaying the journal — finishing every acknowledged job exactly
 *    once and double-running none.
 */

#ifndef NEO_VERIF_SERVICE_COORDINATOR_HPP
#define NEO_VERIF_SERVICE_COORDINATOR_HPP

#include <cstdint>
#include <string>

namespace neo
{

struct ServeOptions
{
    /** Unix socket path clients connect to. */
    std::string sockPath;
    /** Journal + partition snapshot directory; empty defaults to
     *  "<sockPath>.state". */
    std::string stateDir;
    /** Workers per job attempt. */
    unsigned workers = 4;
    /** Supervision ping interval. */
    double heartbeatSeconds = 1.0;
    /** Per-attempt wall-clock budget; 0 disables. */
    double jobTimeoutSeconds = 0.0;
    /** Attempts before a job is quarantined as poison. */
    std::uint32_t retryLimit = 3;
    /** First retry delay; doubles per subsequent failure. */
    double backoffSeconds = 0.5;
    /** Checkpoint barrier interval; 0 disables periodic barriers
     *  (recovery then restarts jobs from scratch). */
    double checkpointEverySeconds = 5.0;
    /** Exit as soon as every journaled job is terminal (also
     *  requestable at runtime via --drain). */
    bool drainAndExit = false;
};

/** Run the coordinator until drained or signalled; @return a process
 *  exit code (kExitClean, or kExitServiceUnavailable when the socket
 *  or state directory cannot be set up). */
int runCoordinator(const ServeOptions &opts);

} // namespace neo

#endif // NEO_VERIF_SERVICE_COORDINATOR_HPP
