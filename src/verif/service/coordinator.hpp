/**
 * @file
 * The verification service coordinator (neoverify --serve).
 *
 * A single-threaded poll() daemon that owns the journaled job queue,
 * runs up to --max-jobs attempts concurrently — each with its own
 * isolated worker set — and supervises them:
 *
 *  - Heartbeat pings collect per-worker counters every interval; the
 *    Mattern-style double round (all workers idle, global sent ==
 *    received, and every counter identical across two consecutive
 *    complete rounds) detects the distributed fixpoint, at which
 *    point workers are told to Finish and report exact final counts.
 *
 *  - Coordinated checkpoint barriers: pause all workers, wait for the
 *    in-flight state traffic to drain (the same stability test), have
 *    each worker write its partition snapshot, and only then journal
 *    the checkpoint manifest — the cut is consistent by construction,
 *    which is what makes recovery counts exact.
 *
 *  - Crash recovery: a worker death (SIGKILL included) fails the
 *    attempt; the job backs off exponentially and restarts from the
 *    last committed epoch with the survivors' worker count, each new
 *    worker re-dealing the old partitions by fingerprint. Attempts
 *    that keep failing quarantine the job as poison after the retry
 *    limit.
 *
 *  - Crash-only coordinator: every queue transition hits the journal
 *    before it is acted on, so a SIGKILLed coordinator restarts by
 *    replaying the journal — finishing every acknowledged job exactly
 *    once and double-running none. Journal appends within one poll
 *    iteration group-commit into a single fsync; acknowledgements are
 *    deferred until after that flush, so durability still strictly
 *    precedes every ack.
 *
 *  - TCP worker pools: with --listen, attempts run in star topology —
 *    workers (locally forked or joined from other boxes via --join)
 *    dial back over TCP, authenticate with the attempt's job id +
 *    nonce, and route state batches through the coordinator's relay.
 *    Links carry heartbeat-bounded read/write deadlines and bounded
 *    send queues with backpressure; a severed or corrupted link fails
 *    the attempt cleanly for retry (the per-connection Σsent==Σrecv
 *    fixpoint rule can never re-balance over a lossy link, so a false
 *    Verified is impossible by construction).
 */

#ifndef NEO_VERIF_SERVICE_COORDINATOR_HPP
#define NEO_VERIF_SERVICE_COORDINATOR_HPP

#include <cstdint>
#include <string>

namespace neo
{

struct ServeOptions
{
    /** Unix socket path clients connect to. */
    std::string sockPath;
    /** Journal + partition snapshot directory; empty defaults to
     *  "<sockPath>.state". */
    std::string stateDir;
    /** Workers per job attempt (a job's spec can lower it). */
    unsigned workers = 4;
    /** Admission control: attempts allowed to run concurrently. */
    unsigned maxJobs = 1;
    /** Supervision ping interval. */
    double heartbeatSeconds = 1.0;
    /** Per-attempt wall-clock budget; 0 disables. */
    double jobTimeoutSeconds = 0.0;
    /** Attempts before a job is quarantined as poison. */
    std::uint32_t retryLimit = 3;
    /** First retry delay; doubles per subsequent failure. */
    double backoffSeconds = 0.5;
    /** Checkpoint barrier interval; 0 disables periodic barriers
     *  (recovery then restarts jobs from scratch). */
    double checkpointEverySeconds = 5.0;
    /** Streaming progress interval for --wait clients. */
    double progressEverySeconds = 1.0;
    /** Journal compaction threshold in bytes; 0 disables. */
    std::uint64_t journalCompactBytes = 8u << 20;
    /**
     * TCP endpoint ("host:port", port 0 = kernel-assigned) to listen
     * on beside the unix socket; empty disables TCP. With TCP active,
     * attempts run in star topology: workers dial back over TCP and
     * the coordinator relays their state batches, so remote workers
     * (neoverify --join) and local forks are interchangeable.
     */
    std::string listenAddr;
    /** Address workers are told to dial; defaults to the resolved
     *  listen address. Tests point it at a chaos proxy. */
    std::string advertiseAddr;
    /** Exit as soon as every journaled job is terminal (also
     *  requestable at runtime via --drain). */
    bool drainAndExit = false;
};

/** Run the coordinator until drained or signalled; @return a process
 *  exit code (kExitClean, or kExitServiceUnavailable when the socket
 *  or state directory cannot be set up). */
int runCoordinator(const ServeOptions &opts);

} // namespace neo

#endif // NEO_VERIF_SERVICE_COORDINATOR_HPP
