#include "job_queue.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "sim/io_retry.hpp"
#include "sim/logging.hpp"
#include "verif/explorer.hpp"
#include "verif/service/wire.hpp"

namespace neo
{

// ---------------------------------------------------------------
// Spec / result / manifest codecs
// ---------------------------------------------------------------

void
JobSpec::encode(SnapshotWriter &w) const
{
    putString(w, features);
    putString(w, system);
    putString(w, method);
    putString(w, mutant);
    w.putU64(n);
    w.putU64(maxStates);
    w.putF64(maxSeconds);
    w.putU64(crashAfter);
    w.putU32(workers);
}

bool
JobSpec::decode(SnapshotReader &r, JobSpec &out)
{
    out.features = getString(r);
    out.system = getString(r);
    out.method = getString(r);
    out.mutant = getString(r);
    out.n = r.getU64();
    out.maxStates = r.getU64();
    out.maxSeconds = r.getF64();
    out.crashAfter = r.getU64();
    out.workers = r.getU32();
    return r.ok();
}

std::string
JobSpec::summary() const
{
    std::ostringstream os;
    if (!mutant.empty())
        os << "mutant " << mutant;
    else if (features == "german")
        os << "german n=" << n;
    else
        os << features << " (" << system << ", " << method
           << ") n=" << n;
    if (crashAfter != 0)
        os << " crash-after=" << crashAfter;
    if (workers != 0)
        os << " workers=" << workers;
    return os.str();
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Pending: return "PENDING";
      case JobState::Running: return "RUNNING";
      case JobState::Done: return "DONE";
      case JobState::Quarantined: return "QUARANTINED";
      case JobState::Cancelled: return "CANCELLED";
    }
    return "?";
}

void
JobResult::encode(SnapshotWriter &w) const
{
    w.putU8(statusCode);
    w.putU64(states);
    w.putU64(transitions);
    w.putU64(invariantChecks);
    w.putF64(seconds);
    putString(w, violatedInvariant);
    putString(w, detail);
}

bool
JobResult::decode(SnapshotReader &r, JobResult &out)
{
    out.statusCode = r.getU8();
    out.states = r.getU64();
    out.transitions = r.getU64();
    out.invariantChecks = r.getU64();
    out.seconds = r.getF64();
    out.violatedInvariant = getString(r);
    out.detail = getString(r);
    return r.ok();
}

namespace
{

void
encodeManifest(SnapshotWriter &w, const CkptManifest &m)
{
    w.putU64(m.epoch);
    w.putU32(m.parts);
    w.putU64(m.states);
    w.putU64(m.transitions);
    w.putU64(m.invariantChecks);
    w.putF64(m.seconds);
}

CkptManifest
decodeManifest(SnapshotReader &r)
{
    CkptManifest m;
    m.epoch = r.getU64();
    m.parts = r.getU32();
    m.states = r.getU64();
    m.transitions = r.getU64();
    m.invariantChecks = r.getU64();
    m.seconds = r.getF64();
    return m;
}

/** Full-job codec for compaction snapshots: everything a replay of
 *  the original records would have reconstructed (notBefore stays
 *  volatile by design — a restart retries immediately). */
void
encodeJobFull(SnapshotWriter &w, const Job &job)
{
    w.putU64(job.id);
    job.spec.encode(w);
    w.putU8(static_cast<std::uint8_t>(job.state));
    w.putU32(job.attempts);
    w.putU32(job.nextWorkers);
    encodeManifest(w, job.ckpt);
    job.result.encode(w);
    putString(w, job.lastFailure);
}

bool
decodeJobFull(SnapshotReader &r, Job &job)
{
    job.id = r.getU64();
    if (!JobSpec::decode(r, job.spec))
        return false;
    job.state = static_cast<JobState>(r.getU8());
    job.attempts = r.getU32();
    job.nextWorkers = r.getU32();
    job.ckpt = decodeManifest(r);
    if (!JobResult::decode(r, job.result))
        return false;
    job.lastFailure = getString(r);
    return r.ok();
}

} // namespace

// ---------------------------------------------------------------
// Journal
// ---------------------------------------------------------------

JobJournal::~JobJournal()
{
    close();
}

void
JobJournal::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
JobJournal::open(const std::string &path, std::string &err)
{
    close();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        err = path + ": " + std::strerror(errno);
        return false;
    }
    path_ = path;
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    bytes_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
    dirty_ = false;
    return true;
}

bool
JobJournal::replay(const std::function<void(std::uint8_t,
                                            SnapshotReader &)> &cb,
                   std::string &err)
{
    neo_assert(fd_ >= 0, "journal not open");
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) {
        err = std::string("lseek: ") + std::strerror(errno);
        return false;
    }
    std::vector<std::uint8_t> log(static_cast<std::size_t>(size));
    if (::lseek(fd_, 0, SEEK_SET) < 0 ||
        (!log.empty() && !readFull(fd_, log.data(), log.size()))) {
        err = std::string("read: ") + std::strerror(errno);
        return false;
    }

    std::size_t pos = 0;
    std::size_t good = 0;
    while (log.size() - pos >= 9) {
        std::uint32_t len, crc;
        std::memcpy(&len, log.data() + pos, 4);
        std::memcpy(&crc, log.data() + pos + 4, 4);
        if (len == 0 || len > kMaxFrameBytes ||
            log.size() - pos - 8 < len)
            break; // torn tail
        const std::uint8_t *payload = log.data() + pos + 8;
        if (crc32(payload, len) != crc)
            break; // corrupt tail
        SnapshotReader body(payload + 1, len - 1);
        cb(payload[0], body);
        pos += 8 + len;
        good = pos;
    }
    if (good != log.size()) {
        // A mid-append kill left a partial record; truncating it is
        // the whole point of journal-first — the record was never
        // acknowledged, so dropping it loses nothing.
        neo_warn("journal: truncating torn tail (",
                 log.size() - good, " bytes)");
        if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
            err = std::string("ftruncate: ") + std::strerror(errno);
            return false;
        }
        if (!fsyncRetry(fd_)) {
            err = std::string("fsync: ") + std::strerror(errno);
            return false;
        }
    }
    if (::lseek(fd_, static_cast<off_t>(good), SEEK_SET) < 0) {
        err = std::string("lseek: ") + std::strerror(errno);
        return false;
    }
    bytes_ = good;
    return true;
}

namespace
{

std::vector<std::uint8_t>
encodeRecord(std::uint8_t type, const std::vector<std::uint8_t> &body)
{
    std::vector<std::uint8_t> rec(8 + 1 + body.size());
    const std::uint32_t len =
        static_cast<std::uint32_t>(1 + body.size());
    std::memcpy(rec.data(), &len, 4);
    rec[8] = type;
    if (!body.empty())
        std::memcpy(rec.data() + 9, body.data(), body.size());
    const std::uint32_t crc = crc32(rec.data() + 8, len);
    std::memcpy(rec.data() + 4, &crc, 4);
    return rec;
}

} // namespace

bool
JobJournal::append(std::uint8_t type,
                   const std::vector<std::uint8_t> &body, bool sync)
{
    neo_assert(fd_ >= 0, "journal not open");
    const std::vector<std::uint8_t> rec = encodeRecord(type, body);
    if (!writeFull(fd_, rec.data(), rec.size()))
        return false;
    bytes_ += rec.size();
    dirty_ = true;
    return sync ? this->sync() : true;
}

bool
JobJournal::sync()
{
    neo_assert(fd_ >= 0, "journal not open");
    if (!dirty_)
        return true;
    if (!fsyncRetry(fd_))
        return false;
    dirty_ = false;
    return true;
}

bool
JobJournal::rewrite(std::uint8_t type,
                    const std::vector<std::uint8_t> &body,
                    std::string &err)
{
    neo_assert(fd_ >= 0, "journal not open");
    const std::string tmp = path_ + ".compact.tmp";
    const int nfd =
        ::open(tmp.c_str(),
               O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (nfd < 0) {
        err = tmp + ": " + std::strerror(errno);
        return false;
    }
    const std::vector<std::uint8_t> rec = encodeRecord(type, body);
    if (!writeFull(nfd, rec.data(), rec.size()) ||
        !fsyncRetry(nfd)) {
        err = tmp + ": " + std::strerror(errno);
        ::close(nfd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        err = std::string("rename: ") + std::strerror(errno);
        ::close(nfd);
        ::unlink(tmp.c_str());
        return false;
    }
    // Until the rename is durable the old log can reappear after a
    // power cut — which replays to the same state, so correctness
    // never depends on this fsync, only compaction's permanence.
    const std::size_t slash = path_.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : path_.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        fsyncRetry(dfd);
        ::close(dfd);
    }
    ::close(fd_);
    fd_ = nfd;
    bytes_ = rec.size();
    dirty_ = false;
    return true;
}

// ---------------------------------------------------------------
// Queue
// ---------------------------------------------------------------

bool
JobQueue::open(const std::string &path, double now, std::string &err)
{
    if (!journal_.open(path, err))
        return false;
    bool ok = journal_.replay(
        [&](std::uint8_t type, SnapshotReader &r) {
            switch (type) {
              case kRecSubmit: {
                  Job job;
                  job.id = r.getU64();
                  if (!JobSpec::decode(r, job.spec))
                      return;
                  job.state = JobState::Pending;
                  nextId_ = std::max(nextId_, job.id + 1);
                  jobs_[job.id] = std::move(job);
                  break;
              }
              case kRecStart: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->attempts = attempt;
                      job->nextWorkers = workers;
                      job->state = JobState::Running;
                  }
                  break;
              }
              case kRecDone: {
                  const std::uint64_t id = r.getU64();
                  JobResult res;
                  if (!JobResult::decode(r, res))
                      return;
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->result = std::move(res);
                      job->state = JobState::Done;
                  }
                  break;
              }
              case kRecFail: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  const std::string reason = getString(r);
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->attempts = attempt;
                      job->nextWorkers = workers;
                      job->lastFailure = reason;
                      job->state = JobState::Pending;
                  }
                  break;
              }
              case kRecCancel: {
                  Job *job = find(r.getU64());
                  if (job != nullptr)
                      job->state = JobState::Cancelled;
                  break;
              }
              case kRecQuarantine: {
                  const std::uint64_t id = r.getU64();
                  const std::string reason = getString(r);
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->lastFailure = reason;
                      job->state = JobState::Quarantined;
                  }
                  break;
              }
              case kRecCheckpoint: {
                  const std::uint64_t id = r.getU64();
                  const CkptManifest m = decodeManifest(r);
                  maxEpoch_ = std::max(maxEpoch_, m.epoch);
                  Job *job = find(id);
                  if (job != nullptr)
                      job->ckpt = m;
                  break;
              }
              case kRecSnapshot: {
                  // Compaction point: everything before it is folded
                  // in; reset and load, then let the tail apply.
                  jobs_.clear();
                  nextId_ = std::max<std::uint64_t>(1, r.getU64());
                  maxEpoch_ = r.getU64();
                  const std::uint32_t count = r.getU32();
                  for (std::uint32_t i = 0; i < count; ++i) {
                      Job job;
                      if (!decodeJobFull(r, job))
                          return;
                      nextId_ = std::max(nextId_, job.id + 1);
                      jobs_[job.id] = std::move(job);
                  }
                  break;
              }
              default:
                  neo_warn("journal: skipping unknown record type ",
                           static_cast<int>(type));
            }
        },
        err);
    if (!ok)
        return false;

    // A job still Running after replay is the smoking gun of a dead
    // coordinator: its START was journaled but no verdict ever was.
    // That attempt failed by definition — count it, so a job that
    // kills the coordinator itself still quarantines eventually.
    for (auto &[id, job] : jobs_) {
        if (job.state != JobState::Running)
            continue;
        job.lastFailure = "attempt lost to a coordinator crash";
        if (job.attempts >= retryLimit_) {
            quarantine(job, job.lastFailure);
        } else {
            job.state = JobState::Pending;
            job.notBefore = now; // retry immediately on restart
        }
    }
    return true;
}

bool
JobQueue::append(std::uint8_t type,
                 const std::vector<std::uint8_t> &body)
{
    if (!journal_.append(type, body, !groupCommit_))
        neo_fatal("journal append failed: ", std::strerror(errno));
    return true;
}

void
JobQueue::commit()
{
    if (!journal_.sync())
        neo_fatal("journal fsync failed: ", std::strerror(errno));
    if (compactBytes_ != 0 && journal_.bytes() > compactBytes_)
        compactNow();
}

void
JobQueue::compactNow()
{
    SnapshotWriter w;
    w.putU64(nextId_);
    w.putU64(maxEpoch_);
    w.putU32(static_cast<std::uint32_t>(jobs_.size()));
    for (const auto &[id, job] : jobs_)
        encodeJobFull(w, job);
    const std::uint64_t before = journal_.bytes();
    std::string err;
    if (!journal_.rewrite(kRecSnapshot, w.take(), err)) {
        // The old log is still intact (rewrite is atomic), so this
        // is survivable — just noisy. Try again at the next commit.
        neo_warn("journal: compaction failed: ", err);
        return;
    }
    neo_inform("journal: compacted ", before, " -> ",
               journal_.bytes(), " bytes (", jobs_.size(), " jobs)");
}

std::uint64_t
JobQueue::submit(const JobSpec &spec)
{
    Job job;
    job.id = nextId_++;
    job.spec = spec;
    SnapshotWriter w;
    w.putU64(job.id);
    spec.encode(w);
    append(kRecSubmit, w.take());
    const std::uint64_t id = job.id;
    jobs_[id] = std::move(job);
    return id;
}

Job *
JobQueue::runnable(double now)
{
    for (auto &[id, job] : jobs_) {
        if (job.state == JobState::Pending && job.notBefore <= now)
            return &job;
    }
    return nullptr;
}

void
JobQueue::markStarted(Job &job, std::uint32_t workers)
{
    SnapshotWriter w;
    w.putU64(job.id);
    w.putU32(job.attempts + 1);
    w.putU32(workers);
    append(kRecStart, w.take());
    ++job.attempts;
    job.nextWorkers = workers;
    job.state = JobState::Running;
}

void
JobQueue::markDone(Job &job, const JobResult &result)
{
    SnapshotWriter w;
    w.putU64(job.id);
    result.encode(w);
    append(kRecDone, w.take());
    job.result = result;
    job.state = JobState::Done;
}

void
JobQueue::failAttempt(Job &job, const std::string &reason,
                      std::uint32_t nextWorkers, double now)
{
    if (job.attempts >= retryLimit_) {
        quarantine(job, reason);
        return;
    }
    SnapshotWriter w;
    w.putU64(job.id);
    w.putU32(job.attempts);
    w.putU32(nextWorkers);
    putString(w, reason);
    append(kRecFail, w.take());
    job.lastFailure = reason;
    job.nextWorkers = nextWorkers;
    job.state = JobState::Pending;
    // Doubling, but capped: with double-digit retry budgets (chaotic
    // links burn attempts routinely) an uncapped exponential parks a
    // job for tens of minutes before its quarantine verdict. 10 s is
    // long past any transient worth waiting out.
    job.notBefore =
        now + std::min(kBackoffCapSeconds,
                       backoff_ * std::ldexp(
                                      1.0, static_cast<int>(
                                               job.attempts - 1)));
}

void
JobQueue::quarantine(Job &job, const std::string &reason)
{
    SnapshotWriter w;
    w.putU64(job.id);
    putString(w, reason);
    append(kRecQuarantine, w.take());
    job.lastFailure = reason;
    job.state = JobState::Quarantined;
}

void
JobQueue::recordCheckpoint(Job &job, const CkptManifest &m)
{
    SnapshotWriter w;
    w.putU64(job.id);
    encodeManifest(w, m);
    append(kRecCheckpoint, w.take());
    job.ckpt = m;
    maxEpoch_ = std::max(maxEpoch_, m.epoch);
}

bool
JobQueue::cancel(std::uint64_t id)
{
    Job *job = find(id);
    if (job == nullptr || (job->state != JobState::Pending &&
                           job->state != JobState::Running))
        return false;
    SnapshotWriter w;
    w.putU64(id);
    append(kRecCancel, w.take());
    job->state = JobState::Cancelled;
    return true;
}

Job *
JobQueue::find(std::uint64_t id)
{
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : &it->second;
}

bool
JobQueue::allTerminal() const
{
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Pending ||
            job.state == JobState::Running)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------
// Offline journal dump
// ---------------------------------------------------------------

bool
dumpJournal(const std::string &path, std::FILE *out, std::string &err)
{
    JobJournal j;
    if (!j.open(path, err))
        return false;
    return j.replay(
        [&](std::uint8_t type, SnapshotReader &r) {
            switch (type) {
              case kRecSubmit: {
                  const std::uint64_t id = r.getU64();
                  JobSpec spec;
                  JobSpec::decode(r, spec);
                  std::fprintf(out, "SUBMIT job=%llu %s\n",
                               static_cast<unsigned long long>(id),
                               spec.summary().c_str());
                  break;
              }
              case kRecStart: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  std::fprintf(out,
                               "START job=%llu attempt=%u workers=%u\n",
                               static_cast<unsigned long long>(id),
                               attempt, workers);
                  break;
              }
              case kRecDone: {
                  const std::uint64_t id = r.getU64();
                  JobResult res;
                  JobResult::decode(r, res);
                  std::fprintf(
                      out,
                      "DONE job=%llu status=%s states=%llu "
                      "transitions=%llu invchecks=%llu\n",
                      static_cast<unsigned long long>(id),
                      verifStatusName(
                          static_cast<VerifStatus>(res.statusCode)),
                      static_cast<unsigned long long>(res.states),
                      static_cast<unsigned long long>(
                          res.transitions),
                      static_cast<unsigned long long>(
                          res.invariantChecks));
                  break;
              }
              case kRecFail: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  const std::string reason = getString(r);
                  std::fprintf(out,
                               "FAIL job=%llu attempt=%u "
                               "next-workers=%u reason=%s\n",
                               static_cast<unsigned long long>(id),
                               attempt, workers, reason.c_str());
                  break;
              }
              case kRecCancel:
                  std::fprintf(out, "CANCEL job=%llu\n",
                               static_cast<unsigned long long>(
                                   r.getU64()));
                  break;
              case kRecQuarantine: {
                  const std::uint64_t id = r.getU64();
                  const std::string reason = getString(r);
                  std::fprintf(out, "QUARANTINE job=%llu reason=%s\n",
                               static_cast<unsigned long long>(id),
                               reason.c_str());
                  break;
              }
              case kRecCheckpoint: {
                  const std::uint64_t id = r.getU64();
                  const CkptManifest m = decodeManifest(r);
                  std::fprintf(
                      out,
                      "CKPT job=%llu epoch=%llu parts=%u "
                      "states=%llu transitions=%llu\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(m.epoch),
                      m.parts,
                      static_cast<unsigned long long>(m.states),
                      static_cast<unsigned long long>(m.transitions));
                  break;
              }
              case kRecSnapshot: {
                  // One SNAP line per folded job. The format is
                  // deliberately distinct from the live records it
                  // replaces ("SNAP job=1 state=DONE", never
                  // "DONE job=1") — the exactly-once recovery checks
                  // count live DONE lines, and a compaction must not
                  // inflate that count.
                  const std::uint64_t nextId = r.getU64();
                  const std::uint64_t maxEpoch = r.getU64();
                  const std::uint32_t count = r.getU32();
                  std::fprintf(
                      out,
                      "SNAPSHOT next-id=%llu max-epoch=%llu "
                      "jobs=%u\n",
                      static_cast<unsigned long long>(nextId),
                      static_cast<unsigned long long>(maxEpoch),
                      count);
                  for (std::uint32_t i = 0; i < count; ++i) {
                      Job job;
                      if (!decodeJobFull(r, job)) {
                          std::fprintf(out,
                                       "SNAPSHOT truncated at "
                                       "entry %u\n",
                                       i);
                          break;
                      }
                      std::fprintf(
                          out,
                          "SNAP job=%llu state=%s attempt=%u "
                          "%s\n",
                          static_cast<unsigned long long>(job.id),
                          jobStateName(job.state), job.attempts,
                          job.spec.summary().c_str());
                  }
                  break;
              }
              default:
                  std::fprintf(out, "UNKNOWN type=%d\n",
                               static_cast<int>(type));
            }
        },
        err);
}

} // namespace neo
