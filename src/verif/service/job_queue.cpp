#include "job_queue.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "sim/io_retry.hpp"
#include "sim/logging.hpp"
#include "verif/explorer.hpp"
#include "verif/service/wire.hpp"

namespace neo
{

// ---------------------------------------------------------------
// Spec / result / manifest codecs
// ---------------------------------------------------------------

void
JobSpec::encode(SnapshotWriter &w) const
{
    putString(w, features);
    putString(w, system);
    putString(w, method);
    putString(w, mutant);
    w.putU64(n);
    w.putU64(maxStates);
    w.putF64(maxSeconds);
    w.putU64(crashAfter);
}

bool
JobSpec::decode(SnapshotReader &r, JobSpec &out)
{
    out.features = getString(r);
    out.system = getString(r);
    out.method = getString(r);
    out.mutant = getString(r);
    out.n = r.getU64();
    out.maxStates = r.getU64();
    out.maxSeconds = r.getF64();
    out.crashAfter = r.getU64();
    return r.ok();
}

std::string
JobSpec::summary() const
{
    std::ostringstream os;
    if (!mutant.empty())
        os << "mutant " << mutant;
    else if (features == "german")
        os << "german n=" << n;
    else
        os << features << " (" << system << ", " << method
           << ") n=" << n;
    if (crashAfter != 0)
        os << " crash-after=" << crashAfter;
    return os.str();
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Pending: return "PENDING";
      case JobState::Running: return "RUNNING";
      case JobState::Done: return "DONE";
      case JobState::Quarantined: return "QUARANTINED";
      case JobState::Cancelled: return "CANCELLED";
    }
    return "?";
}

void
JobResult::encode(SnapshotWriter &w) const
{
    w.putU8(statusCode);
    w.putU64(states);
    w.putU64(transitions);
    w.putU64(invariantChecks);
    w.putF64(seconds);
    putString(w, violatedInvariant);
    putString(w, detail);
}

bool
JobResult::decode(SnapshotReader &r, JobResult &out)
{
    out.statusCode = r.getU8();
    out.states = r.getU64();
    out.transitions = r.getU64();
    out.invariantChecks = r.getU64();
    out.seconds = r.getF64();
    out.violatedInvariant = getString(r);
    out.detail = getString(r);
    return r.ok();
}

namespace
{

void
encodeManifest(SnapshotWriter &w, const CkptManifest &m)
{
    w.putU64(m.epoch);
    w.putU32(m.parts);
    w.putU64(m.states);
    w.putU64(m.transitions);
    w.putU64(m.invariantChecks);
    w.putF64(m.seconds);
}

CkptManifest
decodeManifest(SnapshotReader &r)
{
    CkptManifest m;
    m.epoch = r.getU64();
    m.parts = r.getU32();
    m.states = r.getU64();
    m.transitions = r.getU64();
    m.invariantChecks = r.getU64();
    m.seconds = r.getF64();
    return m;
}

} // namespace

// ---------------------------------------------------------------
// Journal
// ---------------------------------------------------------------

JobJournal::~JobJournal()
{
    close();
}

void
JobJournal::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
JobJournal::open(const std::string &path, std::string &err)
{
    close();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        err = path + ": " + std::strerror(errno);
        return false;
    }
    return true;
}

bool
JobJournal::replay(const std::function<void(std::uint8_t,
                                            SnapshotReader &)> &cb,
                   std::string &err)
{
    neo_assert(fd_ >= 0, "journal not open");
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) {
        err = std::string("lseek: ") + std::strerror(errno);
        return false;
    }
    std::vector<std::uint8_t> log(static_cast<std::size_t>(size));
    if (::lseek(fd_, 0, SEEK_SET) < 0 ||
        (!log.empty() && !readFull(fd_, log.data(), log.size()))) {
        err = std::string("read: ") + std::strerror(errno);
        return false;
    }

    std::size_t pos = 0;
    std::size_t good = 0;
    while (log.size() - pos >= 9) {
        std::uint32_t len, crc;
        std::memcpy(&len, log.data() + pos, 4);
        std::memcpy(&crc, log.data() + pos + 4, 4);
        if (len == 0 || len > kMaxFrameBytes ||
            log.size() - pos - 8 < len)
            break; // torn tail
        const std::uint8_t *payload = log.data() + pos + 8;
        if (crc32(payload, len) != crc)
            break; // corrupt tail
        SnapshotReader body(payload + 1, len - 1);
        cb(payload[0], body);
        pos += 8 + len;
        good = pos;
    }
    if (good != log.size()) {
        // A mid-append kill left a partial record; truncating it is
        // the whole point of journal-first — the record was never
        // acknowledged, so dropping it loses nothing.
        neo_warn("journal: truncating torn tail (",
                 log.size() - good, " bytes)");
        if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
            err = std::string("ftruncate: ") + std::strerror(errno);
            return false;
        }
        if (!fsyncRetry(fd_)) {
            err = std::string("fsync: ") + std::strerror(errno);
            return false;
        }
    }
    if (::lseek(fd_, static_cast<off_t>(good), SEEK_SET) < 0) {
        err = std::string("lseek: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
JobJournal::append(std::uint8_t type,
                   const std::vector<std::uint8_t> &body)
{
    neo_assert(fd_ >= 0, "journal not open");
    std::vector<std::uint8_t> rec(8 + 1 + body.size());
    const std::uint32_t len =
        static_cast<std::uint32_t>(1 + body.size());
    std::memcpy(rec.data(), &len, 4);
    rec[8] = type;
    if (!body.empty())
        std::memcpy(rec.data() + 9, body.data(), body.size());
    const std::uint32_t crc = crc32(rec.data() + 8, len);
    std::memcpy(rec.data() + 4, &crc, 4);
    if (!writeFull(fd_, rec.data(), rec.size()))
        return false;
    return fsyncRetry(fd_);
}

// ---------------------------------------------------------------
// Queue
// ---------------------------------------------------------------

bool
JobQueue::open(const std::string &path, double now, std::string &err)
{
    if (!journal_.open(path, err))
        return false;
    bool ok = journal_.replay(
        [&](std::uint8_t type, SnapshotReader &r) {
            switch (type) {
              case kRecSubmit: {
                  Job job;
                  job.id = r.getU64();
                  if (!JobSpec::decode(r, job.spec))
                      return;
                  job.state = JobState::Pending;
                  nextId_ = std::max(nextId_, job.id + 1);
                  jobs_[job.id] = std::move(job);
                  break;
              }
              case kRecStart: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->attempts = attempt;
                      job->nextWorkers = workers;
                      job->state = JobState::Running;
                  }
                  break;
              }
              case kRecDone: {
                  const std::uint64_t id = r.getU64();
                  JobResult res;
                  if (!JobResult::decode(r, res))
                      return;
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->result = std::move(res);
                      job->state = JobState::Done;
                  }
                  break;
              }
              case kRecFail: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  const std::string reason = getString(r);
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->attempts = attempt;
                      job->nextWorkers = workers;
                      job->lastFailure = reason;
                      job->state = JobState::Pending;
                  }
                  break;
              }
              case kRecCancel: {
                  Job *job = find(r.getU64());
                  if (job != nullptr)
                      job->state = JobState::Cancelled;
                  break;
              }
              case kRecQuarantine: {
                  const std::uint64_t id = r.getU64();
                  const std::string reason = getString(r);
                  Job *job = find(id);
                  if (job != nullptr) {
                      job->lastFailure = reason;
                      job->state = JobState::Quarantined;
                  }
                  break;
              }
              case kRecCheckpoint: {
                  const std::uint64_t id = r.getU64();
                  const CkptManifest m = decodeManifest(r);
                  maxEpoch_ = std::max(maxEpoch_, m.epoch);
                  Job *job = find(id);
                  if (job != nullptr)
                      job->ckpt = m;
                  break;
              }
              default:
                  neo_warn("journal: skipping unknown record type ",
                           static_cast<int>(type));
            }
        },
        err);
    if (!ok)
        return false;

    // A job still Running after replay is the smoking gun of a dead
    // coordinator: its START was journaled but no verdict ever was.
    // That attempt failed by definition — count it, so a job that
    // kills the coordinator itself still quarantines eventually.
    for (auto &[id, job] : jobs_) {
        if (job.state != JobState::Running)
            continue;
        job.lastFailure = "attempt lost to a coordinator crash";
        if (job.attempts >= retryLimit_) {
            quarantine(job, job.lastFailure);
        } else {
            job.state = JobState::Pending;
            job.notBefore = now; // retry immediately on restart
        }
    }
    return true;
}

std::uint64_t
JobQueue::submit(const JobSpec &spec)
{
    Job job;
    job.id = nextId_++;
    job.spec = spec;
    SnapshotWriter w;
    w.putU64(job.id);
    spec.encode(w);
    if (!journal_.append(kRecSubmit, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    const std::uint64_t id = job.id;
    jobs_[id] = std::move(job);
    return id;
}

Job *
JobQueue::runnable(double now)
{
    for (auto &[id, job] : jobs_) {
        if (job.state == JobState::Pending && job.notBefore <= now)
            return &job;
    }
    return nullptr;
}

void
JobQueue::markStarted(Job &job, std::uint32_t workers)
{
    SnapshotWriter w;
    w.putU64(job.id);
    w.putU32(job.attempts + 1);
    w.putU32(workers);
    if (!journal_.append(kRecStart, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    ++job.attempts;
    job.nextWorkers = workers;
    job.state = JobState::Running;
}

void
JobQueue::markDone(Job &job, const JobResult &result)
{
    SnapshotWriter w;
    w.putU64(job.id);
    result.encode(w);
    if (!journal_.append(kRecDone, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    job.result = result;
    job.state = JobState::Done;
}

void
JobQueue::failAttempt(Job &job, const std::string &reason,
                      std::uint32_t nextWorkers, double now)
{
    if (job.attempts >= retryLimit_) {
        quarantine(job, reason);
        return;
    }
    SnapshotWriter w;
    w.putU64(job.id);
    w.putU32(job.attempts);
    w.putU32(nextWorkers);
    putString(w, reason);
    if (!journal_.append(kRecFail, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    job.lastFailure = reason;
    job.nextWorkers = nextWorkers;
    job.state = JobState::Pending;
    job.notBefore =
        now + backoff_ * std::ldexp(1.0, static_cast<int>(
                                             job.attempts - 1));
}

void
JobQueue::quarantine(Job &job, const std::string &reason)
{
    SnapshotWriter w;
    w.putU64(job.id);
    putString(w, reason);
    if (!journal_.append(kRecQuarantine, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    job.lastFailure = reason;
    job.state = JobState::Quarantined;
}

void
JobQueue::recordCheckpoint(Job &job, const CkptManifest &m)
{
    SnapshotWriter w;
    w.putU64(job.id);
    encodeManifest(w, m);
    if (!journal_.append(kRecCheckpoint, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    job.ckpt = m;
    maxEpoch_ = std::max(maxEpoch_, m.epoch);
}

bool
JobQueue::cancel(std::uint64_t id)
{
    Job *job = find(id);
    if (job == nullptr || (job->state != JobState::Pending &&
                           job->state != JobState::Running))
        return false;
    SnapshotWriter w;
    w.putU64(id);
    if (!journal_.append(kRecCancel, w.take()))
        neo_fatal("journal append failed: ", std::strerror(errno));
    job->state = JobState::Cancelled;
    return true;
}

Job *
JobQueue::find(std::uint64_t id)
{
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : &it->second;
}

bool
JobQueue::allTerminal() const
{
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Pending ||
            job.state == JobState::Running)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------
// Offline journal dump
// ---------------------------------------------------------------

bool
dumpJournal(const std::string &path, std::FILE *out, std::string &err)
{
    JobJournal j;
    if (!j.open(path, err))
        return false;
    return j.replay(
        [&](std::uint8_t type, SnapshotReader &r) {
            switch (type) {
              case kRecSubmit: {
                  const std::uint64_t id = r.getU64();
                  JobSpec spec;
                  JobSpec::decode(r, spec);
                  std::fprintf(out, "SUBMIT job=%llu %s\n",
                               static_cast<unsigned long long>(id),
                               spec.summary().c_str());
                  break;
              }
              case kRecStart: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  std::fprintf(out,
                               "START job=%llu attempt=%u workers=%u\n",
                               static_cast<unsigned long long>(id),
                               attempt, workers);
                  break;
              }
              case kRecDone: {
                  const std::uint64_t id = r.getU64();
                  JobResult res;
                  JobResult::decode(r, res);
                  std::fprintf(
                      out,
                      "DONE job=%llu status=%s states=%llu "
                      "transitions=%llu invchecks=%llu\n",
                      static_cast<unsigned long long>(id),
                      verifStatusName(
                          static_cast<VerifStatus>(res.statusCode)),
                      static_cast<unsigned long long>(res.states),
                      static_cast<unsigned long long>(
                          res.transitions),
                      static_cast<unsigned long long>(
                          res.invariantChecks));
                  break;
              }
              case kRecFail: {
                  const std::uint64_t id = r.getU64();
                  const std::uint32_t attempt = r.getU32();
                  const std::uint32_t workers = r.getU32();
                  const std::string reason = getString(r);
                  std::fprintf(out,
                               "FAIL job=%llu attempt=%u "
                               "next-workers=%u reason=%s\n",
                               static_cast<unsigned long long>(id),
                               attempt, workers, reason.c_str());
                  break;
              }
              case kRecCancel:
                  std::fprintf(out, "CANCEL job=%llu\n",
                               static_cast<unsigned long long>(
                                   r.getU64()));
                  break;
              case kRecQuarantine: {
                  const std::uint64_t id = r.getU64();
                  const std::string reason = getString(r);
                  std::fprintf(out, "QUARANTINE job=%llu reason=%s\n",
                               static_cast<unsigned long long>(id),
                               reason.c_str());
                  break;
              }
              case kRecCheckpoint: {
                  const std::uint64_t id = r.getU64();
                  const CkptManifest m = decodeManifest(r);
                  std::fprintf(
                      out,
                      "CKPT job=%llu epoch=%llu parts=%u "
                      "states=%llu transitions=%llu\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(m.epoch),
                      m.parts,
                      static_cast<unsigned long long>(m.states),
                      static_cast<unsigned long long>(m.transitions));
                  break;
              }
              default:
                  std::fprintf(out, "UNKNOWN type=%d\n",
                               static_cast<int>(type));
            }
        },
        err);
}

} // namespace neo
