/**
 * @file
 * Persistent job queue for the verification service.
 *
 * Crash-only storage: every queue transition is appended to a
 * CRC-guarded journal and fsync'd BEFORE the in-memory state changes
 * (journal-first), so the queue a restarted coordinator replays is
 * exactly the queue the dead one had durably promised. A SIGKILL can
 * tear at most the final record; replay detects the torn tail by CRC,
 * truncates it, and continues — losing nothing that was ever
 * acknowledged to a client.
 *
 * Replay semantics encode the retry policy: a START with no matching
 * DONE/FAIL means the attempt died with the coordinator and counts as
 * a failed attempt, so a job that crash-loops the coordinator itself
 * still converges to quarantine instead of wedging the queue forever.
 */

#ifndef NEO_VERIF_SERVICE_JOB_QUEUE_HPP
#define NEO_VERIF_SERVICE_JOB_QUEUE_HPP

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "verif/checkpoint.hpp"

namespace neo
{

/** What to verify: the same model-selection surface as the neoverify
 *  CLI, shipped from client to coordinator and on to every worker. */
struct JobSpec
{
    std::string features = "neomesi";
    std::string system = "open";
    std::string method = "modified";
    /** Non-empty selects a corpus mutant instead of a bundled model. */
    std::string mutant;
    std::uint64_t n = 3;
    std::uint64_t maxStates = 8'000'000;
    double maxSeconds = 600.0;
    /** Fault-injection hook (tests): each worker _exits after
     *  interning this many fresh states; 0 disables. A nonzero value
     *  makes the job deterministic poison — it can never finish and
     *  must end in quarantine. */
    std::uint64_t crashAfter = 0;
    /** Per-job worker budget; 0 = the coordinator's default. With
     *  concurrent attempts this is admission control's second axis:
     *  a big sweep job can be capped so it never crowds out small
     *  ones. */
    std::uint32_t workers = 0;

    void encode(SnapshotWriter &w) const;
    static bool decode(SnapshotReader &r, JobSpec &out);
    std::string summary() const;
};

enum class JobState : std::uint8_t
{
    Pending = 0,     ///< queued (possibly in retry backoff)
    Running = 1,     ///< an attempt's workers are alive
    Done = 2,        ///< terminal verdict recorded (any status)
    Quarantined = 3, ///< poison: failed retryLimit attempts
    Cancelled = 4,
};

const char *jobStateName(JobState s);

/** Terminal verdict of a job, journaled with its DONE record. */
struct JobResult
{
    /** VerifStatus cast to its underlying value. */
    std::uint8_t statusCode = 0;
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t invariantChecks = 0;
    double seconds = 0.0;
    std::string violatedInvariant;
    std::string detail;

    void encode(SnapshotWriter &w) const;
    static bool decode(SnapshotReader &r, JobResult &out);
};

/**
 * Committed checkpoint barrier: which partition files a retry resumes
 * from, and the exact counters accumulated up to that consistent cut.
 * A resumed attempt starts its local counters at zero; the final
 * verdict is base + the resumed attempt's deltas, which is what makes
 * kill-and-recover fixpoint counts equal an undisturbed run's.
 */
struct CkptManifest
{
    std::uint64_t epoch = 0; ///< 0 = no checkpoint committed
    std::uint32_t parts = 0; ///< partition files in the epoch
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t invariantChecks = 0;
    double seconds = 0.0; ///< wall time consumed before the cut
};

struct Job
{
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Pending;
    /** Attempts started (a crashed coordinator's unmatched START
     *  counts: replay resolves it to a failure). */
    std::uint32_t attempts = 0;
    /** Retry backoff gate: not runnable before this monotonic time.
     *  Not persisted — a restart retries immediately, which is the
     *  right bias after losing the coordinator. */
    double notBefore = 0.0;
    /** Worker count for the next attempt; 0 = the server default.
     *  Shrinks when workers die (reshard-to-survivors). */
    std::uint32_t nextWorkers = 0;
    CkptManifest ckpt;
    JobResult result; ///< valid when state == Done
    std::string lastFailure;
};

/** Journal record types (persisted values — never renumber). */
inline constexpr std::uint8_t kRecSubmit = 1;
inline constexpr std::uint8_t kRecStart = 2;
inline constexpr std::uint8_t kRecDone = 3;
inline constexpr std::uint8_t kRecFail = 4;
inline constexpr std::uint8_t kRecCancel = 5;
inline constexpr std::uint8_t kRecQuarantine = 6;
inline constexpr std::uint8_t kRecCheckpoint = 7;
/** Compaction snapshot: the full job table at one instant. Replay
 *  resets to it and applies the tail that follows. */
inline constexpr std::uint8_t kRecSnapshot = 8;

/**
 * Append-only record log: [u32 len][u32 crc][u8 type][body]. Appends
 * are durable before they are acknowledged; with group commit the
 * fsync is deferred to sync() so a burst of appends shares one flush,
 * but acknowledgement still strictly follows the sync.
 */
class JobJournal
{
  public:
    JobJournal() = default;
    ~JobJournal();
    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /** Open (creating if absent) for append; replay() reads first. */
    bool open(const std::string &path, std::string &err);

    /**
     * Scan every intact record into @p cb in append order. A torn or
     * corrupt tail — the signature of a mid-append SIGKILL — is
     * truncated away so subsequent appends extend a clean log.
     */
    bool replay(const std::function<void(std::uint8_t type,
                                         SnapshotReader &body)> &cb,
                std::string &err);

    /**
     * Append one record. With @p sync (the default) the record is
     * fsync'd before returning; with sync=false it is only written,
     * and the caller MUST sync() before acting on or acknowledging
     * the transition (group commit).
     */
    bool append(std::uint8_t type,
                const std::vector<std::uint8_t> &body,
                bool sync = true);

    /** Flush deferred appends: one fsync covers every append since
     *  the last. No-op when nothing is pending. */
    bool sync();

    /**
     * Compaction: atomically replace the log with a single snapshot
     * record — write to path+".compact.tmp", fsync, rename over, and
     * adopt the new fd. The old log's records are all reflected in
     * the snapshot the caller encoded, so replay equivalence is the
     * caller's invariant; atomicity (a crash leaves either the old
     * or the new log, never a mix) is this function's.
     */
    bool rewrite(std::uint8_t type,
                 const std::vector<std::uint8_t> &body,
                 std::string &err);

    /** Bytes in the log (intact prefix + appends since open). */
    std::uint64_t bytes() const { return bytes_; }

    /** Raw fd (forked workers close it; they must never inherit an
     *  open journal handle). */
    int fd() const { return fd_; }

    void close();

  private:
    int fd_ = -1;
    std::string path_;
    std::uint64_t bytes_ = 0;
    bool dirty_ = false;
};

/** Ceiling on the doubling retry backoff: transients worth waiting
 *  out resolve well within this; past it the delay only postpones
 *  the retry (or the quarantine verdict) without improving odds. */
inline constexpr double kBackoffCapSeconds = 10.0;

/**
 * The queue itself: in-memory job table fronting the journal, with
 * exponential-backoff retry and poison quarantine.
 */
class JobQueue
{
  public:
    JobQueue(std::uint32_t retryLimit, double backoffSeconds)
        : retryLimit_(retryLimit), backoff_(backoffSeconds)
    {
    }

    /** Open + replay the journal at @p path; resolves interrupted
     *  attempts (unmatched STARTs) per the retry policy. */
    bool open(const std::string &path, double now, std::string &err);

    /**
     * Group commit: defer the per-mutation fsync to the next
     * commit(), so appends arriving within one poll iteration share
     * a single flush. The coordinator MUST commit() before sending
     * any acknowledgement or taking any irreversible action (fork,
     * kill, file pruning) that depends on the journaled transition.
     */
    void setGroupCommit(bool on) { groupCommit_ = on; }
    void commit();

    /** Size-triggered compaction: once the journal exceeds
     *  @p bytes (0 = never), commit() folds it into one snapshot
     *  record. */
    void setCompactionThreshold(std::uint64_t bytes)
    {
        compactBytes_ = bytes;
    }
    std::uint64_t journalBytes() const { return journal_.bytes(); }
    /** Force a compaction now regardless of size (tests). */
    void compactNow();

    /** Journal + enqueue; @return the new job id. */
    std::uint64_t submit(const JobSpec &spec);

    /** Next runnable job (FIFO by id among Pending jobs whose backoff
     *  has expired); nullptr when none. */
    Job *runnable(double now);

    /** Journal the attempt start (attempt counter bumps here). */
    void markStarted(Job &job, std::uint32_t workers);

    /** Journal the terminal verdict. */
    void markDone(Job &job, const JobResult &result);

    /** Journal an attempt failure: back off exponentially, shrink the
     *  next attempt to @p nextWorkers (reshard to survivors), and
     *  quarantine once attempts reach the retry limit. */
    void failAttempt(Job &job, const std::string &reason,
                     std::uint32_t nextWorkers, double now);

    /** Journal a committed checkpoint barrier. */
    void recordCheckpoint(Job &job, const CkptManifest &m);

    /** Cancel a Pending or Running job — journal-first, so the
     *  coordinator cancels BEFORE killing a running attempt's workers
     *  (a crash in between replays as cancelled, never as retried);
     *  false if unknown or already terminal. */
    bool cancel(std::uint64_t id);

    Job *find(std::uint64_t id);
    const std::map<std::uint64_t, Job> &jobs() const { return jobs_; }
    bool allTerminal() const;
    /** Highest checkpoint epoch ever journaled (restart resumes the
     *  global epoch counter past it). */
    std::uint64_t maxEpochSeen() const { return maxEpoch_; }
    std::uint32_t retryLimit() const { return retryLimit_; }
    int journalFd() const { return journal_.fd(); }

  private:
    void quarantine(Job &job, const std::string &reason);
    bool append(std::uint8_t type,
                const std::vector<std::uint8_t> &body);

    JobJournal journal_;
    std::map<std::uint64_t, Job> jobs_;
    std::uint64_t nextId_ = 1;
    std::uint64_t maxEpoch_ = 0;
    std::uint32_t retryLimit_;
    double backoff_;
    bool groupCommit_ = false;
    std::uint64_t compactBytes_ = 0;
};

/** Human-readable dump of a journal file (neoverify --journal): one
 *  line per record, greppable — the exactly-once recovery tests count
 *  "DONE job=<id>" lines. @return false if unreadable. */
bool dumpJournal(const std::string &path, std::FILE *out,
                 std::string &err);

} // namespace neo

#endif // NEO_VERIF_SERVICE_JOB_QUEUE_HPP
