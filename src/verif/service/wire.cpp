#include "wire.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <fcntl.h>
#include <unistd.h>

#include "sim/io_retry.hpp"
#include "sim/logging.hpp"

namespace neo
{

namespace
{

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    std::memcpy(p, &v, 4);
}

} // namespace

void
putString(SnapshotWriter &w, const std::string &s)
{
    w.putU32(static_cast<std::uint32_t>(s.size()));
    w.putBytes(reinterpret_cast<const std::uint8_t *>(s.data()),
               s.size());
}

std::string
getString(SnapshotReader &r)
{
    const std::uint32_t n = r.getU32();
    if (n > kMaxFrameBytes) {
        // A length no real frame can carry is corruption: latch the
        // reader so the rest of the record fails too, instead of
        // silently decoding the remaining fields misaligned.
        r.fail();
        return std::string();
    }
    std::string s(n, '\0');
    r.getBytes(reinterpret_cast<std::uint8_t *>(s.data()), n);
    return r.ok() ? s : std::string();
}

std::vector<std::uint8_t>
encodeFrame(MsgType type, const std::vector<std::uint8_t> &body)
{
    neo_assert(body.size() + 1 <= kMaxFrameBytes, "oversized frame");
    std::vector<std::uint8_t> frame(8 + 1 + body.size());
    const std::uint32_t len =
        static_cast<std::uint32_t>(1 + body.size());
    storeU32(frame.data(), len);
    frame[8] = static_cast<std::uint8_t>(type);
    if (!body.empty())
        std::memcpy(frame.data() + 9, body.data(), body.size());
    storeU32(frame.data() + 4, crc32(frame.data() + 8, len));
    return frame;
}

void
FrameReader::feed(const std::uint8_t *data, std::size_t n)
{
    if (corrupt_)
        return;
    // Compact lazily: drop consumed prefix once it dominates.
    if (pos_ > 0 && pos_ >= buf_.size() / 2 && pos_ > 4096) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

bool
FrameReader::next(MsgType &type, std::vector<std::uint8_t> &body)
{
    if (corrupt_ || buf_.size() - pos_ < 8)
        return false;
    const std::uint32_t len = loadU32(buf_.data() + pos_);
    const std::uint32_t crc = loadU32(buf_.data() + pos_ + 4);
    if (len == 0 || len > kMaxFrameBytes) {
        corrupt_ = true;
        return false;
    }
    if (buf_.size() - pos_ < 8 + static_cast<std::size_t>(len))
        return false;
    const std::uint8_t *payload = buf_.data() + pos_ + 8;
    if (crc32(payload, len) != crc) {
        corrupt_ = true;
        return false;
    }
    type = static_cast<MsgType>(payload[0]);
    body.assign(payload + 1, payload + len);
    pos_ += 8 + len;
    return true;
}

Channel &
Channel::operator=(Channel &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        failed_ = o.failed_;
        out_ = std::move(o.out_);
        outPos_ = o.outPos_;
        in_ = std::move(o.in_);
        o.fd_ = -1;
    }
    return *this;
}

void
Channel::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

void
Channel::queueFrame(MsgType type, const std::vector<std::uint8_t> &body)
{
    if (!open())
        return;
    const std::vector<std::uint8_t> frame = encodeFrame(type, body);
    out_.insert(out_.end(), frame.begin(), frame.end());
    // Opportunistic drain keeps the buffer small on a healthy link.
    flush();
}

void
Channel::flush()
{
    if (!open())
        return;
    while (outPos_ < out_.size()) {
        const ssize_t w = writeRetry(fd_, out_.data() + outPos_,
                                     out_.size() - outPos_);
        if (w > 0) {
            outPos_ += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        failed_ = true;
        return;
    }
    if (outPos_ == out_.size()) {
        out_.clear();
        outPos_ = 0;
    }
}

void
Channel::readSome()
{
    if (!open())
        return;
    std::uint8_t chunk[65536];
    for (;;) {
        const ssize_t r = readRetry(fd_, chunk, sizeof chunk);
        if (r > 0) {
            in_.feed(chunk, static_cast<std::size_t>(r));
            if (r < static_cast<ssize_t>(sizeof chunk))
                return;
            continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        failed_ = true; // EOF or hard error: the peer is gone
        return;
    }
}

bool
Channel::next(MsgType &type, std::vector<std::uint8_t> &body)
{
    if (in_.corrupt()) {
        failed_ = true;
        return false;
    }
    return in_.next(type, body);
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace
{

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string &err)
{
    if (path.size() + 1 > sizeof addr.sun_path) {
        err = path + ": socket path too long";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, err))
        return -1;
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) == 0) {
            if (::listen(fd, 64) != 0) {
                err = std::string("listen: ") + std::strerror(errno);
                ::close(fd);
                return -1;
            }
            return fd;
        }
        const int bindErrno = errno;
        ::close(fd);
        if (bindErrno != EADDRINUSE || attempt == 1) {
            err = path + ": " + std::strerror(bindErrno);
            return -1;
        }
        // Address in use: probe it. A live coordinator accepts; a
        // socket file orphaned by SIGKILL refuses, and is safe to
        // unlink and take over.
        std::string probeErr;
        const int probe = connectUnix(path, probeErr);
        if (probe >= 0) {
            ::close(probe);
            err = path + ": a coordinator is already serving here";
            return -1;
        }
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
            err = path + ": stale socket: " + std::strerror(errno);
            return -1;
        }
    }
    err = path + ": unreachable";
    return -1;
}

int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        err = path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendFrameBlocking(int fd, MsgType type,
                  const std::vector<std::uint8_t> &body)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, body);
    return writeFull(fd, frame.data(), frame.size());
}

bool
recvFrameBlocking(int fd, MsgType &type,
                  std::vector<std::uint8_t> &body)
{
    std::uint8_t header[8];
    if (!readFull(fd, header, sizeof header))
        return false;
    const std::uint32_t len = loadU32(header);
    const std::uint32_t crc = loadU32(header + 4);
    if (len == 0 || len > kMaxFrameBytes)
        return false;
    std::vector<std::uint8_t> payload(len);
    if (!readFull(fd, payload.data(), len))
        return false;
    if (crc32(payload.data(), len) != crc)
        return false;
    type = static_cast<MsgType>(payload[0]);
    body.assign(payload.begin() + 1, payload.end());
    return true;
}

} // namespace neo
